// Command jitrouter fronts a jitd shard cluster: it consistent-hashes
// session IDs over a static shard map and forwards the JSON API to the
// owning shard over pooled keep-alive connections.
//
// Usage:
//
//	jitrouter -cluster-config cluster.json [-addr :8080]
//	          [-probe-interval 1s] [-probe-timeout 2s]
//	          [-forward-timeout 30s] [-down-after 2]
//
// The shard map is JSON:
//
//	{"shards": [
//	  {"name": "s0", "addr": "127.0.0.1:9101", "standby": "127.0.0.1:9201"},
//	  {"name": "s1", "addr": "127.0.0.1:9102", "standby": "127.0.0.1:9202"},
//	  {"name": "s2", "addr": "127.0.0.1:9103", "standby": "127.0.0.1:9203"}
//	]}
//
// Routing: /api/sessions/{id}/... goes to the shard owning {id}
// (rendezvous hashing over shard *names* — addresses can change without
// moving sessions); POST /api/sessions and the read-only catalog endpoints
// round-robin over healthy shards (each shard mints only session IDs it
// owns, so a created session routes back to where it lives). A shard the
// router cannot reach answers an immediate 503 with Retry-After. Idempotent
// reads are retried once on a fresh connection.
//
// Router endpoints (never forwarded):
//
//	GET  /metrics        Prometheus text exposition (per-shard forward
//	                     latency, retries, 503s, health)
//	GET  /debug/vars     the same counters as JSON
//	GET  /admin/map      live shard map with health
//	GET  /admin/owner    ?id=<session-id> -> owning shard
//	POST /admin/reload   re-read -cluster-config and apply it (the failover
//	                     lever: point a dead shard's addr at its promoted
//	                     standby, then reload)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"justintime/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	configPath := flag.String("cluster-config", "", "shard map JSON file (required)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health probe period per shard")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "health probe timeout")
	forwardTimeout := flag.Duration("forward-timeout", 30*time.Second, "end-to-end bound on one forwarded request")
	downAfter := flag.Int("down-after", 2, "consecutive probe failures that mark a shard down")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text", "":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "jitrouter: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	if *configPath == "" {
		logger.Error("missing required -cluster-config")
		os.Exit(1)
	}
	m, err := cluster.LoadMap(*configPath)
	if err != nil {
		logger.Error("loading shard map failed", "err", err)
		os.Exit(1)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Map:            m,
		ConfigPath:     *configPath,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		ForwardTimeout: *forwardTimeout,
		DownAfter:      *downAfter,
	})
	if err != nil {
		logger.Error("building router failed", "err", err)
		os.Exit(1)
	}
	defer rt.Close()

	srv := &http.Server{Addr: *addr, Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("jitrouter listening", "addr", *addr, "shards", len(m.Shards))

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("signal received; draining")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown failed", "err", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
		}
		logger.Info("jitrouter stopped")
	}
}
