// Command jitd serves the JustInTime demonstration as a JSON HTTP API (the
// backend behind the paper's three-screen demo UI).
//
// Usage:
//
//	jitd [-addr :8080] [-method ki] [-eras 12] [-rows 1200] [-horizon 3] [-k 8]
//
// Endpoints:
//
//	GET  /api/schema                 feature schema
//	GET  /api/models                 the (M_t, delta_t) sequence
//	GET  /api/profiles               the five demo rejected applicants
//	GET  /api/questions              canned question catalog
//	POST /api/sessions               {"profile": {...}, "constraints": [...]}
//	GET  /api/sessions/{id}/inputs   temporal inputs x_0..x_T
//	GET  /api/sessions/{id}/plan     structured best plan per time point
//	POST /api/sessions/{id}/ask      {"kind": "...", "feature": "...", "alpha": 0.7}
//	POST /api/sessions/{id}/sql      {"query": "SELECT ..."}
package main

import (
	"flag"
	"log"
	"net/http"

	"justintime"
	"justintime/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "ki", "future-model generator: edd, ki, last, pooled")
	eras := flag.Int("eras", 12, "history eras (years)")
	rows := flag.Int("rows", 1200, "applications per era")
	horizon := flag.Int("horizon", 3, "future time points T")
	k := flag.Int("k", 8, "candidates per time point")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Method = *method
	cfg.Eras = *eras
	cfg.RowsPerEra = *rows
	cfg.T = *horizon
	cfg.K = *k
	cfg.Seed = *seed

	log.Printf("training %d models (%s) on %d eras x %d rows ...", *horizon+1, *method, *eras, *rows)
	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		log.Fatalf("building demo system: %v", err)
	}
	log.Printf("jitd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, server.New(demo.System)); err != nil {
		log.Fatal(err)
	}
}
