// Command jitd serves the JustInTime demonstration as a JSON HTTP API (the
// backend behind the paper's three-screen demo UI).
//
// Usage:
//
//	jitd [-addr :8080] [-method ki] [-eras 12] [-rows 1200] [-horizon 3] [-k 8]
//	     [-max-sessions 1024] [-session-ttl 30m] [-max-sql-rows 10000]
//
// Endpoints:
//
//	GET    /api/schema                 feature schema
//	GET    /api/models                 the (M_t, delta_t) sequence
//	GET    /api/profiles               the five demo rejected applicants
//	GET    /api/questions              canned question catalog
//	POST   /api/sessions               {"profile": {...}, "constraints": [...]}
//	DELETE /api/sessions/{id}          drop a session
//	GET    /api/sessions/{id}/inputs   temporal inputs x_0..x_T
//	GET    /api/sessions/{id}/plan     structured best plan per time point
//	POST   /api/sessions/{id}/ask      {"kind": "...", "feature": "...", "alpha": 0.7}
//	POST   /api/sessions/{id}/sql      {"query": "SELECT ..."} (SELECT only, row-capped)
//
// Sessions are held in memory under an idle TTL and an LRU-evicting cap;
// session creation is cancelled when the client disconnects. SIGINT/SIGTERM
// drain in-flight requests before exiting (graceful shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"justintime"
	"justintime/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "ki", "future-model generator: edd, ki, last, pooled")
	eras := flag.Int("eras", 12, "history eras (years)")
	rows := flag.Int("rows", 1200, "applications per era")
	horizon := flag.Int("horizon", 3, "future time points T")
	k := flag.Int("k", 8, "candidates per time point")
	seed := flag.Int64("seed", 1, "random seed")
	maxSessions := flag.Int("max-sessions", 1024, "live session cap (LRU eviction past it)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime")
	maxSQLRows := flag.Int("max-sql-rows", 10000, "row cap on the expert SQL endpoint")
	flag.Parse()

	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Method = *method
	cfg.Eras = *eras
	cfg.RowsPerEra = *rows
	cfg.T = *horizon
	cfg.K = *k
	cfg.Seed = *seed

	log.Printf("training %d models (%s) on %d eras x %d rows ...", *horizon+1, *method, *eras, *rows)
	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		log.Fatalf("building demo system: %v", err)
	}

	handler := server.NewWithConfig(demo.System, server.Config{
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		MaxSQLRows:  *maxSQLRows,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("jitd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining in-flight requests ...")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		log.Printf("jitd stopped")
	}
}
