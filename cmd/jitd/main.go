// Command jitd serves the JustInTime demonstration as a JSON HTTP API (the
// backend behind the paper's three-screen demo UI).
//
// Usage:
//
//	jitd [-addr :8080] [-method ki] [-eras 12] [-rows 1200] [-horizon 3] [-k 8]
//	     [-max-sessions 1024] [-session-ttl 30m] [-max-sql-rows 10000]
//	     [-data-dir ""] [-wal-sync always] [-shards 0] [-max-pending-creates 32]
//	     [-buffer-pool-pages 0] [-slow-request 25ms] [-trace-sample 16]
//	     [-log-format text] [-debug-addr ""]
//
// Endpoints:
//
//	GET    /api/schema                 feature schema
//	GET    /api/models                 the (M_t, delta_t) sequence
//	GET    /api/profiles               the five demo rejected applicants
//	GET    /api/questions              canned question catalog
//	POST   /api/sessions               {"profile": {...}, "constraints": [...]}
//	DELETE /api/sessions/{id}          drop a session (memory and disk)
//	GET    /api/sessions/{id}/inputs   temporal inputs x_0..x_T
//	GET    /api/sessions/{id}/plan     structured best plan per time point
//	POST   /api/sessions/{id}/ask      {"kind": "...", "feature": "...", "alpha": 0.7}
//	POST   /api/sessions/{id}/sql      {"query": "SELECT ..."} (SELECT only, row-capped)
//	GET    /debug/vars                 expvar metrics (sessions, evictions, WAL)
//	GET    /debug/requests             sampled recent request traces (span trees)
//	GET    /debug/requests/slow        every request over -slow-request, with plans
//	GET    /metrics                    Prometheus text exposition
//
// Sessions are held in memory under an idle TTL and an LRU-evicting cap;
// session creation is cancelled when the client disconnects. The session
// manager is hash-sharded (-shards, default GOMAXPROCS) so lookups never
// contend across shards, and all persistence I/O — creation snapshots,
// eviction checkpoints, rehydration loads — runs outside the shard locks:
// checkpointing or rehydrating one session never stalls requests to others.
// Concurrent cold hits on the same session collapse into a single disk load
// (singleflight). -max-pending-creates bounds concurrently admitted session
// creations; past it, POST /api/sessions answers 429 with Retry-After.
//
// With -data-dir set, the durability subsystem persists every session's
// candidates database (snapshot + write-ahead log) under
// <data-dir>/sessions/<id>/: evictions checkpoint to disk instead of
// destroying the session, cache misses rehydrate from disk instead of
// 404ing, and SIGINT/SIGTERM checkpoints all live sessions after draining
// in-flight requests — a restart with the same -data-dir resumes every
// session without re-running candidate generation. -wal-sync picks the WAL
// durability/latency trade-off: "always" fsyncs per mutation, "batched"
// defers fsync to checkpoints (an OS crash may lose the un-synced tail; a
// plain process crash loses nothing).
//
// With -buffer-pool-pages N > 0 (requires -data-dir), every session's
// candidates table lives on paged row storage: rows are encoded into 8 KiB
// slotted pages that fault in from disk through one shared N-frame buffer
// pool and evict under memory pressure, so the resident heap cost of an idle
// session is its page directory rather than its rows. Pool behavior is
// observable on /debug/vars as jitd_pool_{hits,misses,evictions,pinned,
// dirty_writebacks,resident_pages}.
//
// Every request carries a trace: spans across the session manager, planner,
// executor, pager and durability layer, tail-sampled into two rings. Fast
// requests are kept 1-in-(-trace-sample); every request at or over
// -slow-request is kept unconditionally with its query plan rendered (the
// slow-query log on /debug/requests/slow). -log-format selects text or json
// structured logs; -debug-addr, when set, serves net/http/pprof and
// /debug/vars on a separate listener.
//
// Cluster mode. With -cluster-config (the jitrouter shard map) and
// -shard-name, this process runs as one shard: it mints only session IDs it
// owns under the map's rendezvous hash, so sessions created here route back
// here through the router. With -replicate-to host:port (requires
// -data-dir), every session's durable state streams to a warm standby: WAL
// appends as they happen, full file sets on create/checkpoint, deletions.
// Replication health is on /metrics (jitd_replication_*; the lag gauges
// must read 0 under quiesced traffic before a failover).
//
// Standby mode. With -standby -replication-listen host:port (requires
// -data-dir), the process trains its models, then ingests its primary's
// replication stream into -data-dir instead of serving: every /api request
// answers 503 + Retry-After until POST /admin/promote stops ingest and
// opens the full API over the replicated session tree (sessions rehydrate
// lazily from local disk). GET /admin/standby reports ingest counters while
// waiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"justintime"
	"justintime/internal/cluster"
	"justintime/internal/fault"
	"justintime/internal/server"
	"justintime/internal/sqldb/persist"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "ki", "future-model generator: edd, ki, last, pooled")
	eras := flag.Int("eras", 12, "history eras (years)")
	rows := flag.Int("rows", 1200, "applications per era")
	horizon := flag.Int("horizon", 3, "future time points T")
	k := flag.Int("k", 8, "candidates per time point")
	seed := flag.Int64("seed", 1, "random seed")
	maxSessions := flag.Int("max-sessions", 1024, "in-memory session cap (LRU eviction past it)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime in memory")
	maxSQLRows := flag.Int("max-sql-rows", 10000, "row cap on the expert SQL endpoint")
	dataDir := flag.String("data-dir", "", "directory for session persistence (snapshot+WAL); empty = memory-only")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always (per mutation) or batched (at checkpoints)")
	shards := flag.Int("shards", 0, "session-manager shard count (0 = GOMAXPROCS)")
	maxPendingCreates := flag.Int("max-pending-creates", 32, "admitted concurrent session creations; past it POST /api/sessions gets 429")
	bufferPoolPages := flag.Int("buffer-pool-pages", 0, "shared buffer pool frames for paged candidates storage (0 = plain in-heap rows; requires -data-dir)")
	slowRequest := flag.Duration("slow-request", 25*time.Millisecond, "requests at or over this duration are always kept in the slow-trace ring with rendered plans")
	traceSample := flag.Int("trace-sample", 16, "keep 1 in N fast requests in the recent-trace ring")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof and /debug/vars; empty = off")
	clusterConfig := flag.String("cluster-config", "", "shard map JSON (the jitrouter config); with -shard-name, mint only owned session IDs")
	shardName := flag.String("shard-name", "", "this process's name in -cluster-config")
	replicateTo := flag.String("replicate-to", "", "warm standby's replication listener host:port; streams WAL + checkpoints there (requires -data-dir)")
	standbyMode := flag.Bool("standby", false, "run as a warm standby: ingest a primary's replication stream, gate the API until /admin/promote")
	replicationListen := flag.String("replication-listen", "", "standby's replication listener host:port (requires -standby)")
	faultDisk := flag.String("fault-disk", "", "chaos: deterministic disk-fault schedule, e.g. 'enospc:after=65536,times=8' or 'fail-fsync:nth=3' (see internal/fault)")
	faultNet := flag.String("fault-net", "", "chaos: replication-link fault config, e.g. 'latency=2ms,reset-after=32768,first-conns=6'")
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	syncMode, err := persist.ParseSyncMode(*walSync)
	if err != nil {
		fatal(logger, "bad -wal-sync", "err", err)
	}
	if *bufferPoolPages > 0 && *dataDir == "" {
		fatal(logger, "-buffer-pool-pages requires -data-dir (paged storage needs a backing file)")
	}
	if (*clusterConfig == "") != (*shardName == "") {
		fatal(logger, "-cluster-config and -shard-name go together")
	}
	if *replicateTo != "" && *dataDir == "" {
		fatal(logger, "-replicate-to requires -data-dir (replication ships the on-disk session tree)")
	}
	if *standbyMode && (*dataDir == "" || *replicationListen == "") {
		fatal(logger, "-standby requires -data-dir and -replication-listen")
	}
	if *replicationListen != "" && !*standbyMode {
		fatal(logger, "-replication-listen requires -standby")
	}
	diskInj, err := fault.ParseDiskSpec(*faultDisk)
	if err != nil {
		fatal(logger, "bad -fault-disk", "err", err)
	}
	netCfg, err := fault.ParseNetSpec(*faultNet)
	if err != nil {
		fatal(logger, "bad -fault-net", "err", err)
	}
	if diskInj != nil {
		logger.Warn("disk fault injection armed", "spec", *faultDisk)
	}
	if netCfg != nil {
		logger.Warn("network fault injection armed on the replication link", "spec", *faultNet)
	}
	var keepID func(string) bool
	if *clusterConfig != "" {
		m, err := cluster.LoadMap(*clusterConfig)
		if err != nil {
			fatal(logger, "bad -cluster-config", "err", err)
		}
		if m.ByName(*shardName) == nil {
			fatal(logger, "shard not in cluster map", "shard", *shardName)
		}
		names := m.Names()
		name := *shardName
		keepID = func(id string) bool { return cluster.OwnedBy(id, name, names) }
		logger.Info("cluster shard mode", "shard", name, "shards", len(names))
	}

	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Method = *method
	cfg.Eras = *eras
	cfg.RowsPerEra = *rows
	cfg.T = *horizon
	cfg.K = *k
	cfg.Seed = *seed

	logger.Info("training models", "count", *horizon+1, "method", *method, "eras", *eras, "rows_per_era", *rows)
	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		fatal(logger, "building demo system failed", "err", err)
	}

	buildServer := func() *server.Server {
		scfg := server.Config{
			MaxSessions:       *maxSessions,
			SessionTTL:        *sessionTTL,
			MaxSQLRows:        *maxSQLRows,
			DataDir:           *dataDir,
			WALSync:           syncMode,
			Shards:            *shards,
			MaxPendingCreates: *maxPendingCreates,
			BufferPoolPages:   *bufferPoolPages,
			SlowRequest:       *slowRequest,
			TraceSampleEvery:  *traceSample,
			Logger:            logger,
			KeepSessionID:     keepID,
			ReplicateTo:       *replicateTo,
		}
		if diskInj != nil {
			scfg.FS = diskInj
		}
		if netCfg != nil {
			scfg.ReplicationDial = fault.DialTimeout(netCfg)
		}
		return server.NewWithConfig(demo.System, scfg)
	}
	var handler http.Handler
	var closeNode func() int
	if *standbyMode {
		replica, err := persist.NewReplica(filepath.Join(*dataDir, "sessions"), logger)
		if err != nil {
			fatal(logger, "building replica failed", "err", err)
		}
		server.RegisterReplica(replica)
		rln, err := net.Listen("tcp", *replicationListen)
		if err != nil {
			fatal(logger, "replication listener failed", "err", err)
		}
		if netCfg != nil {
			rln = fault.Listener(rln, netCfg)
		}
		go replica.Serve(rln)
		sb := &standbyNode{replica: replica, build: buildServer, logger: logger}
		handler = sb
		closeNode = sb.Close
		logger.Info("warm standby: ingesting replication stream",
			"replication_listen", *replicationListen, "data_dir", *dataDir)
	} else {
		srv := buildServer()
		handler = srv
		closeNode = srv.Close
	}
	if *replicateTo != "" {
		logger.Info("replicating to warm standby", "target", *replicateTo)
	}
	if *dataDir != "" {
		logger.Info("session durability on", "data_dir", *dataDir, "wal_sync", syncMode.String())
	}
	if *bufferPoolPages > 0 {
		logger.Info("paged candidates storage on", "pool_pages", *bufferPoolPages, "pool_kib", *bufferPoolPages*8)
	}
	if *debugAddr != "" {
		// The pprof import registered its handlers on http.DefaultServeMux,
		// and expvar self-registers /debug/vars there too. Serving the
		// default mux on a separate listener keeps profiling/introspection
		// off the API port.
		go func() {
			dsrv := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			logger.Info("debug listener on", "addr", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}
	// ReadHeaderTimeout bounds how long an idle connection can sit in the
	// header-read phase (slow-loris hygiene); bodies are size-capped and
	// read before any admission slot is taken.
	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("jitd listening", "addr", *addr)

	select {
	case err := <-errc:
		fatal(logger, "serve failed", "err", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown failed", "err", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
		}
		if n := closeNode(); n > 0 {
			logger.Info("checkpointed live sessions to disk", "sessions", n)
		}
		logger.Info("jitd stopped")
	}
}

// standbyNode is the warm-standby lifecycle around a Server that does not
// exist yet: before promotion it ingests the primary's replication stream
// and answers 503 to the API (so a router's health probe never routes here);
// POST /admin/promote stops ingest and builds the real Server over the
// replicated session tree, after which every request flows through it.
type standbyNode struct {
	replica *persist.Replica
	build   func() *server.Server
	logger  *slog.Logger

	mu  sync.RWMutex
	srv *server.Server // nil until promoted
}

func (n *standbyNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/admin/promote" {
		n.promote(w)
		return
	}
	n.mu.RLock()
	srv := n.srv
	n.mu.RUnlock()
	if srv != nil {
		srv.ServeHTTP(w, r)
		return
	}
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/admin/standby":
		writeJSON(w, http.StatusOK, map[string]interface{}{"promoted": false, "replica": n.replica.Stats()})
	case r.URL.Path == "/debug/vars":
		expvar.Handler().ServeHTTP(w, r)
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error": "standby: not promoted; POST /admin/promote to take over",
		})
	}
}

// promote stops replication ingest and opens the API. Idempotent: a second
// promotion reports success without rebuilding anything.
func (n *standbyNode) promote(w http.ResponseWriter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv != nil {
		writeJSON(w, http.StatusOK, map[string]interface{}{"promoted": true, "already": true})
		return
	}
	st := n.replica.Stats()
	if err := n.replica.Close(); err != nil {
		n.logger.Error("standby: closing replica failed", "err", err)
	}
	n.srv = n.build()
	n.logger.Info("standby promoted to primary",
		"applied_records", st.AppliedRecords, "applied_bytes", st.AppliedBytes, "syncs", st.Syncs)
	writeJSON(w, http.StatusOK, map[string]interface{}{"promoted": true})
}

// Close shuts down whichever phase the node is in.
func (n *standbyNode) Close() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv != nil {
		return n.srv.Close()
	}
	_ = n.replica.Close()
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// buildLogger maps -log-format onto a slog handler writing to stderr.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("jitd: unknown -log-format %q (want text or json)", format)
	}
}

// fatal logs at Error level and exits non-zero (slog has no Fatal).
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
