// Command jitd serves the JustInTime demonstration as a JSON HTTP API (the
// backend behind the paper's three-screen demo UI).
//
// Usage:
//
//	jitd [-addr :8080] [-method ki] [-eras 12] [-rows 1200] [-horizon 3] [-k 8]
//	     [-max-sessions 1024] [-session-ttl 30m] [-max-sql-rows 10000]
//	     [-data-dir ""] [-wal-sync always] [-shards 0] [-max-pending-creates 32]
//	     [-buffer-pool-pages 0] [-slow-request 25ms] [-trace-sample 16]
//	     [-log-format text] [-debug-addr ""]
//
// Endpoints:
//
//	GET    /api/schema                 feature schema
//	GET    /api/models                 the (M_t, delta_t) sequence
//	GET    /api/profiles               the five demo rejected applicants
//	GET    /api/questions              canned question catalog
//	POST   /api/sessions               {"profile": {...}, "constraints": [...]}
//	DELETE /api/sessions/{id}          drop a session (memory and disk)
//	GET    /api/sessions/{id}/inputs   temporal inputs x_0..x_T
//	GET    /api/sessions/{id}/plan     structured best plan per time point
//	POST   /api/sessions/{id}/ask      {"kind": "...", "feature": "...", "alpha": 0.7}
//	POST   /api/sessions/{id}/sql      {"query": "SELECT ..."} (SELECT only, row-capped)
//	GET    /debug/vars                 expvar metrics (sessions, evictions, WAL)
//	GET    /debug/requests             sampled recent request traces (span trees)
//	GET    /debug/requests/slow        every request over -slow-request, with plans
//	GET    /metrics                    Prometheus text exposition
//
// Sessions are held in memory under an idle TTL and an LRU-evicting cap;
// session creation is cancelled when the client disconnects. The session
// manager is hash-sharded (-shards, default GOMAXPROCS) so lookups never
// contend across shards, and all persistence I/O — creation snapshots,
// eviction checkpoints, rehydration loads — runs outside the shard locks:
// checkpointing or rehydrating one session never stalls requests to others.
// Concurrent cold hits on the same session collapse into a single disk load
// (singleflight). -max-pending-creates bounds concurrently admitted session
// creations; past it, POST /api/sessions answers 429 with Retry-After.
//
// With -data-dir set, the durability subsystem persists every session's
// candidates database (snapshot + write-ahead log) under
// <data-dir>/sessions/<id>/: evictions checkpoint to disk instead of
// destroying the session, cache misses rehydrate from disk instead of
// 404ing, and SIGINT/SIGTERM checkpoints all live sessions after draining
// in-flight requests — a restart with the same -data-dir resumes every
// session without re-running candidate generation. -wal-sync picks the WAL
// durability/latency trade-off: "always" fsyncs per mutation, "batched"
// defers fsync to checkpoints (an OS crash may lose the un-synced tail; a
// plain process crash loses nothing).
//
// With -buffer-pool-pages N > 0 (requires -data-dir), every session's
// candidates table lives on paged row storage: rows are encoded into 8 KiB
// slotted pages that fault in from disk through one shared N-frame buffer
// pool and evict under memory pressure, so the resident heap cost of an idle
// session is its page directory rather than its rows. Pool behavior is
// observable on /debug/vars as jitd_pool_{hits,misses,evictions,pinned,
// dirty_writebacks,resident_pages}.
//
// Every request carries a trace: spans across the session manager, planner,
// executor, pager and durability layer, tail-sampled into two rings. Fast
// requests are kept 1-in-(-trace-sample); every request at or over
// -slow-request is kept unconditionally with its query plan rendered (the
// slow-query log on /debug/requests/slow). -log-format selects text or json
// structured logs; -debug-addr, when set, serves net/http/pprof and
// /debug/vars on a separate listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"justintime"
	"justintime/internal/server"
	"justintime/internal/sqldb/persist"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "ki", "future-model generator: edd, ki, last, pooled")
	eras := flag.Int("eras", 12, "history eras (years)")
	rows := flag.Int("rows", 1200, "applications per era")
	horizon := flag.Int("horizon", 3, "future time points T")
	k := flag.Int("k", 8, "candidates per time point")
	seed := flag.Int64("seed", 1, "random seed")
	maxSessions := flag.Int("max-sessions", 1024, "in-memory session cap (LRU eviction past it)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime in memory")
	maxSQLRows := flag.Int("max-sql-rows", 10000, "row cap on the expert SQL endpoint")
	dataDir := flag.String("data-dir", "", "directory for session persistence (snapshot+WAL); empty = memory-only")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always (per mutation) or batched (at checkpoints)")
	shards := flag.Int("shards", 0, "session-manager shard count (0 = GOMAXPROCS)")
	maxPendingCreates := flag.Int("max-pending-creates", 32, "admitted concurrent session creations; past it POST /api/sessions gets 429")
	bufferPoolPages := flag.Int("buffer-pool-pages", 0, "shared buffer pool frames for paged candidates storage (0 = plain in-heap rows; requires -data-dir)")
	slowRequest := flag.Duration("slow-request", 25*time.Millisecond, "requests at or over this duration are always kept in the slow-trace ring with rendered plans")
	traceSample := flag.Int("trace-sample", 16, "keep 1 in N fast requests in the recent-trace ring")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof and /debug/vars; empty = off")
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	syncMode, err := persist.ParseSyncMode(*walSync)
	if err != nil {
		fatal(logger, "bad -wal-sync", "err", err)
	}
	if *bufferPoolPages > 0 && *dataDir == "" {
		fatal(logger, "-buffer-pool-pages requires -data-dir (paged storage needs a backing file)")
	}

	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Method = *method
	cfg.Eras = *eras
	cfg.RowsPerEra = *rows
	cfg.T = *horizon
	cfg.K = *k
	cfg.Seed = *seed

	logger.Info("training models", "count", *horizon+1, "method", *method, "eras", *eras, "rows_per_era", *rows)
	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		fatal(logger, "building demo system failed", "err", err)
	}

	handler := server.NewWithConfig(demo.System, server.Config{
		MaxSessions:       *maxSessions,
		SessionTTL:        *sessionTTL,
		MaxSQLRows:        *maxSQLRows,
		DataDir:           *dataDir,
		WALSync:           syncMode,
		Shards:            *shards,
		MaxPendingCreates: *maxPendingCreates,
		BufferPoolPages:   *bufferPoolPages,
		SlowRequest:       *slowRequest,
		TraceSampleEvery:  *traceSample,
		Logger:            logger,
	})
	if *dataDir != "" {
		logger.Info("session durability on", "data_dir", *dataDir, "wal_sync", syncMode.String())
	}
	if *bufferPoolPages > 0 {
		logger.Info("paged candidates storage on", "pool_pages", *bufferPoolPages, "pool_kib", *bufferPoolPages*8)
	}
	if *debugAddr != "" {
		// The pprof import registered its handlers on http.DefaultServeMux,
		// and expvar self-registers /debug/vars there too. Serving the
		// default mux on a separate listener keeps profiling/introspection
		// off the API port.
		go func() {
			dsrv := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			logger.Info("debug listener on", "addr", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}
	// ReadHeaderTimeout bounds how long an idle connection can sit in the
	// header-read phase (slow-loris hygiene); bodies are size-capped and
	// read before any admission slot is taken.
	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("jitd listening", "addr", *addr)

	select {
	case err := <-errc:
		fatal(logger, "serve failed", "err", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown failed", "err", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
		}
		if n := handler.Close(); n > 0 {
			logger.Info("checkpointed live sessions to disk", "sessions", n)
		}
		logger.Info("jitd stopped")
	}
}

// buildLogger maps -log-format onto a slog handler writing to stderr.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("jitd: unknown -log-format %q (want text or json)", format)
	}
}

// fatal logs at Error level and exits non-zero (slog has no Fatal).
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
