// Command jit runs the JustInTime demonstration end-to-end in the terminal:
// it trains the model sequence on the synthetic loan history, replays one of
// the five rejected applicants (or a profile given via flags), applies the
// user's constraints, generates the candidates database, and prints the
// answer to every canned question plus the raw tables an expert would
// inspect.
//
// Usage:
//
//	jit [-profile 0..4] [-method ki] [-horizon 3] [-k 8]
//	    [-constraint "income <= old(income) * 1.3"]...
//	    [-feature income] [-alpha 0.7] [-sql "SELECT ..."]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"justintime"
)

// constraintList collects repeated -constraint flags.
type constraintList []string

func (c *constraintList) String() string { return strings.Join(*c, "; ") }
func (c *constraintList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	log.SetFlags(0)
	profileIdx := flag.Int("profile", 0, "demo applicant index (0..4; 0 is John)")
	method := flag.String("method", "ki", "future-model generator: edd, ki, last, pooled")
	horizon := flag.Int("horizon", 3, "future time points T")
	k := flag.Int("k", 8, "candidates per time point")
	eras := flag.Int("eras", 12, "history eras")
	rows := flag.Int("rows", 1200, "applications per era")
	seed := flag.Int64("seed", 1, "random seed")
	feature := flag.String("feature", "income", "feature for the dominant-feature question")
	alpha := flag.Float64("alpha", 0.7, "confidence level for the turning-point question")
	sql := flag.String("sql", "", "optional expert SQL to run at the end")
	var userConstraints constraintList
	flag.Var(&userConstraints, "constraint", "user constraint (repeatable)")
	flag.Parse()

	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Method = *method
	cfg.T = *horizon
	cfg.K = *k
	cfg.Eras = *eras
	cfg.RowsPerEra = *rows
	cfg.Seed = *seed

	fmt.Printf("JustInTime - temporal insights for altering model decisions\n")
	fmt.Printf("training %d future models (%s) on %d eras x %d applications\n\n", *horizon+1, *method, *eras, *rows)
	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	sys := demo.System

	profiles := justintime.RejectedProfiles()
	if *profileIdx < 0 || *profileIdx >= len(profiles) {
		log.Fatalf("profile index %d outside 0..%d", *profileIdx, len(profiles)-1)
	}
	profile := profiles[*profileIdx]
	schema := sys.Schema()
	fmt.Printf("applicant profile: %s\n", schema.Format(profile))
	m0 := sys.Models()[0]
	fmt.Printf("present decision:  score %.3f vs threshold %.3f -> %s\n\n",
		m0.Model.Predict(profile), m0.Threshold, verdict(m0.Model.Predict(profile) > m0.Threshold))

	prefs := justintime.NewConstraintSet()
	for _, src := range userConstraints {
		c, err := justintime.ParseConstraint(src)
		if err != nil {
			log.Fatalf("constraint %q: %v", src, err)
		}
		prefs.Add(c)
	}
	if len(userConstraints) > 0 {
		fmt.Printf("your preferences:  %s\n\n", prefs)
	}

	fmt.Println("generating candidates for every time point ...")
	sess, err := sys.NewSession(profile, prefs)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	n, err := sess.CandidateCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d decision-altering candidates\n\n", n)

	insights, err := sess.AskAll(*feature, *alpha)
	if err != nil {
		log.Fatalf("questions: %v", err)
	}
	fmt.Println("=== Plans and Insights ===")
	for i, ins := range insights {
		fmt.Printf("%d) [%s]\n   %s\n", i+1, ins.Question.Kind, ins.Text)
	}

	fmt.Println("\n=== Behind the scenes: temporal inputs ===")
	res, err := sess.SQL("SELECT * FROM temporal_inputs ORDER BY time")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	fmt.Println("\n=== Behind the scenes: best candidate per time point ===")
	res, err = sess.SQL(`SELECT time, diff, gap, p FROM candidates c
WHERE p = (SELECT MAX(p) FROM candidates c2 WHERE c2.time = c.time) ORDER BY time`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	if *sql != "" {
		fmt.Printf("\n=== Expert SQL: %s ===\n", *sql)
		res, err := sess.SQL(*sql)
		if err != nil {
			log.Fatalf("expert SQL: %v", err)
		}
		fmt.Print(res.Format())
	}
}

func verdict(approved bool) string {
	if approved {
		return "APPROVED"
	}
	return "REJECTED"
}
