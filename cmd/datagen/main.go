// Command datagen exports the synthetic Lending-Club-style loan history as
// CSV (the offline stand-in for the Kaggle dump the paper demos on), and can
// verify a previously exported file round-trips losslessly.
//
// Usage:
//
//	datagen -out loans.csv [-eras 12] [-rows 2000] [-seed 1] [-noise 0.04] [-drift 1]
//	datagen -verify loans.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"justintime/internal/dataset"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "", "output CSV path (use '-' for stdout)")
	verify := flag.String("verify", "", "CSV file to parse and summarize instead of generating")
	eras := flag.Int("eras", 12, "yearly eras to generate")
	rows := flag.Int("rows", 2000, "applications per era")
	seed := flag.Int64("seed", 1, "random seed")
	noise := flag.Float64("noise", 0.04, "label noise probability")
	drift := flag.Float64("drift", 1, "drift scale (0 = stationary world)")
	flag.Parse()

	switch {
	case *verify != "":
		f, err := os.Open(*verify)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		d, err := dataset.ReadCSV(f)
		if err != nil {
			log.Fatalf("parse: %v", err)
		}
		fmt.Printf("%s: %d eras\n", *verify, d.Eras())
		for e := 0; e < d.Eras(); e++ {
			fmt.Printf("  era %2d (%d): %6d rows, positive rate %.3f\n",
				e, dataset.BaseYear+e, len(d.Era(e)), d.PositiveRate(e))
		}
	case *out != "":
		d, err := dataset.Generate(dataset.Config{
			Seed: *seed, Eras: *eras, RowsPerEra: *rows,
			LabelNoise: *noise, DriftScale: *drift,
		})
		if err != nil {
			log.Fatal(err)
		}
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := d.WriteCSV(w); err != nil {
			log.Fatal(err)
		}
		if *out != "-" {
			log.Printf("wrote %d rows to %s", *eras**rows, *out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
