package main

import (
	"fmt"

	"justintime"
	"justintime/internal/dataset"
	"justintime/internal/drift"
	"justintime/internal/mlmodel"
)

// runE4 is the headline temporal experiment: train future models on eras
// 0..H-1 and evaluate each generator's horizon-t model on the *actual* era
// H-1+t (which the synthetic process can produce because the drift is known
// in closed form). Drift-aware generators should beat the drift-oblivious
// baselines, with the gap widening with the horizon.
func runE4(quick bool) error {
	trainEras, rows, horizon := 8, 1500, 4
	if quick {
		trainEras, rows, horizon = 6, 500, 2
	}
	totalEras := trainEras + horizon

	full, err := dataset.Generate(dataset.Config{
		Seed: 11, Eras: totalEras, RowsPerEra: rows, LabelNoise: 0.04, DriftScale: 1,
	})
	if err != nil {
		return err
	}
	history := justintime.HistoryFromDataset(full)[:trainEras]

	// Held-out evaluation sets for each future era, drawn from an
	// independent seed so train and test never overlap.
	eval, err := dataset.Generate(dataset.Config{
		Seed: 77, Eras: totalEras, RowsPerEra: rows, LabelNoise: 0, DriftScale: 1,
	})
	if err != nil {
		return err
	}

	forest := drift.ForestTrainer(mlmodel.ForestConfig{Trees: 30, MaxDepth: 8, MinLeaf: 3, Seed: 5})
	oracleFuture := func(t int) (drift.Era, error) {
		hist := justintime.HistoryFromDataset(full)
		return hist[trainEras-1+t], nil
	}
	generators := []drift.Generator{
		drift.Last{Trainer: forest},
		drift.Window{Trainer: forest, W: 3},
		drift.Pooled{Trainer: forest},
		drift.KI{Degree: 1},
		drift.KI{Degree: 1, Features: dataset.RatioFeatures, FeaturesLabel: "ratios"},
		drift.EDD{Trainer: forest, Seed: 5, MaxPerEra: 250},
		drift.Oracle{Trainer: forest, Future: oracleFuture},
	}

	fmt.Printf("train eras 0..%d, evaluated on actual future eras (accuracy at the generator's delta_t)\n", trainEras-1)
	header := fmt.Sprintf("%-8s", "method")
	for t := 1; t <= horizon; t++ {
		header += fmt.Sprintf(" t+%d    ", t)
	}
	fmt.Println(header)
	for _, g := range generators {
		models, err := g.Generate(history, horizon)
		if err != nil {
			return fmt.Errorf("%s: %w", g.Name(), err)
		}
		row := fmt.Sprintf("%-8s", g.Name())
		for t := 1; t <= horizon; t++ {
			era := eval.Era(trainEras - 1 + t)
			X := make([][]float64, len(era))
			y := make([]bool, len(era))
			for i, ex := range era {
				X[i], y[i] = ex.X, ex.Label
			}
			acc := mlmodel.Accuracy(models[t].Model, X, y, models[t].Threshold)
			row += fmt.Sprintf(" %.3f  ", acc)
		}
		fmt.Println(row)
	}
	fmt.Println("expected shape: oracle >= ki/edd >= last/pooled, gap growing with t")
	return nil
}
