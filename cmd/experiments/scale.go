package main

import (
	"fmt"
	"math/rand"
	"time"

	"justintime/internal/sqldb"
)

// runE8 measures database-substrate scale: bulk-ingest throughput at
// Lending-Club-like row counts and canned-query latency as the candidates
// table grows.
func runE8(quick bool) error {
	ingestSizes := []int{10_000, 100_000, 1_000_000}
	querySizes := []int{1_000, 10_000, 100_000}
	if quick {
		ingestSizes = []int{10_000, 50_000}
		querySizes = []int{1_000, 5_000}
	}

	fmt.Printf("%-12s %-12s %s\n", "rows", "ingest", "rows/sec")
	for _, n := range ingestSizes {
		db := sqldb.New()
		db.MustExec("CREATE TABLE applications (era INT, age FLOAT, income FLOAT, debt FLOAT, amount FLOAT, label INT)")
		rows := syntheticRows(n, 42)
		start := time.Now()
		if err := db.InsertRows("applications", rows); err != nil {
			return err
		}
		dur := time.Since(start)
		fmt.Printf("%-12d %-12v %.0f\n", n, dur.Round(time.Millisecond), float64(n)/dur.Seconds())
	}

	fmt.Printf("\n%-12s", "query")
	for _, n := range querySizes {
		fmt.Printf(" %-12s", fmt.Sprintf("%d rows", n))
	}
	fmt.Println()
	queries := []struct {
		name string
		sql  string
	}{
		{"Q1 min-filter", "SELECT MIN(time) FROM candidates WHERE diff = 0"},
		{"Q2 order-limit", "SELECT * FROM candidates ORDER BY gap, diff LIMIT 1"},
		{"Q4 aggregate", "SELECT MIN(diff) FROM candidates"},
		{"Q5 top-conf", "SELECT * FROM candidates ORDER BY p DESC LIMIT 1"},
		{"group-by", "SELECT time, COUNT(*), MAX(p) FROM candidates GROUP BY time"},
		{"join", "SELECT COUNT(*) FROM candidates c INNER JOIN temporal_inputs ti ON c.time = ti.time"},
	}
	// Pre-build one database per size.
	dbs := make([]*sqldb.DB, len(querySizes))
	for i, n := range querySizes {
		dbs[i] = candidatesDB(n, 64)
	}
	for _, q := range queries {
		fmt.Printf("%-12s", q.name)
		for i := range querySizes {
			start := time.Now()
			const reps = 5
			for r := 0; r < reps; r++ {
				if _, err := dbs[i].Query(q.sql); err != nil {
					return fmt.Errorf("%s: %w", q.name, err)
				}
			}
			fmt.Printf(" %-12v", (time.Since(start) / reps).Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("expected shape: ingest scales linearly; scan-bound queries grow linearly with table size")
	return nil
}

// syntheticRows builds loan-application-like rows for ingest benchmarks.
func syntheticRows(n int, seed int64) [][]sqldb.Value {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]sqldb.Value, n)
	for i := range rows {
		label := int64(0)
		if rng.Float64() < 0.4 {
			label = 1
		}
		rows[i] = []sqldb.Value{
			sqldb.Int(int64(rng.Intn(12))),
			sqldb.Float(21 + rng.Float64()*50),
			sqldb.Float(rng.Float64() * 200000),
			sqldb.Float(rng.Float64() * 8000),
			sqldb.Float(rng.Float64() * 80000),
			sqldb.Int(label),
		}
	}
	return rows
}

// candidatesDB builds a candidates/temporal_inputs pair with n candidate
// rows spread over `times` time points.
func candidatesDB(n, times int) *sqldb.DB {
	rng := rand.New(rand.NewSource(7))
	db := sqldb.New()
	db.MustExec("CREATE TABLE candidates (time INT, income FLOAT, debt FLOAT, diff FLOAT, gap INT, p FLOAT)")
	db.MustExec("CREATE TABLE temporal_inputs (time INT, income FLOAT, debt FLOAT)")
	tiRows := make([][]sqldb.Value, times)
	for t := 0; t < times; t++ {
		tiRows[t] = []sqldb.Value{sqldb.Int(int64(t)), sqldb.Float(48000), sqldb.Float(1900)}
	}
	if err := db.InsertRows("temporal_inputs", tiRows); err != nil {
		panic(err)
	}
	rows := make([][]sqldb.Value, n)
	for i := range rows {
		diff := rng.Float64() * 20000
		if rng.Intn(50) == 0 {
			diff = 0
		}
		rows[i] = []sqldb.Value{
			sqldb.Int(int64(rng.Intn(times))),
			sqldb.Float(40000 + rng.Float64()*40000),
			sqldb.Float(rng.Float64() * 4000),
			sqldb.Float(diff),
			sqldb.Int(int64(rng.Intn(4))),
			sqldb.Float(rng.Float64()),
		}
	}
	if err := db.InsertRows("candidates", rows); err != nil {
		panic(err)
	}
	return db
}
