// Command experiments regenerates every experiment in DESIGN.md's
// per-experiment index (E1-E8), printing paper-style tables. E9 (the
// decision-altering invariant) lives in the property-based test suite.
//
// Usage:
//
//	experiments [-e all|e1|e2|e3|e4|e5|e6|e7|e8] [-quick]
//
// -quick shrinks workloads for fast smoke runs (used by CI and the test
// suite); default sizes reproduce the numbers recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	which := flag.String("e", "all", "experiment id (e1..e8) or all")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func(quick bool) error
	}{
		{"e1", "End-to-end architecture (Fig. 1)", runE1},
		{"e2", "Canned queries Q1-Q6 (Fig. 2)", runE2},
		{"e3", "Demo user journey, five applicants (Fig. 3)", runE3},
		{"e4", "Future-model accuracy vs horizon (drift claim)", runE4},
		{"e5", "Candidate-search convergence (Sec. II-A claim)", runE5},
		{"e6", "Parallel generator speedup (Sec. II-B claim)", runE6},
		{"e7", "Diverse top-k vs greedy (Sec. II-B claim)", runE7},
		{"e8", "Scale: ingest and query latency (Sec. III)", runE8},
	}

	ran := false
	for _, e := range experiments {
		if *which != "all" && !strings.EqualFold(*which, e.id) {
			continue
		}
		ran = true
		fmt.Printf("\n================ %s: %s ================\n", strings.ToUpper(e.id), e.name)
		if err := e.run(*quick); err != nil {
			log.Fatalf("%s failed: %v", e.id, err)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
