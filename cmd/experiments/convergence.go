package main

import (
	"fmt"
	"sort"

	"justintime"
	"justintime/internal/candgen"
	"justintime/internal/drift"
	"justintime/internal/mlmodel"
)

// runE5 measures the candidate search's convergence behaviour over a batch
// of rejected applicants, for both model families, checking the paper's
// claim that "the algorithm converges after a small number of iterations".
func runE5(quick bool) error {
	n := 100
	if quick {
		n = 25
	}
	demo, err := demoSystem(quick, "last")
	if err != nil {
		return err
	}
	sys := demo.System
	history := demo.History

	// A logistic model over the same data, for the model-family contrast.
	logitModels, err := (drift.Last{Trainer: drift.LogisticTrainer(mlmodel.DefaultLogisticConfig())}).Generate(history, 0)
	if err != nil {
		return err
	}

	type family struct {
		name  string
		model justintime.TimedModel
	}
	families := []family{
		{"forest", sys.Models()[0]},
		{"logistic", logitModels[0]},
	}

	fmt.Printf("%-10s %-10s %-12s %-14s %-12s %-10s\n",
		"model", "solved", "iters p50", "iters p95", "evals p50", "converged")
	for _, fam := range families {
		profiles := rejectedFromData(demo, fam.model, n)
		var iters, evals []int
		converged, solved := 0, 0
		for i, profile := range profiles {
			cands, stats, err := candgen.Generate(candgen.Problem{
				Schema:    sys.Schema(),
				Model:     fam.model.Model,
				Threshold: fam.model.Threshold,
				Input:     profile,
			}, candgen.Config{K: 8, BeamWidth: 16, MaxIters: 30, Patience: 3, DiversityPenalty: 0.5, Seed: int64(i)})
			if err != nil {
				return err
			}
			iters = append(iters, stats.Iterations)
			evals = append(evals, stats.Evaluations)
			if stats.Converged {
				converged++
			}
			if len(cands) > 0 {
				solved++
			}
		}
		if len(profiles) == 0 {
			fmt.Printf("%-10s no rejected applicants found\n", fam.name)
			continue
		}
		fmt.Printf("%-10s %3d/%-6d %-12d %-14d %-12d %d%%\n",
			fam.name, solved, len(profiles),
			percentile(iters, 50), percentile(iters, 95), percentile(evals, 50),
			100*converged/len(profiles))
	}
	fmt.Println("expected shape: median iterations in single digits, >90% converge before the cap")
	return nil
}

func percentile(xs []int, p int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}
