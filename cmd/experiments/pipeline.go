package main

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"justintime"
	"justintime/internal/candgen"
)

// demoSystem builds the shared loan-demo system used by E1-E3.
func demoSystem(quick bool, method string) (*justintime.LoanDemo, error) {
	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Method = method
	if quick {
		cfg.Eras = 5
		cfg.RowsPerEra = 300
		cfg.T = 2
	}
	return justintime.NewLoanDemo(cfg)
}

// runE1 exercises the full Figure-1 architecture once and reports what each
// component produced.
func runE1(quick bool) error {
	start := time.Now()
	demo, err := demoSystem(quick, "ki")
	if err != nil {
		return err
	}
	sys := demo.System
	trainDur := time.Since(start)

	prefs := justintime.NewConstraintSet(justintime.MustParseConstraint("income <= old(income) * 1.4"))
	start = time.Now()
	sess, err := sys.NewSession(justintime.RejectedProfiles()[0], prefs)
	if err != nil {
		return err
	}
	genDur := time.Since(start)
	n, err := sess.CandidateCount()
	if err != nil {
		return err
	}

	fmt.Printf("models generator      : %d models (M_t, delta_t), trained in %v\n", len(sys.Models()), trainDur.Round(time.Millisecond))
	for t, m := range sys.Models() {
		fmt.Printf("  t=%d  model=%-12s delta=%.3f\n", t, m.Model.Name(), m.Threshold)
	}
	fmt.Printf("temporal update func  : %d temporal inputs x_0..x_%d\n", sys.Horizon()+1, sys.Horizon())
	fmt.Printf("candidates generators : %d independent generators, %v wall clock\n", sys.Horizon()+1, genDur.Round(time.Millisecond))
	fmt.Printf("database              : tables %v, %d candidate rows\n", sess.DB().TableNames(), n)
	res, err := sess.SQL("SELECT time, COUNT(*) AS n, MAX(p) AS best FROM candidates GROUP BY time ORDER BY time")
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

// runE2 answers the six Figure-2 questions on a fixed scenario and
// cross-checks each SQL answer against a direct Go computation over the
// candidates table.
func runE2(quick bool) error {
	demo, err := demoSystem(quick, "ki")
	if err != nil {
		return err
	}
	sess, err := demo.System.NewSession(justintime.RejectedProfiles()[0],
		justintime.NewConstraintSet(justintime.MustParseConstraint("income <= old(income) * 1.4")))
	if err != nil {
		return err
	}
	insights, err := sess.AskAll("income", 0.7)
	if err != nil {
		return err
	}
	for i, ins := range insights {
		fmt.Printf("Q%d [%s]\n  SQL   : %s\n  answer: %s\n", i+1, ins.Question.Kind, oneLine(ins.SQL), ins.Text)
	}

	// Cross-check Q1 and Q4 against direct computation.
	res, err := sess.SQL("SELECT time, diff FROM candidates")
	if err != nil {
		return err
	}
	minT := int64(-1)
	minDiff := -1.0
	for _, row := range res.Rows {
		t, _ := row[0].AsInt()
		d, _ := row[1].AsFloat()
		if d == 0 && (minT == -1 || t < minT) {
			minT = t
		}
		if minDiff < 0 || d < minDiff {
			minDiff = d
		}
	}
	fmt.Printf("cross-check: Go-side Q1 answer = %v, Q4 answer = %.2f (must match the SQL above)\n", minT, minDiff)
	return nil
}

// runE3 replays the demonstration's five rejected applicants through the
// three-screen journey.
func runE3(quick bool) error {
	demo, err := demoSystem(quick, "ki")
	if err != nil {
		return err
	}
	sys := demo.System
	prefsPerApplicant := [][]string{
		{"income <= old(income) * 1.2"}, // John cannot raise income much
		{"amount = old(amount)"},        // needs the full amount
		{"debt >= old(debt) * 0.5"},     // can halve debt at most
		{},                              // unconstrained
		{"income <= old(income) * 1.3", "gap <= 2"}, // small, focused plans
	}
	fmt.Printf("%-3s %-55s %-10s %s\n", "id", "profile", "candidates", "sample insight (minimal features set)")
	for i, profile := range justintime.RejectedProfiles() {
		prefs := justintime.NewConstraintSet()
		for _, src := range prefsPerApplicant[i] {
			prefs.Add(justintime.MustParseConstraint(src))
		}
		sess, err := sys.NewSession(profile, prefs)
		if err != nil {
			return err
		}
		n, err := sess.CandidateCount()
		if err != nil {
			return err
		}
		ins, err := sess.Ask(justintime.Question{Kind: justintime.QMinimalFeatures})
		if err != nil {
			return err
		}
		fmt.Printf("%-3d %-55s %-10d %s\n", i, sys.Schema().Format(profile), n, truncate(ins.Text, 90))
	}
	return nil
}

// runE6 measures the wall-clock speedup of running the T+1 independent
// candidate generators with increasing worker counts.
func runE6(quick bool) error {
	cfg := justintime.DefaultLoanDemoConfig()
	cfg.T = 7 // 8 generators
	if quick {
		cfg.Eras = 5
		cfg.RowsPerEra = 300
		cfg.T = 3
	}
	fmt.Printf("machine: %d CPU core(s), GOMAXPROCS=%d - speedup is bounded by this\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %-12s %s\n", "workers", "wall clock", "speedup")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		cfg.Workers = workers
		demo, err := justintime.NewLoanDemo(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := demo.System.NewSession(justintime.RejectedProfiles()[0], nil); err != nil {
			return err
		}
		dur := time.Since(start)
		if workers == 1 {
			base = dur
		}
		fmt.Printf("%-8d %-12v %.2fx\n", workers, dur.Round(time.Millisecond), float64(base)/float64(dur))
	}
	fmt.Println("expected shape: near-linear until workers reach the number of generators or cores")
	return nil
}

// runE7 compares diverse (MMR) and greedy top-k selection against a large-k
// reference on answer quality for the optimization questions (Q2/Q4/Q5).
func runE7(quick bool) error {
	demo, err := demoSystem(quick, "last")
	if err != nil {
		return err
	}
	sys := demo.System
	models := sys.Models()

	profiles := rejectedFromData(demo, models[0], 20)
	if quick {
		profiles = profiles[:8]
	}

	type agg struct {
		bestP, minDiff float64
		times          int
		minGap         float64
	}
	run := func(k int, lambda float64) (agg, error) {
		var a agg
		count := 0
		for _, profile := range profiles {
			cands, _, err := candgen.Generate(candgen.Problem{
				Schema:    sys.Schema(),
				Model:     models[0].Model,
				Threshold: models[0].Threshold,
				Input:     profile,
			}, candgen.Config{K: k, BeamWidth: 2 * k, MaxIters: 20, Patience: 3, DiversityPenalty: lambda, Seed: 3})
			if err != nil {
				return a, err
			}
			if len(cands) == 0 {
				continue
			}
			count++
			bestP, minDiff, minGap := 0.0, -1.0, -1.0
			for _, c := range cands {
				if c.Confidence > bestP {
					bestP = c.Confidence
				}
				if minDiff < 0 || c.Diff < minDiff {
					minDiff = c.Diff
				}
				if minGap < 0 || float64(c.Gap) < minGap {
					minGap = float64(c.Gap)
				}
			}
			a.bestP += bestP
			a.minDiff += minDiff
			a.minGap += minGap
		}
		if count > 0 {
			a.bestP /= float64(count)
			a.minDiff /= float64(count)
			a.minGap /= float64(count)
		}
		return a, nil
	}

	ref, err := run(40, 0.5)
	if err != nil {
		return err
	}
	diverse, err := run(6, 0.5)
	if err != nil {
		return err
	}
	greedy, err := run(6, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-12s %-14s %-10s\n", "selection", "avg best p", "avg min diff", "avg min gap")
	fmt.Printf("%-16s %-12.3f %-14.1f %-10.2f\n", "reference k=40", ref.bestP, ref.minDiff, ref.minGap)
	fmt.Printf("%-16s %-12.3f %-14.1f %-10.2f\n", "diverse k=6", diverse.bestP, diverse.minDiff, diverse.minGap)
	fmt.Printf("%-16s %-12.3f %-14.1f %-10.2f\n", "greedy k=6", greedy.bestP, greedy.minDiff, greedy.minGap)
	fmt.Println("expected shape: diverse k=6 stays close to the k=40 reference on every metric")
	return nil
}

// rejectedFromData samples applicant profiles from the last era that the
// present model rejects.
func rejectedFromData(demo *justintime.LoanDemo, m justintime.TimedModel, n int) [][]float64 {
	var out [][]float64
	last := demo.Dataset.Era(demo.Dataset.Eras() - 1)
	for _, ex := range last {
		if len(out) >= n {
			break
		}
		if m.Model.Predict(ex.X) <= m.Threshold {
			out = append(out, ex.X)
		}
	}
	return out
}

func oneLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
