package justintime

import (
	"strings"
	"sync"
	"testing"
)

var (
	demoOnce sync.Once
	demoVal  *LoanDemo
	demoErr  error
)

// sharedDemo trains one small demo system for all facade tests.
func sharedDemo(t *testing.T) *LoanDemo {
	t.Helper()
	demoOnce.Do(func() {
		cfg := DefaultLoanDemoConfig()
		cfg.Eras = 5
		cfg.RowsPerEra = 400
		cfg.T = 2
		demoVal, demoErr = NewLoanDemo(cfg)
	})
	if demoErr != nil {
		t.Fatal(demoErr)
	}
	return demoVal
}

func TestNewLoanDemoValidation(t *testing.T) {
	cfg := DefaultLoanDemoConfig()
	cfg.Eras = 0
	if _, err := NewLoanDemo(cfg); err == nil {
		t.Error("zero eras should fail")
	}
	cfg = DefaultLoanDemoConfig()
	cfg.Method = "nosuch"
	if _, err := NewLoanDemo(cfg); err == nil {
		t.Error("unknown method should fail")
	}
	cfg = DefaultLoanDemoConfig()
	cfg.DomainConstraints = []string{"income >"}
	if _, err := NewLoanDemo(cfg); err == nil {
		t.Error("bad domain constraint should fail")
	}
}

func TestGeneratorByName(t *testing.T) {
	for _, name := range []string{"edd", "ki", "last", "pooled"} {
		g, err := GeneratorByName(name, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.Name() != name {
			t.Errorf("GeneratorByName(%s).Name() = %s", name, g.Name())
		}
	}
	if _, err := GeneratorByName("bogus", 1); err == nil {
		t.Error("bogus generator should fail")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	demo := sharedDemo(t)
	sys := demo.System
	if len(sys.Models()) != 3 {
		t.Fatalf("models = %d", len(sys.Models()))
	}
	prefs := NewConstraintSet(MustParseConstraint("income <= old(income) * 1.4"))
	sess, err := sys.NewSession(RejectedProfiles()[0], prefs)
	if err != nil {
		t.Fatal(err)
	}
	insights, err := sess.AskAll("income", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(insights) != 6 {
		t.Fatalf("insights = %d", len(insights))
	}
	for _, ins := range insights {
		if ins.Text == "" {
			t.Errorf("empty insight text for %s", ins.Question.Kind)
		}
	}
	// Expert SQL through the facade.
	res, err := sess.SQL("SELECT COUNT(*) FROM candidates")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("bad expert result")
	}
}

func TestDomainConstraintEnforced(t *testing.T) {
	demo := sharedDemo(t)
	// The default domain constraint caps amount at 80% of income; every
	// stored candidate must respect it.
	sess, err := demo.System.NewSession(RejectedProfiles()[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.SQL("SELECT COUNT(*) FROM candidates WHERE amount > income * 0.8")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("%d candidates violate the domain constraint", n)
	}
}

func TestHistoryFromDataset(t *testing.T) {
	demo := sharedDemo(t)
	hist := HistoryFromDataset(demo.Dataset)
	if len(hist) != 5 {
		t.Fatalf("history eras = %d", len(hist))
	}
	for e, era := range hist {
		if err := era.Validate(); err != nil {
			t.Errorf("era %d: %v", e, err)
		}
	}
}

func TestRejectedProfilesMatchSchema(t *testing.T) {
	schema := LoanSchema()
	for i, p := range RejectedProfiles() {
		if err := schema.Validate(p); err != nil {
			t.Errorf("profile %d: %v", i, err)
		}
	}
}

func TestQuestionsCatalog(t *testing.T) {
	qs := Questions("income", 0.7)
	if len(qs) != 6 {
		t.Fatalf("questions = %d", len(qs))
	}
	if qs[2].Feature != "income" || qs[5].Alpha != 0.7 {
		t.Error("parameterization lost")
	}
}

func TestParseConstraintFacade(t *testing.T) {
	c, err := ParseConstraint("income <= 100000 AND gap <= 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "income") {
		t.Error("constraint lost its source")
	}
	if _, err := ParseConstraint("income >"); err == nil {
		t.Error("bad constraint should fail")
	}
}

func TestOracleGeneratorFacade(t *testing.T) {
	demo := sharedDemo(t)
	g := OracleGenerator(1, 5, 200)
	models, err := g.Generate(demo.History, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("oracle models = %d", len(models))
	}
}
