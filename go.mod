module justintime

go 1.22
