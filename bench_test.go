// Benchmarks regenerating the performance-shaped experiments of DESIGN.md
// (one benchmark per experiment artifact; see EXPERIMENTS.md for recorded
// results and cmd/experiments for the table-printing harness).
package justintime

import (
	"fmt"
	"sync"
	"testing"

	"justintime/internal/candgen"
	"justintime/internal/dataset"
	"justintime/internal/drift"
	"justintime/internal/mlmodel"
	"justintime/internal/sqldb"
)

// benchEnv lazily builds the shared system + session used by the query and
// pipeline benchmarks, so `go test -bench=Q1` does not pay for unrelated
// setup more than once.
type benchEnv struct {
	once sync.Once
	demo *LoanDemo
	sess *Session
	err  error
}

var env benchEnv

func (e *benchEnv) get(b *testing.B) (*LoanDemo, *Session) {
	b.Helper()
	e.once.Do(func() {
		cfg := DefaultLoanDemoConfig()
		cfg.Eras = 6
		cfg.RowsPerEra = 500
		cfg.T = 3
		e.demo, e.err = NewLoanDemo(cfg)
		if e.err != nil {
			return
		}
		prefs := NewConstraintSet(MustParseConstraint("income <= old(income) * 1.4"))
		e.sess, e.err = e.demo.System.NewSession(RejectedProfiles()[0], prefs)
	})
	if e.err != nil {
		b.Fatal(e.err)
	}
	return e.demo, e.sess
}

// --- E1 (Fig. 1): end-to-end candidate generation pipeline per applicant.

func BenchmarkEndToEndPipeline(b *testing.B) {
	demo, _ := env.get(b)
	profiles := RejectedProfiles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := demo.System.NewSession(profiles[i%len(profiles)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2 (Fig. 2): the six canned queries.

func benchQuestion(b *testing.B, q Question) {
	_, sess := env.get(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Ask(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryQ1NoModification(b *testing.B) {
	benchQuestion(b, Question{Kind: QNoModification})
}

func BenchmarkQueryQ2MinimalFeatures(b *testing.B) {
	benchQuestion(b, Question{Kind: QMinimalFeatures})
}

func BenchmarkQueryQ3DominantFeature(b *testing.B) {
	benchQuestion(b, Question{Kind: QDominantFeature, Feature: "income"})
}

func BenchmarkQueryQ4MinimalOverall(b *testing.B) {
	benchQuestion(b, Question{Kind: QMinimalOverall})
}

func BenchmarkQueryQ5MaximalConfidence(b *testing.B) {
	benchQuestion(b, Question{Kind: QMaximalConfidence})
}

func BenchmarkQueryQ6TurningPoint(b *testing.B) {
	benchQuestion(b, Question{Kind: QTurningPoint, Alpha: 0.7})
}

// --- E3 (Fig. 3): the full three-screen user journey.

func BenchmarkDemoJourney(b *testing.B) {
	demo, _ := env.get(b)
	prefs := NewConstraintSet(MustParseConstraint("income <= old(income) * 1.3"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := demo.System.NewSession(RejectedProfiles()[i%5], prefs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.AskAll("income", 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: future-model generation per method.

func BenchmarkFutureModels(b *testing.B) {
	demo, _ := env.get(b)
	history := demo.History
	forest := drift.ForestTrainer(mlmodel.ForestConfig{Trees: 15, MaxDepth: 7, MinLeaf: 3, Seed: 1})
	methods := []drift.Generator{
		drift.Last{Trainer: forest},
		drift.Pooled{Trainer: forest},
		drift.KI{Degree: 1},
		drift.EDD{Trainer: forest, Seed: 1, MaxPerEra: 150},
	}
	for _, g := range methods {
		b.Run(g.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.Generate(history, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: candidate search per model family.

func BenchmarkCandidateGeneration(b *testing.B) {
	demo, _ := env.get(b)
	sys := demo.System
	forestModel := sys.Models()[0]
	logitModels, err := (drift.Last{Trainer: drift.LogisticTrainer(mlmodel.DefaultLogisticConfig())}).Generate(demo.History, 0)
	if err != nil {
		b.Fatal(err)
	}
	families := map[string]TimedModel{
		"forest":   forestModel,
		"logistic": logitModels[0],
	}
	for name, tm := range families {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := candgen.Generate(candgen.Problem{
					Schema:    sys.Schema(),
					Model:     tm.Model,
					Threshold: tm.Threshold,
					Input:     RejectedProfiles()[i%5],
				}, candgen.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: generator parallelism (speedup is core-bound; see EXPERIMENTS.md).

func BenchmarkParallelGenerators(b *testing.B) {
	demo, _ := env.get(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := demo.System.Config()
			cfg.Workers = workers
			sys, err := NewSystem(cfg, demo.History)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.NewSession(RejectedProfiles()[0], nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: diverse vs greedy top-k selection.

func BenchmarkDiverseTopK(b *testing.B) {
	demo, _ := env.get(b)
	sys := demo.System
	tm := sys.Models()[0]
	for name, lambda := range map[string]float64{"greedy": 0, "diverse": 0.5} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := candgen.Generate(candgen.Problem{
					Schema:    sys.Schema(),
					Model:     tm.Model,
					Threshold: tm.Threshold,
					Input:     RejectedProfiles()[i%5],
				}, candgen.Config{K: 6, BeamWidth: 12, MaxIters: 20, Patience: 3, DiversityPenalty: lambda})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: database substrate scale.

func BenchmarkIngest(b *testing.B) {
	rows := make([][]sqldb.Value, 10000)
	for i := range rows {
		rows[i] = []sqldb.Value{
			sqldb.Int(int64(i % 12)), sqldb.Float(float64(i)), sqldb.Float(float64(i) * 2),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := sqldb.New()
		db.MustExec("CREATE TABLE t (era INT, income FLOAT, amount FLOAT)")
		if err := db.InsertRows("t", rows); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkQueryScale(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := scaleDB(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query("SELECT time, COUNT(*), MAX(p) FROM candidates GROUP BY time"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func scaleDB(n int) *sqldb.DB {
	db := sqldb.New()
	db.MustExec("CREATE TABLE candidates (time INT, diff FLOAT, gap INT, p FLOAT)")
	rows := make([][]sqldb.Value, n)
	for i := range rows {
		rows[i] = []sqldb.Value{
			sqldb.Int(int64(i % 8)),
			sqldb.Float(float64(i%977) * 13.7),
			sqldb.Int(int64(i % 4)),
			sqldb.Float(float64(i%100) / 100),
		}
	}
	if err := db.InsertRows("candidates", rows); err != nil {
		panic(err)
	}
	return db
}

// --- dataset-scale sanity: generating the Lending-Club-sized history.

func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(dataset.Config{
			Seed: int64(i), Eras: 12, RowsPerEra: 2000, LabelNoise: 0.04, DriftScale: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
