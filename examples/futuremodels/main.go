// Futuremodels studies the Models Generator in isolation: it trains every
// future-model method (EDD, KI, Last, Pooled and the Oracle upper bound) on
// the first eras of the drifting loan history and scores each method's
// horizon-t model on the era that actually materializes t years later.
//
// This is a runnable miniature of experiment E4 (see EXPERIMENTS.md).
//
// Run with: go run ./examples/futuremodels
package main

import (
	"fmt"
	"log"

	"justintime"
	"justintime/internal/dataset"
	"justintime/internal/drift"
	"justintime/internal/mlmodel"
)

func main() {
	const (
		trainEras = 8
		horizon   = 3
		rows      = 800
	)
	full, err := dataset.Generate(dataset.Config{
		Seed: 21, Eras: trainEras + horizon, RowsPerEra: rows, LabelNoise: 0.04, DriftScale: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	history := justintime.HistoryFromDataset(full)[:trainEras]
	evalData, err := dataset.Generate(dataset.Config{
		Seed: 99, Eras: trainEras + horizon, RowsPerEra: rows, LabelNoise: 0, DriftScale: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	forest := drift.ForestTrainer(mlmodel.ForestConfig{Trees: 25, MaxDepth: 8, MinLeaf: 3, Seed: 2})
	oracle := drift.Oracle{Trainer: forest, Future: func(t int) (drift.Era, error) {
		hist := justintime.HistoryFromDataset(full)
		return hist[trainEras-1+t], nil
	}}
	generators := []drift.Generator{
		drift.Last{Trainer: forest},
		drift.Pooled{Trainer: forest},
		drift.KI{Degree: 1},
		drift.EDD{Trainer: forest, Seed: 2, MaxPerEra: 200},
		oracle,
	}

	fmt.Printf("accuracy of the predicted model M_t on the ACTUAL future era, per method:\n\n")
	fmt.Printf("%-8s", "method")
	for t := 1; t <= horizon; t++ {
		fmt.Printf("  t+%d  ", t)
	}
	fmt.Println()
	for _, g := range generators {
		models, err := g.Generate(history, horizon)
		if err != nil {
			log.Fatalf("%s: %v", g.Name(), err)
		}
		fmt.Printf("%-8s", g.Name())
		for t := 1; t <= horizon; t++ {
			era := evalData.Era(trainEras - 1 + t)
			X := make([][]float64, len(era))
			y := make([]bool, len(era))
			for i, ex := range era {
				X[i], y[i] = ex.X, ex.Label
			}
			fmt.Printf(" %.3f ", mlmodel.Accuracy(models[t].Model, X, y, models[t].Threshold))
		}
		fmt.Println()
	}
	fmt.Println("\nreading: 'last' decays with the horizon because the rule keeps drifting;")
	fmt.Println("'ki' extrapolates the parameter trajectories and tracks it; 'oracle' is the ceiling.")
}
