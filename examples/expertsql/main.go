// Expertsql demonstrates the expert path of the paper: composing free-form
// SQL directly against the session's candidates database, including the six
// Figure-2 queries verbatim and a few richer analytical queries the canned
// interface cannot express.
//
// Run with: go run ./examples/expertsql
package main

import (
	"fmt"
	"log"

	"justintime"
)

func main() {
	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Eras = 6
	cfg.RowsPerEra = 600
	cfg.T = 3

	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := demo.System.NewSession(justintime.RejectedProfiles()[2], nil)
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		title string
		sql   string
	}{
		{"Fig.2 Q1 - no modification", `SELECT Min(time) FROM candidates WHERE diff = 0`},
		{"Fig.2 Q2 - minimal features set", `SELECT * FROM candidates ORDER BY gap LIMIT 1`},
		{"Fig.2 Q3 - dominant feature (income)", `SELECT distinct time as t
FROM candidates
WHERE EXISTS
(SELECT *
 FROM candidates as cnd
 INNER JOIN temporal_inputs as ti
 ON ti.time = cnd.time
 WHERE cnd.time = t
 AND ((gap = 0) OR (gap = 1 AND cnd.income != ti.income)))`},
		{"Fig.2 Q4 - minimal overall modification", `SELECT Min(diff) FROM candidates`},
		{"Fig.2 Q5 - maximal confidence", `SELECT * FROM candidates ORDER BY p DESC LIMIT 1`},
		{"Fig.2 Q6 - turning point (alpha = 0.7)", `SELECT Min(time) FROM candidates WHERE p > 0.7 AND time > ALL
(SELECT ti.time FROM temporal_inputs ti WHERE NOT EXISTS
 (SELECT * FROM candidates c WHERE c.time = ti.time AND c.p > 0.7))`},
		{"expert: cheapest strong candidate per time point", `SELECT time, MIN(diff) AS cheapest
FROM candidates WHERE p > 0.6 GROUP BY time ORDER BY time`},
		{"expert: how much income do plans add, on average?", `SELECT AVG(c.income - ti.income) AS avg_income_increase
FROM candidates c INNER JOIN temporal_inputs ti ON ti.time = c.time
WHERE c.income != ti.income`},
		{"expert: plan mix by number of touched features", `SELECT gap, COUNT(*) AS plans, AVG(p) AS avg_conf
FROM candidates GROUP BY gap ORDER BY gap`},
		{"expert: does waiting help? best confidence by time", `SELECT time, MAX(p) AS best FROM candidates GROUP BY time ORDER BY time`},
	}

	for _, q := range queries {
		fmt.Printf("\n-- %s\n%s\n", q.title, q.sql)
		res, err := sess.SQL(q.sql)
		if err != nil {
			log.Fatalf("query failed: %v", err)
		}
		fmt.Print(res.Format())
	}
}
