// Quickstart: build the loan-demo system, replay John (the rejected
// applicant of the paper's Example I.1), state one personal constraint, and
// ask all six canned questions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"justintime"
)

func main() {
	// A small configuration so the quickstart runs in seconds.
	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Eras = 6
	cfg.RowsPerEra = 600
	cfg.T = 3

	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys := demo.System

	// John: 29 years old, $48k income, $1.9k monthly debt, asking $30k.
	john := justintime.RejectedProfiles()[0]
	fmt.Println("profile:", sys.Schema().Format(john))

	// John cannot raise his income by more than 30%, and he prefers plans
	// touching at most two features.
	prefs := justintime.NewConstraintSet(
		justintime.MustParseConstraint("income <= old(income) * 1.3"),
		justintime.MustParseConstraint("gap <= 2"),
	)

	sess, err := sys.NewSession(john, prefs)
	if err != nil {
		log.Fatal(err)
	}

	insights, err := sess.AskAll("income", 0.7)
	if err != nil {
		log.Fatal(err)
	}
	for _, ins := range insights {
		fmt.Printf("\n[%s]\n%s\n", ins.Question.Kind, ins.Text)
	}
}
