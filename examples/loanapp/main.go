// Loanapp reenacts the paper's demonstration (Section III): five real-life
// style loan applications that were denied, each with its own preferences
// and limitations, walked through the three demo screens - Personal
// Preferences, Queries, and Plans & Insights - plus the behind-the-scenes
// inspection of temporal inputs and generated candidates.
//
// Run with: go run ./examples/loanapp
package main

import (
	"fmt"
	"log"

	"justintime"
)

// applicant pairs a rejected profile with their stated preferences.
type applicant struct {
	name        string
	constraints []string
	dominant    string  // feature for the dominant-feature question
	alpha       float64 // confidence bar for the turning-point question
}

func main() {
	cfg := justintime.DefaultLoanDemoConfig()
	cfg.Eras = 8
	cfg.RowsPerEra = 800
	cfg.T = 3

	fmt.Println("training the model sequence (this is the admin's one-time setup) ...")
	demo, err := justintime.NewLoanDemo(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys := demo.System

	applicants := []applicant{
		{
			name: "John (29, high debt, Example I.1)",
			constraints: []string{
				"income <= old(income) * 1.2", // modest raises only
			},
			dominant: "debt",
			alpha:    0.7,
		},
		{
			name:        "Dana (27, thin file, big ask)",
			constraints: []string{"amount = old(amount)"}, // needs the full amount
			dominant:    "income",
			alpha:       0.6,
		},
		{
			name:        "Omar (41, heavy debt load)",
			constraints: []string{"debt >= old(debt) * 0.5", "gap <= 2"},
			dominant:    "debt",
			alpha:       0.7,
		},
		{
			name:        "Ruth (38, modest ask, patient)",
			constraints: nil, // open to anything
			dominant:    "amount",
			alpha:       0.8,
		},
		{
			name:        "Lev (33, large household, short tenure)",
			constraints: []string{"income <= old(income) * 1.3"},
			dominant:    "income",
			alpha:       0.7,
		},
	}

	profiles := justintime.RejectedProfiles()
	for i, a := range applicants {
		fmt.Printf("\n======== applicant %d: %s ========\n", i, a.name)
		fmt.Println("profile      :", sys.Schema().Format(profiles[i]))

		// Screen 1: Personal Preferences.
		prefs := justintime.NewConstraintSet()
		for _, src := range a.constraints {
			prefs.Add(justintime.MustParseConstraint(src))
		}
		if len(a.constraints) > 0 {
			fmt.Println("preferences  :", prefs)
		} else {
			fmt.Println("preferences  : (none)")
		}

		sess, err := sys.NewSession(profiles[i], prefs)
		if err != nil {
			log.Fatal(err)
		}
		n, err := sess.CandidateCount()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("candidates   : %d stored across %d time points\n", n, sys.Horizon()+1)

		// Screen 2+3: Queries and Insights.
		insights, err := sess.AskAll(a.dominant, a.alpha)
		if err != nil {
			log.Fatal(err)
		}
		for _, ins := range insights {
			fmt.Printf("  [%s]\n    %s\n", ins.Question.Kind, ins.Text)
		}

		// Behind the scenes, for the first applicant only.
		if i == 0 {
			fmt.Println("\n-- behind the scenes: temporal inputs --")
			res, err := sess.SQL("SELECT * FROM temporal_inputs ORDER BY time")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Format())
			fmt.Println("\n-- behind the scenes: candidates per time point --")
			res, err = sess.SQL("SELECT time, COUNT(*) AS n, MIN(diff) AS closest, MAX(p) AS best FROM candidates GROUP BY time ORDER BY time")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Format())
		}
	}
}
