// Hiring demonstrates JustInTime on the paper's *other* motivating scenario
// — automated resume filtering — with a custom schema, custom temporal
// rules, and a synthetic drifting screening rule. It shows that nothing in
// the library is specific to the loan domain: define a schema, provide
// timestamped labeled history, register temporal rules, and the whole
// pipeline (future models, constraints, candidates, SQL, insights) works.
//
// Run with: go run ./examples/hiring
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"justintime"
	"justintime/internal/candgen"
	"justintime/internal/drift"
	"justintime/internal/feature"
	"justintime/internal/temporal"
)

// Feature indices for the resume schema.
const (
	fExperience   = iota // years of experience    (temporal: grows)
	fSkills              // matched skills          (user can learn)
	fCerts               // certifications          (user can obtain)
	fPublications        // publications            (slow to change)
	fSalaryAsk           // salary expectation, k$  (user can lower)
)

func resumeSchema() *feature.Schema {
	return feature.MustSchema(
		feature.Field{Name: "experience", Kind: feature.Integer, Min: 0, Max: 40, Temporal: true, Immutable: true, Unit: "y"},
		feature.Field{Name: "skills", Kind: feature.Integer, Min: 0, Max: 20},
		feature.Field{Name: "certs", Kind: feature.Integer, Min: 0, Max: 10},
		feature.Field{Name: "publications", Kind: feature.Integer, Min: 0, Max: 50},
		feature.Field{Name: "salary_ask", Kind: feature.Continuous, Min: 30, Max: 300, Unit: "k$"},
	)
}

// screenScore is the latent screening rule at era s. Over time the market
// values certifications more and tolerates higher salary asks (inflation),
// while the experience bar rises.
func screenScore(x []float64, s int) float64 {
	exp := x[fExperience] / 10
	skills := x[fSkills] / 10
	certs := x[fCerts] / 5
	pubs := math.Min(x[fPublications], 10) / 10
	salary := x[fSalaryAsk] / (100 * math.Pow(1.04, float64(s)))
	return -1.1 + (0.9-0.03*float64(s))*exp + 1.1*skills + (0.5+0.06*float64(s))*certs + 0.4*pubs - 0.8*salary
}

// history samples eras of labeled screening decisions.
func history(eras, rows int, seed int64) []justintime.Era {
	rng := rand.New(rand.NewSource(seed))
	schema := resumeSchema()
	out := make([]justintime.Era, eras)
	for s := 0; s < eras; s++ {
		for i := 0; i < rows; i++ {
			x := schema.Clamp([]float64{
				math.Abs(rng.NormFloat64()) * 8,
				float64(rng.Intn(18)),
				float64(rng.Intn(8)),
				float64(rng.Intn(20)),
				60 + rng.Float64()*120*math.Pow(1.03, float64(s)),
			})
			label := screenScore(x, s)+rng.NormFloat64()*0.15 > 0
			out[s].X = append(out[s].X, x)
			out[s].Y = append(out[s].Y, label)
		}
	}
	return out
}

func main() {
	schema := resumeSchema()

	// Temporal rules: experience grows a year per year; a motivated
	// candidate completes about one certification per year (capped).
	updater, err := temporal.NewUpdater(schema, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := updater.SetRule("certs", temporal.CappedLinearRule(fCerts, 1, 10)); err != nil {
		log.Fatal(err)
	}

	// Employer-side (domain) constraint: the screen never considers asks
	// above $250k.
	domain := justintime.NewConstraintSet(justintime.MustParseConstraint("salary_ask <= 250"))

	sys, err := justintime.NewSystem(justintime.Config{
		Schema:     schema,
		T:          3,
		DeltaYears: 1,
		Generator:  drift.KI{Degree: 1},
		Updater:    updater,
		Domain:     domain,
		CandGen:    candgen.DefaultConfig(),
		BaseYear:   2019,
	}, history(8, 900, 7))
	if err != nil {
		log.Fatal(err)
	}

	// A rejected applicant: 4 years of experience, decent skills, no
	// certifications, high salary ask.
	applicant := []float64{4, 9, 0, 2, 150}
	m0 := sys.Models()[0]
	fmt.Println("applicant:", schema.Format(applicant))
	fmt.Printf("screen   : score %.3f vs threshold %.3f -> rejected\n\n",
		m0.Model.Predict(applicant), m0.Threshold)
	if m0.Model.Predict(applicant) > m0.Threshold {
		log.Fatal("expected the applicant to be screened out; tune the example")
	}

	// The applicant will not lower the ask below $120k and cannot learn
	// more than 4 new skills.
	prefs := justintime.NewConstraintSet(
		justintime.MustParseConstraint("salary_ask >= 120"),
		justintime.MustParseConstraint("skills <= old(skills) + 4"),
	)
	sess, err := sys.NewSession(applicant, prefs)
	if err != nil {
		log.Fatal(err)
	}
	n, err := sess.CandidateCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d pass-the-screen candidates\n\n", n)

	insights, err := sess.AskAll("certs", 0.7)
	if err != nil {
		log.Fatal(err)
	}
	for _, ins := range insights {
		fmt.Printf("[%s]\n  %s\n", ins.Question.Kind, ins.Text)
	}

	fmt.Println("\nstructured plan (best per time point):")
	plan, err := sess.Plan()
	if err != nil {
		log.Fatal(err)
	}
	for _, step := range plan {
		fmt.Println(" ", step)
	}

	// Expert query: how does the needed salary concession shrink as
	// certifications accumulate over time?
	fmt.Println("\nexpert SQL - lowest feasible ask per time point:")
	res, err := sess.SQL(`SELECT time, MIN(salary_ask) AS lowest_ask, MAX(p) AS best
		FROM candidates GROUP BY time ORDER BY time`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
}
