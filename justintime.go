// Package justintime is a Go implementation of JustInTime, the system of
// "Just in Time: Personal Temporal Insights for Altering Model Decisions"
// (Boer, Deutch, Frost, Milo — ICDE 2019): given a machine-learning
// classifier whose models and data evolve over time, it tells a rejected
// applicant which features to modify, how to modify them, and when to
// reapply, so that the (future) model's decision flips.
//
// The pipeline (paper Figure 1):
//
//  1. An administrator configures the number of future time points T, the
//     interval Delta between them, and global domain constraints.
//  2. The Models Generator trains a sequence of models (M_t, delta_t) for
//     t = 0..T from timestamped labeled history, using a drift-aware
//     future-model generator (kernel mean-embedding extrapolation a la
//     Lampert CVPR'15, or parameter-trajectory extrapolation a la
//     Kumagai & Iwata AAAI'16) or a drift-oblivious baseline.
//  3. Per user session, a Temporal Update Function advances the profile to
//     x_0..x_T, and T+1 independent candidate generators search for diverse
//     top-k decision-altering candidates under the user's constraints.
//  4. The candidates land in a relational database (tables temporal_inputs
//     and candidates) queried through six canned questions (paper Figure 2)
//     or free SQL.
//
// Quickstart (the module path is "justintime"; import subpackages as
// justintime/internal/... only from within this module):
//
//	demo, err := justintime.NewLoanDemo(justintime.DefaultLoanDemoConfig())
//	...
//	prefs := justintime.NewConstraintSet(justintime.MustParseConstraint("income <= old(income) * 1.3"))
//	sess, err := demo.System.NewSession(justintime.RejectedProfiles()[0], prefs)
//	insights, err := sess.AskAll("income", 0.7)
//
// Every subsystem is implemented in this repository on the standard library
// alone: CART/random-forest/logistic models (internal/mlmodel), kernel
// methods (internal/kernel), future-model generation (internal/drift), an
// in-memory SQL engine standing in for MySQL (internal/sqldb), the
// constraint language (internal/constraints), temporal update rules
// (internal/temporal), and the beam-search candidate generator
// (internal/candgen).
//
// # Batch prediction
//
// Models implementing mlmodel.BatchModel expose PredictBatch(X) alongside
// per-row Predict; mlmodel.PredictBatch(m, X) dispatches to the native batch
// path when present and falls back to per-row calls otherwise. Trees keep
// their nodes in a flat structure-of-arrays layout so forest batch scoring
// streams rows through contiguous arrays (trees-outer, rows-inner, sharded
// across the forest's configured workers on large batches), and logistic
// batch scoring reuses one standardization buffer for the whole batch.
// Batch results are bit-identical to per-row Predict. The candidate
// generator scores each beam iteration's full move set — and the pool
// shrinking phase's bisection rounds — with single batch calls, and the
// evaluation metrics (accuracy, AUC, log-loss, threshold calibration) score
// their datasets the same way.
//
// # Query engine: prepared statements, indexes, concurrency
//
// internal/sqldb is a small query engine, not just an interpreter. SQL
// compiles once via sqldb.Prepare into a Stmt whose `?` placeholders bind
// positionally at execution; a Stmt is database-independent, so core.System
// caches each canned question and the plan query compiled once per process
// and runs them against every session's database. Session databases load
// through typed catalog registration (DB.CreateTable / DB.InsertRows — no
// SQL text is built or parsed per session) and carry secondary indexes
// (DB.CreateIndex or CREATE INDEX ... ON t (col)); candidates(time) and
// temporal_inputs(time) are indexed automatically. Indexes answer equality
// conjuncts from a hash table and range / BETWEEN conjuncts from sorted
// keys; the executor pushes sargable WHERE conjuncts — including correlated
// ones, evaluated against the enclosing row — down to the index of the
// first FROM table and keeps the full WHERE as a residual filter, so
// results (and type errors) are identical to the scan path. Indexes rebuild
// lazily after mutations under an internal latch.
//
// The concurrency contract: sqldb.DB serializes writers behind an RWMutex
// while any number of readers query concurrently, which is how many
// requests share one applicant session. Session creation is context-aware —
// System.NewSessionContext threads its ctx into every candidate generator
// (candgen.GenerateContext), and the beam search checks cancellation each
// iteration, so a disconnected client's workers exit instead of burning
// CPU. internal/server holds sessions under crypto/rand capability IDs
// with an idle TTL and an LRU-evicting cap, bounds the expert SQL endpoint
// to row-capped SELECTs, and cmd/jitd drains in-flight requests on
// SIGINT/SIGTERM.
//
// # Benchmarks
//
// The experiment-shaped benchmarks live in bench_test.go; run them with
//
//	go test -run '^$' -bench . -benchtime=2s .
//
// BenchmarkCandidateGeneration isolates the beam search per model family and
// BenchmarkEndToEndPipeline measures a whole applicant session; per-package
// micro-benchmarks live next to their subsystems (e.g. internal/sqldb).
package justintime

import (
	"fmt"

	"justintime/internal/candgen"
	"justintime/internal/constraints"
	"justintime/internal/core"
	"justintime/internal/dataset"
	"justintime/internal/drift"
	"justintime/internal/feature"
	"justintime/internal/mlmodel"
	"justintime/internal/sqldb"
	"justintime/internal/temporal"
)

// Re-exported core types: the facade keeps examples and downstream users on
// a single import.
type (
	// Config is the administrator-level system configuration.
	Config = core.Config
	// System is a configured JustInTime instance.
	System = core.System
	// Session is one applicant's generated-candidates session.
	Session = core.Session
	// Question is a canned question instance.
	Question = core.Question
	// QuestionKind enumerates the canned questions.
	QuestionKind = core.QuestionKind
	// Insight is a canned question's answer.
	Insight = core.Insight
	// PlanStep is the structured best candidate at one time point.
	PlanStep = core.PlanStep
	// FieldChange is one attribute modification in a plan step.
	FieldChange = core.FieldChange

	// Era is one time slice of labeled training data.
	Era = drift.Era
	// TimedModel is the (M_t, delta_t) pair.
	TimedModel = drift.TimedModel
	// Generator predicts future models from timestamped history.
	Generator = drift.Generator

	// Schema describes the feature space.
	Schema = feature.Schema
	// Field describes one feature.
	Field = feature.Field

	// Constraint is a parsed constraint expression.
	Constraint = constraints.Constraint
	// ConstraintSet is a conjunction of timed constraints.
	ConstraintSet = constraints.Set

	// Candidate is one decision-altering candidate.
	Candidate = candgen.Candidate
	// CandGenConfig tunes the candidate search.
	CandGenConfig = candgen.Config

	// Result is a SQL query result.
	Result = sqldb.Result
	// Updater is a temporal update function.
	Updater = temporal.Updater
)

// Canned question kinds (paper Figure 2 / introduction).
const (
	QNoModification    = core.QNoModification
	QMinimalFeatures   = core.QMinimalFeatures
	QDominantFeature   = core.QDominantFeature
	QMinimalOverall    = core.QMinimalOverall
	QMaximalConfidence = core.QMaximalConfidence
	QTurningPoint      = core.QTurningPoint
)

// NewSystem builds a System: it validates cfg and trains the model sequence
// from the timestamped history.
func NewSystem(cfg Config, history []Era) (*System, error) {
	return core.NewSystem(cfg, history)
}

// Questions lists one instance of every canned question.
func Questions(dominantFeature string, alpha float64) []Question {
	return core.Questions(dominantFeature, alpha)
}

// ParseConstraint compiles a constraint expression such as
// "income <= old(income) * 1.3 AND gap <= 2".
func ParseConstraint(src string) (*Constraint, error) { return constraints.Parse(src) }

// MustParseConstraint is ParseConstraint that panics on error.
func MustParseConstraint(src string) *Constraint { return constraints.MustParse(src) }

// NewConstraintSet bundles always-applicable constraints.
func NewConstraintSet(cs ...*Constraint) *ConstraintSet { return constraints.NewSet(cs...) }

// LoanSchema returns the six-feature loan-application schema of the paper's
// running example.
func LoanSchema() *Schema { return dataset.LoanSchema() }

// RejectedProfiles returns the five canonical rejected applicants of the
// demonstration reenactment; index 0 is "John" from the paper's Example I.1.
func RejectedProfiles() [][]float64 { return dataset.RejectedProfiles() }

// GeneratorByName constructs a future-model generator: "edd" (kernel
// mean-embedding extrapolation), "ki" (parameter trajectories), "last"
// (train on the newest era only) or "pooled" (train on all history).
func GeneratorByName(name string, seed int64) (Generator, error) {
	forest := drift.ForestTrainer(mlmodel.ForestConfig{Trees: 30, MaxDepth: 8, MinLeaf: 3, Seed: seed})
	switch name {
	case "edd":
		return drift.EDD{Trainer: forest, Seed: seed}, nil
	case "ki":
		return drift.KI{Degree: 1}, nil
	case "last":
		return drift.Last{Trainer: forest}, nil
	case "pooled":
		return drift.Pooled{Trainer: forest}, nil
	default:
		return nil, fmt.Errorf("justintime: unknown generator %q (want edd, ki, last or pooled)", name)
	}
}
