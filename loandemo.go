package justintime

import (
	"fmt"

	"justintime/internal/candgen"
	"justintime/internal/dataset"
	"justintime/internal/drift"
	"justintime/internal/mlmodel"
)

// LoanDemoConfig parameterizes NewLoanDemo, the batteries-included builder
// for the paper's loan-application demonstration scenario.
type LoanDemoConfig struct {
	// Seed drives data generation and model training.
	Seed int64
	// Eras and RowsPerEra size the synthetic Lending-Club-style history
	// (the paper uses 2007-2018, i.e. 12 yearly eras).
	Eras       int
	RowsPerEra int
	// T is the number of future time points; Delta is fixed at one year.
	T int
	// K is the number of candidates kept per time point.
	K int
	// Method selects the future-model generator: "edd", "ki", "last" or
	// "pooled".
	Method string
	// Workers bounds candidate-generator parallelism (0 = one per time
	// point).
	Workers int
	// DomainConstraints are administrator rules applied to every user
	// (constraint-language sources).
	DomainConstraints []string
}

// DefaultLoanDemoConfig mirrors the demonstration setup: 12 yearly eras,
// T=3 future points, top-8 candidates, drift-aware KI models, and one
// domain rule capping requested amounts relative to income.
func DefaultLoanDemoConfig() LoanDemoConfig {
	return LoanDemoConfig{
		Seed:       1,
		Eras:       12,
		RowsPerEra: 1200,
		T:          3,
		K:          8,
		Method:     "ki",
		DomainConstraints: []string{
			"amount <= income * 0.8", // bank policy: no loans above 80% of annual income
		},
	}
}

// LoanDemo bundles a ready-to-use System with the dataset it was trained on.
type LoanDemo struct {
	System  *System
	Dataset *dataset.Dataset
	History []Era
}

// NewLoanDemo generates the synthetic loan history, trains the model
// sequence and returns a configured system. It is the entry point used by
// the examples, the CLI and the demo server.
func NewLoanDemo(cfg LoanDemoConfig) (*LoanDemo, error) {
	if cfg.Eras <= 0 || cfg.RowsPerEra <= 0 {
		return nil, fmt.Errorf("justintime: LoanDemoConfig needs positive Eras and RowsPerEra")
	}
	if cfg.K <= 0 {
		cfg.K = 8
	}
	data, err := dataset.Generate(dataset.Config{
		Seed:       cfg.Seed,
		Eras:       cfg.Eras,
		RowsPerEra: cfg.RowsPerEra,
		LabelNoise: 0.04,
		DriftScale: 1,
	})
	if err != nil {
		return nil, err
	}
	history := HistoryFromDataset(data)

	gen, err := GeneratorByName(cfg.Method, cfg.Seed)
	if err != nil {
		return nil, err
	}
	domain := NewConstraintSet()
	for _, src := range cfg.DomainConstraints {
		c, err := ParseConstraint(src)
		if err != nil {
			return nil, fmt.Errorf("justintime: domain constraint %q: %w", src, err)
		}
		domain.Add(c)
	}
	cg := candgen.DefaultConfig()
	cg.K = cfg.K
	cg.Seed = cfg.Seed
	sys, err := NewSystem(Config{
		Schema:     dataset.LoanSchema(),
		T:          cfg.T,
		DeltaYears: 1,
		Generator:  gen,
		Domain:     domain,
		CandGen:    cg,
		Workers:    cfg.Workers,
		BaseYear:   dataset.BaseYear + cfg.Eras - 1,
	}, history)
	if err != nil {
		return nil, err
	}
	return &LoanDemo{System: sys, Dataset: data, History: history}, nil
}

// HistoryFromDataset converts a generated dataset into drift eras.
func HistoryFromDataset(d *dataset.Dataset) []Era {
	out := make([]Era, d.Eras())
	for e := 0; e < d.Eras(); e++ {
		for _, ex := range d.Era(e) {
			out[e].X = append(out[e].X, ex.X)
			out[e].Y = append(out[e].Y, ex.Label)
		}
	}
	return out
}

// OracleGenerator returns the experiment-only upper bound that trains each
// future model on the actual future era drawn from the same synthetic
// process (possible only because the drift is synthetic).
func OracleGenerator(seed int64, baseEras, rowsPerEra int) Generator {
	forest := drift.ForestTrainer(mlmodel.ForestConfig{Trees: 30, MaxDepth: 8, MinLeaf: 3, Seed: seed})
	return drift.Oracle{
		Trainer: forest,
		Future: func(t int) (Era, error) {
			d, err := dataset.Generate(dataset.Config{
				Seed:       seed,
				Eras:       baseEras + t,
				RowsPerEra: rowsPerEra,
				LabelNoise: 0.04,
				DriftScale: 1,
			})
			if err != nil {
				return Era{}, err
			}
			hist := HistoryFromDataset(d)
			return hist[len(hist)-1], nil
		},
	}
}
