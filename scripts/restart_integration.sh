#!/usr/bin/env bash
# Durability integration check: start jitd with a TMPDIR-backed -data-dir,
# create a session, SIGTERM the daemon, relaunch it over the same data dir,
# and assert the old session ID answers the canned questions from disk —
# identically, and without a second POST /api/sessions (i.e. without
# re-running candidate generation).
set -euo pipefail

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
WORK="${TMPDIR:-/tmp}/jitd-restart-it.$$"
DATA_DIR="$WORK/data"
BIN="$WORK/jitd"
LOG="$WORK/jitd.log"
PID=""

mkdir -p "$DATA_DIR"
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; echo "--- jitd log ---" >&2; cat "$LOG" >&2 || true; exit 1; }

start_jitd() {
  # Small training corpus: the point is the restart path, not model quality.
  # Paged storage on (-buffer-pool-pages): restarts must also recover the
  # per-session page files, not just the snapshot and WAL.
  "$BIN" -addr "$ADDR" -data-dir "$DATA_DIR" -wal-sync always \
    -buffer-pool-pages 256 \
    -eras 4 -rows 300 -horizon 2 -k 5 >>"$LOG" 2>&1 &
  PID=$!
  for _ in $(seq 1 120); do
    if curl -sf "$BASE/api/questions" >/dev/null 2>&1; then return 0; fi
    kill -0 "$PID" 2>/dev/null || fail "jitd exited during startup"
    sleep 0.5
  done
  fail "jitd did not become ready"
}

stop_jitd() {
  kill -TERM "$PID"
  for _ in $(seq 1 60); do
    kill -0 "$PID" 2>/dev/null || { PID=""; return 0; }
    sleep 0.5
  done
  fail "jitd did not exit on SIGTERM"
}

ask() { # ask <session-id> <kind>
  curl -sf -X POST "$BASE/api/sessions/$1/ask" \
    -H 'Content-Type: application/json' \
    -d "{\"kind\": \"$2\", \"feature\": \"income\", \"alpha\": 0.7}"
}

echo "== building jitd =="
go build -o "$BIN" ./cmd/jitd

echo "== first run: create a session =="
start_jitd
PROFILE='{"profile": {"age": 29, "household": 1, "income": 48000, "debt": 1900, "seniority": 4, "amount": 30000}}'
CREATE=$(curl -sf -X POST "$BASE/api/sessions" -H 'Content-Type: application/json' -d "$PROFILE") \
  || fail "session creation failed"
SID=$(printf '%s' "$CREATE" | sed -n 's/.*"id":"\(s-[0-9a-f]*\)".*/\1/p')
[ -n "$SID" ] || fail "no session id in create response: $CREATE"
echo "   session: $SID"

PRE_ANSWERS="$WORK/pre.txt"
POST_ANSWERS="$WORK/post.txt"
for kind in no-modification minimal-features-set minimal-overall-modification turning-point; do
  ask "$SID" "$kind" >>"$PRE_ANSWERS" || fail "pre-restart ask $kind failed"
  echo >>"$PRE_ANSWERS"
done
curl -sf -X POST "$BASE/api/sessions/$SID/sql" -H 'Content-Type: application/json' \
  -d '{"query": "SELECT * FROM candidates ORDER BY time, diff, gap, p"}' >"$WORK/pre_rows.json" \
  || fail "pre-restart candidates dump failed"

echo "== scrape /metrics before shutdown =="
curl -sf "$BASE/metrics" >"$WORK/metrics_pre.txt" || fail "pre-shutdown /metrics scrape failed"
grep -q '^jitd_sessions_live 1$' "$WORK/metrics_pre.txt" \
  || fail "pre-shutdown /metrics does not report the live session"
ASK_COUNT=$(sed -n 's/^jitd_http_request_duration_seconds_count{route="\/api\/sessions\/{id}\/ask"} \([0-9]*\)$/\1/p' "$WORK/metrics_pre.txt")
[ "${ASK_COUNT:-0}" = "4" ] || fail "expected 4 observed ask requests in /metrics, saw '${ASK_COUNT:-}'"
# The first run's session flow is read-only after the creation snapshot, so
# assert the exposition families are present rather than a fsync count.
grep -q '^jitd_wal_fsync_duration_seconds_bucket{le="+Inf"}' "$WORK/metrics_pre.txt" \
  || fail "pre-shutdown /metrics is missing the WAL fsync histogram"
grep -q '^jitd_plan_shapes_total{shape=' "$WORK/metrics_pre.txt" \
  || fail "pre-shutdown /metrics is missing plan-shape counters"

echo "== SIGTERM (checkpoint to disk) =="
stop_jitd
grep -q 'msg="checkpointed live sessions to disk" sessions=1' "$LOG" \
  || fail "shutdown did not checkpoint the session"

echo "== second run: same -data-dir, same session id =="
start_jitd
for kind in no-modification minimal-features-set minimal-overall-modification turning-point; do
  ask "$SID" "$kind" >>"$POST_ANSWERS" || fail "post-restart ask $kind failed (session lost across restart)"
  echo >>"$POST_ANSWERS"
done
curl -sf -X POST "$BASE/api/sessions/$SID/sql" -H 'Content-Type: application/json' \
  -d '{"query": "SELECT * FROM candidates ORDER BY time, diff, gap, p"}' >"$WORK/post_rows.json" \
  || fail "post-restart candidates dump failed"

diff -u "$PRE_ANSWERS" "$POST_ANSWERS" || fail "canned answers drifted across restart"
diff -u "$WORK/pre_rows.json" "$WORK/post_rows.json" || fail "candidates database not row-for-row identical across restart"

# The recovered session was served from disk: exactly one rehydration and no
# second generation (the only POST /api/sessions happened in run one).
REHYDRATIONS=$(curl -sf "$BASE/debug/vars" | sed -n 's/.*"jitd_rehydrations": \([0-9]*\).*/\1/p')
[ "${REHYDRATIONS:-0}" = "1" ] || fail "expected 1 rehydration, saw '${REHYDRATIONS:-}'"

echo "== scrape /metrics after restart =="
curl -sf "$BASE/metrics" >"$WORK/metrics_post.txt" || fail "post-restart /metrics scrape failed"
grep -q '^jitd_rehydrations_total 1$' "$WORK/metrics_post.txt" \
  || fail "post-restart /metrics does not report the rehydration"
grep -q '^jitd_sessions_live 1$' "$WORK/metrics_post.txt" \
  || fail "post-restart /metrics does not report the rehydrated session as live"
# Rehydration faults the session's pages back in through the buffer pool.
grep -q '^jitd_pool_misses_total [1-9]' "$WORK/metrics_post.txt" \
  || fail "post-restart /metrics shows no buffer-pool faults after rehydration"

stop_jitd
echo "PASS: session $SID survived the restart byte-for-byte"
