#!/usr/bin/env bash
# Kill-a-shard failover check for the cluster layer: a 3-shard jitd cluster
# with a warm standby per shard behind one jitrouter. Sessions are created
# through the router on every shard and their answers recorded; replication
# lag is asserted drained (jitd_replication_lag_records 0) on every primary;
# then one primary is killed with SIGKILL. The router must answer 503 (not
# hang) for the dead shard while unrelated shards keep answering, the standby
# is promoted via POST /admin/promote, the shard map is re-pointed and
# reloaded — and every session, including those of the killed shard, must
# answer byte-for-byte what it answered before the crash.
set -euo pipefail

WORK="${TMPDIR:-/tmp}/jitd-failover-it.$$"
ROUTER_ADDR="127.0.0.1:18090"
ROUTER="http://$ROUTER_ADDR"
NAMES=(s0 s1 s2)
API_PORTS=(19101 19102 19103)
SB_PORTS=(19201 19202 19203)
REPL_PORTS=(19301 19302 19303)
TRAIN_FLAGS=(-eras 4 -rows 300 -horizon 2 -k 5 -wal-sync always)

JITD="$WORK/jitd"
JITROUTER="$WORK/jitrouter"
CONFIG="$WORK/cluster.json"
PIDS=()

mkdir -p "$WORK"
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for f in "$WORK"/log-*; do
    echo "--- $f ---" >&2
    tail -25 "$f" >&2 || true
  done
  exit 1
}

wait_url() { # wait_url <url> <what>
  for _ in $(seq 1 240); do
    if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.5
  done
  fail "$2 did not become ready ($1)"
}

ask() { # ask <base> <session-id> <kind>
  curl -sf -X POST "$1/api/sessions/$2/ask" -H 'Content-Type: application/json' \
    -d "{\"kind\": \"$3\", \"feature\": \"income\", \"alpha\": 0.7}"
}

dump_session() { # dump_session <base> <session-id> <out-file>
  : >"$3"
  for kind in no-modification minimal-features-set turning-point; do
    ask "$1" "$2" "$kind" >>"$3" || return 1
    echo >>"$3"
  done
  curl -sf -X POST "$1/api/sessions/$2/sql" -H 'Content-Type: application/json' \
    -d '{"query": "SELECT * FROM candidates ORDER BY time, diff, gap, p"}' >>"$3" || return 1
  echo >>"$3"
}

echo "== building jitd and jitrouter =="
go build -o "$JITD" ./cmd/jitd
go build -o "$JITROUTER" ./cmd/jitrouter

echo "== writing shard map =="
cat >"$CONFIG" <<EOF
{"shards": [
  {"name": "s0", "addr": "127.0.0.1:${API_PORTS[0]}", "standby": "127.0.0.1:${SB_PORTS[0]}"},
  {"name": "s1", "addr": "127.0.0.1:${API_PORTS[1]}", "standby": "127.0.0.1:${SB_PORTS[1]}"},
  {"name": "s2", "addr": "127.0.0.1:${API_PORTS[2]}", "standby": "127.0.0.1:${SB_PORTS[2]}"}
]}
EOF

echo "== starting 3 warm standbys =="
for i in 0 1 2; do
  "$JITD" -standby -addr "127.0.0.1:${SB_PORTS[$i]}" \
    -replication-listen "127.0.0.1:${REPL_PORTS[$i]}" \
    -data-dir "$WORK/standby-${NAMES[$i]}" "${TRAIN_FLAGS[@]}" \
    >>"$WORK/log-standby-${NAMES[$i]}" 2>&1 &
  eval "SB_PID_$i=$!"
  PIDS+=("$!")
done

echo "== starting 3 shard primaries =="
for i in 0 1 2; do
  "$JITD" -addr "127.0.0.1:${API_PORTS[$i]}" \
    -cluster-config "$CONFIG" -shard-name "${NAMES[$i]}" \
    -replicate-to "127.0.0.1:${REPL_PORTS[$i]}" \
    -data-dir "$WORK/primary-${NAMES[$i]}" "${TRAIN_FLAGS[@]}" \
    >>"$WORK/log-primary-${NAMES[$i]}" 2>&1 &
  eval "PRI_PID_$i=$!"
  PIDS+=("$!")
done
for i in 0 1 2; do
  wait_url "http://127.0.0.1:${API_PORTS[$i]}/api/questions" "primary ${NAMES[$i]}"
  wait_url "http://127.0.0.1:${SB_PORTS[$i]}/admin/standby" "standby ${NAMES[$i]}"
done

echo "== starting jitrouter =="
"$JITROUTER" -addr "$ROUTER_ADDR" -cluster-config "$CONFIG" \
  -probe-interval 250ms -probe-timeout 1s -down-after 2 -forward-timeout 5s \
  >>"$WORK/log-router" 2>&1 &
PIDS+=("$!")
wait_url "$ROUTER/admin/map" "router"

echo "== creating sessions through the router until every shard holds one =="
PROFILE='{"profile": {"age": 29, "household": 1, "income": 48000, "debt": 1900, "seniority": 4, "amount": 30000}}'
declare -A SESSION_OF # shard name -> session id
PLACED=0
for _ in $(seq 1 30); do
  [ "$PLACED" -eq 3 ] && break
  CREATE=$(curl -sf -X POST "$ROUTER/api/sessions" -H 'Content-Type: application/json' -d "$PROFILE") \
    || fail "session creation through router failed"
  SID=$(printf '%s' "$CREATE" | sed -n 's/.*"id":"\(s-[0-9a-f]*\)".*/\1/p')
  [ -n "$SID" ] || fail "no session id in create response: $CREATE"
  OWNER=$(curl -sf "$ROUTER/admin/owner?id=$SID" | sed -n 's/.*"shard":"\([^"]*\)".*/\1/p')
  [ -n "$OWNER" ] || fail "router could not name an owner for $SID"
  if [ -z "${SESSION_OF[$OWNER]:-}" ]; then
    SESSION_OF[$OWNER]="$SID"
    PLACED=$((PLACED + 1))
    echo "   $OWNER <- $SID"
  fi
done
[ "$PLACED" -eq 3 ] || fail "could not land a session on every shard (placed $PLACED)"

echo "== recording pre-failover answers (via router) =="
for name in "${NAMES[@]}"; do
  dump_session "$ROUTER" "${SESSION_OF[$name]}" "$WORK/pre-$name.txt" \
    || fail "pre-failover dump for shard $name failed"
done

echo "== asserting replication lag is drained on every primary =="
for i in 0 1 2; do
  ok=""
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:${API_PORTS[$i]}/metrics" | grep -q '^jitd_replication_lag_records 0$'; then
      ok=1; break
    fi
    sleep 0.2
  done
  [ -n "$ok" ] || fail "shard ${NAMES[$i]} never drained its replication lag"
done

VICTIM_IDX=1
VICTIM="${NAMES[$VICTIM_IDX]}"
VICTIM_SID="${SESSION_OF[$VICTIM]}"
VICTIM_PID=$(eval echo "\$PRI_PID_$VICTIM_IDX")

echo "== kill -9 shard $VICTIM (pid $VICTIM_PID) =="
kill -9 "$VICTIM_PID"

echo "== dead shard must answer 503 with Retry-After, not hang =="
ok=""
for _ in $(seq 1 60); do
  HDRS=$(curl -s -m 10 -D - -o /dev/null "$ROUTER/api/sessions/$VICTIM_SID/inputs" || true)
  if printf '%s' "$HDRS" | grep -q '^HTTP/[0-9.]* 503' \
     && printf '%s' "$HDRS" | grep -qi '^Retry-After:'; then
    ok=1; break
  fi
  sleep 0.5
done
[ -n "$ok" ] || fail "router never turned the dead shard into a 503 + Retry-After"

echo "== unrelated shards keep answering identically =="
for name in "${NAMES[@]}"; do
  [ "$name" = "$VICTIM" ] && continue
  dump_session "$ROUTER" "${SESSION_OF[$name]}" "$WORK/mid-$name.txt" \
    || fail "shard $name stopped answering while $VICTIM is down"
  diff -u "$WORK/pre-$name.txt" "$WORK/mid-$name.txt" >/dev/null \
    || fail "shard $name answers drifted while $VICTIM is down"
done

echo "== promoting $VICTIM's standby =="
PROMOTE=$(curl -sf -X POST "http://127.0.0.1:${SB_PORTS[$VICTIM_IDX]}/admin/promote") \
  || fail "promotion request failed"
printf '%s' "$PROMOTE" | grep -q '"promoted":true' || fail "promotion not confirmed: $PROMOTE"

echo "== re-pointing the shard map at the promoted standby and reloading =="
cat >"$CONFIG" <<EOF
{"shards": [
  {"name": "s0", "addr": "127.0.0.1:${API_PORTS[0]}", "standby": "127.0.0.1:${SB_PORTS[0]}"},
  {"name": "s1", "addr": "127.0.0.1:${SB_PORTS[1]}"},
  {"name": "s2", "addr": "127.0.0.1:${API_PORTS[2]}", "standby": "127.0.0.1:${SB_PORTS[2]}"}
]}
EOF
curl -sf -X POST "$ROUTER/admin/reload" >/dev/null || fail "router reload failed"
wait_url "$ROUTER/api/sessions/$VICTIM_SID/inputs" "failed-over shard $VICTIM"

echo "== recording post-failover answers (via router) =="
for name in "${NAMES[@]}"; do
  dump_session "$ROUTER" "${SESSION_OF[$name]}" "$WORK/post-$name.txt" \
    || fail "post-failover dump for shard $name failed"
done

for name in "${NAMES[@]}"; do
  diff -u "$WORK/pre-$name.txt" "$WORK/post-$name.txt" \
    || fail "shard $name answers/candidate rows not byte-identical across failover"
done

echo "PASS: 3-shard failover — ${SESSION_OF[$VICTIM]} survived kill -9 of $VICTIM byte-for-byte on its standby"
