#!/usr/bin/env bash
# Chaos check for the fault plane, in three storms:
#
#   A. Full disk: a jitd with an injected ENOSPC schedule must degrade to
#      read-only (503 + Retry-After on creates, jitd_degraded_mode 1) instead
#      of dying, keep answering reads, and clear the mode automatically once
#      the injected budget burns off.
#   B. Bit rot: flipped bytes in one session's snapshot must quarantine that
#      one session (404, directory moved to <data>/quarantine/, counter up)
#      while the process keeps serving the untouched session byte-for-byte.
#   C. Network storm: a 3-shard cluster whose replication links tear writes
#      mid-frame and reset for the first connections must still drain lag;
#      then kill -9 of a primary + standby promotion must lose zero
#      acknowledged writes — byte-identical answers after the storm.
set -euo pipefail

WORK="${TMPDIR:-/tmp}/jitd-chaos-it.$$"
TRAIN_FLAGS=(-eras 4 -rows 300 -horizon 2 -k 5 -wal-sync always)
JITD="$WORK/jitd"
JITROUTER="$WORK/jitrouter"
PIDS=()

mkdir -p "$WORK"
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for f in "$WORK"/log-*; do
    echo "--- $f ---" >&2
    tail -25 "$f" >&2 || true
  done
  exit 1
}

wait_url() { # wait_url <url> <what>
  for _ in $(seq 1 240); do
    if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.5
  done
  fail "$2 did not become ready ($1)"
}

wait_metric() { # wait_metric <base> <regex> <what>
  for _ in $(seq 1 120); do
    if curl -sf "$1/metrics" | grep "$2" >/dev/null; then return 0; fi
    sleep 0.5
  done
  fail "$3 (never saw /metrics line matching '$2')"
}

PROFILE='{"profile": {"age": 29, "household": 1, "income": 48000, "debt": 1900, "seniority": 4, "amount": 30000}}'

create_session() { # create_session <base> -> session id on stdout, "" on non-201
  local out
  out=$(curl -s -X POST "$1/api/sessions" -H 'Content-Type: application/json' -d "$PROFILE")
  printf '%s' "$out" | sed -n 's/.*"id":"\(s-[0-9a-f]*\)".*/\1/p'
}

ask() { # ask <base> <session-id> <kind>
  curl -sf -X POST "$1/api/sessions/$2/ask" -H 'Content-Type: application/json' \
    -d "{\"kind\": \"$3\", \"feature\": \"income\", \"alpha\": 0.7}"
}

dump_session() { # dump_session <base> <session-id> <out-file>
  : >"$3"
  for kind in no-modification minimal-features-set turning-point; do
    ask "$1" "$2" "$kind" >>"$3" || return 1
    echo >>"$3"
  done
  curl -sf -X POST "$1/api/sessions/$2/sql" -H 'Content-Type: application/json' \
    -d '{"query": "SELECT * FROM candidates ORDER BY time, diff, gap, p"}' >>"$3" || return 1
  echo >>"$3"
}

echo "== building jitd and jitrouter =="
go build -o "$JITD" ./cmd/jitd
go build -o "$JITROUTER" ./cmd/jitrouter

# --------------------------------------------------------------------------
echo "== phase A: full disk -> read-only degraded mode -> automatic recovery =="
A_PORT=18601
A_BASE="http://127.0.0.1:$A_PORT"
# After ~16 KiB of writes under the sessions tree (a handful of sessions),
# the next 6 mutating ops fail ENOSPC; the bounded budget is what lets the
# recovery probe (1/s) observe the disk "recovering".
"$JITD" -addr "127.0.0.1:$A_PORT" -data-dir "$WORK/a-data" \
  -fault-disk 'enospc:after=16384,times=6,path=sessions' \
  "${TRAIN_FLAGS[@]}" >>"$WORK/log-a" 2>&1 &
PIDS+=("$!")
wait_url "$A_BASE/api/questions" "phase-A jitd"

A_SID=$(create_session "$A_BASE")
[ -n "$A_SID" ] || fail "phase A: healthy create failed before the disk filled"

echo "   filling the disk (creating until ENOSPC fires)"
GOT_503=""
for _ in $(seq 1 25); do
  HDRS=$(curl -s -D - -o /dev/null -X POST "$A_BASE/api/sessions" \
    -H 'Content-Type: application/json' -d "$PROFILE")
  if printf '%s' "$HDRS" | grep -q '^HTTP/[0-9.]* 503'; then
    printf '%s' "$HDRS" | grep -qi '^Retry-After:' \
      || fail "phase A: degraded 503 carries no Retry-After"
    GOT_503=1
    break
  fi
done
[ -n "$GOT_503" ] || fail "phase A: injected ENOSPC never produced a 503"
curl -s "$A_BASE/metrics" | grep '^jitd_degraded_mode 1$' >/dev/null \
  || fail "phase A: jitd_degraded_mode not 1 while degraded"

echo "   reads still answer while degraded"
ask "$A_BASE" "$A_SID" no-modification >/dev/null \
  || fail "phase A: read failed while degraded (read-only mode must keep serving reads)"

echo "   waiting for the probe to clear the mode"
wait_metric "$A_BASE" '^jitd_degraded_mode 0$' "phase A: degraded mode never cleared"
A_SID2=$(create_session "$A_BASE")
[ -n "$A_SID2" ] || fail "phase A: create still failing after recovery"
echo "   phase A ok (degraded, kept reading, self-recovered)"

# --------------------------------------------------------------------------
echo "== phase B: snapshot bit rot -> one session quarantined, the rest serve =="
B_PORT=18602
B_BASE="http://127.0.0.1:$B_PORT"
"$JITD" -addr "127.0.0.1:$B_PORT" -data-dir "$WORK/b-data" \
  "${TRAIN_FLAGS[@]}" >>"$WORK/log-b" 2>&1 &
B_PID=$!
PIDS+=("$B_PID")
wait_url "$B_BASE/api/questions" "phase-B jitd"

B_BAD=$(create_session "$B_BASE")
B_GOOD=$(create_session "$B_BASE")
[ -n "$B_BAD" ] && [ -n "$B_GOOD" ] || fail "phase B: session creation failed"
dump_session "$B_BASE" "$B_GOOD" "$WORK/b-good-pre.txt" || fail "phase B: pre dump failed"

echo "   stopping jitd cleanly, flipping bytes mid-snapshot of $B_BAD"
kill "$B_PID" 2>/dev/null || true
for _ in $(seq 1 100); do kill -0 "$B_PID" 2>/dev/null || break; sleep 0.1; done
kill -0 "$B_PID" 2>/dev/null && fail "phase B: jitd did not exit on SIGTERM"

SNAP="$WORK/b-data/sessions/$B_BAD/snapshot.db"
[ -f "$SNAP" ] || fail "phase B: no snapshot on disk for $B_BAD"
SIZE=$(wc -c <"$SNAP")
printf 'CHAOSCHAOSCHAOS' | dd of="$SNAP" bs=1 seek=$((SIZE / 2)) conv=notrunc 2>/dev/null

"$JITD" -addr "127.0.0.1:$B_PORT" -data-dir "$WORK/b-data" \
  "${TRAIN_FLAGS[@]}" >>"$WORK/log-b" 2>&1 &
PIDS+=("$!")
wait_url "$B_BASE/api/questions" "phase-B jitd (restarted)"

CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$B_BASE/api/sessions/$B_BAD/ask" \
  -H 'Content-Type: application/json' -d '{"kind": "no-modification"}')
[ "$CODE" = "404" ] || fail "phase B: corrupt session answered $CODE, want 404"
curl -s "$B_BASE/metrics" | grep '^jitd_sessions_quarantined_total 1$' >/dev/null \
  || fail "phase B: quarantine counter not 1"
[ -d "$WORK/b-data/quarantine/$B_BAD" ] || fail "phase B: no quarantine directory for $B_BAD"
[ ! -d "$WORK/b-data/sessions/$B_BAD" ] || fail "phase B: corrupt session still in the live tree"

dump_session "$B_BASE" "$B_GOOD" "$WORK/b-good-post.txt" \
  || fail "phase B: healthy session stopped serving after the quarantine"
diff -u "$WORK/b-good-pre.txt" "$WORK/b-good-post.txt" >/dev/null \
  || fail "phase B: healthy session's answers drifted across restart + quarantine"
echo "   phase B ok (one session quarantined, process kept serving)"

# --------------------------------------------------------------------------
echo "== phase C: 3-shard cluster, replication storm, kill -9, zero lost writes =="
ROUTER_ADDR="127.0.0.1:18690"
ROUTER="http://$ROUTER_ADDR"
NAMES=(s0 s1 s2)
API_PORTS=(18611 18612 18613)
SB_PORTS=(18621 18622 18623)
REPL_PORTS=(18631 18632 18633)
CONFIG="$WORK/cluster.json"

cat >"$CONFIG" <<EOF
{"shards": [
  {"name": "s0", "addr": "127.0.0.1:${API_PORTS[0]}", "standby": "127.0.0.1:${SB_PORTS[0]}"},
  {"name": "s1", "addr": "127.0.0.1:${API_PORTS[1]}", "standby": "127.0.0.1:${SB_PORTS[1]}"},
  {"name": "s2", "addr": "127.0.0.1:${API_PORTS[2]}", "standby": "127.0.0.1:${SB_PORTS[2]}"}
]}
EOF

for i in 0 1 2; do
  "$JITD" -standby -addr "127.0.0.1:${SB_PORTS[$i]}" \
    -replication-listen "127.0.0.1:${REPL_PORTS[$i]}" \
    -data-dir "$WORK/standby-${NAMES[$i]}" "${TRAIN_FLAGS[@]}" \
    >>"$WORK/log-standby-${NAMES[$i]}" 2>&1 &
  PIDS+=("$!")
done
# Primaries ship their WAL through a faulty link: 1ms added latency and the
# first 5 connections reset mid-frame after 2 KiB with a 256-byte torn
# tail — every handshake sync is bigger than that, so the storm is
# guaranteed to fire. first-conns bounds it so convergence is too.
for i in 0 1 2; do
  "$JITD" -addr "127.0.0.1:${API_PORTS[$i]}" \
    -cluster-config "$CONFIG" -shard-name "${NAMES[$i]}" \
    -replicate-to "127.0.0.1:${REPL_PORTS[$i]}" \
    -fault-net 'latency=1ms,reset-after=2048,torn=256,first-conns=5' \
    -data-dir "$WORK/primary-${NAMES[$i]}" "${TRAIN_FLAGS[@]}" \
    >>"$WORK/log-primary-${NAMES[$i]}" 2>&1 &
  eval "PRI_PID_$i=$!"
  PIDS+=("$!")
done
for i in 0 1 2; do
  wait_url "http://127.0.0.1:${API_PORTS[$i]}/api/questions" "primary ${NAMES[$i]}"
  wait_url "http://127.0.0.1:${SB_PORTS[$i]}/admin/standby" "standby ${NAMES[$i]}"
done

"$JITROUTER" -addr "$ROUTER_ADDR" -cluster-config "$CONFIG" \
  -probe-interval 250ms -probe-timeout 1s -down-after 2 -forward-timeout 5s \
  >>"$WORK/log-router" 2>&1 &
PIDS+=("$!")
wait_url "$ROUTER/admin/map" "router"

echo "   creating sessions through the router until every shard holds one"
declare -A SESSION_OF
PLACED=0
for _ in $(seq 1 30); do
  [ "$PLACED" -eq 3 ] && break
  SID=$(create_session "$ROUTER")
  [ -n "$SID" ] || fail "phase C: session creation through router failed"
  OWNER=$(curl -sf "$ROUTER/admin/owner?id=$SID" | sed -n 's/.*"shard":"\([^"]*\)".*/\1/p')
  [ -n "$OWNER" ] || fail "phase C: router could not name an owner for $SID"
  if [ -z "${SESSION_OF[$OWNER]:-}" ]; then
    SESSION_OF[$OWNER]="$SID"
    PLACED=$((PLACED + 1))
    echo "   $OWNER <- $SID"
  fi
done
[ "$PLACED" -eq 3 ] || fail "phase C: could not land a session on every shard (placed $PLACED)"

echo "   extra traffic so every shard ships through the faulty window"
for _ in $(seq 1 6); do
  SID=$(create_session "$ROUTER")
  [ -n "$SID" ] || fail "phase C: create during the storm failed"
done

echo "   recording pre-storm answers (these are the acknowledged writes)"
for name in "${NAMES[@]}"; do
  dump_session "$ROUTER" "${SESSION_OF[$name]}" "$WORK/pre-$name.txt" \
    || fail "phase C: pre-storm dump for shard $name failed"
done

echo "   asserting the faults actually fired and lag drains anyway"
STORMED=""
for i in 0 1 2; do
  if curl -sf "http://127.0.0.1:${API_PORTS[$i]}/metrics" \
      | grep '^jitd_fault_net_injected_total [1-9]' >/dev/null; then
    STORMED=1
  fi
done
[ -n "$STORMED" ] || fail "phase C: no primary recorded an injected network fault"
for i in 0 1 2; do
  wait_metric "http://127.0.0.1:${API_PORTS[$i]}" '^jitd_replication_lag_records 0$' \
    "phase C: shard ${NAMES[$i]} never drained its replication lag through the storm"
done

VICTIM_IDX=1
VICTIM="${NAMES[$VICTIM_IDX]}"
VICTIM_SID="${SESSION_OF[$VICTIM]}"
VICTIM_PID=$(eval echo "\$PRI_PID_$VICTIM_IDX")
echo "   kill -9 shard $VICTIM (pid $VICTIM_PID), promoting its standby"
kill -9 "$VICTIM_PID"
PROMOTE=$(curl -sf -X POST "http://127.0.0.1:${SB_PORTS[$VICTIM_IDX]}/admin/promote") \
  || fail "phase C: promotion request failed"
printf '%s' "$PROMOTE" | grep -q '"promoted":true' || fail "phase C: promotion not confirmed: $PROMOTE"

cat >"$CONFIG" <<EOF
{"shards": [
  {"name": "s0", "addr": "127.0.0.1:${API_PORTS[0]}", "standby": "127.0.0.1:${SB_PORTS[0]}"},
  {"name": "s1", "addr": "127.0.0.1:${SB_PORTS[1]}"},
  {"name": "s2", "addr": "127.0.0.1:${API_PORTS[2]}", "standby": "127.0.0.1:${SB_PORTS[2]}"}
]}
EOF
curl -sf -X POST "$ROUTER/admin/reload" >/dev/null || fail "phase C: router reload failed"
wait_url "$ROUTER/api/sessions/$VICTIM_SID/inputs" "failed-over shard $VICTIM"

echo "   comparing post-storm answers byte for byte"
for name in "${NAMES[@]}"; do
  dump_session "$ROUTER" "${SESSION_OF[$name]}" "$WORK/post-$name.txt" \
    || fail "phase C: post-storm dump for shard $name failed"
  diff -u "$WORK/pre-$name.txt" "$WORK/post-$name.txt" \
    || fail "phase C: shard $name lost or mutated acknowledged writes across the storm"
done

echo "PASS: chaos — degraded+recovered on ENOSPC, quarantined bit rot in isolation, zero lost acknowledged writes through the network storm"
