#!/usr/bin/env bash
# bench_compare.sh — run the tier benchmarks and record them as a JSON
# trajectory point, so perf PRs compare against a committed baseline instead
# of a number in a commit message.
#
# Usage:
#   scripts/bench_compare.sh [label]
#
# Environment knobs:
#   BENCH_FILTER  go -bench regexp            (default: .)
#   BENCH_PKGS    space-separated packages    (default: ./internal/sqldb ./internal/server .)
#   BENCHTIME     go -benchtime               (default: 1s)
#   COUNT         go -count                   (default: 3)
#   ROUNDS        repeat the whole go test invocation N times (default: 1).
#                 Use ROUNDS=N COUNT=1 when comparing sub-benchmark variants
#                 (e.g. tracing=off vs tracing=on): -count groups all runs of
#                 one variant minutes before the other, so slow machine drift
#                 lands entirely on one side; repeated single-count rounds
#                 interleave the variants in time and the drift cancels.
#   CLUSTER=1     build cmd/jitd and cmd/jitrouter, export JITD_BIN /
#                 JITROUTER_BIN, and default the filter/packages to the
#                 3-shard aggregate-throughput benchmark (single jitd process
#                 vs cluster behind jitrouter, real processes, same box):
#                   CLUSTER=1 scripts/bench_compare.sh pr9-cluster
#
# Output: scripts/bench/BENCH_<label>.json — an array of
#   {"name": ..., "iters": ..., "metrics": {"ns/op": ..., "B/op": ..., ...}}
# one entry per benchmark run (COUNT entries per benchmark). Custom
# b.ReportMetric units (p50-us, p99-us, bg-churns, ...) ride along in
# "metrics" automatically. Compare two labels with your favorite jq/benchstat
# pipeline; the files are small and meant to be committed.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(date +%Y%m%d-%H%M%S)}"
if [ -n "${CLUSTER:-}" ]; then
  # Cluster mode: the benchmark spawns real jitd/jitrouter processes, so
  # build them once here and point the test at the binaries. The workload is
  # request-bound; a longer benchtime keeps process startup out of the number.
  bindir="$(mktemp -d)"
  echo ">> building jitd and jitrouter for the cluster benchmark" >&2
  go build -o "$bindir/jitd" ./cmd/jitd
  go build -o "$bindir/jitrouter" ./cmd/jitrouter
  export JITD_BIN="$bindir/jitd" JITROUTER_BIN="$bindir/jitrouter"
  BENCH_FILTER="${BENCH_FILTER:-BenchmarkClusterServe}"
  BENCH_PKGS="${BENCH_PKGS:-./internal/cluster}"
  BENCHTIME="${BENCHTIME:-15s}"
  COUNT="${COUNT:-1}"
fi
filter="${BENCH_FILTER:-.}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-3}"
rounds="${ROUNDS:-1}"
# shellcheck disable=SC2206
pkgs=(${BENCH_PKGS:-./internal/sqldb ./internal/server .})

mkdir -p scripts/bench
out="scripts/bench/BENCH_${label}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"; rm -rf "${bindir:-}"' EXIT

echo ">> go test -run '^\$' -bench '$filter' -benchmem -benchtime=$benchtime -count=$count ${pkgs[*]}  (x$rounds rounds)" >&2
for ((round = 0; round < rounds; round++)); do
  go test -run '^$' -bench "$filter" -benchmem -benchtime="$benchtime" -count="$count" "${pkgs[@]}"
done | tee "$raw" >&2

{
  printf '{\n  "label": "%s",\n  "date": "%s",\n  "go": "%s",\n  "filter": "%s",\n  "benchtime": "%s",\n  "count": %s,\n  "rounds": %s,\n  "results": [\n' \
    "$label" "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$(go env GOVERSION)" "$filter" "$benchtime" "$count" "$rounds"
  awk '
    /^Benchmark/ && NF >= 4 {
      if (seen) printf ",\n"
      seen = 1
      printf "    {\"name\":\"%s\",\"iters\":%s,\"metrics\":{", $1, $2
      sep = ""
      for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\":%s", sep, $(i+1), $i
        sep = ","
      }
      printf "}}"
    }
    END { printf "\n" }
  ' "$raw"
  printf '  ]\n}\n'
} > "$out"

echo ">> wrote $out" >&2
