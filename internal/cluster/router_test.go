package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"justintime/internal/candgen"
	"justintime/internal/core"
	"justintime/internal/dataset"
	"justintime/internal/drift"
	"justintime/internal/mlmodel"
	"justintime/internal/server"
)

var (
	sysOnce sync.Once
	sysVal  *core.System
	sysErr  error
)

// demoSystem trains one small system shared by all cluster tests — the same
// shape the server tests use, so shard behaviour matches.
func demoSystem(t testing.TB) *core.System {
	t.Helper()
	sysOnce.Do(func() {
		d := dataset.MustGenerate(dataset.Config{Seed: 3, Eras: 4, RowsPerEra: 400, LabelNoise: 0.03, DriftScale: 1})
		hist := make([]drift.Era, d.Eras())
		for e := 0; e < d.Eras(); e++ {
			for _, ex := range d.Era(e) {
				hist[e].X = append(hist[e].X, ex.X)
				hist[e].Y = append(hist[e].Y, ex.Label)
			}
		}
		sysVal, sysErr = core.NewSystem(core.Config{
			Schema:     dataset.LoanSchema(),
			T:          2,
			DeltaYears: 1,
			Generator:  drift.Last{Trainer: drift.ForestTrainer(mlmodel.ForestConfig{Trees: 12, MaxDepth: 6, MinLeaf: 3, Seed: 7})},
			CandGen:    candgen.Config{K: 5, BeamWidth: 10, MaxIters: 12, Patience: 3, DiversityPenalty: 0.5},
			BaseYear:   2010,
		}, hist)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

// testCluster is an in-process 3-shard cluster: three real Servers, each
// minting only session IDs it owns, behind one Router.
type testCluster struct {
	names  []string
	shards map[string]*httptest.Server // name -> shard API server
	router *httptest.Server
	rt     *Router
}

func newTestCluster(t *testing.T) *testCluster {
	t.Helper()
	names := []string{"s0", "s1", "s2"}
	tc := &testCluster{names: names, shards: make(map[string]*httptest.Server)}
	m := &Map{}
	for _, name := range names {
		name := name
		h := server.NewWithConfig(demoSystem(t), server.Config{
			KeepSessionID: func(id string) bool { return OwnedBy(id, name, names) },
		})
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		t.Cleanup(func() { h.Close() })
		tc.shards[name] = srv
		m.Shards = append(m.Shards, Shard{Name: name, Addr: strings.TrimPrefix(srv.URL, "http://")})
	}
	rt, err := NewRouter(RouterConfig{Map: m, ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tc.rt = rt
	tc.router = httptest.NewServer(rt)
	t.Cleanup(tc.router.Close)
	return tc
}

func (tc *testCluster) shardURLFor(t *testing.T, id string) string {
	t.Helper()
	owner := Owner(id, tc.names)
	srv := tc.shards[owner]
	if srv == nil {
		t.Fatalf("no shard owns %q", id)
	}
	return srv.URL
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRouterDifferential is the differential harness: the same request sent
// directly to the owning shard and through the router must come back with the
// same status and byte-identical body, for create, ask, expert SQL, and
// delete, for sessions living on every shard.
func TestRouterDifferential(t *testing.T) {
	tc := newTestCluster(t)

	// Create sessions through the router until every shard holds at least
	// one. Each shard mints only IDs it owns, so the ID in the response is
	// proof of where the session landed.
	createBody, _ := json.Marshal(map[string]interface{}{
		"profile": map[string]float64{
			"age": 29, "household": 1, "income": 48000,
			"debt": 1900, "seniority": 4, "amount": 30000,
		},
		"constraints": []string{},
	})
	sessions := map[string]string{} // shard name -> session id
	for i := 0; i < 30 && len(sessions) < len(tc.names); i++ {
		resp, body := doReq(t, "POST", tc.router.URL+"/api/sessions", createBody)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create via router: %d %s", resp.StatusCode, body)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
			t.Fatalf("create response %s: %v", body, err)
		}
		owner := Owner(out.ID, tc.names)
		if _, dup := sessions[owner]; !dup {
			sessions[owner] = out.ID
		}
	}
	if len(sessions) != len(tc.names) {
		t.Fatalf("could not land a session on every shard: %v", sessions)
	}

	askBody, _ := json.Marshal(map[string]interface{}{"kind": "no-modification"})
	askFeat, _ := json.Marshal(map[string]interface{}{"kind": "dominant-feature", "feature": "income", "alpha": 0.7})
	sqlBody, _ := json.Marshal(map[string]string{"query": "SELECT * FROM candidates ORDER BY time, diff, gap, p"})

	compare := func(method, path string, body []byte, id string, want int) {
		t.Helper()
		direct, directBody := doReq(t, method, tc.shardURLFor(t, id)+path, body)
		routed, routedBody := doReq(t, method, tc.router.URL+path, body)
		if direct.StatusCode != want || routed.StatusCode != want {
			t.Fatalf("%s %s: direct %d, routed %d, want %d (%s vs %s)",
				method, path, direct.StatusCode, routed.StatusCode, want, directBody, routedBody)
		}
		if !bytes.Equal(directBody, routedBody) {
			t.Fatalf("%s %s: bodies differ\ndirect: %s\nrouted: %s", method, path, directBody, routedBody)
		}
	}

	exercise := func() {
		for _, name := range tc.names {
			id := sessions[name]
			compare("GET", "/api/sessions/"+id+"/inputs", nil, id, 200)
			compare("POST", "/api/sessions/"+id+"/ask", askBody, id, 200)
			compare("POST", "/api/sessions/"+id+"/ask", askFeat, id, 200)
			compare("POST", "/api/sessions/"+id+"/sql", sqlBody, id, 200)
		}
	}
	exercise()

	// A reload with identical names (addresses re-stated) must not move any
	// session: the same differential pass still holds, byte for byte.
	m := &Map{}
	for _, name := range tc.names {
		m.Shards = append(m.Shards, Shard{Name: name, Addr: strings.TrimPrefix(tc.shards[name].URL, "http://")})
	}
	tc.rt.Reload(m)
	exercise()

	// Deletes route to the owner too: after a routed DELETE the session is
	// gone on the owning shard, and both paths agree it is gone.
	victim := sessions[tc.names[0]]
	resp, body := doReq(t, "DELETE", tc.router.URL+"/api/sessions/"+victim, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("routed delete: %d %s", resp.StatusCode, body)
	}
	compare("GET", "/api/sessions/"+victim+"/inputs", nil, victim, http.StatusNotFound)
}

// TestRouterOwnerEndpointAgreesWithShards checks /admin/owner against the
// shard-side predicate for a spread of IDs.
func TestRouterOwnerEndpointAgreesWithShards(t *testing.T) {
	tc := newTestCluster(t)
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("session-%04d", i)
		resp, body := doReq(t, "GET", tc.router.URL+"/admin/owner?id="+id, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("owner query: %d %s", resp.StatusCode, body)
		}
		var out struct {
			Shard string `json:"shard"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Shard != Owner(id, tc.names) {
			t.Fatalf("router says %s owns %q, Owner says %s", out.Shard, id, Owner(id, tc.names))
		}
	}
}

// hungListener accepts connections and never answers — the pathological
// failure shape (kill -STOP, network black hole) that must NOT stall the
// router or other shards.
func hungListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
					if _, err := c.Read(buf); err != nil {
						if ne, ok := err.(net.Error); ok && ne.Timeout() {
							select {
							case <-done:
								return
							default:
								continue
							}
						}
						return
					}
				}
			}(c)
		}
	}()
	return ln
}

// idOwnedBy finds a session ID the given shard owns under names.
func idOwnedBy(t *testing.T, shard string, names []string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("probe-%d", i)
		if OwnedBy(id, shard, names) {
			return id
		}
	}
	t.Fatalf("no id owned by %s", shard)
	return ""
}

// TestRouterDeadShardFailsFastAndIsolated is the regression test for the
// hung-connection bug: a shard that accepts TCP but never answers must turn
// into a 503 with Retry-After within the forward timeout, and while its
// requests are stalling, requests to a healthy shard must keep completing —
// the per-shard connection pools isolate the damage.
func TestRouterDeadShardFailsFastAndIsolated(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		_, _ = io.WriteString(w, `{"questions":[]}`)
	}))
	defer live.Close()
	hung := hungListener(t)

	names := []string{"alive", "dead"}
	m := &Map{Shards: []Shard{
		{Name: "alive", Addr: strings.TrimPrefix(live.URL, "http://")},
		{Name: "dead", Addr: hung.Addr().String()},
	}}
	rt, err := NewRouter(RouterConfig{
		Map:            m,
		ForwardTimeout: 400 * time.Millisecond,
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		DownAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	deadID := idOwnedBy(t, "dead", names)
	liveID := idOwnedBy(t, "alive", names)

	// Phase 1: the prober has not condemned the shard yet, so requests go
	// out and must be cut off by the forward timeout — a 503, not a hang.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := doReq(t, "GET", front.URL+"/api/sessions/"+deadID+"/inputs", nil)
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("dead shard: status %d, want 503", resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("dead shard: no Retry-After header")
			}
		}()
	}

	// While those eight requests are parked on the dead shard, the live
	// shard must answer immediately through its own pool.
	for i := 0; i < 20; i++ {
		start := time.Now()
		resp, _ := doReq(t, "GET", front.URL+"/api/sessions/"+liveID+"/inputs", nil)
		if d := time.Since(start); d > 300*time.Millisecond {
			t.Fatalf("live shard took %v with dead shard in flight (pool not isolated?)", d)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("live shard: status %d", resp.StatusCode)
		}
	}
	wg.Wait()

	// Phase 2: once the prober marks the shard down, the 503 is immediate —
	// no dial, no timeout wait.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := rt.health(); !h["dead"] && h["alive"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked shard down: %v", rt.health())
		}
		time.Sleep(20 * time.Millisecond)
	}
	start := time.Now()
	resp, body := doReq(t, "GET", front.URL+"/api/sessions/"+deadID+"/inputs", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("down shard: %d %q %s", resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("down-shard 503 took %v, want immediate", d)
	}
	var out struct {
		Shard string `json:"shard"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Shard != "dead" {
		t.Fatalf("503 body %s (err %v)", body, err)
	}

	// Session creation keeps working with one shard down: round-robin skips
	// unhealthy shards.
	resp, _ = doReq(t, "GET", front.URL+"/api/questions", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("catalog with one shard down: %d", resp.StatusCode)
	}
}
