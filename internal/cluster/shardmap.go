// Package cluster is the multi-process scale-out layer: a static shard map
// splitting the session space across N jitd processes, deterministic
// rendezvous hashing of session IDs onto shards, and an HTTP router that
// forwards requests to the owning shard over pooled keep-alive connections.
//
// The design keeps the wire boundary thin: shards are ordinary jitd
// processes speaking the ordinary JSON API, the router adds no state of its
// own beyond the shard map and health, and ownership is a pure function of
// (session ID, shard names) — so a request sent directly to the owning
// shard and one sent through the router are answered byte-identically.
//
// Ownership hashes only shard *names*, never addresses: a failover that
// promotes a warm standby re-points the name at a new address without
// moving any session, and a shard-map reload with unchanged names is
// guaranteed routing-stable.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"regexp"
	"strings"
)

// Shard is one entry of the shard map: a stable name (the hashing identity),
// the primary's API address, and optionally its warm standby's API address
// (informational — the router never routes to a standby until a reload
// re-points Addr at it after promotion).
type Shard struct {
	// Name is the shard's stable identity; session ownership hashes names,
	// so a shard keeps its sessions across address changes (failover).
	Name string `json:"name"`
	// Addr is the primary's HTTP API host:port.
	Addr string `json:"addr"`
	// Standby, when set, is the standby's HTTP API host:port (where the
	// promotion endpoint lives). The router only records it for /admin/map;
	// traffic goes to Addr.
	Standby string `json:"standby,omitempty"`
}

// Map is a parsed, validated shard map.
type Map struct {
	Shards []Shard `json:"shards"`
}

// shardNamePattern keeps names usable as metric label values and config
// keys; the empty name is rejected separately.
var shardNamePattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// ParseMap validates a shard map from its JSON encoding.
func ParseMap(raw []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing shard map: %w", err)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("cluster: shard map has no shards")
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		if !shardNamePattern.MatchString(s.Name) {
			return nil, fmt.Errorf("cluster: shard %d has invalid name %q", i, s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		if strings.TrimSpace(s.Addr) == "" {
			return nil, fmt.Errorf("cluster: shard %q has no addr", s.Name)
		}
	}
	return &m, nil
}

// LoadMap reads and validates a shard map file.
func LoadMap(path string) (*Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading shard map: %w", err)
	}
	return ParseMap(raw)
}

// Names returns the shard names in map order.
func (m *Map) Names() []string {
	names := make([]string, len(m.Shards))
	for i, s := range m.Shards {
		names[i] = s.Name
	}
	return names
}

// ByName returns the shard with the given name, or nil.
func (m *Map) ByName(name string) *Shard {
	for i := range m.Shards {
		if m.Shards[i].Name == name {
			return &m.Shards[i]
		}
	}
	return nil
}

// Owner returns the name of the shard owning sessionID under this map.
func (m *Map) Owner(sessionID string) string {
	return Owner(sessionID, m.Names())
}

// Owner maps a session ID onto one of the shard names by rendezvous
// (highest-random-weight) hashing: every (shard, id) pair gets a
// deterministic 64-bit score and the highest score wins. The function is a
// pure function of its arguments — no seeds, no process state — so every
// router and every shard in the cluster agrees on ownership, restarts
// change nothing, and adding or removing one shard moves only the sessions
// whose argmax involved that shard (~1/N of the space).
//
// Ties are broken by name order; with a 64-bit hash they are effectively
// impossible, but the tiebreak keeps the function total and deterministic.
func Owner(sessionID string, shardNames []string) string {
	best := ""
	var bestScore uint64
	for _, name := range shardNames {
		s := hrwScore(name, sessionID)
		if best == "" || s > bestScore || (s == bestScore && name < best) {
			best, bestScore = name, s
		}
	}
	return best
}

// OwnedBy reports whether sessionID belongs to shard name under shardNames
// — the predicate a shard uses to mint only IDs it owns.
func OwnedBy(sessionID, name string, shardNames []string) bool {
	return Owner(sessionID, shardNames) == name
}

// hrwScore is the rendezvous weight of (shard, key): FNV-1a over
// name\x00key. FNV is stable across platforms and Go versions, which is the
// property that matters here; its distribution over random 128-bit session
// IDs is comfortably uniform.
func hrwScore(name, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}
