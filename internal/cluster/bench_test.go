package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// benchTrainFlags keeps process startup cheap: the benchmark measures
// serving, not training.
var benchTrainFlags = []string{"-eras", "4", "-rows", "300", "-horizon", "2", "-k", "5"}

// freePort reserves an ephemeral port and releases it for the child process.
func freePort(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// spawn starts a binary and waits until readyURL answers 200.
func spawn(b *testing.B, bin string, readyURL string, args ...string) {
	b.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(readyURL)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	b.Fatalf("%s never became ready at %s", bin, readyURL)
}

var benchProfile = []byte(`{"profile": {"age": 29, "household": 1, "income": 48000, "debt": 1900, "seniority": 4, "amount": 30000}}`)

func benchCreateSession(b *testing.B, client *http.Client, base string) string {
	b.Helper()
	resp, err := client.Post(base+"/api/sessions", "application/json", bytes.NewReader(benchProfile))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
		b.Fatalf("create response %s: %v", body, err)
	}
	return out.ID
}

// serveLoad drives the mixed workload — mostly canned-question asks over a
// pre-created session pool, with one session creation per 16 ops — from
// parallel clients, and reports aggregate requests/second.
func serveLoad(b *testing.B, base string) {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	var mu sync.Mutex
	var pool []string
	for i := 0; i < 8; i++ {
		pool = append(pool, benchCreateSession(b, client, base))
	}
	askBody := []byte(`{"kind": "no-modification"}`)

	var ops int64
	start := time.Now()
	// More in-flight requests than cores: aggregate throughput is what the
	// cluster is for, and queueing is what exposes single-process
	// serialization (admission, shared rings, one GC) that per-request
	// latency hides.
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		n := 0
		for pb.Next() {
			n++
			if n%16 == 0 {
				id := benchCreateSession(b, client, base)
				mu.Lock()
				pool = append(pool, id)
				mu.Unlock()
				continue
			}
			mu.Lock()
			id := pool[rng.Intn(len(pool))]
			mu.Unlock()
			resp, err := client.Post(base+"/api/sessions/"+id+"/ask", "application/json", bytes.NewReader(askBody))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("ask: %d", resp.StatusCode)
				return
			}
		}
		mu.Lock()
		ops += int64(n)
		mu.Unlock()
	})
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(ops)/el, "req/s")
	}
}

// BenchmarkClusterServe compares a single jitd process against a 3-shard
// cluster behind jitrouter on the same box, on the mixed create+ask
// workload. It needs prebuilt binaries:
//
//	JITD_BIN=... JITROUTER_BIN=... go test ./internal/cluster -bench ClusterServe -benchtime 30s
//
// or CLUSTER=1 scripts/bench_compare.sh, which builds and wires them up.
func BenchmarkClusterServe(b *testing.B) {
	jitd := os.Getenv("JITD_BIN")
	jitrouter := os.Getenv("JITROUTER_BIN")
	if jitd == "" || jitrouter == "" {
		b.Skip("set JITD_BIN and JITROUTER_BIN (see CLUSTER=1 scripts/bench_compare.sh)")
	}

	b.Run("single-process", func(b *testing.B) {
		addr := freePort(b)
		args := append([]string{"-addr", addr}, benchTrainFlags...)
		spawn(b, jitd, "http://"+addr+"/api/questions", args...)
		serveLoad(b, "http://"+addr)
	})

	b.Run("cluster-3shard", func(b *testing.B) {
		names := []string{"s0", "s1", "s2"}
		m := Map{}
		addrs := make([]string, len(names))
		for i := range names {
			addrs[i] = freePort(b)
			m.Shards = append(m.Shards, Shard{Name: names[i], Addr: addrs[i]})
		}
		raw, err := json.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		cfg := fmt.Sprintf("%s/cluster.json", b.TempDir())
		if err := os.WriteFile(cfg, raw, 0o644); err != nil {
			b.Fatal(err)
		}
		for i, name := range names {
			args := append([]string{
				"-addr", addrs[i], "-cluster-config", cfg, "-shard-name", name,
			}, benchTrainFlags...)
			spawn(b, jitd, "http://"+addrs[i]+"/api/questions", args...)
		}
		front := freePort(b)
		spawn(b, jitrouter, "http://"+front+"/admin/map", "-addr", front, "-cluster-config", cfg)
		serveLoad(b, "http://"+front)
	})
}
