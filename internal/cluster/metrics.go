package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// forwardBoundsUs are the forward-latency bucket upper bounds in
// microseconds, roughly logarithmic from "hot in-memory ask" to "shard is
// struggling". They mirror the shape of jitd's own latency buckets so the
// two layers' histograms line up on a dashboard.
var forwardBoundsUs = [...]int64{
	100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000, 5000000,
}

// forwardHist is a fixed-bucket latency histogram with lock-free recording
// (the router's per-shard forward latency series).
type forwardHist struct {
	counts [len(forwardBoundsUs) + 1]atomic.Int64
	sumUs  atomic.Int64
}

func (h *forwardHist) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < len(forwardBoundsUs) && us > forwardBoundsUs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumUs.Add(us)
}

// cumulative returns cumulative bucket counts (with the +Inf total last)
// and the observation sum in microseconds. The total derives from the same
// bucket loads, so _count always equals the +Inf bucket even when a scrape
// races an observe.
func (h *forwardHist) cumulative() (counts []int64, sumUs int64) {
	counts = make([]int64, len(forwardBoundsUs)+1)
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	return counts, h.sumUs.Load()
}

// shardMetrics is the per-shard slice of the router's counters. Metrics are
// per-Router instance (not process globals) so tests can run many routers in
// one process without expvar name collisions.
type shardMetrics struct {
	forwarded   atomic.Int64 // requests forwarded (a response came back)
	retries     atomic.Int64 // idempotent reads retried after a transport error
	errors      atomic.Int64 // forwards that failed after any retry
	unavailable atomic.Int64 // requests answered 503 locally (shard down / no address)
	latency     forwardHist

	// okCount/okSumUs track successful forwards only — the shard's actual
	// service time, excluding failed forwards whose duration measures our
	// own dial/response timeouts. This is the series the derived Retry-After
	// hint reads; the full histogram above keeps recording everything.
	okCount atomic.Int64
	okSumUs atomic.Int64
}

// observeOK records one successful forward's duration.
func (sm *shardMetrics) observeOK(d time.Duration) {
	sm.okCount.Add(1)
	sm.okSumUs.Add(d.Microseconds())
}

// meanOKUs returns the mean successful-forward latency in microseconds
// (0 with no successful forwards yet).
func (sm *shardMetrics) meanOKUs() int64 {
	n := sm.okCount.Load()
	if n == 0 {
		return 0
	}
	return sm.okSumUs.Load() / n
}

// routerMetrics aggregates the router's observable state.
type routerMetrics struct {
	mu     sync.Mutex
	shards map[string]*shardMetrics
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{shards: make(map[string]*shardMetrics)}
}

// shard returns (creating on first use) the metrics slice for a shard name.
func (m *routerMetrics) shard(name string) *shardMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	sm, ok := m.shards[name]
	if !ok {
		sm = &shardMetrics{}
		m.shards[name] = sm
	}
	return sm
}

// snapshot copies the name->metrics map for rendering.
func (m *routerMetrics) snapshot() map[string]*shardMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*shardMetrics, len(m.shards))
	for k, v := range m.shards {
		out[k] = v
	}
	return out
}

// renderProm writes the router's metrics in Prometheus text exposition
// format v0.0.4 (hand-rolled like jitd's — no client-library dependency).
// health maps shard name -> currently-healthy for the gauge family.
func (m *routerMetrics) renderProm(b *bytes.Buffer, health map[string]bool) {
	shards := m.snapshot()
	names := make([]string, 0, len(shards))
	for name := range shards {
		names = append(names, name)
	}
	sort.Strings(names)

	counter := func(family, help string, val func(*shardMetrics) int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", family, help, family)
		for _, name := range names {
			fmt.Fprintf(b, "%s{shard=%q} %d\n", family, name, val(shards[name]))
		}
	}
	counter("jitrouter_forwarded_total", "Requests forwarded to a shard that returned a response.",
		func(s *shardMetrics) int64 { return s.forwarded.Load() })
	counter("jitrouter_retries_total", "Idempotent reads retried once after a transport error.",
		func(s *shardMetrics) int64 { return s.retries.Load() })
	counter("jitrouter_forward_errors_total", "Forwards that failed after any retry (answered 503).",
		func(s *shardMetrics) int64 { return s.errors.Load() })
	counter("jitrouter_unavailable_total", "Requests answered 503 locally because the shard was marked down.",
		func(s *shardMetrics) int64 { return s.unavailable.Load() })

	fmt.Fprintf(b, "# HELP jitrouter_shard_healthy Shard health as seen by the router's prober (1 = up).\n# TYPE jitrouter_shard_healthy gauge\n")
	hn := make([]string, 0, len(health))
	for name := range health {
		hn = append(hn, name)
	}
	sort.Strings(hn)
	for _, name := range hn {
		v := 0
		if health[name] {
			v = 1
		}
		fmt.Fprintf(b, "jitrouter_shard_healthy{shard=%q} %d\n", name, v)
	}

	fmt.Fprintf(b, "# HELP jitrouter_forward_duration_seconds Forward latency by shard (router-side, includes the shard's own service time).\n# TYPE jitrouter_forward_duration_seconds histogram\n")
	for _, name := range names {
		counts, sumUs := shards[name].latency.cumulative()
		for i, bound := range forwardBoundsUs {
			le := strconv.FormatFloat(float64(bound)/1e6, 'g', -1, 64)
			fmt.Fprintf(b, "jitrouter_forward_duration_seconds_bucket{shard=%q,le=%q} %d\n", name, le, counts[i])
		}
		total := counts[len(forwardBoundsUs)]
		fmt.Fprintf(b, "jitrouter_forward_duration_seconds_bucket{shard=%q,le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(b, "jitrouter_forward_duration_seconds_sum{shard=%q} %s\n", name,
			strconv.FormatFloat(float64(sumUs)/1e6, 'g', -1, 64))
		fmt.Fprintf(b, "jitrouter_forward_duration_seconds_count{shard=%q} %d\n", name, total)
	}
}

// renderVars writes the same state as a JSON object (the router's
// /debug/vars — instance-scoped rather than expvar's process globals, so
// many routers can coexist in one test process).
func (m *routerMetrics) renderVars(health map[string]bool) map[string]interface{} {
	shards := m.snapshot()
	perShard := make(map[string]interface{}, len(shards))
	for name, s := range shards {
		counts, sumUs := s.latency.cumulative()
		buckets := make(map[string]int64, len(counts)+1)
		for i, bound := range forwardBoundsUs {
			buckets["le_"+strconv.FormatInt(bound, 10)] = counts[i]
		}
		buckets["le_inf"] = counts[len(forwardBoundsUs)]
		perShard[name] = map[string]interface{}{
			"forwarded":         s.forwarded.Load(),
			"retries":           s.retries.Load(),
			"forward_errors":    s.errors.Load(),
			"unavailable_503s":  s.unavailable.Load(),
			"latency_us_sum":    sumUs,
			"latency_us_hist":   buckets,
			"currently_healthy": health[name],
		}
	}
	return map[string]interface{}{"jitrouter_shards": perShard}
}
