package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"justintime/internal/fault"
)

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Map is the initial shard map (required).
	Map *Map
	// ConfigPath, when set, is re-read by POST /admin/reload.
	ConfigPath string
	// ProbeInterval is how often each shard is health-probed. <= 0 selects 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe. <= 0 selects 2s.
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one forwarded request end to end (connect,
	// response headers and body). A shard that accepts connections but never
	// answers turns into a 503 after this long instead of a hung client
	// connection. <= 0 selects 30s.
	ForwardTimeout time.Duration
	// DownAfter is the consecutive failures (probe or forward) that mark a
	// shard down. <= 0 selects 2. A down shard is probed on a jittered
	// capped-exponential backoff (base ProbeInterval, cap 10x) rather than
	// the fixed interval, so a long-dead shard is not hammered while a
	// freshly-promoted standby is still noticed quickly.
	DownAfter int
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	return c
}

// shardState is the router's live view of one shard: its address, a
// dedicated connection pool, and prober-maintained health. The transport is
// per shard by design — a dead or stalled shard can exhaust only its own
// pool, never another shard's (regression-locked by test).
type shardState struct {
	name    string
	addr    string
	client  *http.Client
	tr      *http.Transport
	healthy atomic.Bool
	fails   atomic.Int32 // consecutive failures, fed by prober and forwards
	stop    chan struct{}
}

// Router forwards the jitd JSON API across a shard cluster: session-scoped
// requests go to the shard owning the session ID (rendezvous hashing over
// shard names), session creation and the read-only catalog endpoints
// round-robin over healthy shards, and a down shard answers an immediate
// 503 with Retry-After instead of a hung connection.
type Router struct {
	cfg RouterConfig

	mu     sync.RWMutex
	m      *Map
	order  []*shardState // map order, for round-robin
	byName map[string]*shardState

	rr      atomic.Uint64
	metrics *routerMetrics
	mux     *http.ServeMux
	closed  atomic.Bool
}

// NewRouter builds a Router over cfg.Map and starts its health probers.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Map == nil || len(cfg.Map.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs a non-empty shard map")
	}
	rt := &Router{
		cfg:     cfg,
		byName:  make(map[string]*shardState),
		metrics: newRouterMetrics(),
	}
	rt.apply(cfg.Map)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /debug/vars", rt.handleVars)
	mux.HandleFunc("POST /admin/reload", rt.handleReload)
	mux.HandleFunc("GET /admin/map", rt.handleMap)
	mux.HandleFunc("GET /admin/owner", rt.handleOwner)
	mux.HandleFunc("/", rt.forward)
	rt.mux = mux
	return rt, nil
}

// newShardState builds the per-shard connection pool and starts its prober.
func (rt *Router) newShardState(name, addr string) *shardState {
	tr := &http.Transport{
		DialContext:         (&net.Dialer{Timeout: 2 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}
	s := &shardState{
		name: name,
		addr: addr,
		tr:   tr,
		// The client timeout is the whole-exchange bound: connect, headers,
		// and body copy. It is what turns a stalled shard into a 503.
		client: &http.Client{Transport: tr, Timeout: rt.cfg.ForwardTimeout},
		stop:   make(chan struct{}),
	}
	s.healthy.Store(true) // optimistic until the prober learns otherwise
	go rt.probeLoop(s)
	return s
}

// apply swaps the live shard map in. States are kept (pool, health and all)
// for shards whose name+addr are unchanged; an address change — the
// failover case, where a reload re-points a shard name at its promoted
// standby — gets a fresh pool and fresh optimistic health. Ownership is a
// function of names only, so sessions never move under a reload.
func (rt *Router) apply(m *Map) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	old := rt.byName
	rt.byName = make(map[string]*shardState, len(m.Shards))
	rt.order = make([]*shardState, 0, len(m.Shards))
	for _, sh := range m.Shards {
		if prev, ok := old[sh.Name]; ok && prev.addr == sh.Addr {
			rt.byName[sh.Name] = prev
			rt.order = append(rt.order, prev)
			delete(old, sh.Name)
			continue
		}
		s := rt.newShardState(sh.Name, sh.Addr)
		rt.byName[sh.Name] = s
		rt.order = append(rt.order, s)
	}
	for _, prev := range old { // removed or re-addressed: retire the pool
		close(prev.stop)
		prev.tr.CloseIdleConnections()
	}
	rt.m = m
}

// Reload installs a new shard map.
func (rt *Router) Reload(m *Map) { rt.apply(m) }

// Close stops the probers and releases every pool.
func (rt *Router) Close() {
	if !rt.closed.CompareAndSwap(false, true) {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, s := range rt.order {
		close(s.stop)
		s.tr.CloseIdleConnections()
	}
	rt.order = nil
	rt.byName = map[string]*shardState{}
}

// probeLoop health-checks one shard until its state is retired. The probe
// target is the static catalog endpoint — cheap, allocation-light on the
// shard, and (deliberately) gated on the shard actually serving the API: a
// standby answers it 503 until promoted, so the router never routes to an
// unpromoted standby even if a reload points at one early.
//
// The loop is a circuit breaker: a healthy shard is probed at the fixed
// ProbeInterval, but once marked down its probes back off exponentially
// (jittered, capped at 10x ProbeInterval) — a dead shard costs a trickle of
// probes instead of a steady hammer, while the cap keeps a promoted standby
// from waiting long to be noticed. Any probe success snaps the schedule back
// to the base interval.
func (rt *Router) probeLoop(s *shardState) {
	retry := fault.Backoff{Base: rt.cfg.ProbeInterval, Max: 10 * rt.cfg.ProbeInterval}
	for {
		wait := rt.cfg.ProbeInterval
		if !s.healthy.Load() {
			wait = retry.Next()
		}
		t := time.NewTimer(wait)
		select {
		case <-s.stop:
			t.Stop()
			return
		case <-t.C:
			if rt.probeOnce(s) {
				retry.Reset()
			}
		}
	}
}

func (rt *Router) probeOnce(s *shardState) bool {
	// A dedicated tiny client: probes must not compete with (or be stalled
	// by) forwarded traffic's pool, and must carry their own short timeout.
	req, err := http.NewRequest(http.MethodGet, "http://"+s.addr+"/api/questions", nil)
	if err != nil {
		return false
	}
	cl := &http.Client{Transport: s.tr, Timeout: rt.cfg.ProbeTimeout}
	resp, err := cl.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
	}
	if ok {
		s.fails.Store(0)
		s.healthy.Store(true)
		return true
	}
	rt.noteFailure(s)
	return false
}

// noteFailure records one failed exchange with a shard (probe or forward)
// and opens the breaker once the consecutive-failure threshold is crossed.
func (rt *Router) noteFailure(s *shardState) {
	if s.fails.Add(1) >= int32(rt.cfg.DownAfter) {
		s.healthy.Store(false)
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// pick resolves the target shard for a request path, or returns a
// description of why it cannot.
func (rt *Router) pick(r *http.Request) (*shardState, error) {
	path := r.URL.Path
	if !strings.HasPrefix(path, "/api/") {
		return nil, errNotRoutable
	}
	if id, ok := sessionIDFromPath(path); ok {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		s := rt.byName[rt.m.Owner(id)]
		if s == nil {
			return nil, fmt.Errorf("no shard owns session %q", id)
		}
		return s, nil
	}
	// Session creation and the catalog endpoints are shard-agnostic:
	// creation because every shard mints only IDs it owns (so the response's
	// ID routes back to wherever the session landed), the catalog because
	// every shard serves the same trained system.
	return rt.pickHealthyRR()
}

var errNotRoutable = fmt.Errorf("not an API path")

// sessionIDFromPath extracts the {id} of /api/sessions/{id}[/...].
func sessionIDFromPath(path string) (string, bool) {
	const prefix = "/api/sessions/"
	if !strings.HasPrefix(path, prefix) {
		return "", false
	}
	rest := path[len(prefix):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// pickHealthyRR round-robins over healthy shards.
func (rt *Router) pickHealthyRR() (*shardState, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	n := len(rt.order)
	if n == 0 {
		return nil, fmt.Errorf("shard map is empty")
	}
	start := int(rt.rr.Add(1))
	for i := 0; i < n; i++ {
		s := rt.order[(start+i)%n]
		if s.healthy.Load() {
			return s, nil
		}
	}
	return nil, fmt.Errorf("no healthy shard")
}

// forward proxies one API request to its shard.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request) {
	s, err := rt.pick(r)
	if err != nil {
		if err == errNotRoutable {
			http.NotFound(w, r)
			return
		}
		rt.unavailable(w, "any", err)
		return
	}
	sm := rt.metrics.shard(s.name)
	if !s.healthy.Load() {
		// Down shards fail fast: an immediate 503 with a retry hint beats a
		// connection that hangs until some deep timeout. The prober flips
		// the shard back the moment it answers again (or its promoted
		// standby does, after a reload re-points the address).
		sm.unavailable.Add(1)
		rt.unavailable(w, s.name, fmt.Errorf("shard %s is down", s.name))
		return
	}

	outURL := *r.URL
	outURL.Scheme = "http"
	outURL.Host = s.addr
	out, err := http.NewRequestWithContext(r.Context(), r.Method, outURL.String(), r.Body)
	if err != nil {
		rt.unavailable(w, s.name, err)
		return
	}
	out.Header = r.Header.Clone()

	start := time.Now()
	resp, err := s.client.Do(out)
	if err != nil && idempotent(r.Method) && r.Context().Err() == nil {
		// One retry for idempotent reads on a fresh attempt: a read that
		// died to a stale keep-alive connection or a mid-restart shard is
		// safe to replay (it has no body and no side effects).
		sm.retries.Add(1)
		out2, rerr := http.NewRequestWithContext(r.Context(), r.Method, outURL.String(), nil)
		if rerr == nil {
			out2.Header = r.Header.Clone()
			resp, err = s.client.Do(out2)
		}
	}
	if err != nil {
		sm.errors.Add(1)
		sm.latency.observe(time.Since(start))
		// Forward failures feed the same breaker the prober does: a shard
		// that just refused traffic should fail fast for the next request
		// instead of waiting for the prober to notice.
		rt.noteFailure(s)
		rt.unavailable(w, s.name, fmt.Errorf("forward to shard %s failed: %w", s.name, err))
		return
	}
	defer resp.Body.Close()
	sm.forwarded.Add(1)
	s.fails.Store(0)

	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	d := time.Since(start)
	sm.latency.observe(d)
	sm.observeOK(d)
}

// idempotent reports whether a method is safe to replay blind.
func idempotent(method string) bool {
	return method == http.MethodGet || method == http.MethodHead
}

// unavailable answers 503 + Retry-After — the router's contract for any
// shard it cannot reach right now. The retry hint is derived from the
// shard's observed forward latency rather than a constant: a client of a
// shard that answers in microseconds can retry in a second, while one whose
// requests already took seconds should wait proportionally longer.
func (rt *Router) unavailable(w http.ResponseWriter, shard string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfterSecs(shard)))
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf("shard unavailable: %v", err),
		"shard": shard,
	})
}

// retryAfterSecs turns a shard's observed mean forward latency into a
// Retry-After hint: four mean service times (successful forwards only, so
// timeout-bound failures don't inflate the hint), floored at 1s and capped
// at 30s. A shard with no successful forwards yet (or the synthetic "any"
// shard) gets the 1s floor.
func (rt *Router) retryAfterSecs(shard string) int {
	meanUs := rt.metrics.shard(shard).meanOKUs()
	secs := int((4*meanUs + 999999) / 1000000)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// health snapshots shard name -> healthy.
func (rt *Router) health() map[string]bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]bool, len(rt.order))
	for _, s := range rt.order {
		out[s.name] = s.healthy.Load()
	}
	return out
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer
	rt.metrics.renderProm(&b, rt.health())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

func (rt *Router) handleVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.metrics.renderVars(rt.health()))
}

// handleReload re-reads the shard map file and applies it. Shards whose
// name+addr are unchanged keep their pools and health; the rest are
// rebuilt. This is the failover lever: rewrite the file so the dead shard's
// addr points at its promoted standby, then POST here.
func (rt *Router) handleReload(w http.ResponseWriter, _ *http.Request) {
	if rt.cfg.ConfigPath == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "router was started without a -cluster-config file"})
		return
	}
	m, err := LoadMap(rt.cfg.ConfigPath)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	rt.apply(m)
	writeJSON(w, http.StatusOK, map[string]interface{}{"reloaded": true, "shards": m.Shards})
}

// handleMap reports the live shard map with health.
func (rt *Router) handleMap(w http.ResponseWriter, _ *http.Request) {
	rt.mu.RLock()
	m := rt.m
	rt.mu.RUnlock()
	health := rt.health()
	type row struct {
		Name    string `json:"name"`
		Addr    string `json:"addr"`
		Standby string `json:"standby,omitempty"`
		Healthy bool   `json:"healthy"`
	}
	rows := make([]row, len(m.Shards))
	for i, sh := range m.Shards {
		rows[i] = row{Name: sh.Name, Addr: sh.Addr, Standby: sh.Standby, Healthy: health[sh.Name]}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"shards": rows})
}

// handleOwner answers which shard owns a session ID (?id=...): the
// debugging/ops view of the hash function.
func (rt *Router) handleOwner(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ?id="})
		return
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	name := rt.m.Owner(id)
	sh := rt.m.ByName(name)
	writeJSON(w, http.StatusOK, map[string]string{"shard": name, "addr": sh.Addr})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
