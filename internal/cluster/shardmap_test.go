package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// randomIDs mints n hex session IDs from a fixed seed — the same shape the
// server mints (32 hex chars), reproducible across runs.
func randomIDs(n int) []string {
	rng := rand.New(rand.NewSource(42))
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return ids
}

// TestOwnerProperties is the routing-parity property test over 10k random
// session IDs: ownership is deterministic, independent of shard-name order,
// stable under a shard-map reload that only changes addresses, and balanced
// within ±15% of the uniform share.
func TestOwnerProperties(t *testing.T) {
	names := []string{"s0", "s1", "s2"}
	ids := randomIDs(10000)

	counts := map[string]int{}
	for _, id := range ids {
		owner := Owner(id, names)
		if owner == "" {
			t.Fatalf("no owner for %q", id)
		}
		counts[owner]++

		// Deterministic: recomputing gives the same answer.
		if again := Owner(id, names); again != owner {
			t.Fatalf("owner of %q flapped: %s then %s", id, owner, again)
		}
		// Order-independent: rendezvous hashing scores every (name, id)
		// pair, so the argmax cannot depend on slice order.
		perm := []string{"s2", "s0", "s1"}
		if p := Owner(id, perm); p != owner {
			t.Fatalf("owner of %q depends on name order: %s vs %s", id, owner, p)
		}
		// Agreement: the shard-side predicate matches the router-side map.
		if !OwnedBy(id, owner, names) {
			t.Fatalf("OwnedBy disagrees with Owner for %q", id)
		}
	}

	// Uniformity: each shard within ±15% of n/3.
	want := float64(len(ids)) / float64(len(names))
	for _, name := range names {
		got := float64(counts[name])
		if got < want*0.85 || got > want*1.15 {
			t.Fatalf("shard %s owns %d of %d ids, outside ±15%% of %f (all: %v)",
				name, counts[name], len(ids), want, counts)
		}
	}

	// Reload stability: a map with the same names but every address changed
	// (the failover reload) routes every ID identically.
	m1 := mustParse(t, `{"shards":[{"name":"s0","addr":"a:1"},{"name":"s1","addr":"a:2"},{"name":"s2","addr":"a:3"}]}`)
	m2 := mustParse(t, `{"shards":[{"name":"s0","addr":"b:9"},{"name":"s1","addr":"b:8","standby":"b:7"},{"name":"s2","addr":"b:6"}]}`)
	for _, id := range ids {
		if m1.Owner(id) != m2.Owner(id) {
			t.Fatalf("reload moved session %q: %s -> %s", id, m1.Owner(id), m2.Owner(id))
		}
	}
}

// TestOwnerSingleShardAndRemoval pins the rendezvous minimal-movement
// property: removing one shard relocates only the sessions it owned.
func TestOwnerSingleShardAndRemoval(t *testing.T) {
	ids := randomIDs(2000)
	all := []string{"s0", "s1", "s2"}
	reduced := []string{"s0", "s2"}
	for _, id := range ids {
		before := Owner(id, all)
		after := Owner(id, reduced)
		if before != "s1" && after != before {
			t.Fatalf("removing s1 moved %q from %s to %s", id, before, after)
		}
		if before == "s1" && after != "s0" && after != "s2" {
			t.Fatalf("orphaned session %q went to %q", id, after)
		}
	}
	if got := Owner("anything", []string{"only"}); got != "only" {
		t.Fatalf("single-shard owner = %q", got)
	}
	if got := Owner("anything", nil); got != "" {
		t.Fatalf("empty shard list owner = %q", got)
	}
}

func TestParseMapValidation(t *testing.T) {
	cases := []struct {
		raw string
		ok  bool
	}{
		{`{"shards":[{"name":"a","addr":"x:1"}]}`, true},
		{`{"shards":[]}`, false},
		{`{"shards":[{"name":"","addr":"x:1"}]}`, false},
		{`{"shards":[{"name":"a b","addr":"x:1"}]}`, false},
		{`{"shards":[{"name":"a","addr":""}]}`, false},
		{`{"shards":[{"name":"a","addr":"x:1"},{"name":"a","addr":"x:2"}]}`, false},
		{`not json`, false},
	}
	for _, c := range cases {
		_, err := ParseMap([]byte(c.raw))
		if (err == nil) != c.ok {
			t.Errorf("ParseMap(%s): err=%v, want ok=%v", c.raw, err, c.ok)
		}
	}
}

func mustParse(t *testing.T, raw string) *Map {
	t.Helper()
	m, err := ParseMap([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Sanity: shard maps round-trip through JSON (the reload path re-reads the
// file the operator wrote).
func TestMapRoundTrip(t *testing.T) {
	m := mustParse(t, `{"shards":[{"name":"s0","addr":"h:1","standby":"h:2"}]}`)
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseMap(b)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Shards[0] != m.Shards[0] {
		t.Fatalf("round trip: %+v vs %+v", m2.Shards[0], m.Shards[0])
	}
}
