package candgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"justintime/internal/constraints"
	"justintime/internal/feature"
	"justintime/internal/mlmodel"
)

// twoDSchema is a simple mutable 2-D space on [0,100]^2.
func twoDSchema(t *testing.T) *feature.Schema {
	t.Helper()
	s, err := feature.NewSchema(
		feature.Field{Name: "a", Kind: feature.Continuous, Min: 0, Max: 100},
		feature.Field{Name: "b", Kind: feature.Continuous, Min: 0, Max: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// trainedForest learns "a + b > 100" on dense data.
func trainedForest(t *testing.T) *mlmodel.Forest {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	X := make([][]float64, 2000)
	y := make([]bool, 2000)
	for i := range X {
		X[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		y[i] = X[i][0]+X[i][1] > 100
	}
	f, err := mlmodel.TrainForest(X, y, mlmodel.ForestConfig{Trees: 25, MaxDepth: 8, MinLeaf: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func trainedLogistic(t *testing.T) *mlmodel.Logistic {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	X := make([][]float64, 1500)
	y := make([]bool, 1500)
	for i := range X {
		X[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		y[i] = X[i][0]+X[i][1] > 100
	}
	m, err := mlmodel.TrainLogistic(X, y, mlmodel.DefaultLogisticConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// checkInvariant verifies Definition II.3 for every returned candidate.
func checkInvariant(t *testing.T, p Problem, cands []Candidate) {
	t.Helper()
	for i, c := range cands {
		if err := p.Schema.Validate(c.X); err != nil {
			t.Errorf("candidate %d invalid: %v", i, err)
		}
		conf := p.Model.Predict(c.X)
		if conf <= p.Threshold {
			t.Errorf("candidate %d not decision-altering: p=%.3f <= %.3f", i, conf, p.Threshold)
		}
		if c.Confidence != conf {
			t.Errorf("candidate %d stored confidence %.4f, model says %.4f", i, c.Confidence, conf)
		}
		ctx := &constraints.Context{Schema: p.Schema, Original: p.Input, Candidate: c.X, Time: p.Time, Confidence: conf}
		ok, err := p.Constraints.Eval(ctx)
		if err != nil || !ok {
			t.Errorf("candidate %d violates constraints: %v %v", i, ok, err)
		}
		if got := feature.Diff(c.X, p.Input); got != c.Diff {
			t.Errorf("candidate %d diff mismatch", i)
		}
		if got := feature.Gap(c.X, p.Input); got != c.Gap {
			t.Errorf("candidate %d gap mismatch", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	schema := twoDSchema(t)
	model := mlmodel.ConstantModel{P: 1}
	good := Problem{Schema: schema, Model: model, Threshold: 0.5, Input: []float64{10, 10}, Constraints: constraints.NewSet()}
	if _, _, err := Generate(Problem{}, DefaultConfig()); err == nil {
		t.Error("empty problem should fail")
	}
	if _, _, err := Generate(good, Config{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, _, err := Generate(good, Config{K: 2, DiversityPenalty: 1.5}); err == nil {
		t.Error("DiversityPenalty >= 1 should fail")
	}
	bad := good
	bad.Input = []float64{-5, 10}
	if _, _, err := Generate(bad, DefaultConfig()); err == nil {
		t.Error("out-of-bounds input should fail")
	}
	cfg := DefaultConfig()
	cfg.Weights = Weights{Diff: -1}
	if _, _, err := Generate(good, cfg); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestForestCandidates(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	p := Problem{
		Schema:      schema,
		Model:       model,
		Threshold:   0.5,
		Input:       []float64{30, 30}, // rejected: sum 60
		Constraints: constraints.NewSet(),
	}
	cands, stats, err := Generate(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates found")
	}
	checkInvariant(t, p, cands)
	if stats.Evaluations == 0 || stats.PoolSize == 0 {
		t.Errorf("stats look empty: %+v", stats)
	}
	// The axis probes must find gap-1 candidates (move a alone to ~70+).
	foundGap1 := false
	for _, c := range cands {
		if c.Gap == 1 {
			foundGap1 = true
		}
	}
	if !foundGap1 {
		t.Error("expected a single-feature candidate from axis probes")
	}
	// The best candidate should not move absurdly far: the decision
	// boundary is ~40 range-units away.
	if cands[0].Diff > 90 {
		t.Errorf("best candidate moved %.1f, boundary is ~57 away", cands[0].Diff)
	}
}

func TestLogisticCandidates(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedLogistic(t)
	p := Problem{
		Schema:      schema,
		Model:       model,
		Threshold:   0.5,
		Input:       []float64{20, 40},
		Constraints: constraints.NewSet(),
	}
	cands, stats, err := Generate(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	checkInvariant(t, p, cands)
	if stats.FirstFeasibleIter == -1 {
		t.Error("no feasible iteration recorded")
	}
}

func TestNoModificationCandidate(t *testing.T) {
	// Input already approved: the diff=0 candidate must appear and rank.
	schema := twoDSchema(t)
	model := trainedForest(t)
	p := Problem{
		Schema:      schema,
		Model:       model,
		Threshold:   0.5,
		Input:       []float64{80, 80},
		Constraints: constraints.NewSet(),
	}
	cands, _, err := Generate(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cands {
		if c.Diff == 0 && c.Gap == 0 {
			found = true
		}
	}
	if !found {
		t.Error("unmodified approved input should be a candidate")
	}
}

func TestConstraintsRespected(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	set := constraints.NewSet(
		constraints.MustParse("a <= old(a) + 15"), // a can grow at most 15
		constraints.MustParse("b >= old(b)"),      // b cannot decrease
	)
	p := Problem{
		Schema:      schema,
		Model:       model,
		Threshold:   0.5,
		Input:       []float64{30, 30},
		Constraints: set,
	}
	cands, _, err := Generate(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("constrained problem should still be solvable (b can rise to 100)")
	}
	checkInvariant(t, p, cands)
	for i, c := range cands {
		if c.X[0] > 45+1e-6 {
			t.Errorf("candidate %d violates a-cap: %g", i, c.X[0])
		}
		if c.X[1] < 30-1e-6 {
			t.Errorf("candidate %d decreased b: %g", i, c.X[1])
		}
	}
}

func TestImmutableFeaturePinned(t *testing.T) {
	s, err := feature.NewSchema(
		feature.Field{Name: "locked", Kind: feature.Continuous, Min: 0, Max: 100, Immutable: true},
		feature.Field{Name: "free", Kind: feature.Continuous, Min: 0, Max: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	model := trainedForest(t) // over the same 2-D domain
	p := Problem{
		Schema:      s,
		Model:       model,
		Threshold:   0.5,
		Input:       []float64{30, 30},
		Constraints: constraints.NewSet(),
	}
	cands, _, err := Generate(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cands {
		if c.X[0] != 30 {
			t.Errorf("candidate %d modified the immutable feature: %g", i, c.X[0])
		}
	}
}

func TestInfeasibleProblemReturnsEmpty(t *testing.T) {
	schema := twoDSchema(t)
	p := Problem{
		Schema:      schema,
		Model:       mlmodel.ConstantModel{P: 0.1},
		Threshold:   0.5,
		Input:       []float64{30, 30},
		Constraints: constraints.NewSet(),
	}
	cands, stats, err := Generate(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("constant-reject model cannot have candidates, got %d", len(cands))
	}
	if stats.FirstFeasibleIter != -1 {
		t.Error("FirstFeasibleIter should be -1")
	}
}

func TestDeterminism(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	p := Problem{Schema: schema, Model: model, Threshold: 0.5, Input: []float64{30, 30}, Constraints: constraints.NewSet()}
	cfg := DefaultConfig()
	a, _, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("different candidate counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !feature.Equal(a[i].X, b[i].X) {
			t.Fatalf("candidate %d differs between runs", i)
		}
	}
}

func TestKLimitsOutput(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	p := Problem{Schema: schema, Model: model, Threshold: 0.5, Input: []float64{40, 40}, Constraints: constraints.NewSet()}
	cfg := DefaultConfig()
	cfg.K = 3
	cands, _, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 3 {
		t.Errorf("K=3 returned %d candidates", len(cands))
	}
}

// Diversity ablation: with the MMR penalty the average pairwise distance of
// the selected set should be at least that of greedy selection.
func TestDiverseSelectionSpreadsCandidates(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	p := Problem{Schema: schema, Model: model, Threshold: 0.5, Input: []float64{30, 30}, Constraints: constraints.NewSet()}

	spread := func(lambda float64) float64 {
		cfg := DefaultConfig()
		cfg.K = 5
		cfg.DiversityPenalty = lambda
		cands, _, err := Generate(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) < 2 {
			return 0
		}
		var sum float64
		var n int
		for i := range cands {
			for j := i + 1; j < len(cands); j++ {
				sum += feature.Diff(cands[i].X, cands[j].X)
				n++
			}
		}
		return sum / float64(n)
	}
	greedy, diverse := spread(0), spread(0.7)
	if diverse < greedy {
		t.Errorf("diverse spread %.2f < greedy spread %.2f", diverse, greedy)
	}
}

func TestConvergesWithinFewIterations(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	p := Problem{Schema: schema, Model: model, Threshold: 0.5, Input: []float64{30, 30}, Constraints: constraints.NewSet()}
	_, stats, err := Generate(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Errorf("search did not converge in %d iterations", stats.Iterations)
	}
	if stats.Iterations > 15 {
		t.Errorf("took %d iterations; the paper reports a small number", stats.Iterations)
	}
}

// Property: for random rejected inputs, every returned candidate satisfies
// the Definition II.3 invariant (E9 of DESIGN.md).
func TestInvariantProperty(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	set := constraints.NewSet(constraints.MustParse("gap <= 2"))
	f := func(seedA, seedB uint8) bool {
		in := []float64{float64(seedA) * 100 / 255, float64(seedB) * 100 / 255}
		p := Problem{Schema: schema, Model: model, Threshold: 0.5, Input: in, Constraints: set}
		cfg := DefaultConfig()
		cfg.K = 4
		cands, _, err := Generate(p, cfg)
		if err != nil {
			return false
		}
		for _, c := range cands {
			if c.Confidence <= 0.5 || c.Gap > 2 {
				return false
			}
			if schema.Validate(c.X) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Objective weights steer the returned candidates: a confidence-heavy
// scalarization yields a higher-confidence best candidate than a
// distance-heavy one, which in turn yields a smaller best diff.
func TestWeightsSteerObjectives(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	base := Problem{Schema: schema, Model: model, Threshold: 0.5, Input: []float64{30, 30}, Constraints: constraints.NewSet()}

	run := func(w Weights) Candidate {
		cfg := DefaultConfig()
		cfg.K = 1
		cfg.DiversityPenalty = 0
		cfg.Weights = w
		cands, _, err := Generate(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		return cands[0]
	}
	confHeavy := run(Weights{Diff: 0.1, Gap: 0.1, Confidence: 5})
	diffHeavy := run(Weights{Diff: 5, Gap: 0.1, Confidence: 0.1})
	if confHeavy.Confidence < diffHeavy.Confidence {
		t.Errorf("confidence-heavy best p %.3f < diff-heavy %.3f", confHeavy.Confidence, diffHeavy.Confidence)
	}
	if diffHeavy.Diff > confHeavy.Diff {
		t.Errorf("diff-heavy best diff %.1f > confidence-heavy %.1f", diffHeavy.Diff, confHeavy.Diff)
	}
}

// Time-dependent constraints apply per time point: the same problem at a
// different Time sees a different constraint set.
func TestTimeDependentConstraints(t *testing.T) {
	schema := twoDSchema(t)
	model := trainedForest(t)
	set := &constraints.Set{}
	*set = *constraints.NewSet()
	set.AddAt(constraints.MustParse("a <= 35"), 0) // only binds at t=0
	mk := func(tp int) int {
		cands, _, err := Generate(Problem{
			Schema: schema, Model: model, Threshold: 0.5,
			Input: []float64{30, 30}, Constraints: set, Time: tp,
		}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		over := 0
		for _, c := range cands {
			if c.X[0] > 35+1e-9 {
				over++
			}
		}
		return over
	}
	if over := mk(0); over != 0 {
		t.Errorf("t=0: %d candidates violate the t=0 cap", over)
	}
	if over := mk(1); over == 0 {
		t.Log("t=1: no candidate uses a > 35 (allowed but not required)")
	}
}
