// Package candgen generates Decision Altering Candidates (Definition II.3):
// modifications x' of an input x_t with x' ∈ C_t(x_t) and M_t(x') > δ_t.
//
// It adapts the constraints-based explanation algorithm of Deutch & Frost
// (ICDE 2019) as described in the paper's Section II-A: an iterative search
// with model-dependent move heuristics (split-threshold crossings for tree
// ensembles, gradient steps for logistic models, scaled coordinate moves for
// any model), run as a beam search of width k that prunes the least
// promising states, extended with the diverse objectives diff / gap /
// confidence, and concluded by a maximal-marginal-relevance selection of a
// small diverse top-k.
package candgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"justintime/internal/constraints"
	"justintime/internal/feature"
	"justintime/internal/mlmodel"
)

// Candidate is one decision-altering candidate with its paper-visible
// properties.
type Candidate struct {
	// X is the modified feature vector x'.
	X []float64
	// Diff is the l2 distance from the temporal input.
	Diff float64
	// Gap is the number of modified attributes.
	Gap int
	// Confidence is the model score M_t(x').
	Confidence float64
	// q caches the scalarized quality at pool-insertion time so ranking,
	// MMR selection and pool upserts never recompute it.
	q float64
}

// Problem describes one candidate-generation task (one time point).
type Problem struct {
	Schema      *feature.Schema
	Model       mlmodel.Model
	Threshold   float64 // δ_t: candidates need Confidence > Threshold
	Input       []float64
	Constraints *constraints.Set // may be nil (unconstrained beyond schema)
	Time        int
}

// Config tunes the search.
type Config struct {
	// K is the number of candidates to return (top-k).
	K int
	// BeamWidth is the number of states kept per iteration; 0 selects
	// max(2*K, 8).
	BeamWidth int
	// MaxIters bounds beam iterations; 0 selects 25.
	MaxIters int
	// Patience is the number of non-improving iterations before the beam
	// stops; 0 selects 3.
	Patience int
	// DiversityPenalty is the MMR trade-off λ in [0, 1): 0 selects
	// greedily by quality alone (the ablation baseline); larger values
	// prefer mutually distant candidates. Default 0.5 when negative.
	DiversityPenalty float64
	// Weights scalarizes the objectives when ranking feasible candidates.
	Weights Weights
	// Seed drives random coordinate moves.
	Seed int64
}

// Weights balances the three optimization objectives of Section II-A. All
// must be non-negative; zeros fall back to defaults (1, 1, 1).
type Weights struct {
	Diff       float64 // prefer small l2 modification
	Gap        float64 // prefer few modified attributes
	Confidence float64 // prefer high model score
}

// DefaultConfig returns the configuration used by the pipeline: top-8
// diverse candidates from a width-16 beam.
func DefaultConfig() Config {
	return Config{K: 8, BeamWidth: 16, MaxIters: 25, Patience: 3, DiversityPenalty: 0.5, Weights: Weights{1, 1, 1}}
}

func (c Config) withDefaults() Config {
	if c.BeamWidth == 0 {
		c.BeamWidth = 2 * c.K
		if c.BeamWidth < 8 {
			c.BeamWidth = 8
		}
	}
	if c.MaxIters == 0 {
		c.MaxIters = 25
	}
	if c.Patience == 0 {
		c.Patience = 3
	}
	if c.DiversityPenalty < 0 {
		c.DiversityPenalty = 0.5
	}
	if c.Weights == (Weights{}) {
		c.Weights = Weights{1, 1, 1}
	}
	return c
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("candgen: K must be >= 1, got %d", c.K)
	}
	if c.BeamWidth < 0 || c.MaxIters < 0 || c.Patience < 0 {
		return fmt.Errorf("candgen: negative search parameter")
	}
	if c.DiversityPenalty >= 1 {
		return fmt.Errorf("candgen: DiversityPenalty must be < 1, got %g", c.DiversityPenalty)
	}
	if c.Weights.Diff < 0 || c.Weights.Gap < 0 || c.Weights.Confidence < 0 {
		return fmt.Errorf("candgen: negative objective weight")
	}
	return nil
}

// Stats reports how the search behaved, feeding the convergence experiment
// (the paper: "the algorithm converges after a small number of iterations").
type Stats struct {
	// Iterations is the number of beam iterations executed.
	Iterations int
	// FirstFeasibleIter is the iteration at which the first decision-
	// altering candidate appeared (0 when the axis probes or the
	// unmodified input already alter the decision; -1 if none was found).
	FirstFeasibleIter int
	// Evaluations counts model evaluations.
	Evaluations int
	// Converged is true when the beam stopped by patience rather than by
	// the iteration cap.
	Converged bool
	// PoolSize is the number of distinct feasible candidates discovered.
	PoolSize int
}

// Generate runs the search and returns at most cfg.K diverse decision-
// altering candidates, ordered by scalarized quality (best first).
func Generate(p Problem, cfg Config) ([]Candidate, Stats, error) {
	return GenerateContext(context.Background(), p, cfg)
}

// GenerateContext is Generate with cooperative cancellation: the search
// checks ctx between axis probes, beam iterations and shrink rounds, and
// returns an error wrapping ctx.Err() as soon as it observes cancellation,
// so a disconnected client stops burning CPU within one iteration.
func GenerateContext(ctx context.Context, p Problem, cfg Config) ([]Candidate, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, Stats{}, err
	}
	if p.Schema == nil || p.Model == nil {
		return nil, Stats{}, fmt.Errorf("candgen: Problem needs Schema and Model")
	}
	if err := p.Schema.Validate(p.Input); err != nil {
		return nil, Stats{}, fmt.Errorf("candgen: input: %w", err)
	}
	if p.Constraints == nil {
		p.Constraints = constraints.NewSet()
	}

	s := &search{
		ctx:    ctx,
		p:      p,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		box:    p.Constraints.Box(p.Schema, p.Input, p.Time),
		scales: p.Schema.Scales(),
		pool:   make(map[string]Candidate),
		stats:  Stats{FirstFeasibleIter: -1},
	}
	// The ensemble's split-threshold map is invariant for the whole search:
	// aggregate it once here instead of on every beam expansion.
	if tm, ok := p.Model.(thresholder); ok {
		s.thresholds = tm.Thresholds()
	}
	s.keyScales = make([]float64, len(s.scales))
	for i, sc := range s.scales {
		if sc <= 0 {
			sc = 1
		}
		s.keyScales[i] = sc
	}

	// Phase 0: the unmodified input (diff = 0, the Q1 "no modification"
	// candidate) and per-axis probes (gap = 1 candidates).
	s.consider(p.Input, 0)
	if err := s.axisProbes(); err != nil {
		return nil, s.stats, err
	}

	// Phase 1: beam search with model-dependent moves.
	if err := s.beam(); err != nil {
		return nil, s.stats, err
	}

	// Phase 2: shrink feasible candidates toward the input to reduce diff.
	if err := s.shrinkPool(); err != nil {
		return nil, s.stats, err
	}

	// Phase 3: diverse top-k selection.
	out := s.selectTopK()
	s.stats.PoolSize = len(s.pool)
	return out, s.stats, nil
}

// thresholder is implemented by tree-ensemble models whose split thresholds
// define the model-dependent move set.
type thresholder interface{ Thresholds() map[int][]float64 }

type search struct {
	ctx    context.Context
	p      Problem
	cfg    Config
	rng    *rand.Rand
	box    constraints.Box
	scales []float64
	pool   map[string]Candidate
	stats  Stats
	// thresholds is the model's per-feature split thresholds, aggregated
	// once per search (nil for models without a tree ensemble).
	thresholds map[int][]float64
	// keyScales is scales with non-positive entries replaced by 1, and
	// keyBuf the scratch buffer, both for the dedup key hot path.
	keyScales []float64
	keyBuf    []byte
}

// ctxErr translates a cancelled context into the search's error, checked at
// every phase boundary and loop iteration (cooperative cancellation).
func (s *search) ctxErr() error {
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("candgen: search cancelled: %w", err)
	}
	return nil
}

// consider evaluates x fully; when it is a decision-altering candidate it is
// recorded in the pool. Returns the model score either way.
func (s *search) consider(x []float64, iter int) (float64, bool) {
	x = s.p.Schema.Clamp(x)
	s.stats.Evaluations++
	conf := s.p.Model.Predict(x)
	return conf, s.considerScored(x, conf, iter)
}

// predictBatch scores a whole move set with a single model call. Rows must
// already be schema-clamped.
func (s *search) predictBatch(X [][]float64) []float64 {
	s.stats.Evaluations += len(X)
	return mlmodel.PredictBatch(s.p.Model, X)
}

// considerScored records x in the pool when it is a decision-altering
// candidate, given its already-computed model score. x must already be
// schema-clamped.
func (s *search) considerScored(x []float64, conf float64, iter int) bool {
	if conf <= s.p.Threshold {
		return false
	}
	ctx := &constraints.Context{
		Schema:     s.p.Schema,
		Original:   s.p.Input,
		Candidate:  x,
		Time:       s.p.Time,
		Confidence: conf,
	}
	ok, err := s.p.Constraints.Eval(ctx)
	if err != nil || !ok {
		return false
	}
	c := Candidate{
		X:          x,
		Diff:       feature.Diff(x, s.p.Input),
		Gap:        feature.Gap(x, s.p.Input),
		Confidence: conf,
	}
	c.q = s.quality(c)
	k := s.key(x)
	if prev, exists := s.pool[k]; !exists || c.q > prev.q {
		s.pool[k] = c
	}
	if s.stats.FirstFeasibleIter == -1 {
		s.stats.FirstFeasibleIter = iter
	}
	return true
}

// key buckets candidates by rounding each coordinate to 1/1000 of its range,
// deduplicating near-identical pool entries. The key is a fixed-width binary
// encoding of the rounded coordinates built in a reused scratch buffer —
// this runs once per proposed move, so it must not format text.
func (s *search) key(x []float64) string {
	buf := s.keyBuf[:0]
	for i, v := range x {
		q := uint64(int64(math.Round(v / s.keyScales[i] * 1000)))
		buf = append(buf,
			byte(q), byte(q>>8), byte(q>>16), byte(q>>24),
			byte(q>>32), byte(q>>40), byte(q>>48), byte(q>>56))
	}
	s.keyBuf = buf
	return string(buf)
}

// quality is the scalarized objective for ranking feasible candidates:
// higher is better.
func (s *search) quality(c Candidate) float64 {
	w := s.cfg.Weights
	normDiff := feature.ScaledDiff(c.X, s.p.Input, s.scales) / math.Sqrt(float64(len(c.X)))
	normGap := float64(c.Gap) / float64(len(c.X))
	return w.Confidence*c.Confidence - w.Diff*normDiff - w.Gap*normGap
}

// axisProbes binary-searches each mutable feature axis for the smallest
// single-feature modification that alters the decision, in both directions.
func (s *search) axisProbes() error {
	for _, i := range s.p.Schema.MutableIndices() {
		if err := s.ctxErr(); err != nil {
			return err
		}
		for _, dir := range []float64{1, -1} {
			lo := s.p.Input[i]
			hi := lo
			if dir > 0 {
				hi = s.box.Hi[i]
			} else {
				hi = s.box.Lo[i]
			}
			if hi == lo || math.IsInf(hi, 0) {
				continue
			}
			// Is the far end feasible at all?
			probe := feature.Clone(s.p.Input)
			probe[i] = hi
			if _, ok := s.consider(probe, 0); !ok {
				continue
			}
			// Binary search for the closest feasible point on the axis.
			a, b := lo, hi
			for step := 0; step < 24; step++ {
				mid := (a + b) / 2
				probe[i] = mid
				if _, ok := s.consider(probe, 0); ok {
					b = mid
				} else {
					a = mid
				}
			}
		}
	}
	return nil
}

// beamState is one state of the beam with its cached score.
type beamState struct {
	x    []float64
	conf float64
}

func (s *search) beam() error {
	start := s.p.Schema.Clamp(s.p.Input)
	beam := []beamState{{x: start, conf: s.p.Model.Predict(start)}}
	s.stats.Evaluations++
	seen := map[string]bool{s.key(start): true}

	bestObjective := math.Inf(-1)
	sincImprove := 0
	for iter := 1; iter <= s.cfg.MaxIters; iter++ {
		if err := s.ctxErr(); err != nil {
			return err
		}
		s.stats.Iterations = iter
		// Collect the whole iteration's move set first, then score it with
		// one batch model call — for tree ensembles this streams every move
		// through the flattened node arrays instead of paying a full
		// ensemble walk per move. Beam states and dedup keys use the
		// box-clamped vector; scoring and the pool use a re-schema-clamped
		// copy, because box bounds from constraint constants can land on
		// fractional values of discrete fields (or ±Inf for contradictory
		// constraints) that only Schema.Clamp repairs.
		var moves, scored [][]float64
		for _, st := range beam {
			for _, mv := range s.proposeMoves(st.x) {
				mv = s.box.Clamp(s.p.Schema.Clamp(mv))
				k := s.key(mv)
				if seen[k] {
					continue
				}
				seen[k] = true
				moves = append(moves, mv)
				scored = append(scored, s.p.Schema.Clamp(mv))
			}
		}
		if len(moves) == 0 {
			s.stats.Converged = true
			return nil
		}
		confs := s.predictBatch(scored)
		next := make([]beamState, len(moves))
		for i, mv := range moves {
			s.considerScored(scored[i], confs[i], iter)
			next[i] = beamState{x: mv, conf: confs[i]}
		}
		// Rank each state once (the comparator would otherwise recompute
		// quality O(n log n) times): infeasible states climb by confidence;
		// feasible states by quality plus a constant to dominate them.
		ranks := make([]float64, len(next))
		for i, st := range next {
			ranks[i] = s.rank(st)
		}
		order := make([]int, len(next))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return ranks[order[a]] > ranks[order[b]] })
		if len(order) > s.cfg.BeamWidth {
			order = order[:s.cfg.BeamWidth]
		}
		beam = make([]beamState, len(order))
		for j, i := range order {
			beam[j] = next[i]
		}
		if top := ranks[order[0]]; top > bestObjective+1e-9 {
			bestObjective = top
			sincImprove = 0
		} else {
			sincImprove++
			if sincImprove >= s.cfg.Patience {
				s.stats.Converged = true
				return nil
			}
		}
	}
	return nil
}

// rank orders beam states: infeasible states by raw confidence, feasible
// states by scalarized quality shifted above any confidence.
func (s *search) rank(st beamState) float64 {
	if st.conf > s.p.Threshold {
		return 10 + s.quality(Candidate{
			X: st.x, Confidence: st.conf,
			Diff: feature.Diff(st.x, s.p.Input),
			Gap:  feature.Gap(st.x, s.p.Input),
		})
	}
	return st.conf
}

// proposeMoves generates neighbor states with the model-dependent heuristics
// of Section II-A.
func (s *search) proposeMoves(x []float64) [][]float64 {
	var moves [][]float64
	mutable := s.p.Schema.MutableIndices()

	// Tree-ensemble heuristic: cross the nearest split thresholds
	// (aggregated once per search in Generate).
	if s.thresholds != nil {
		for _, i := range mutable {
			moves = append(moves, s.thresholdMoves(x, i, s.thresholds[i])...)
		}
	}

	// Logistic heuristic: step along the probability gradient.
	type gradient interface{ Gradient(x []float64) []float64 }
	if gm, ok := s.p.Model.(gradient); ok {
		g := gm.Gradient(x)
		for _, frac := range []float64{0.02, 0.08, 0.2} {
			mv := feature.Clone(x)
			// Normalize per-feature by range so one step moves each
			// feature a comparable fraction of its domain.
			norm := 0.0
			for _, i := range mutable {
				norm += math.Abs(g[i]) * s.scales[i]
			}
			if norm < 1e-18 {
				break
			}
			for _, i := range mutable {
				mv[i] += frac * g[i] * s.scales[i] * s.scales[i] / norm
			}
			moves = append(moves, mv)
		}
	}

	// Generic coordinate moves: ± a fraction of the feature range.
	for _, i := range mutable {
		for _, frac := range []float64{0.02, 0.1, 0.3} {
			step := frac * s.scales[i]
			if step <= 0 {
				continue
			}
			up := feature.Clone(x)
			up[i] += step
			down := feature.Clone(x)
			down[i] -= step
			moves = append(moves, up, down)
		}
	}

	// A couple of random two-feature moves to escape plateaus.
	if len(mutable) >= 2 {
		for k := 0; k < 2; k++ {
			mv := feature.Clone(x)
			i := mutable[s.rng.Intn(len(mutable))]
			j := mutable[s.rng.Intn(len(mutable))]
			mv[i] += (s.rng.Float64() - 0.5) * 0.2 * s.scales[i]
			mv[j] += (s.rng.Float64() - 0.5) * 0.2 * s.scales[j]
			moves = append(moves, mv)
		}
	}
	return moves
}

// thresholdMoves proposes crossing the nearest ensemble split thresholds on
// feature i, in both directions.
func (s *search) thresholdMoves(x []float64, i int, thrs []float64) [][]float64 {
	if len(thrs) == 0 {
		return nil
	}
	eps := s.scales[i] * 1e-3
	if eps <= 0 {
		eps = 1e-6
	}
	var moves [][]float64
	// The nearest 2 thresholds above and below the current value.
	above, below := 0, 0
	j := sort.SearchFloat64s(thrs, x[i])
	for u := j; u < len(thrs) && above < 2; u++ {
		if thrs[u] > x[i] {
			mv := feature.Clone(x)
			mv[i] = thrs[u] + eps
			moves = append(moves, mv)
			above++
		}
	}
	for d := j - 1; d >= 0 && below < 2; d-- {
		if thrs[d] < x[i] {
			mv := feature.Clone(x)
			mv[i] = thrs[d] - eps
			moves = append(moves, mv)
			below++
		}
	}
	return moves
}

// shrinkPool walks each feasible candidate back toward the input by binary
// search along the connecting segment, keeping feasibility, to reduce diff.
// The searches run in lockstep so each of the 12 bisection rounds scores
// every candidate's midpoint with one batch model call.
func (s *search) shrinkPool() error {
	originals := make([]Candidate, 0, len(s.pool))
	for _, c := range s.pool {
		if c.Diff > 0 {
			originals = append(originals, c)
		}
	}
	// Deterministic iteration order.
	sort.Slice(originals, func(a, b int) bool {
		return s.key(originals[a].X) < s.key(originals[b].X)
	})
	if len(originals) == 0 {
		return nil
	}
	lo := make([]float64, len(originals)) // fraction of the way input->candidate
	hi := make([]float64, len(originals))
	for i := range hi {
		hi[i] = 1
	}
	rows := make([][]float64, len(originals))
	for step := 0; step < 12; step++ {
		if err := s.ctxErr(); err != nil {
			return err
		}
		for j, c := range originals {
			mid := (lo[j] + hi[j]) / 2
			x := make([]float64, len(c.X))
			for i := range x {
				x[i] = s.p.Input[i] + mid*(c.X[i]-s.p.Input[i])
			}
			rows[j] = s.p.Schema.Clamp(x)
		}
		confs := s.predictBatch(rows)
		for j := range originals {
			if s.considerScored(rows[j], confs[j], s.stats.Iterations) {
				hi[j] = (lo[j] + hi[j]) / 2
			} else {
				lo[j] = (lo[j] + hi[j]) / 2
			}
		}
	}
	return nil
}

// selectTopK picks K pool candidates by maximal marginal relevance:
// quality minus λ times similarity to the already-selected set.
func (s *search) selectTopK() []Candidate {
	all := make([]Candidate, 0, len(s.pool))
	for _, c := range s.pool {
		all = append(all, c)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].q != all[b].q {
			return all[a].q > all[b].q
		}
		return s.key(all[a].X) < s.key(all[b].X)
	})
	if len(all) <= s.cfg.K {
		return all
	}
	lambda := s.cfg.DiversityPenalty
	if lambda == 0 {
		return all[:s.cfg.K]
	}
	sqrtD := math.Sqrt(float64(s.p.Schema.Dim()))
	similarity := func(a, b Candidate) float64 {
		d := feature.ScaledDiff(a.X, b.X, s.scales) / sqrtD
		return 1 / (1 + 10*d)
	}
	selected := []Candidate{all[0]}
	remaining := all[1:]
	// maxSim[i] tracks each remaining candidate's similarity to the closest
	// already-selected one; it is updated incrementally as candidates are
	// selected, so each MMR round computes one new similarity per candidate
	// instead of rescanning the whole selected set.
	maxSim := make([]float64, len(remaining))
	for i, c := range remaining {
		maxSim[i] = similarity(c, selected[0])
	}
	for len(selected) < s.cfg.K && len(remaining) > 0 {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i, c := range remaining {
			score := (1-lambda)*c.q - lambda*maxSim[i]
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		picked := remaining[bestIdx]
		selected = append(selected, picked)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		maxSim = append(maxSim[:bestIdx], maxSim[bestIdx+1:]...)
		for i, c := range remaining {
			if sim := similarity(c, picked); sim > maxSim[i] {
				maxSim[i] = sim
			}
		}
	}
	// Present best-quality first.
	sort.Slice(selected, func(a, b int) bool { return selected[a].q > selected[b].q })
	return selected
}
