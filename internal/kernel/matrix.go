// Package kernel provides the small linear-algebra and kernel-method toolbox
// used by the future-model generators: a dense matrix type, positive-definite
// solvers, RBF/linear/polynomial kernels, Gram matrices and kernel mean
// embeddings (the core machinery of Lampert's "Predicting the future behavior
// of a time-varying probability distribution", CVPR 2015).
package kernel

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("kernel: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Add accumulates m[i,j] += v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// AddDiagonal adds v to every diagonal entry (ridge regularization).
func (m *Matrix) AddDiagonal(v float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.Cols+i] += v
	}
}

// MulVec returns m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("kernel: MulVec dim %d, want %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Solve solves m * x = b by Gaussian elimination with partial pivoting,
// without modifying m or b. It returns an error when the system is singular
// to working precision.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("kernel: Solve needs a square matrix, have %dx%d", m.Rows, m.Cols)
	}
	if len(b) != m.Rows {
		return nil, fmt.Errorf("kernel: Solve rhs dim %d, want %d", len(b), m.Rows)
	}
	n := m.Rows
	a := m.Clone()
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("kernel: singular matrix at column %d", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := a.At(col, j)
				a.Set(col, j, a.At(pivot, j))
				a.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Cholesky computes the lower-triangular factor L with m = L L^T. The input
// must be symmetric positive definite; otherwise an error is returned.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("kernel: Cholesky needs a square matrix")
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("kernel: matrix not positive definite at row %d", i)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveSPD solves m * x = b for symmetric positive-definite m via Cholesky.
func (m *Matrix) SolveSPD(b []float64) ([]float64, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	if len(b) != m.Rows {
		return nil, fmt.Errorf("kernel: SolveSPD rhs dim %d, want %d", len(b), m.Rows)
	}
	n := m.Rows
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward solve L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
