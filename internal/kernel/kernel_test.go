package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Errorf("At = %g, want 7", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Error("Clone aliases data")
	}
	v := m.MulVec([]float64{1, 2, 3})
	if v[0] != 14 || v[1] != 0 {
		t.Errorf("MulVec = %v", v)
	}
}

func TestMatrixShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := m.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero top-left pivot forces a row swap.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := m.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("Solve = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Solve([]float64{1, 2}); err == nil {
		t.Error("singular system should fail")
	}
	if _, err := NewMatrix(2, 3).Solve([]float64{1, 2}); err == nil {
		t.Error("non-square should fail")
	}
	if _, err := NewMatrix(2, 2).Solve([]float64{1}); err == nil {
		t.Error("wrong rhs dim should fail")
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	b := []float64{4, 6}
	if _, err := m.Solve(b); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 || b[0] != 4 {
		t.Error("Solve mutated inputs")
	}
}

func TestCholeskyAndSolveSPD(t *testing.T) {
	// SPD matrix [[4,2],[2,3]].
	m := NewMatrix(2, 2)
	m.Set(0, 0, 4)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 3)
	l, err := m.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt(2)]]
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 || math.Abs(l.At(1, 1)-math.Sqrt2) > 1e-12 {
		t.Errorf("Cholesky = [[%g %g][%g %g]]", l.At(0, 0), l.At(0, 1), l.At(1, 0), l.At(1, 1))
	}
	x, err := m.SolveSPD([]float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Solve([]float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-want[0]) > 1e-10 || math.Abs(x[1]-want[1]) > 1e-10 {
		t.Errorf("SolveSPD = %v, Solve = %v", x, want)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, -1)
	if _, err := m.Cholesky(); err == nil {
		t.Error("indefinite matrix should fail")
	}
}

func TestSolveRandomSPDSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		// Build SPD as A^T A + I.
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		spd := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a.At(k, i) * a.At(k, j)
				}
				spd.Set(i, j, s)
			}
		}
		spd.AddDiagonal(1)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := spd.MulVec(want)
		got, err := spd.SolveSPD(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestKernelValues(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if v := (RBF{Gamma: 0.5}).Eval(a, a); v != 1 {
		t.Errorf("RBF(a,a) = %g, want 1", v)
	}
	if v := (RBF{Gamma: 0.5}).Eval(a, b); math.Abs(v-math.Exp(-1)) > 1e-12 {
		t.Errorf("RBF(a,b) = %g, want e^-1", v)
	}
	if v := (Linear{}).Eval([]float64{1, 2}, []float64{3, 4}); v != 11 {
		t.Errorf("Linear = %g, want 11", v)
	}
	if v := (Polynomial{Degree: 2, C: 1}).Eval([]float64{1}, []float64{2}); v != 9 {
		t.Errorf("Poly = %g, want 9", v)
	}
	for _, k := range []Kernel{RBF{Gamma: 1}, Linear{}, Polynomial{Degree: 2, C: 1}} {
		if k.Name() == "" {
			t.Error("empty kernel name")
		}
	}
}

func TestRBFSymmetricBounded(t *testing.T) {
	k := RBF{Gamma: 0.3}
	f := func(a, b [3]float64) bool {
		va, vb := a[:], b[:]
		for i := range va {
			if math.IsNaN(va[i]) {
				va[i] = 0
			}
			if math.IsNaN(vb[i]) {
				vb[i] = 0
			}
		}
		x, y := k.Eval(va, vb), k.Eval(vb, va)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGram(t *testing.T) {
	A := [][]float64{{0}, {1}}
	B := [][]float64{{0}, {1}, {2}}
	g := Gram(Linear{}, A, B)
	if g.Rows != 2 || g.Cols != 3 {
		t.Fatalf("Gram shape %dx%d", g.Rows, g.Cols)
	}
	if g.At(1, 2) != 2 || g.At(0, 1) != 0 {
		t.Errorf("Gram values wrong: %g %g", g.At(1, 2), g.At(0, 1))
	}
}

func TestMedianHeuristicGamma(t *testing.T) {
	// All pairwise distances are 1 => gamma = 1/2.
	X := [][]float64{{0}, {1}}
	if g := MedianHeuristicGamma(X, 100); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("gamma = %g, want 0.5", g)
	}
	if g := MedianHeuristicGamma(nil, 100); g != 1 {
		t.Errorf("degenerate gamma = %g, want 1", g)
	}
	if g := MedianHeuristicGamma([][]float64{{1}, {1}, {1}}, 100); g != 1 {
		t.Errorf("zero-distance gamma = %g, want 1", g)
	}
}

func TestMMD2Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := func(shift float64) [][]float64 {
		out := make([][]float64, 80)
		for i := range out {
			out[i] = []float64{rng.NormFloat64() + shift, rng.NormFloat64()}
		}
		return out
	}
	k := RBF{Gamma: 0.5}
	A, B, C := sample(0), sample(0), sample(3)
	if v := MMD2(k, A, A); math.Abs(v) > 1e-10 {
		t.Errorf("MMD2(A,A) = %g, want 0", v)
	}
	near, far := MMD2(k, A, B), MMD2(k, A, C)
	if near < -1e-10 {
		t.Errorf("MMD2 negative: %g", near)
	}
	if far <= near {
		t.Errorf("shifted distribution should be farther: near=%g far=%g", near, far)
	}
	if MeanEmbeddingInner(k, nil, A) != 0 {
		t.Error("empty embedding inner should be 0")
	}
}
