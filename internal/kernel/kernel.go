package kernel

import (
	"fmt"
	"math"
	"sort"
)

// Kernel is a positive-definite similarity function on R^d.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel for logs.
	Name() string
}

// RBF is the Gaussian kernel exp(-gamma * ||a-b||^2).
type RBF struct {
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(gamma=%.4g)", k.Gamma) }

// Linear is the inner-product kernel a·b.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// Polynomial is (a·b + C)^Degree.
type Polynomial struct {
	Degree int
	C      float64
}

// Eval implements Kernel.
func (k Polynomial) Eval(a, b []float64) float64 {
	return math.Pow(Linear{}.Eval(a, b)+k.C, float64(k.Degree))
}

// Name implements Kernel.
func (k Polynomial) Name() string { return fmt.Sprintf("poly(%d,%.2g)", k.Degree, k.C) }

// Gram computes the matrix K with K[i][j] = k(A[i], B[j]).
func Gram(k Kernel, A, B [][]float64) *Matrix {
	m := NewMatrix(len(A), len(B))
	for i, a := range A {
		for j, b := range B {
			m.Set(i, j, k.Eval(a, b))
		}
	}
	return m
}

// MedianHeuristicGamma returns the standard RBF bandwidth choice
// gamma = 1 / (2 * median(||x_i - x_j||)^2) over at most maxPairs sampled
// pairs (deterministic stride sampling). Returns 1 for degenerate inputs.
func MedianHeuristicGamma(X [][]float64, maxPairs int) float64 {
	if len(X) < 2 {
		return 1
	}
	if maxPairs <= 0 {
		maxPairs = 1000
	}
	var dists []float64
	// Deterministic stride over the upper triangle.
	total := len(X) * (len(X) - 1) / 2
	stride := total/maxPairs + 1
	count := 0
	for i := 0; i < len(X) && len(dists) < maxPairs; i++ {
		for j := i + 1; j < len(X) && len(dists) < maxPairs; j++ {
			if count%stride == 0 {
				var d2 float64
				for t := range X[i] {
					d := X[i][t] - X[j][t]
					d2 += d * d
				}
				dists = append(dists, math.Sqrt(d2))
			}
			count++
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med < 1e-12 {
		return 1
	}
	return 1 / (2 * med * med)
}

// MeanEmbeddingInner returns the inner product of the kernel mean embeddings
// of the two sample sets: (1/(|A||B|)) sum_ij k(A[i], B[j]). This is the only
// primitive the distribution-dynamics extrapolator needs about embeddings.
func MeanEmbeddingInner(k Kernel, A, B [][]float64) float64 {
	if len(A) == 0 || len(B) == 0 {
		return 0
	}
	var s float64
	for _, a := range A {
		for _, b := range B {
			s += k.Eval(a, b)
		}
	}
	return s / float64(len(A)*len(B))
}

// MMD2 returns the squared maximum mean discrepancy between the empirical
// distributions of A and B: ||mu_A - mu_B||^2 in the kernel's RKHS. It is
// non-negative up to floating-point error and zero iff the embeddings match.
func MMD2(k Kernel, A, B [][]float64) float64 {
	return MeanEmbeddingInner(k, A, A) - 2*MeanEmbeddingInner(k, A, B) + MeanEmbeddingInner(k, B, B)
}
