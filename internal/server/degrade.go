package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"justintime/internal/fault"
)

// Degraded read-only mode: when the data dir stops accepting writes (a full
// disk, in practice ENOSPC anywhere in the durability path), the server
// degrades instead of dying. Mutating endpoints answer 503 + Retry-After,
// reads and deletes keep working (DELETE frees space — it is how an operator
// digs the disk out), and a background probe re-attempts a tiny durable
// write until the space comes back, at which point the mode clears itself.

// notePersistError classifies a durability-layer failure and flips the
// server into degraded mode when the cause is an out-of-space disk. The
// session manager calls it on checkpoint failures; creation calls it
// directly. Nil-safe and cheap on the nil/healthy path.
func (s *Server) notePersistError(err error) {
	if err == nil || s.cfg.DataDir == "" {
		return
	}
	if fault.IsNoSpace(err) {
		s.enterDegraded(err)
	}
}

// enterDegraded flips the server read-only (idempotently) and starts the
// recovery probe.
func (s *Server) enterDegraded(cause error) {
	if !s.degraded.CompareAndSwap(false, true) {
		return
	}
	metricDegradedMode.Set(1)
	s.logger.Error("data dir is out of space; entering read-only degraded mode",
		"err", cause, "probe_every", s.cfg.DegradedProbeInterval)
	go s.probeDegraded()
}

// probeDegraded re-attempts a small durable write every DegradedProbeInterval
// and clears degraded mode on the first success. It exits with the server.
func (s *Server) probeDegraded() {
	t := time.NewTicker(s.cfg.DegradedProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.probeWrite(); err != nil {
				continue
			}
			s.degraded.Store(false)
			metricDegradedMode.Set(0)
			s.logger.Info("data dir is writable again; leaving degraded mode")
			return
		}
	}
}

// probeWrite performs the full durable-write cycle — create, write, fsync,
// remove — through the server's I/O plane, so an injected fault schedule
// sees the probes too (each one burns down a bounded ENOSPC rule the same
// way real traffic would).
func (s *Server) probeWrite() error {
	fsys := fault.Of(s.cfg.FS)
	path := filepath.Join(s.cfg.DataDir, "sessions", "degraded.probe.tmp")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("rw-probe\n"))
	serr := f.Sync()
	cerr := f.Close()
	rerr := fsys.Remove(path)
	for _, e := range []error{werr, serr, cerr, rerr} {
		if e != nil {
			return e
		}
	}
	return nil
}

// rejectDegraded answers a mutating request with 503 + Retry-After when the
// server is read-only, reporting whether it wrote the response.
func (s *Server) rejectDegraded(w http.ResponseWriter) bool {
	if !s.degraded.Load() {
		return false
	}
	metricDegradedRejects.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.degradedRetrySecs()))
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("server is in read-only degraded mode (data dir is not writable); retry after the disk recovers"))
	return true
}

// degradedRetrySecs is the Retry-After hint while degraded: one probe
// interval rounded up, floored at 1s — the soonest the mode can clear.
func (s *Server) degradedRetrySecs() int {
	secs := int((s.cfg.DegradedProbeInterval + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
