package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"justintime/internal/fault"
	"justintime/internal/sqldb/persist"
)

// TestDegradedModeOnENOSPCAndRecovery: a full disk during session creation
// must flip the server into read-only degraded mode — 503 + Retry-After,
// gauge up — and the background probe must clear the mode automatically
// once the disk accepts writes again, with no restart.
func TestDegradedModeOnENOSPCAndRecovery(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	inj := fault.NewInjector(nil)
	h := NewWithConfig(sys, Config{
		DataDir:               dataDir,
		FS:                    inj,
		DegradedProbeInterval: 25 * time.Millisecond,
		Logger:                quietLogger(),
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })

	// A healthy create first: the fault plane at rest is invisible.
	idOK := createSession(t, srv, nil)

	// The disk fills: the next handful of mutating ops under the sessions
	// tree fail ENOSPC. The budget is finite — recovery probes burn it down,
	// which is exactly how a chaos run's disk "recovers".
	inj.AddRule(fault.Rule{Op: fault.OpMutate, Path: "sessions", Err: fault.ErrNoSpace, Times: 6})

	resp, out := postJSON(t, srv.URL+"/api/sessions", map[string]interface{}{
		"profile": johnProfile(),
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on a full disk: %d %v, want 503", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 on a full disk carries no Retry-After")
	}
	if metricDegradedMode.Value() != 1 {
		t.Fatalf("jitd_degraded_mode = %d after ENOSPC, want 1", metricDegradedMode.Value())
	}

	// Reads keep working while degraded: the healthy session still answers.
	if code, _ := askText(t, srv, idOK, "no-modification"); code != http.StatusOK {
		t.Fatalf("read while degraded: %d, want 200", code)
	}

	// The probe clears the mode by itself once the writes go through.
	deadline := time.Now().Add(10 * time.Second)
	for metricDegradedMode.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("degraded mode never cleared after the disk recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And creates flow again, no restart needed.
	id2 := createSession(t, srv, nil)
	if code, _ := askText(t, srv, id2, "no-modification"); code != http.StatusOK {
		t.Fatalf("create after recovery answered %d", code)
	}
}

// TestCorruptSessionQuarantinedInIsolation: checksum-invalid bytes in one
// session's snapshot must quarantine exactly that session — directory moved
// aside, 404 for its id, counter bumped — while the process keeps serving
// every other session untouched.
func TestCorruptSessionQuarantinedInIsolation(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	cfg := Config{DataDir: dataDir, Logger: quietLogger()}

	h1 := NewWithConfig(sys, cfg)
	srv1 := httptest.NewServer(h1)
	idBad := createSession(t, srv1, nil)
	idGood := createSession(t, srv1, nil)
	goodRows := fetchCandidates(t, srv1, idGood)
	h1.Close()
	srv1.Close()

	// Flip bytes mid-snapshot: a checksum failure on the next read, not a
	// torn tail replay can shrug off.
	snap := filepath.Join(dataDir, "sessions", idBad, persist.SnapshotFile)
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(b) / 2; i < len(b)/2+8 && i < len(b); i++ {
		b[i] ^= 0xFF
	}
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}

	pre := metricSessionsQuarantined.Value()
	h2 := NewWithConfig(sys, cfg)
	srv2 := httptest.NewServer(h2)
	t.Cleanup(srv2.Close)
	t.Cleanup(func() { h2.Close() })

	// The poisoned session reports plain 404 — not a 500, not a crash.
	if code, _ := askText(t, srv2, idBad, "no-modification"); code != http.StatusNotFound {
		t.Fatalf("corrupt session answered %d, want 404", code)
	}
	if got := metricSessionsQuarantined.Value() - pre; got != 1 {
		t.Fatalf("jitd_sessions_quarantined delta = %d, want 1", got)
	}
	// The directory moved to the quarantine area (evidence preserved for a
	// post-mortem), and out of the live sessions tree.
	if _, err := os.Stat(filepath.Join(dataDir, "quarantine", idBad, persist.SnapshotFile)); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "sessions", idBad)); !os.IsNotExist(err) {
		t.Fatal("corrupt session still in the live tree")
	}
	// Repeat access stays a stable 404 (no re-quarantine loop).
	if code, _ := askText(t, srv2, idBad, "no-modification"); code != http.StatusNotFound {
		t.Fatal("second access to quarantined session not 404")
	}
	if got := metricSessionsQuarantined.Value() - pre; got != 1 {
		t.Fatalf("quarantine counter moved on repeat access: delta %d", got)
	}

	// The healthy session is untouched: same rows, straight from disk.
	if got := fetchCandidates(t, srv2, idGood); !reflect.DeepEqual(goodRows, got) {
		t.Fatal("healthy session's data drifted across the quarantine event")
	}
}
