package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"justintime/internal/sqldb/persist"
)

// orderedCandidatesSQL gives a deterministic total order for row-for-row
// comparison (feature columns break any (time, diff, gap, p) ties).
const orderedCandidatesSQL = "SELECT * FROM candidates ORDER BY time, diff, gap, p"

func fetchCandidates(t *testing.T, srv *httptest.Server, id string) []string {
	t.Helper()
	resp, out := postJSON(t, srv.URL+"/api/sessions/"+id+"/sql",
		map[string]string{"query": orderedCandidatesSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sql: %d %v", resp.StatusCode, out)
	}
	rows, _ := out["rows"].([]interface{})
	enc := make([]string, len(rows))
	for i, r := range rows {
		enc[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(enc) // order-independent row-for-row comparison
	return enc
}

func askText(t *testing.T, srv *httptest.Server, id, kind string) (int, string) {
	t.Helper()
	resp, out := postJSON(t, srv.URL+"/api/sessions/"+id+"/ask",
		map[string]interface{}{"kind": kind, "feature": "income", "alpha": 0.7})
	text, _ := out["text"].(string)
	return resp.StatusCode, text
}

var allKinds = []string{
	"no-modification", "minimal-features-set", "dominant-feature",
	"minimal-overall-modification", "maximal-confidence", "turning-point",
}

// TestRestartRecoversSession is the PR's acceptance test: stop a server the
// way jitd's SIGTERM path does (drain, checkpoint, close stores), start a
// fresh one over the same data dir, and the old session ID must answer every
// canned question from disk — no regeneration, and a candidates database
// identical row for row.
func TestRestartRecoversSession(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	cfg := Config{DataDir: dataDir}

	h1 := NewWithConfig(sys, cfg)
	srv1 := httptest.NewServer(h1)
	id := createSession(t, srv1, []string{"income <= old(income) * 1.5"})

	preRows := fetchCandidates(t, srv1, id)
	if len(preRows) == 0 {
		t.Fatal("no candidates generated")
	}
	preAnswers := make(map[string]string, len(allKinds))
	for _, kind := range allKinds {
		code, text := askText(t, srv1, id, kind)
		if code != http.StatusOK {
			t.Fatalf("pre-restart ask %s: %d", kind, code)
		}
		preAnswers[kind] = text
	}

	// The jitd shutdown sequence: drain requests, then checkpoint all.
	if n := h1.Close(); n != 1 {
		t.Fatalf("checkpointed %d sessions on shutdown, want 1", n)
	}
	srv1.Close()

	// "Relaunch" over the same data dir.
	preRehydrations := metricRehydrations.Value()
	h2 := NewWithConfig(sys, cfg)
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	defer h2.Close()

	for _, kind := range allKinds {
		code, text := askText(t, srv2, id, kind)
		if code != http.StatusOK {
			t.Fatalf("post-restart ask %s: %d", kind, code)
		}
		if text != preAnswers[kind] {
			t.Errorf("post-restart %s answer drifted:\n  pre:  %s\n  post: %s", kind, preAnswers[kind], text)
		}
	}
	if postRows := fetchCandidates(t, srv2, id); !reflect.DeepEqual(preRows, postRows) {
		t.Fatal("recovered candidates database is not row-for-row identical")
	}
	if got := metricRehydrations.Value() - preRehydrations; got != 1 {
		t.Fatalf("rehydrations delta = %d, want 1 (one disk load, no regeneration)", got)
	}
}

// TestEvictionCheckpointsAndRehydrates drives the TTL and LRU paths: an
// evicted session leaves memory (and bumps the right counter) but comes
// back from disk on the next request instead of 404ing.
func TestEvictionCheckpointsAndRehydrates(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	h := NewWithConfig(sys, Config{DataDir: dataDir, MaxSessions: 1, SessionTTL: time.Minute})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })

	// The test owns every eviction (explicit sweepAll / cap pressure); the
	// background sweeper would race it for TTL claims once the clock jumps.
	h.sessions.stopBackgroundSweeps()
	advance := installFakeClock(h.sessions, time.Unix(1000, 0))

	idA := createSession(t, srv, nil)
	rowsA := fetchCandidates(t, srv, idA)

	// LRU: a second session under a cap of 1 evicts the first to disk. The
	// clock moves between creates so A is unambiguously the older entry
	// (eviction breaks lastUsed ties arbitrarily).
	advance(time.Second)
	preLRU := metricEvictionsLRU.Value()
	idB := createSession(t, srv, nil)
	if got := metricEvictionsLRU.Value() - preLRU; got != 1 {
		t.Fatalf("LRU evictions delta = %d, want 1", got)
	}
	if h.sessions.count() != 1 {
		t.Fatalf("resident sessions = %d, want 1", h.sessions.count())
	}
	// The evicted session rehydrates on demand (evicting B in turn — the
	// clock advances so B is strictly the LRU entry at that point).
	advance(time.Second)
	preRehydrate := metricRehydrations.Value()
	if got := fetchCandidates(t, srv, idA); !reflect.DeepEqual(rowsA, got) {
		t.Fatal("rehydrated session differs from original")
	}
	if got := metricRehydrations.Value() - preRehydrate; got != 1 {
		t.Fatalf("rehydrations delta = %d, want 1", got)
	}

	// TTL: idle past the TTL checkpoints to disk, then rehydrates on access.
	// The sweep is driven explicitly (in production the background eviction
	// loop or any shard access past the throttle does this).
	preTTL := metricEvictionsTTL.Value()
	advance(2 * time.Minute)
	h.sessions.sweepAll()
	if _, ok := h.sessions.get("s-00000000000000000000000000000000"); ok {
		t.Fatal("unknown id resolved")
	}
	if got := metricEvictionsTTL.Value() - preTTL; got != 1 {
		t.Fatalf("TTL evictions delta = %d, want 1 (only A was resident)", got)
	}
	if code, _ := askText(t, srv, idB, "no-modification"); code != http.StatusOK {
		t.Fatalf("TTL-evicted session should rehydrate, got %d", code)
	}
}

// TestDeleteRemovesOnDiskFiles covers the DELETE endpoint fix: deleting a
// session must remove its directory, whether it is memory-resident or only
// on disk, and the id must stop resolving afterwards.
func TestDeleteRemovesOnDiskFiles(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	h := NewWithConfig(sys, Config{DataDir: dataDir})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })

	del := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/sessions/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	sessionDir := func(id string) string { return filepath.Join(dataDir, "sessions", id) }

	// Resident session: files exist, DELETE removes them.
	id := createSession(t, srv, nil)
	if _, err := os.Stat(filepath.Join(sessionDir(id), persist.SnapshotFile)); err != nil {
		t.Fatalf("session has no on-disk snapshot: %v", err)
	}
	if code := del(id); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if _, err := os.Stat(sessionDir(id)); !os.IsNotExist(err) {
		t.Fatal("session directory survived DELETE")
	}
	if code, _ := askText(t, srv, id, "no-modification"); code != http.StatusNotFound {
		t.Fatalf("deleted session must not rehydrate, got %d", code)
	}
	if code := del(id); code != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", code)
	}

	// Disk-only session (evicted from memory via shutdown): DELETE still
	// removes the files.
	id2 := createSession(t, srv, nil)
	h.Close()
	if h.sessions.count() != 0 {
		t.Fatal("shutdown left sessions resident")
	}
	if code := del(id2); code != http.StatusNoContent {
		t.Fatalf("delete of disk-only session: %d", code)
	}
	if _, err := os.Stat(sessionDir(id2)); !os.IsNotExist(err) {
		t.Fatal("disk-only session directory survived DELETE")
	}

	// A traversal-shaped id must not touch the filesystem.
	if code := del("..%2F..%2Fetc"); code != http.StatusNotFound {
		t.Fatalf("traversal id: %d, want 404", code)
	}
}

// TestOrphanSweepOnStartup simulates create-then-crash debris: a session
// directory whose snapshot never committed (only meta + a temp file) must be
// cleaned up by the next server's startup sweep, while healthy directories
// survive.
func TestOrphanSweepOnStartup(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	h := NewWithConfig(sys, Config{DataDir: dataDir})
	srv := httptest.NewServer(h)
	id := createSession(t, srv, nil)
	h.Close()
	srv.Close()

	root := filepath.Join(dataDir, "sessions")
	// A crashed create: directory with metadata and a half-written snapshot
	// temp, but no committed snapshot.
	orphan := filepath.Join(root, "s-deadbeefdeadbeefdeadbeefdeadbeef")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"meta.json", persist.SnapshotFile + ".tmp"} {
		if err := os.WriteFile(filepath.Join(orphan, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file at the root.
	if err := os.WriteFile(filepath.Join(root, "junk.tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := NewWithConfig(sys, Config{DataDir: dataDir})
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	defer h2.Close()

	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned session directory survived the startup sweep")
	}
	if _, err := os.Stat(filepath.Join(root, "junk.tmp")); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived the startup sweep")
	}
	if code, _ := askText(t, srv2, id, "no-modification"); code != http.StatusOK {
		t.Fatalf("healthy session lost by the sweep: %d", code)
	}
}

// TestMetricsEndpoint asserts /debug/vars is mounted and carries the jitd
// counters, gauges and per-question latency histograms.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	// Drive one question through so its latency histogram has a sample.
	id := createSession(t, srv, nil)
	if code, _ := askText(t, srv, id, "no-modification"); code != http.StatusOK {
		t.Fatalf("ask: %d", code)
	}

	resp, out := getJSON(t, srv.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}
	for _, key := range []string{
		"jitd_sessions_live", "jitd_evictions_ttl", "jitd_evictions_lru",
		"jitd_rehydrations", "jitd_rehydrations_coalesced", "jitd_wal_bytes",
		"jitd_checkpoints", "jitd_creates_rejected",
		"jitd_question_latency_us", "jitd_shard_sessions",
	} {
		if _, ok := out[key]; !ok {
			t.Errorf("metric %s missing from /debug/vars", key)
		}
	}
	// The histogram is keyed by question kind and cumulative: the answered
	// question must have count >= 1 and a terminal le_inf equal to count.
	hists, _ := out["jitd_question_latency_us"].(map[string]interface{})
	h, _ := hists["no-modification"].(map[string]interface{})
	count, _ := h["count"].(float64)
	leInf, _ := h["le_inf"].(float64)
	if count < 1 || leInf != count {
		t.Errorf("no-modification histogram malformed: count=%v le_inf=%v (%v)", count, leInf, h)
	}
	// Per-shard gauge: an array whose sum covers the resident session.
	shards, _ := out["jitd_shard_sessions"].([]interface{})
	sum := 0.0
	for _, v := range shards {
		n, _ := v.(float64)
		sum += n
	}
	if sum < 1 {
		t.Errorf("jitd_shard_sessions sums to %v, want >= 1 resident", sum)
	}
}
