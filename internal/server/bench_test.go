package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"justintime/internal/constraints"
	"justintime/internal/dataset"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/persist"
)

// benchSessions builds a persisting manager holding `hot` resident sessions
// plus two more that the LRU cap has already checkpointed to disk. The
// returned slices are (resident ids, evicted-to-disk ids).
func benchSessions(b *testing.B, m *sessionManager, hot int) (hotIDs, cold []string) {
	b.Helper()
	sys := demoSystem(b)
	profiles := dataset.RejectedProfiles()
	ids := make([]string, 0, hot+2)
	for i := 0; i < hot+2; i++ {
		sess, err := sys.NewSession(profiles[i%len(profiles)], constraints.NewSet())
		if err != nil {
			b.Fatal(err)
		}
		id, err := m.add(sess, nil)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	// The first two adds are the least recently used, so the cap pushed
	// exactly them out to disk.
	return ids[2:], ids[:2]
}

// BenchmarkConcurrentServe is the PR's acceptance benchmark: aggregate
// request throughput (and p50/p99 latency) for lookups+queries against hot
// sessions while a background goroutine continuously forces cold sessions
// through the rehydrate→dirty→evict→checkpoint cycle. Under a global
// session-manager mutex every background snapshot+fsync and WAL replay
// stalls the hot path; with sharded, off-mutex persistence I/O it must not.
func BenchmarkConcurrentServe(b *testing.B) {
	const hot = 8
	sys := demoSystem(b)
	p := newPersister(b.TempDir(), sys, persist.SyncBatched, nil)
	m := newSessionManager(hot, time.Hour, 4, p)
	b.Cleanup(func() { m.shutdown() })
	hotIDs, cold := benchSessions(b, m, hot)

	stop := make(chan struct{})
	done := make(chan struct{})
	var churns int64
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Rehydrate one cold session (disk load). At the cap, this
			// evicts the current LRU entry, checkpointing it to disk —
			// snapshot write + fsync. The no-op UPDATE dirties the WAL so
			// the next checkpoint of this session has something to fold.
			sess, ok := m.get(cold[i%len(cold)])
			if !ok {
				b.Errorf("cold session %s lost", cold[i%len(cold)])
				return
			}
			if _, err := sess.DB().Exec("UPDATE candidates SET p = p WHERE time < 0"); err != nil {
				b.Error(err)
				return
			}
			atomic.AddInt64(&churns, 1)
		}
	}()

	stmt := sqldb.MustPrepare("SELECT COUNT(*) FROM candidates WHERE time = 0")
	var latMu sync.Mutex
	var lat []time.Duration
	pcBefore := sqldb.PlanCacheCounters()
	b.ResetTimer()
	b.SetParallelism(8) // lock-wait, not CPU, is under test: queue 8 requesters even on 1 core
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 4096)
		i := 0
		for pb.Next() {
			start := time.Now()
			id := hotIDs[i%len(hotIDs)]
			i++
			sess, ok := m.get(id)
			if !ok {
				b.Errorf("hot session %s lost", id)
				continue
			}
			if _, err := stmt.Query(sess.DB()); err != nil {
				b.Error(err)
			}
			local = append(local, time.Since(start))
		}
		latMu.Lock()
		lat = append(lat, local...)
		latMu.Unlock()
	})
	b.StopTimer()
	close(stop)
	<-done

	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds())/1e3, "p50-us")
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds())/1e3, "p99-us")
	}
	b.ReportMetric(float64(atomic.LoadInt64(&churns)), "bg-churns")
	// Plan-cache effectiveness on the hot path: the shared prepared statement
	// should re-plan only on first touch of each session DB (and once more
	// when its first index build publishes statistics), then hit thereafter.
	pcAfter := sqldb.PlanCacheCounters()
	hits := pcAfter["hits"] - pcBefore["hits"]
	misses := pcAfter["misses"] - pcBefore["misses"]
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses)*100, "plan-cache-hit-%")
	}
}

// BenchmarkSessionLookup measures the uncontended fast path: parallel
// resident-session lookups with no background persistence traffic. It
// isolates the cost of the manager's locking itself.
func BenchmarkSessionLookup(b *testing.B) {
	const hot = 8
	sys := demoSystem(b)
	p := newPersister(b.TempDir(), sys, persist.SyncBatched, nil)
	m := newSessionManager(hot, time.Hour, 4, p)
	b.Cleanup(func() { m.shutdown() })
	hotIDs, _ := benchSessions(b, m, hot)

	b.ResetTimer()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := hotIDs[i%len(hotIDs)]
			i++
			if _, ok := m.get(id); !ok {
				b.Errorf("hot session %s lost", id)
			}
		}
	})
}
