package server

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"justintime/internal/constraints"
	"justintime/internal/dataset"
	"justintime/internal/obs"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/persist"
)

// benchSessions builds a persisting manager holding `hot` resident sessions
// plus two more that the LRU cap has already checkpointed to disk. The
// returned slices are (resident ids, evicted-to-disk ids).
func benchSessions(b *testing.B, m *sessionManager, hot int) (hotIDs, cold []string) {
	b.Helper()
	sys := demoSystem(b)
	profiles := dataset.RejectedProfiles()
	ids := make([]string, 0, hot+2)
	for i := 0; i < hot+2; i++ {
		sess, err := sys.NewSession(profiles[i%len(profiles)], constraints.NewSet())
		if err != nil {
			b.Fatal(err)
		}
		id, err := m.add(sess, nil)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	// The first two adds are the least recently used, so the cap pushed
	// exactly them out to disk.
	return ids[2:], ids[:2]
}

// BenchmarkConcurrentServe is the sharding PR's acceptance benchmark:
// aggregate request throughput (and p50/p99 latency) for lookups+queries
// against hot sessions while a background goroutine continuously forces cold
// sessions through the rehydrate→dirty→evict→checkpoint cycle. Under a
// global session-manager mutex every background snapshot+fsync and WAL
// replay stalls the hot path; with sharded, off-mutex persistence I/O it
// must not.
//
// The tracing=on variant threads a collector-backed span context through
// every request at production sampling defaults; the observability PR's
// acceptance bound is a geomean throughput regression of at most 5% over
// tracing=off.
func BenchmarkConcurrentServe(b *testing.B) {
	b.Run("tracing=off", func(b *testing.B) { benchConcurrentServe(b, nil) })
	b.Run("tracing=on", func(b *testing.B) {
		benchConcurrentServe(b, obs.NewCollector(25*time.Millisecond, 16, 256))
	})
}

func benchConcurrentServe(b *testing.B, collector *obs.Collector) {
	const hot = 8
	sys := demoSystem(b)
	p := newPersister(b.TempDir(), sys, persist.SyncBatched, nil, nil)
	m := newSessionManager(hot, time.Hour, 4, p)
	m.traces = collector
	b.Cleanup(func() { m.shutdown() })
	hotIDs, cold := benchSessions(b, m, hot)

	stop := make(chan struct{})
	done := make(chan struct{})
	// Couple the churn rate to benchmark progress instead of free-running it:
	// the serve goroutines nudge churnReq once per churnEvery requests, and
	// the churn goroutine does one rehydrate→dirty→evict→checkpoint cycle per
	// nudge. A free-running churn loop races the serve goroutines for
	// leftover CPU, so the scheduler's mood (21k vs 413k churns per run
	// observed) — not the code under test — decides the run's ns/op;
	// progress-coupled churn gives every run and both tracing variants the
	// same background work mix per request.
	const churnEvery = 64
	churnReq := make(chan struct{}, 1)
	var churns int64
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-churnReq:
			}
			// Rehydrate one cold session (disk load). At the cap, this
			// evicts the current LRU entry, checkpointing it to disk —
			// snapshot write + fsync. The no-op UPDATE dirties the WAL so
			// the next checkpoint of this session has something to fold.
			sess, ok := m.get(cold[i%len(cold)])
			if !ok {
				b.Errorf("cold session %s lost", cold[i%len(cold)])
				return
			}
			if _, err := sess.DB().Exec("UPDATE candidates SET p = p WHERE time < 0"); err != nil {
				b.Error(err)
				return
			}
			atomic.AddInt64(&churns, 1)
		}
	}()

	stmt := sqldb.MustPrepare("SELECT COUNT(*) FROM candidates WHERE time = 0")
	var latMu sync.Mutex
	var lat []time.Duration
	pcBefore := sqldb.PlanCacheCounters()
	b.ResetTimer()
	b.SetParallelism(8) // lock-wait, not CPU, is under test: queue 8 requesters even on 1 core
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 4096)
		i := 0
		for pb.Next() {
			start := time.Now()
			id := hotIDs[i%len(hotIDs)]
			i++
			if i%churnEvery == 0 {
				select {
				case churnReq <- struct{}{}: // nudge; dropped if churn is mid-cycle
				default:
				}
			}
			if collector == nil {
				// The untraced baseline uses the plain entry points — the
				// exact pre-observability hot path.
				sess, ok := m.get(id)
				if !ok {
					b.Errorf("hot session %s lost", id)
					continue
				}
				if _, err := stmt.Query(sess.DB()); err != nil {
					b.Error(err)
				}
			} else {
				// The traced variant mirrors the HTTP middleware: a trace
				// per request, span context threaded through lookup + query,
				// tail-sampled at Finish.
				tr := collector.StartRequest("POST", "/bench/ask")
				ctx := obs.With(context.Background(), tr.Root)
				sess, ok := m.getCtx(ctx, id)
				if !ok {
					b.Errorf("hot session %s lost", id)
					collector.Finish(tr, 404)
					continue
				}
				if _, err := stmt.QueryCtx(ctx, sess.DB()); err != nil {
					b.Error(err)
				}
				collector.Finish(tr, 200)
			}
			local = append(local, time.Since(start))
		}
		latMu.Lock()
		lat = append(lat, local...)
		latMu.Unlock()
	})
	b.StopTimer()
	close(stop)
	<-done

	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds())/1e3, "p50-us")
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds())/1e3, "p99-us")
	}
	b.ReportMetric(float64(atomic.LoadInt64(&churns)), "bg-churns")
	// Plan-cache effectiveness on the hot path: the shared prepared statement
	// should re-plan only on first touch of each session DB (and once more
	// when its first index build publishes statistics), then hit thereafter.
	pcAfter := sqldb.PlanCacheCounters()
	hits := pcAfter["hits"] - pcBefore["hits"]
	misses := pcAfter["misses"] - pcBefore["misses"]
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses)*100, "plan-cache-hit-%")
	}
}

// BenchmarkRequestOverhead isolates the per-request cost of tracing with no
// background churn and no parallelism: one goroutine doing the hot
// lookup+query path untraced, then traced at production sampling. The
// ns/op difference between the two sub-benchmarks is the tracer's true
// per-request overhead (BenchmarkConcurrentServe measures the same thing
// under contention, where scheduler noise dominates).
func BenchmarkRequestOverhead(b *testing.B) {
	const hot = 4
	sys := demoSystem(b)
	p := newPersister(b.TempDir(), sys, persist.SyncBatched, nil, nil)
	m := newSessionManager(hot, time.Hour, 4, p)
	b.Cleanup(func() { m.shutdown() })
	hotIDs, _ := benchSessions(b, m, hot)
	stmt := sqldb.MustPrepare("SELECT COUNT(*) FROM candidates WHERE time = 0")
	id := hotIDs[0]

	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess, ok := m.get(id)
			if !ok {
				b.Fatal("session lost")
			}
			if _, err := stmt.Query(sess.DB()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		collector := obs.NewCollector(25*time.Millisecond, 16, 256)
		m.traces = collector
		b.Cleanup(func() { m.traces = nil })
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := collector.StartRequest("POST", "/bench/ask")
			ctx := obs.With(context.Background(), tr.Root)
			sess, ok := m.getCtx(ctx, id)
			if !ok {
				b.Fatal("session lost")
			}
			if _, err := stmt.QueryCtx(ctx, sess.DB()); err != nil {
				b.Fatal(err)
			}
			collector.Finish(tr, 200)
		}
	})
}

// BenchmarkSessionLookup measures the uncontended fast path: parallel
// resident-session lookups with no background persistence traffic. It
// isolates the cost of the manager's locking itself.
func BenchmarkSessionLookup(b *testing.B) {
	const hot = 8
	sys := demoSystem(b)
	p := newPersister(b.TempDir(), sys, persist.SyncBatched, nil, nil)
	m := newSessionManager(hot, time.Hour, 4, p)
	b.Cleanup(func() { m.shutdown() })
	hotIDs, _ := benchSessions(b, m, hot)

	b.ResetTimer()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := hotIDs[i%len(hotIDs)]
			i++
			if _, ok := m.get(id); !ok {
				b.Errorf("hot session %s lost", id)
			}
		}
	})
}
