package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSessionIDsAreUnguessable(t *testing.T) {
	m := newSessionManager(10, time.Minute, nil)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		id, err := m.add(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(id, "s-") || len(id) != 2+32 {
			t.Fatalf("id %q is not 128 bits of hex", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if id == fmt.Sprintf("s%d", i+1) {
			t.Fatalf("id %q looks sequential", id)
		}
	}
}

func TestSessionManagerTTL(t *testing.T) {
	m := newSessionManager(10, time.Minute, nil)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }
	id, err := m.add(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.get(id); !ok {
		t.Fatal("fresh session should resolve")
	}
	now = now.Add(30 * time.Second)
	if _, ok := m.get(id); !ok {
		t.Fatal("session used within TTL should resolve")
	}
	// The get above refreshed lastUsed; idle past the TTL expires it.
	now = now.Add(time.Minute + time.Second)
	if _, ok := m.get(id); ok {
		t.Fatal("idle session should expire")
	}
	if m.count() != 0 {
		t.Fatalf("expired session should be dropped, count = %d", m.count())
	}
}

func TestSessionManagerLRUCap(t *testing.T) {
	m := newSessionManager(2, time.Hour, nil)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }
	a, _ := m.add(nil, nil)
	now = now.Add(time.Second)
	b, _ := m.add(nil, nil)
	now = now.Add(time.Second)
	// Touch a so b becomes the least recently used.
	if _, ok := m.get(a); !ok {
		t.Fatal("a should resolve")
	}
	now = now.Add(time.Second)
	c, _ := m.add(nil, nil)
	if m.count() != 2 {
		t.Fatalf("count = %d, want 2 (cap)", m.count())
	}
	if _, ok := m.get(b); ok {
		t.Fatal("b (LRU) should have been evicted")
	}
	for _, id := range []string{a, c} {
		if _, ok := m.get(id); !ok {
			t.Fatalf("%s should survive", id)
		}
	}
}

func TestSessionManagerRemove(t *testing.T) {
	m := newSessionManager(10, time.Hour, nil)
	id, _ := m.add(nil, nil)
	if !m.remove(id) {
		t.Fatal("remove of a live session should report true")
	}
	if m.remove(id) {
		t.Fatal("double remove should report false")
	}
}

func TestDeleteSessionEndpoint(t *testing.T) {
	srv := testServer(t)
	id := createSession(t, srv, nil)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp2, _ := getJSON(t, srv.URL+"/api/sessions/"+id+"/plan")
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session should 404, got %d", resp2.StatusCode)
	}
}

func TestSQLRowLimit(t *testing.T) {
	srv := httptest.NewServer(NewWithConfig(demoSystem(t), Config{MaxSQLRows: 2}))
	t.Cleanup(srv.Close)
	id := createSession(t, srv, nil)
	resp, out := postJSON(t, srv.URL+"/api/sessions/"+id+"/sql",
		map[string]string{"query": "SELECT * FROM candidates"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sql: %d %v", resp.StatusCode, out)
	}
	rows, _ := out["rows"].([]interface{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want the 2-row cap", len(rows))
	}
	if out["truncated"] != true {
		t.Fatalf("truncated = %v", out["truncated"])
	}
	// Under the cap the flag stays false.
	_, out = postJSON(t, srv.URL+"/api/sessions/"+id+"/sql",
		map[string]string{"query": "SELECT COUNT(*) FROM candidates"})
	if out["truncated"] != false {
		t.Fatalf("small result truncated = %v", out["truncated"])
	}
}

// TestConcurrentQueriesOnSharedSession hammers one session from many
// goroutines mixing canned questions, free SQL and plan lookups (run under
// -race): readers must proceed concurrently without corrupting state.
func TestConcurrentQueriesOnSharedSession(t *testing.T) {
	srv := testServer(t)
	id := createSession(t, srv, nil)

	kinds := []string{
		"no-modification", "minimal-features-set", "dominant-feature",
		"minimal-overall-modification", "maximal-confidence", "turning-point",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (g + i) % 3 {
				case 0:
					body, _ := json.Marshal(map[string]interface{}{
						"kind": kinds[(g+i)%len(kinds)], "feature": "income", "alpha": 0.7,
					})
					resp, err := http.Post(srv.URL+"/api/sessions/"+id+"/ask", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("ask: status %d", resp.StatusCode)
					}
				case 1:
					body, _ := json.Marshal(map[string]string{"query": "SELECT time, COUNT(*) FROM candidates WHERE time >= 0 GROUP BY time"})
					resp, err := http.Post(srv.URL+"/api/sessions/"+id+"/sql", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("sql: status %d", resp.StatusCode)
					}
				default:
					resp, err := http.Get(srv.URL + "/api/sessions/" + id + "/plan")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("plan: status %d", resp.StatusCode)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
