package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSessionIDsAreUnguessable(t *testing.T) {
	m := newSessionManager(10, time.Minute, 4, nil)
	t.Cleanup(func() { m.shutdown() })
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		id, err := m.add(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(id, "s-") || len(id) != 2+32 {
			t.Fatalf("id %q is not 128 bits of hex", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if id == fmt.Sprintf("s%d", i+1) {
			t.Fatalf("id %q looks sequential", id)
		}
	}
}

// installFakeClock gives m a mutex-guarded fake clock (the background
// eviction loop reads the clock concurrently with the test advancing it)
// and returns the advance function.
func installFakeClock(m *sessionManager, start time.Time) func(time.Duration) {
	var mu sync.Mutex
	now := start
	m.setNow(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	return func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
}

func TestSessionManagerTTL(t *testing.T) {
	m := newSessionManager(10, time.Minute, 4, nil)
	t.Cleanup(func() { m.shutdown() })
	advance := installFakeClock(m, time.Unix(1000, 0))
	id, err := m.add(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.get(id); !ok {
		t.Fatal("fresh session should resolve")
	}
	advance(30 * time.Second)
	if _, ok := m.get(id); !ok {
		t.Fatal("session used within TTL should resolve")
	}
	// The get above refreshed lastUsed; idle past the TTL expires it.
	advance(time.Minute + time.Second)
	if _, ok := m.get(id); ok {
		t.Fatal("idle session should expire")
	}
	if m.count() != 0 {
		t.Fatalf("expired session should be dropped, count = %d", m.count())
	}
}

func TestSessionManagerLRUCap(t *testing.T) {
	// 4 shards on 3 sessions: the LRU victim must still be the globally
	// least recently used entry, wherever its id hashed.
	m := newSessionManager(2, time.Hour, 4, nil)
	t.Cleanup(func() { m.shutdown() })
	advance := installFakeClock(m, time.Unix(1000, 0))
	a, _ := m.add(nil, nil)
	advance(time.Second)
	b, _ := m.add(nil, nil)
	advance(time.Second)
	// Touch a so b becomes the least recently used.
	if _, ok := m.get(a); !ok {
		t.Fatal("a should resolve")
	}
	advance(time.Second)
	c, _ := m.add(nil, nil)
	if m.count() != 2 {
		t.Fatalf("count = %d, want 2 (cap)", m.count())
	}
	if _, ok := m.get(b); ok {
		t.Fatal("b (LRU) should have been evicted")
	}
	for _, id := range []string{a, c} {
		if _, ok := m.get(id); !ok {
			t.Fatalf("%s should survive", id)
		}
	}
}

func TestSessionManagerRemove(t *testing.T) {
	m := newSessionManager(10, time.Hour, 4, nil)
	t.Cleanup(func() { m.shutdown() })
	id, _ := m.add(nil, nil)
	if !m.remove(id) {
		t.Fatal("remove of a live session should report true")
	}
	if m.remove(id) {
		t.Fatal("double remove should report false")
	}
}

// TestShardDistribution sanity-checks the sharding: sessions land across
// shards (maphash spreads 128-bit random ids), the per-shard gauge sums to
// the resident count, and every id still resolves through its shard.
func TestShardDistribution(t *testing.T) {
	m := newSessionManager(64, time.Hour, 8, nil)
	t.Cleanup(func() { m.shutdown() })
	ids := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		id, err := m.add(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sizes := m.shardSizes()
	if len(sizes) != 8 {
		t.Fatalf("shardSizes len = %d, want 8", len(sizes))
	}
	total, nonEmpty := 0, 0
	for _, n := range sizes {
		total += n
		if n > 0 {
			nonEmpty++
		}
	}
	if total != 32 || total != m.count() {
		t.Fatalf("shard sizes sum to %d, count() = %d, want 32", total, m.count())
	}
	// 32 random ids over 8 shards all landing in one shard is ~1e-28; a few
	// populated shards prove the hash is actually spreading.
	if nonEmpty < 2 {
		t.Fatalf("all sessions hashed to %d shard(s)", nonEmpty)
	}
	for _, id := range ids {
		if _, ok := m.get(id); !ok {
			t.Fatalf("id %s lost in the shards", id)
		}
	}
}

// TestCreateBackpressure locks in the bounded admission queue: with every
// creation slot taken, POST /api/sessions answers 429 + Retry-After without
// touching the generators, and a freed slot admits again.
func TestCreateBackpressure(t *testing.T) {
	h := NewWithConfig(demoSystem(t), Config{MaxPendingCreates: 1})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })

	// Occupy the only slot, as a slow in-flight creation would.
	h.createSem <- struct{}{}
	preRejected := metricCreatesRejected.Value()
	resp, out := postJSON(t, srv.URL+"/api/sessions", map[string]interface{}{
		"profile": johnProfile(),
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: %d %v, want 429", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := metricCreatesRejected.Value() - preRejected; got != 1 {
		t.Fatalf("rejected counter delta = %d, want 1", got)
	}
	// Slot freed: creation admits and completes.
	<-h.createSem
	createSession(t, srv, nil)
}

func TestDeleteSessionEndpoint(t *testing.T) {
	srv := testServer(t)
	id := createSession(t, srv, nil)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp2, _ := getJSON(t, srv.URL+"/api/sessions/"+id+"/plan")
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session should 404, got %d", resp2.StatusCode)
	}
}

func TestSQLRowLimit(t *testing.T) {
	h := NewWithConfig(demoSystem(t), Config{MaxSQLRows: 2})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })
	id := createSession(t, srv, nil)
	resp, out := postJSON(t, srv.URL+"/api/sessions/"+id+"/sql",
		map[string]string{"query": "SELECT * FROM candidates"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sql: %d %v", resp.StatusCode, out)
	}
	rows, _ := out["rows"].([]interface{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want the 2-row cap", len(rows))
	}
	if out["truncated"] != true {
		t.Fatalf("truncated = %v", out["truncated"])
	}
	// Under the cap the flag stays false.
	_, out = postJSON(t, srv.URL+"/api/sessions/"+id+"/sql",
		map[string]string{"query": "SELECT COUNT(*) FROM candidates"})
	if out["truncated"] != false {
		t.Fatalf("small result truncated = %v", out["truncated"])
	}
}

// TestConcurrentQueriesOnSharedSession hammers one session from many
// goroutines mixing canned questions, free SQL and plan lookups (run under
// -race): readers must proceed concurrently without corrupting state.
func TestConcurrentQueriesOnSharedSession(t *testing.T) {
	srv := testServer(t)
	id := createSession(t, srv, nil)

	kinds := []string{
		"no-modification", "minimal-features-set", "dominant-feature",
		"minimal-overall-modification", "maximal-confidence", "turning-point",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (g + i) % 3 {
				case 0:
					body, _ := json.Marshal(map[string]interface{}{
						"kind": kinds[(g+i)%len(kinds)], "feature": "income", "alpha": 0.7,
					})
					resp, err := http.Post(srv.URL+"/api/sessions/"+id+"/ask", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("ask: status %d", resp.StatusCode)
					}
				case 1:
					body, _ := json.Marshal(map[string]string{"query": "SELECT time, COUNT(*) FROM candidates WHERE time >= 0 GROUP BY time"})
					resp, err := http.Post(srv.URL+"/api/sessions/"+id+"/sql", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("sql: status %d", resp.StatusCode)
					}
				default:
					resp, err := http.Get(srv.URL + "/api/sessions/" + id + "/plan")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("plan: status %d", resp.StatusCode)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
