package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"justintime/internal/constraints"
	"justintime/internal/dataset"
	"justintime/internal/sqldb/persist"
)

// stormManager builds a persisting 4-shard manager with one real session
// already checkpointed out to disk (cold), plus the fake clock handle that
// got it there.
func stormManager(t *testing.T) (m *sessionManager, id string, advance func(time.Duration)) {
	t.Helper()
	sys := demoSystem(t)
	p := newPersister(t.TempDir(), sys, persist.SyncAlways, nil, nil)
	m = newSessionManager(8, time.Minute, 4, p)
	t.Cleanup(func() { m.shutdown() })
	// These tests script exact eviction/rehydration interleavings; the
	// background sweeper must not steal claims or read the hooks.
	m.stopBackgroundSweeps()
	advance = installFakeClock(m, time.Unix(1000, 0))

	sess, err := sys.NewSession(dataset.RejectedProfiles()[0], constraints.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	id, err = m.add(sess, nil)
	if err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute)
	m.sweepAll()
	if m.count() != 0 {
		t.Fatalf("session not evicted to disk, %d resident", m.count())
	}
	return m, id, advance
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRehydrationStormSingleLoad is the singleflight lock-in: many
// goroutines miss on the same cold session at once, the disk load runs
// exactly once (rehydration counter), and every other caller coalesces onto
// it (coalesced counter) yet still gets the session.
func TestRehydrationStormSingleLoad(t *testing.T) {
	m, id, _ := stormManager(t)

	const storm = 16
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	m.hookRehydrate = func(string) {
		once.Do(func() { close(entered) })
		<-release
	}

	preLoads := metricRehydrations.Value()
	preCoalesced := metricRehydrationsCoalesced.Value()

	var wg sync.WaitGroup
	errs := make(chan error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sess, ok := m.get(id); !ok || sess == nil {
				errs <- fmt.Errorf("storm getter missed the session")
			}
		}()
	}

	<-entered // the winner is inside the (blocked) disk load
	// Every other goroutine must coalesce onto it, not start loads of their
	// own.
	waitFor(t, "storm to coalesce", func() bool {
		return metricRehydrationsCoalesced.Value()-preCoalesced == storm-1
	})
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := metricRehydrations.Value() - preLoads; got != 1 {
		t.Fatalf("disk loads = %d, want exactly 1", got)
	}
	if m.count() != 1 {
		t.Fatalf("resident sessions = %d, want 1", m.count())
	}
}

// TestDeleteRacesRehydration is the PR's bugfix lock-in: DELETE arriving
// while the same session is mid-rehydration must win — the files are
// removed, the loaded state is discarded, and every singleflight waiter
// sees a miss (404), not a resurrected session.
func TestDeleteRacesRehydration(t *testing.T) {
	m, id, _ := stormManager(t)
	dir, _ := m.persist.dir(id)

	const storm = 8
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	m.hookRehydrate = func(string) {
		once.Do(func() { close(entered) })
		<-release
	}

	preLoads := metricRehydrations.Value()
	preCoalesced := metricRehydrationsCoalesced.Value()

	var wg sync.WaitGroup
	hits := make(chan bool, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ok := m.get(id)
			hits <- ok
		}()
	}

	<-entered
	waitFor(t, "waiters to coalesce", func() bool {
		return metricRehydrationsCoalesced.Value()-preCoalesced == storm-1
	})
	// The race: DELETE lands while the load is in flight.
	if !m.remove(id) {
		t.Fatal("remove of an on-disk session reported false")
	}
	close(release)
	wg.Wait()
	close(hits)
	for ok := range hits {
		if ok {
			t.Fatal("a waiter resurrected a deleted session")
		}
	}

	if got := metricRehydrations.Value() - preLoads; got != 0 {
		t.Fatalf("completed rehydrations = %d, want 0 (delete won)", got)
	}
	if m.count() != 0 {
		t.Fatalf("resident sessions = %d, want 0", m.count())
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("session directory survived the delete: %v", err)
	}
	if _, ok := m.get(id); ok {
		t.Fatal("deleted session still resolves")
	}
}

// TestRehydrationDuringDeleteWindow covers the narrower resurrection race:
// a rehydration that *starts* after DELETE has forgotten the session but
// before its files are actually removed from disk. The files are still
// readable at that instant; without the delete tombstone the load would
// succeed and resurrect the session.
func TestRehydrationDuringDeleteWindow(t *testing.T) {
	m, id, _ := stormManager(t)
	dir, _ := m.persist.dir(id)

	entered := make(chan struct{})
	release := make(chan struct{})
	m.hookRemoveFiles = func(string) {
		close(entered)
		<-release
	}

	removed := make(chan bool, 1)
	go func() { removed <- m.remove(id) }()
	<-entered // DELETE is mid-window: session forgotten, files still on disk

	preLoads := metricRehydrations.Value()
	if _, ok := m.get(id); ok {
		t.Fatal("get inside the delete window resurrected the session")
	}
	if got := metricRehydrations.Value() - preLoads; got != 0 {
		t.Fatalf("rehydrations delta = %d, want 0 (tombstoned)", got)
	}

	close(release)
	if !<-removed {
		t.Fatal("remove reported false for an on-disk session")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("session directory survived: %v", err)
	}
	if _, ok := m.get(id); ok {
		t.Fatal("deleted session still resolves after the window closed")
	}
	if m.count() != 0 {
		t.Fatalf("resident sessions = %d, want 0", m.count())
	}
}

// TestRequestMidCheckpointGetsLiveSession drives the eviction-vs-request
// interleaving: a request that lands while its session is being
// checkpointed out must get the live session back — never a 404, never torn
// state — and the eviction must abort instead of closing the store under
// the request.
func TestRequestMidCheckpointGetsLiveSession(t *testing.T) {
	m, id, advance := stormManager(t)

	// Bring it back in, then catch the next eviction mid-checkpoint.
	if _, ok := m.get(id); !ok {
		t.Fatal("rehydration failed")
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	m.hookCheckpoint = func(string) {
		once.Do(func() { close(entered) })
		<-release
	}

	preTTL := metricEvictionsTTL.Value()
	advance(2 * time.Minute)
	sweepDone := make(chan struct{})
	go func() { defer close(sweepDone); m.sweepAll() }()
	<-entered

	// Mid-checkpoint request: must be served from the live entry, instantly
	// (no rehydration, no blocking on the checkpoint).
	preLoads := metricRehydrations.Value()
	sess, ok := m.get(id)
	if !ok || sess == nil {
		t.Fatal("request during checkpoint missed the live session")
	}
	if n, err := sess.CandidateCount(); err != nil || n == 0 {
		t.Fatalf("session torn mid-checkpoint: n=%d err=%v", n, err)
	}

	close(release)
	<-sweepDone
	if got := metricEvictionsTTL.Value() - preTTL; got != 0 {
		t.Fatalf("eviction went through despite the touch, delta=%d", got)
	}
	if m.count() != 1 {
		t.Fatalf("resident sessions = %d, want 1 (eviction aborted)", m.count())
	}
	if got := metricRehydrations.Value() - preLoads; got != 0 {
		t.Fatalf("rehydrations delta = %d, want 0 (served live)", got)
	}

	// With the request gone, the next sweep completes the eviction — and the
	// session still rehydrates intact afterwards.
	m.hookCheckpoint = nil
	advance(2 * time.Minute)
	m.sweepAll()
	if m.count() != 0 {
		t.Fatal("second eviction did not complete")
	}
	if _, ok := m.get(id); !ok {
		t.Fatal("session lost after abort-then-evict cycle")
	}
}

// TestDeleteMidCheckpoint: DELETE racing an eviction checkpoint wins — the
// evictor discards instead of re-publishing files, and nothing survives on
// disk.
func TestDeleteMidCheckpoint(t *testing.T) {
	m, id, advance := stormManager(t)
	dir, _ := m.persist.dir(id)

	if _, ok := m.get(id); !ok {
		t.Fatal("rehydration failed")
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	m.hookCheckpoint = func(string) {
		once.Do(func() { close(entered) })
		<-release
	}

	advance(2 * time.Minute)
	sweepDone := make(chan struct{})
	go func() { defer close(sweepDone); m.sweepAll() }()
	<-entered

	if !m.remove(id) {
		t.Fatal("remove during checkpoint reported false")
	}
	close(release)
	<-sweepDone

	if m.count() != 0 {
		t.Fatalf("resident sessions = %d, want 0", m.count())
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("session directory survived delete-during-checkpoint: %v", err)
	}
	if _, ok := m.get(id); ok {
		t.Fatal("deleted session still resolves")
	}
	// The data-dir session area must hold no trace of the id at all.
	root := filepath.Dir(dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == filepath.Base(dir) {
			t.Fatalf("session files resurrected: %s", e.Name())
		}
	}
}
