package server

import "expvar"

// Process-wide serving metrics, exported on /debug/vars (the expvar page the
// jitd daemon mounts). They are the first slice of the ROADMAP observability
// item: session population, eviction pressure split by cause, how often the
// durability layer saves a regeneration, and how much WAL it writes.
//
// expvar registers into a process-global map, so these are package-level
// singletons shared by every Server in the process; tests assert on deltas,
// not absolute values.
var (
	// metricSessionsLive is the number of sessions currently resident in
	// memory across all session managers.
	metricSessionsLive = expvar.NewInt("jitd_sessions_live")
	// metricEvictionsTTL counts sessions dropped from memory by idle-TTL
	// expiry.
	metricEvictionsTTL = expvar.NewInt("jitd_evictions_ttl")
	// metricEvictionsLRU counts sessions dropped from memory by the
	// least-recently-used cap.
	metricEvictionsLRU = expvar.NewInt("jitd_evictions_lru")
	// metricRehydrations counts sessions reloaded from disk on a cache miss
	// — each one is a T+1 beam-search regeneration avoided.
	metricRehydrations = expvar.NewInt("jitd_rehydrations")
	// metricWALBytes is the total bytes of WAL records written.
	metricWALBytes = expvar.NewInt("jitd_wal_bytes")
	// metricCheckpoints counts snapshot checkpoints (WAL folds).
	metricCheckpoints = expvar.NewInt("jitd_checkpoints")
)
