package server

import (
	"expvar"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"justintime/internal/core"
	"justintime/internal/fault"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
	"justintime/internal/sqldb/persist"
)

// Process-wide serving metrics, exported on /debug/vars (the expvar page the
// jitd daemon mounts): session population, eviction pressure split by cause,
// how often the durability layer saves a regeneration (and how often
// singleflight collapses duplicate disk loads), WAL volume, per-question
// latency histograms and per-shard residency.
//
// expvar registers into a process-global map, so these are package-level
// singletons shared by every Server in the process; tests assert on deltas,
// not absolute values.
var (
	// metricSessionsLive is the number of sessions currently resident in
	// memory across all session managers.
	metricSessionsLive = expvar.NewInt("jitd_sessions_live")
	// metricEvictionsTTL counts sessions dropped from memory by idle-TTL
	// expiry.
	metricEvictionsTTL = expvar.NewInt("jitd_evictions_ttl")
	// metricEvictionsLRU counts sessions dropped from memory by the
	// least-recently-used cap.
	metricEvictionsLRU = expvar.NewInt("jitd_evictions_lru")
	// metricRehydrations counts sessions reloaded from disk on a cache miss
	// — each one is a T+1 beam-search regeneration avoided.
	metricRehydrations = expvar.NewInt("jitd_rehydrations")
	// metricRehydrationsCoalesced counts cache misses that piggybacked on an
	// already-running disk load of the same session instead of replaying the
	// snapshot+WAL themselves (the singleflight win).
	metricRehydrationsCoalesced = expvar.NewInt("jitd_rehydrations_coalesced")
	// metricWALBytes is the total bytes of WAL records written.
	metricWALBytes = expvar.NewInt("jitd_wal_bytes")
	// metricCheckpoints counts snapshot checkpoints (WAL folds). Evictions
	// of clean (read-only since last fold) sessions skip the checkpoint and
	// do not count.
	metricCheckpoints = expvar.NewInt("jitd_checkpoints")
	// metricCreatesRejected counts session creations refused with 429
	// because the admission queue was full.
	metricCreatesRejected = expvar.NewInt("jitd_creates_rejected")
	// metricDegradedMode is 1 while the server is in read-only degraded
	// mode (out-of-space data dir), 0 otherwise.
	metricDegradedMode = expvar.NewInt("jitd_degraded_mode")
	// metricDegradedRejects counts mutations refused with 503 while in
	// degraded mode.
	metricDegradedRejects = expvar.NewInt("jitd_degraded_rejected")
	// metricSessionsQuarantined counts session stores whose snapshot or page
	// file failed structural checks and were moved to <data-dir>/quarantine/.
	metricSessionsQuarantined = expvar.NewInt("jitd_sessions_quarantined")
	// metricCheckpointRetries counts checkpoint attempts that failed
	// transiently and were retried under backoff.
	metricCheckpointRetries = expvar.NewInt("jitd_checkpoint_retries")
)

// managerRegistry tracks the live session managers in the process so the
// per-shard gauge below can enumerate them. expvar names are process-global
// (double registration panics), so the gauge is one Func over a registry
// instead of per-manager vars.
var managerRegistry struct {
	mu sync.Mutex
	ms []*sessionManager
}

func registerManager(m *sessionManager) {
	managerRegistry.mu.Lock()
	defer managerRegistry.mu.Unlock()
	managerRegistry.ms = append(managerRegistry.ms, m)
}

func unregisterManager(m *sessionManager) {
	managerRegistry.mu.Lock()
	defer managerRegistry.mu.Unlock()
	for i, x := range managerRegistry.ms {
		if x == m {
			managerRegistry.ms = append(managerRegistry.ms[:i], managerRegistry.ms[i+1:]...)
			return
		}
	}
}

// poolRegistry tracks the live buffer pools in the process (one per Server
// running with paged storage; usually one outside of tests) so the
// jitd_pool_* vars below can enumerate them. Same shape as managerRegistry:
// expvar names are process-global, so the gauges are Funcs over a registry.
var poolRegistry struct {
	mu sync.Mutex
	ps []*pager.Pool
}

func registerPool(p *pager.Pool) {
	poolRegistry.mu.Lock()
	defer poolRegistry.mu.Unlock()
	poolRegistry.ps = append(poolRegistry.ps, p)
}

func unregisterPool(p *pager.Pool) {
	poolRegistry.mu.Lock()
	defer poolRegistry.mu.Unlock()
	for i, x := range poolRegistry.ps {
		if x == p {
			poolRegistry.ps = append(poolRegistry.ps[:i], poolRegistry.ps[i+1:]...)
			return
		}
	}
}

// replRegistry tracks the process's live replication endpoints: shippers
// (primary side, registered by Servers running with ReplicateTo) and
// replicas (standby side, registered by the daemon via RegisterReplica).
// Same shape as the other registries: expvar names are process-global, so
// the gauges below are Funcs over the registry.
var replRegistry struct {
	mu       sync.Mutex
	shippers []*persist.Shipper
	replicas []*persist.Replica
}

func registerShipper(s *persist.Shipper) {
	replRegistry.mu.Lock()
	defer replRegistry.mu.Unlock()
	replRegistry.shippers = append(replRegistry.shippers, s)
}

func unregisterShipper(s *persist.Shipper) {
	replRegistry.mu.Lock()
	defer replRegistry.mu.Unlock()
	for i, x := range replRegistry.shippers {
		if x == s {
			replRegistry.shippers = append(replRegistry.shippers[:i], replRegistry.shippers[i+1:]...)
			return
		}
	}
}

// RegisterReplica adds a standby replica to the process's replication
// metrics (the jitd_replica_* vars and /metrics families). The daemon calls
// it when running as a warm standby, since the replica lives outside any
// Server.
func RegisterReplica(r *persist.Replica) {
	replRegistry.mu.Lock()
	defer replRegistry.mu.Unlock()
	replRegistry.replicas = append(replRegistry.replicas, r)
}

// UnregisterReplica removes a replica registered with RegisterReplica.
func UnregisterReplica(r *persist.Replica) {
	replRegistry.mu.Lock()
	defer replRegistry.mu.Unlock()
	for i, x := range replRegistry.replicas {
		if x == r {
			replRegistry.replicas = append(replRegistry.replicas[:i], replRegistry.replicas[i+1:]...)
			return
		}
	}
}

// shipperStats sums stats across the registered shippers; connected is true
// when every registered shipper has a live feed (vacuously true with none).
func shipperStats() (sum persist.ShipperStats, any bool) {
	replRegistry.mu.Lock()
	ss := append([]*persist.Shipper(nil), replRegistry.shippers...)
	replRegistry.mu.Unlock()
	sum.Connected = true
	for _, s := range ss {
		st := s.Stats()
		sum.Connected = sum.Connected && st.Connected
		sum.LagRecords += st.LagRecords
		sum.LagBytes += st.LagBytes
		sum.ShippedRecords += st.ShippedRecords
		sum.ShippedBytes += st.ShippedBytes
		sum.Syncs += st.Syncs
		sum.Deletes += st.Deletes
		sum.Resyncs += st.Resyncs
		sum.Reconnects += st.Reconnects
		sum.Overflows += st.Overflows
	}
	return sum, len(ss) > 0
}

// replicaStats sums stats across the registered replicas.
func replicaStats() (sum persist.ReplicaStats, any bool) {
	replRegistry.mu.Lock()
	rs := append([]*persist.Replica(nil), replRegistry.replicas...)
	replRegistry.mu.Unlock()
	sum.Connected = true
	for _, r := range rs {
		st := r.Stats()
		sum.Connected = sum.Connected && st.Connected
		sum.AppliedRecords += st.AppliedRecords
		sum.AppliedBytes += st.AppliedBytes
		sum.Syncs += st.Syncs
		sum.Deletes += st.Deletes
		sum.ResyncsSent += st.ResyncsSent
	}
	return sum, len(rs) > 0
}

// poolStats sums Stats across the registered pools.
func poolStats() pager.Stats {
	poolRegistry.mu.Lock()
	ps := append([]*pager.Pool(nil), poolRegistry.ps...)
	poolRegistry.mu.Unlock()
	var sum pager.Stats
	for _, p := range ps {
		st := p.Stats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.DirtyWritebacks += st.DirtyWritebacks
		sum.Pinned += st.Pinned
		sum.Resident += st.Resident
	}
	return sum
}

// latencyBoundsUs are the jitd_question_latency_us bucket upper bounds, in
// microseconds. Roughly logarithmic from "index hit" to "beam search".
var latencyBoundsUs = [...]int64{
	50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000,
}

// latencyHist is a fixed-bucket latency histogram with lock-free recording.
type latencyHist struct {
	counts [len(latencyBoundsUs) + 1]atomic.Int64 // one per bound, plus +Inf
	sumUs  atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < len(latencyBoundsUs) && us > latencyBoundsUs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumUs.Add(us)
}

// snapshot renders the histogram in a Prometheus-like cumulative shape.
// count is derived from the same bucket loads as le_inf, so the invariant
// count == le_inf holds even when a scrape races an observe (a separate
// total counter could read one sample ahead of or behind the buckets).
func (h *latencyHist) snapshot() map[string]int64 {
	out := make(map[string]int64, len(h.counts)+2)
	cum := int64(0)
	for i, b := range latencyBoundsUs {
		cum += h.counts[i].Load()
		out["le_"+strconv.FormatInt(b, 10)] = cum
	}
	cum += h.counts[len(latencyBoundsUs)].Load()
	out["le_inf"] = cum
	out["count"] = cum
	out["sum_us"] = h.sumUs.Load()
	return out
}

// cumulative returns the cumulative bucket counts in latencyBoundsUs order
// with the +Inf total appended (index len(latencyBoundsUs)), plus the
// observation sum in microseconds — the shape the Prometheus text renderer
// consumes. Like snapshot, the total is derived from the same bucket loads,
// so _count == the +Inf bucket even when a scrape races an observe.
func (h *latencyHist) cumulative() (counts []int64, sumUs int64) {
	counts = make([]int64, len(latencyBoundsUs)+1)
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	return counts, h.sumUs.Load()
}

// routeHists holds one latency histogram per HTTP route path. Routes are
// registered once per Server construction (fixed cardinality — the label is
// the mux pattern, never the raw URL); like every other metric here the
// histograms are process-global, shared across Servers.
var routeHists struct {
	mu sync.Mutex
	m  map[string]*latencyHist
}

// routeHist returns (creating on first use) the histogram for a route path.
func routeHist(path string) *latencyHist {
	routeHists.mu.Lock()
	defer routeHists.mu.Unlock()
	if routeHists.m == nil {
		routeHists.m = make(map[string]*latencyHist)
	}
	h, ok := routeHists.m[path]
	if !ok {
		h = &latencyHist{}
		routeHists.m[path] = h
	}
	return h
}

// routeHistSnapshot copies the route→histogram map for rendering.
func routeHistSnapshot() map[string]*latencyHist {
	routeHists.mu.Lock()
	defer routeHists.mu.Unlock()
	out := make(map[string]*latencyHist, len(routeHists.m))
	for k, v := range routeHists.m {
		out[k] = v
	}
	return out
}

// walFsyncHist observes every WAL fsync's latency (wired into each
// persister's store options); poolFaultHist observes every buffer-pool page
// fault's read latency (wired into the pager's process-wide fault observer).
var (
	walFsyncHist  latencyHist
	poolFaultHist latencyHist
)

// questionLatencies holds one histogram per canned question kind. The set
// of kinds is closed (ParseQuestionKind rejects anything else), so the map
// is built once and only read afterwards — no lock needed on observe.
var questionLatencies = func() map[string]*latencyHist {
	m := make(map[string]*latencyHist)
	for _, k := range []core.QuestionKind{
		core.QNoModification, core.QMinimalFeatures, core.QDominantFeature,
		core.QMinimalOverall, core.QMaximalConfidence, core.QTurningPoint,
	} {
		m[k.String()] = &latencyHist{}
	}
	return m
}()

// observeQuestionLatency records one answered question's latency.
func observeQuestionLatency(kind core.QuestionKind, d time.Duration) {
	if h, ok := questionLatencies[kind.String()]; ok {
		h.observe(d)
	}
}

func init() {
	// Every buffer-pool page fault in the process reports its disk-read
	// latency here, whichever pool (and whichever statement) faulted it.
	pager.SetFaultObserver(func(d time.Duration) { poolFaultHist.observe(d) })
	// jitd_http_latency_us: per-route HTTP latency histograms (the expvar
	// twin of the /metrics jitd_http_request_duration_seconds family).
	expvar.Publish("jitd_http_latency_us", expvar.Func(func() interface{} {
		hists := routeHistSnapshot()
		out := make(map[string]map[string]int64, len(hists))
		for route, h := range hists {
			out[route] = h.snapshot()
		}
		return out
	}))
	// jitd_wal_fsync_us / jitd_pool_fault_us: I/O latency histograms for WAL
	// fsyncs and buffer-pool page faults.
	expvar.Publish("jitd_wal_fsync_us", expvar.Func(func() interface{} { return walFsyncHist.snapshot() }))
	expvar.Publish("jitd_pool_fault_us", expvar.Func(func() interface{} { return poolFaultHist.snapshot() }))
	// jitd_plan_shapes mirrors the query planner's per-plan-shape counters
	// (full_scan, index_scan, index_intersection, empty_probe, top_k,
	// index_join, hash_join, nested_loop_join): how often each access-path
	// and join shape was chosen across every session database since process
	// start. A rising full_scan share on the hot canned-question paths is
	// the signal a session schema lost its expected indexes.
	expvar.Publish("jitd_plan_shapes", expvar.Func(func() interface{} {
		return sqldb.PlanCounters()
	}))
	// Plan-cache effectiveness across every session database: hits are
	// prepared executions that reused a memoized plan, misses planned from
	// scratch, invalidations dropped a cached plan whose schema version or
	// stats epoch went stale. A rising invalidation share means statistics
	// are drifting faster than plans are reused.
	expvar.Publish("jitd_plan_cache_hits", expvar.Func(func() interface{} {
		return sqldb.PlanCacheCounters()["hits"]
	}))
	expvar.Publish("jitd_plan_cache_misses", expvar.Func(func() interface{} {
		return sqldb.PlanCacheCounters()["misses"]
	}))
	expvar.Publish("jitd_plan_cache_invalidations", expvar.Func(func() interface{} {
		return sqldb.PlanCacheCounters()["invalidations"]
	}))
	// jitd_question_latency_us: per-question-kind latency histograms
	// (cumulative buckets, microsecond bounds) over the /ask endpoint.
	expvar.Publish("jitd_question_latency_us", expvar.Func(func() interface{} {
		out := make(map[string]map[string]int64, len(questionLatencies))
		for kind, h := range questionLatencies {
			out[kind] = h.snapshot()
		}
		return out
	}))
	// Buffer-pool counters over every registered pool (one per Server
	// running with -buffer-pool-pages; zeroes when paged storage is off).
	// hits/misses grade the pool's sizing (a rising miss share means the
	// working set outgrew the frame count), evictions and dirty_writebacks
	// measure churn, pinned is the instantaneous count of frames queries
	// are holding right now, and jitd_pool_resident_pages is the gauge of
	// frames currently mapped to a page — the pool's in-memory footprint.
	expvar.Publish("jitd_pool_hits", expvar.Func(func() interface{} { return poolStats().Hits }))
	expvar.Publish("jitd_pool_misses", expvar.Func(func() interface{} { return poolStats().Misses }))
	expvar.Publish("jitd_pool_evictions", expvar.Func(func() interface{} { return poolStats().Evictions }))
	expvar.Publish("jitd_pool_dirty_writebacks", expvar.Func(func() interface{} { return poolStats().DirtyWritebacks }))
	expvar.Publish("jitd_pool_pinned", expvar.Func(func() interface{} { return poolStats().Pinned }))
	expvar.Publish("jitd_pool_resident_pages", expvar.Func(func() interface{} { return poolStats().Resident }))
	// Replication state over every registered shipper (primary side) and
	// replica (standby side). The lag gauges are the failover gate: a
	// standby may be promoted once jitd_repl_lag_records reads 0 under
	// quiesced traffic.
	expvar.Publish("jitd_repl_shipper", expvar.Func(func() interface{} {
		st, any := shipperStats()
		if !any {
			return nil
		}
		return st
	}))
	expvar.Publish("jitd_repl_replica", expvar.Func(func() interface{} {
		st, any := replicaStats()
		if !any {
			return nil
		}
		return st
	}))
	// jitd_fault_disk_injected / jitd_fault_net_injected: process-wide counts
	// of injected disk and network faults — zero in production, the chaos
	// harness's evidence that its schedules actually fired.
	expvar.Publish("jitd_fault_disk_injected", expvar.Func(func() interface{} { return fault.DiskInjected() }))
	expvar.Publish("jitd_fault_net_injected", expvar.Func(func() interface{} { return fault.NetInjected() }))
	// jitd_shard_sessions: resident sessions per shard, summed element-wise
	// across the process's live session managers (one, outside of tests).
	// Uneven counts reveal hash skew; a stuck shard reveals a lock problem.
	expvar.Publish("jitd_shard_sessions", expvar.Func(func() interface{} {
		managerRegistry.mu.Lock()
		ms := append([]*sessionManager(nil), managerRegistry.ms...)
		managerRegistry.mu.Unlock()
		var out []int
		for _, m := range ms {
			for i, n := range m.shardSizes() {
				if i == len(out) {
					out = append(out, 0)
				}
				out[i] += n
			}
		}
		return out
	}))
}
