package server

import (
	"expvar"

	"justintime/internal/sqldb"
)

// Process-wide serving metrics, exported on /debug/vars (the expvar page the
// jitd daemon mounts). They are the first slice of the ROADMAP observability
// item: session population, eviction pressure split by cause, how often the
// durability layer saves a regeneration, and how much WAL it writes.
//
// expvar registers into a process-global map, so these are package-level
// singletons shared by every Server in the process; tests assert on deltas,
// not absolute values.
var (
	// metricSessionsLive is the number of sessions currently resident in
	// memory across all session managers.
	metricSessionsLive = expvar.NewInt("jitd_sessions_live")
	// metricEvictionsTTL counts sessions dropped from memory by idle-TTL
	// expiry.
	metricEvictionsTTL = expvar.NewInt("jitd_evictions_ttl")
	// metricEvictionsLRU counts sessions dropped from memory by the
	// least-recently-used cap.
	metricEvictionsLRU = expvar.NewInt("jitd_evictions_lru")
	// metricRehydrations counts sessions reloaded from disk on a cache miss
	// — each one is a T+1 beam-search regeneration avoided.
	metricRehydrations = expvar.NewInt("jitd_rehydrations")
	// metricWALBytes is the total bytes of WAL records written.
	metricWALBytes = expvar.NewInt("jitd_wal_bytes")
	// metricCheckpoints counts snapshot checkpoints (WAL folds).
	metricCheckpoints = expvar.NewInt("jitd_checkpoints")
)

func init() {
	// jitd_plan_shapes mirrors the query planner's per-plan-shape counters
	// (full_scan, index_scan, index_intersection, empty_probe, top_k,
	// index_join, hash_join, nested_loop_join): how often each access-path
	// and join shape was chosen across every session database since process
	// start. A rising full_scan share on the hot canned-question paths is
	// the signal a session schema lost its expected indexes.
	expvar.Publish("jitd_plan_shapes", expvar.Func(func() interface{} {
		return sqldb.PlanCounters()
	}))
}
