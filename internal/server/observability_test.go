package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"justintime/internal/obs"
)

// quietLogger keeps the access log (Info for slow requests — and with a 1ns
// threshold everything is slow) out of test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// slowTraces fetches and decodes /debug/requests/slow.
func slowTraces(t *testing.T, srv *httptest.Server) []obs.TraceSnapshot {
	t.Helper()
	resp, err := http.Get(srv.URL + "/debug/requests/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests/slow: %d", resp.StatusCode)
	}
	var out struct {
		ThresholdUS int64               `json:"threshold_us"`
		Traces      []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Traces
}

// findTrace returns the newest slow trace matching method+route, or nil.
func findTrace(traces []obs.TraceSnapshot, method, route string) *obs.TraceSnapshot {
	for i := range traces {
		if traces[i].Method == method && traces[i].Route == route {
			return &traces[i]
		}
	}
	return nil
}

// TestSlowRequestTraceTree is the PR's acceptance flow: with durability and
// paged storage on and a 1ns slow threshold, a request against an evicted
// session must land in /debug/requests/slow carrying the full span tree —
// server route → session.get → session.rehydrate, the SQL layer's sql.query
// with plan shape / cache / row attrs and rendered plan text, the pager's
// fault attribution, and the eviction's background persist.checkpoint trace.
func TestSlowRequestTraceTree(t *testing.T) {
	sys := demoSystem(t)
	h := NewWithConfig(sys, Config{
		DataDir:          t.TempDir(),
		BufferPoolPages:  16,
		MaxSessions:      1,
		SlowRequest:      time.Nanosecond, // everything is slow: the test seam
		TraceSampleEvery: 1,
		Logger:           quietLogger(),
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })

	idA := createSession(t, srv, nil)
	// Dirty A's WAL so its eviction has a checkpoint to fold (and therefore
	// a background trace to record).
	sessA, ok := h.sessions.get(idA)
	if !ok {
		t.Fatal("session A missing right after creation")
	}
	if _, err := sessA.DB().Exec("UPDATE candidates SET p = p WHERE time < 0"); err != nil {
		t.Fatal(err)
	}
	_ = createSession(t, srv, nil) // cap of 1: evicts + checkpoints A

	// First touch after eviction: rehydrates from disk, then a full scan
	// that must fault its pages back in through the pool.
	// SELECT * cannot be answered from a covering index, so the executor
	// must walk the paged store itself (a tracked full scan).
	resp, out := postJSON(t, srv.URL+"/api/sessions/"+idA+"/sql",
		map[string]string{"query": "SELECT * FROM candidates"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-eviction sql: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("response is missing the X-Request-Id header")
	}
	// An indexed question on the now-resident session: the plan event must
	// carry the planner's shape and cache attributes.
	if code, _ := askText(t, srv, idA, "no-modification"); code != http.StatusOK {
		t.Fatalf("ask after rehydration: %d", code)
	}

	traces := slowTraces(t, srv)

	// The rehydrating SQL request's tree.
	tr := findTrace(traces, "POST", "/api/sessions/{id}/sql")
	if tr == nil {
		t.Fatal("no slow trace recorded for the SQL request")
	}
	get := tr.Root.Find("session.get")
	if get == nil {
		t.Fatal("session.get span missing from the SQL trace")
	}
	if got := get.AttrVal("result"); got != "rehydrate" {
		t.Fatalf("session.get result = %q, want rehydrate", got)
	}
	if get.Find("session.rehydrate") == nil {
		t.Fatal("session.rehydrate span missing under session.get")
	}
	if get.AttrVal("lock_wait_us") == "" {
		t.Fatal("session.get is missing the lock_wait_us attr")
	}
	if tr.Root.Find("sql.parse") == nil {
		t.Fatal("sql.parse event missing from the SQL trace")
	}
	q := tr.Root.Find("sql.query")
	if q == nil {
		t.Fatal("sql.query span missing from the SQL trace")
	}
	if !strings.Contains(q.AttrVal("stmt"), "SELECT * FROM candidates") {
		t.Fatalf("sql.query stmt attr = %q", q.AttrVal("stmt"))
	}
	if n, _ := strconv.Atoi(q.AttrVal("rows")); n < 1 {
		t.Fatalf("sql.query rows attr = %q, want >= 1", q.AttrVal("rows"))
	}
	plan := q.Find("plan")
	if plan == nil {
		t.Fatal("plan event missing from sql.query")
	}
	if got := plan.AttrVal("plan_shape"); got != "full_scan" {
		t.Fatalf("plan_shape = %q, want full_scan", got)
	}
	if q.AttrVal("plan_text") == "" {
		t.Fatal("slow sql.query is missing the rendered plan_text")
	}
	faults := q.Find("pager.faults")
	if faults == nil {
		t.Fatal("pager.faults event missing: the post-rehydration scan must fault pages in")
	}
	if n, _ := strconv.Atoi(faults.AttrVal("faults")); n < 1 {
		t.Fatalf("pager.faults faults attr = %q, want >= 1", faults.AttrVal("faults"))
	}

	// The ask request's tree: planner attrs on the canned question's query.
	ask := findTrace(traces, "POST", "/api/sessions/{id}/ask")
	if ask == nil {
		t.Fatal("no slow trace recorded for the ask request")
	}
	// A resident hit annotates the request's root span directly instead of
	// opening a session.get child.
	if got := ask.Root.AttrVal("session_result"); got != "hit" {
		t.Fatalf("ask session_result = %q, want hit (already resident)", got)
	}
	aq := ask.Root.Find("sql.query")
	if aq == nil {
		t.Fatal("sql.query span missing from the ask trace")
	}
	// The plan decision is a "plan" event on a cache miss, or plain attrs on
	// the sql.query span on a cache hit; either way the shape and the cache
	// verdict must be recorded.
	ap := aq.Find("plan")
	if ap == nil {
		ap = aq
	}
	if ap.AttrVal("plan_shape") == "" {
		t.Fatal("ask trace has no plan_shape attr (neither plan event nor span attr)")
	}
	if got := ap.AttrVal("plan_cached"); got != "true" && got != "false" {
		t.Fatalf("plan_cached = %q, want true or false", got)
	}

	// The eviction's background checkpoint trace, with the durability
	// layer's spans.
	cp := findTrace(traces, "bg", "session.checkpoint")
	if cp == nil {
		t.Fatal("no background trace recorded for the eviction checkpoint")
	}
	if cp.Root.AttrVal("session_id") != idA {
		t.Fatalf("checkpoint trace session_id = %q, want %s", cp.Root.AttrVal("session_id"), idA)
	}
	pc := cp.Root.Find("persist.checkpoint")
	if pc == nil {
		t.Fatal("persist.checkpoint span missing from the checkpoint trace")
	}
	if pc.AttrVal("wal_bytes") == "" || pc.AttrVal("wal_bytes") == "0" {
		t.Fatalf("persist.checkpoint wal_bytes = %q, want > 0 (the WAL was dirtied)", pc.AttrVal("wal_bytes"))
	}
	if pc.Find("snapshot.write") == nil || pc.Find("wal.reset") == nil {
		t.Fatal("persist.checkpoint is missing its snapshot.write / wal.reset phases")
	}
}

// TestRecentRingSampling checks the fast-request path end to end over HTTP:
// with a high slow threshold and 1-in-1 sampling every request lands in the
// recent ring, and /debug/requests serves it newest first.
func TestRecentRingSampling(t *testing.T) {
	sys := demoSystem(t)
	h := NewWithConfig(sys, Config{SlowRequest: time.Hour, TraceSampleEvery: 1, Logger: quietLogger()})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })

	for i := 0; i < 3; i++ {
		if resp, _ := getJSON(t, srv.URL+"/api/questions"); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /api/questions: %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Finished uint64              `json:"finished"`
		Kept     uint64              `json:"kept"`
		Traces   []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Finished != 3 || out.Kept != 3 {
		t.Fatalf("finished=%d kept=%d, want 3/3 at 1-in-1 sampling", out.Finished, out.Kept)
	}
	if len(out.Traces) != 3 {
		t.Fatalf("recent ring holds %d traces, want 3", len(out.Traces))
	}
	for _, snap := range out.Traces {
		if snap.Route != "/api/questions" || snap.Status != http.StatusOK {
			t.Fatalf("unexpected trace in recent ring: %+v", snap)
		}
	}
}

var (
	bucketLineRe = regexp.MustCompile(`^([a-z_]+)_bucket\{(.*)\} (\d+)$`)
	countLineRe  = regexp.MustCompile(`^([a-z_]+)_count(?:\{(.*)\})? (\d+)$`)
	leRe         = regexp.MustCompile(`(?:^|,)le="([^"]+)"`)
)

// TestMetricsExposition scrapes /metrics after real traffic and validates
// the exposition: every histogram series has numerically increasing le
// bounds, non-decreasing cumulative buckets, a +Inf bucket, and a _count
// equal to it; and the families the dashboards depend on are present.
func TestMetricsExposition(t *testing.T) {
	sys := demoSystem(t)
	h := NewWithConfig(sys, Config{Logger: quietLogger()})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })

	id := createSession(t, srv, nil)
	if code, _ := askText(t, srv, id, "no-modification"); code != http.StatusOK {
		t.Fatalf("ask: %d", code)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	type series struct {
		les     []float64
		counts  []int64
		inf     int64
		hasInf  bool
		count   int64
		hasCnt  bool
		nBucket int
	}
	all := map[string]*series{}
	get := func(key string) *series {
		s, ok := all[key]
		if !ok {
			s = &series{}
			all[key] = s
		}
		return s
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if m := bucketLineRe.FindStringSubmatch(line); m != nil {
			le := leRe.FindStringSubmatch(m[2])
			if le == nil {
				t.Fatalf("bucket line without le label: %s", line)
			}
			key := m[1] + "|" + leRe.ReplaceAllString(m[2], "")
			v, _ := strconv.ParseInt(m[3], 10, 64)
			s := get(key)
			s.nBucket++
			if le[1] == "+Inf" {
				s.inf, s.hasInf = v, true
			} else {
				f, err := strconv.ParseFloat(le[1], 64)
				if err != nil {
					t.Fatalf("unparseable le %q in %s", le[1], line)
				}
				s.les = append(s.les, f)
				s.counts = append(s.counts, v)
			}
			continue
		}
		if m := countLineRe.FindStringSubmatch(line); m != nil {
			s := get(m[1] + "|" + m[2])
			s.count, _ = strconv.ParseInt(m[3], 10, 64)
			s.hasCnt = true
		}
	}
	if len(all) == 0 {
		t.Fatal("no histogram series found in /metrics")
	}
	for key, s := range all {
		if !s.hasInf {
			t.Errorf("series %s has no +Inf bucket", key)
			continue
		}
		if !s.hasCnt {
			t.Errorf("series %s has no _count", key)
			continue
		}
		if s.count != s.inf {
			t.Errorf("series %s: _count=%d != +Inf bucket %d", key, s.count, s.inf)
		}
		prevLe := -1.0
		prevCount := int64(0)
		for i := range s.les {
			if s.les[i] <= prevLe {
				t.Errorf("series %s: le bounds not increasing at %g", key, s.les[i])
			}
			if s.counts[i] < prevCount {
				t.Errorf("series %s: cumulative count decreased at le=%g", key, s.les[i])
			}
			prevLe, prevCount = s.les[i], s.counts[i]
		}
		if s.inf < prevCount {
			t.Errorf("series %s: +Inf bucket %d below last bucket %d", key, s.inf, prevCount)
		}
	}

	// The ask above must have landed in its route's histogram.
	askKey := `jitd_http_request_duration_seconds|route="/api/sessions/{id}/ask"`
	if s, ok := all[askKey]; !ok || s.count < 1 {
		t.Fatalf("ask route histogram missing or empty (series: %v)", askKey)
	}
	qKey := `jitd_question_duration_seconds|kind="no-modification"`
	if s, ok := all[qKey]; !ok || s.count < 1 {
		t.Fatalf("question histogram missing or empty (series: %v)", qKey)
	}
	for _, want := range []string{
		"jitd_sessions_live", "jitd_traces_finished_total",
		"jitd_plan_shapes_total{shape=", "jitd_plan_cache_total{event=",
		"jitd_wal_fsync_duration_seconds_bucket", "jitd_pool_fault_duration_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}
}
