package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestPagedSessionRestartParity runs the PR 3 restart acceptance flow with
// paged candidate storage enabled: answers and the candidates database must
// be identical across a shutdown/relaunch, the session directory must carry
// an epoch-named page file, and the shared pool's expvar gauges must reflect
// real traffic (faults happened, nothing stayed pinned).
func TestPagedSessionRestartParity(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	// A small pool (64 frames = 512 KiB) forces eviction pressure while
	// still fitting any single query's working set.
	cfg := Config{DataDir: dataDir, BufferPoolPages: 64, MaxSQLRows: 3}

	h1 := NewWithConfig(sys, cfg)
	srv1 := httptest.NewServer(h1)
	id := createSession(t, srv1, []string{"income <= old(income) * 1.5"})

	preRows := fetchCandidates(t, srv1, id)
	if len(preRows) == 0 {
		t.Fatal("no candidates generated on paged storage")
	}
	preAnswers := make(map[string]string, len(allKinds))
	for _, kind := range allKinds {
		code, text := askText(t, srv1, id, kind)
		if code != http.StatusOK {
			t.Fatalf("paged ask %s: %d", kind, code)
		}
		preAnswers[kind] = text
	}

	// The capped SQL endpoint streams from the paged store: the cap applies
	// and the truncation flag is set.
	resp, out := postJSON(t, srv1.URL+"/api/sessions/"+id+"/sql",
		map[string]string{"query": "SELECT * FROM candidates"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capped sql on paged store: %d %v", resp.StatusCode, out)
	}
	if rows, _ := out["rows"].([]interface{}); len(rows) != 3 {
		t.Fatalf("capped rows = %d, want 3", len(rows))
	}
	if out["truncated"] != true {
		t.Fatalf("truncated = %v", out["truncated"])
	}

	if n := h1.Close(); n != 1 {
		t.Fatalf("checkpointed %d sessions, want 1", n)
	}
	srv1.Close()

	// The checkpoint committed the rows into an epoch-named page file.
	pages, err := filepath.Glob(filepath.Join(dataDir, "sessions", id, "pages-candidates-*.db"))
	if err != nil || len(pages) == 0 {
		t.Fatalf("no committed page file in the session dir (err=%v)", err)
	}

	h2 := NewWithConfig(sys, cfg)
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	defer h2.Close()

	for _, kind := range allKinds {
		code, text := askText(t, srv2, id, kind)
		if code != http.StatusOK {
			t.Fatalf("post-restart paged ask %s: %d", kind, code)
		}
		if text != preAnswers[kind] {
			t.Errorf("paged restart drifted on %s:\n  pre:  %s\n  post: %s", kind, preAnswers[kind], text)
		}
	}
	if postRows := fetchCandidates(t, srv2, id); !reflect.DeepEqual(preRows, postRows) {
		t.Fatal("paged candidates database is not row-for-row identical after restart")
	}

	// Pool gauges are mounted on /debug/vars and moved: the rehydrated reads
	// above faulted pages in, and a quiescent server holds no pins.
	_, vars := getJSON(t, srv2.URL+"/debug/vars")
	misses, _ := vars["jitd_pool_misses"].(float64)
	if misses < 1 {
		t.Errorf("jitd_pool_misses = %v, want >= 1 after cold reads", vars["jitd_pool_misses"])
	}
	if pinned, _ := vars["jitd_pool_pinned"].(float64); pinned != 0 {
		t.Errorf("jitd_pool_pinned = %v, want 0 at rest", vars["jitd_pool_pinned"])
	}
	for _, key := range []string{
		"jitd_pool_hits", "jitd_pool_evictions", "jitd_pool_dirty_writebacks",
		"jitd_pool_resident_pages",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("pool gauge %s missing from /debug/vars", key)
		}
	}
}

// TestPagedEvictionRehydrate drives the LRU eviction path with paged storage:
// an evicted paged session checkpoints (pages + snapshot), releases its
// frames, and rehydrates from disk with identical contents.
func TestPagedEvictionRehydrate(t *testing.T) {
	dataDir := t.TempDir()
	sys := demoSystem(t)
	h := NewWithConfig(sys, Config{
		DataDir: dataDir, BufferPoolPages: 64,
		MaxSessions: 1, SessionTTL: time.Minute,
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { h.Close() })
	h.sessions.stopBackgroundSweeps()
	advance := installFakeClock(h.sessions, time.Unix(1000, 0))

	idA := createSession(t, srv, nil)
	rowsA := fetchCandidates(t, srv, idA)

	advance(time.Second)
	idB := createSession(t, srv, nil) // evicts A under the cap of 1
	if h.sessions.count() != 1 {
		t.Fatalf("resident sessions = %d, want 1", h.sessions.count())
	}

	advance(time.Second)
	preRehydrate := metricRehydrations.Value()
	if got := fetchCandidates(t, srv, idA); !reflect.DeepEqual(rowsA, got) {
		t.Fatal("rehydrated paged session differs from original")
	}
	if got := metricRehydrations.Value() - preRehydrate; got != 1 {
		t.Fatalf("rehydrations delta = %d, want 1", got)
	}
	if code, _ := askText(t, srv, idB, "no-modification"); code != http.StatusOK {
		t.Fatalf("evicted paged session B should rehydrate, got %d", code)
	}
	if pinned := h.pool.Stats().Pinned; pinned != 0 {
		t.Fatalf("pool pins leaked across evict/rehydrate: %d", pinned)
	}
}
