package server

import (
	"crypto/rand"
	"encoding/hex"
	"expvar"
	"fmt"
	"log"
	"sync"
	"time"

	"justintime/internal/core"
	"justintime/internal/sqldb/persist"
)

// newSessionID returns an unguessable session identifier (128 bits from
// crypto/rand). Session IDs are capability tokens — whoever holds one can
// read the applicant's whole candidates database — so they must not be
// enumerable the way sequential IDs are.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return "s-" + hex.EncodeToString(b[:]), nil
}

// sessionEntry is one memory-resident session with its LRU bookkeeping and,
// when persistence is on, the open snapshot+WAL store backing it.
type sessionEntry struct {
	sess     *core.Session
	store    *persist.Store // nil when running memory-only
	lastUsed time.Time
}

// sessionManager owns the server's session lifecycle: unguessable IDs, an
// idle TTL, and a hard cap enforced by least-recently-used eviction, so a
// long-running daemon serving many users holds a bounded number of
// candidate databases in memory. Expired entries are swept on every add
// and get, so memory tracks the live session count without a background
// goroutine (an idle daemon frees its sessions on the next request of any
// kind that touches the store).
//
// With a persister attached, eviction changes meaning: instead of
// destroying a session, TTL and LRU eviction checkpoint it to disk and
// release the memory, and a later request for the id rehydrates it — the
// TTL/cap bound memory residency, not session lifetime. Without a
// persister the original destroy semantics apply.
//
// Known trade-off: persistence I/O (create-snapshot, eviction checkpoints,
// rehydration) runs under the manager mutex, serializing session-map
// operations behind disk writes. That keeps the map, the stores, and the
// metrics trivially consistent (no duplicate rehydrations, no
// evict-while-rehydrating races) at the cost of add/get latency under
// churn; once a request resolves its session, queries proceed without this
// lock. Moving the I/O to per-entry state is a queued ROADMAP item.
type sessionManager struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	now     func() time.Time // test hook
	entries map[string]*sessionEntry
	persist *persister // nil = memory-only
}

func newSessionManager(max int, ttl time.Duration, p *persister) *sessionManager {
	if max < 1 {
		max = 1 // a non-positive cap would make add's eviction loop spin
	}
	return &sessionManager{
		max:     max,
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]*sessionEntry),
		persist: p,
	}
}

// add registers sess under a fresh random ID and returns the ID. Expired
// sessions are swept first; if the store is still at capacity, the least
// recently used session is evicted — new applicants always get in. With
// persistence on, the session's database is snapshotted before the ID is
// returned, so a crash immediately after the response can still serve it.
func (m *sessionManager) add(sess *core.Session, constraintSrcs []string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.sweepLocked(now)
	for len(m.entries) >= m.max {
		m.evictLRULocked()
	}
	id, err := newSessionID()
	if err != nil {
		return "", err
	}
	var store *persist.Store
	if m.persist != nil {
		store, err = m.persist.create(id, sess, constraintSrcs)
		if err != nil {
			return "", fmt.Errorf("server: persisting session: %w", err)
		}
	}
	m.entries[id] = &sessionEntry{sess: sess, store: store, lastUsed: now}
	metricSessionsLive.Add(1)
	return id, nil
}

// get returns the session for id and marks it used. A miss on the in-memory
// map falls through to disk when persistence is on: an evicted (or
// pre-restart) session is rehydrated from its snapshot + WAL instead of
// reporting 404, counting against the cap like any resident session. Every
// get also sweeps expired entries so an idle daemon's memory shrinks with
// its live session count, not its peak.
func (m *sessionManager) get(id string) (*core.Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	// Resolve a resident entry before sweeping: with persistence on, the
	// TTL bounds residency, not lifetime, so an expired-but-still-resident
	// session is served directly instead of being checkpointed to disk and
	// immediately rehydrated byte-identical. Memory-only keeps the original
	// semantics (expired means gone) via the sweep below.
	if e, ok := m.entries[id]; ok && (m.persist != nil || now.Sub(e.lastUsed) <= m.ttl) {
		e.lastUsed = now
		m.sweepLocked(now)
		return e.sess, true
	}
	m.sweepLocked(now)
	if m.persist == nil {
		return nil, false
	}
	sess, store, err := m.persist.open(id)
	if err != nil {
		if err != errSessionNotOnDisk {
			log.Printf("server: rehydrating session %s: %v", id, err)
		}
		return nil, false
	}
	for len(m.entries) >= m.max {
		m.evictLRULocked()
	}
	m.entries[id] = &sessionEntry{sess: sess, store: store, lastUsed: now}
	metricSessionsLive.Add(1)
	metricRehydrations.Add(1)
	return sess, true
}

// remove deletes the session from memory AND disk (the DELETE endpoint's
// contract: after it, the capability is dead and no files remain). It
// reports whether anything existed to delete.
func (m *sessionManager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if ok {
		if m.persist == nil && m.now().Sub(e.lastUsed) > m.ttl {
			ok = false // memory-only: an expired session is already gone
		}
		if e.store != nil {
			e.store.Close() // no checkpoint: the files are about to go
		}
		delete(m.entries, id)
		metricSessionsLive.Add(-1)
	}
	if m.persist != nil && m.persist.remove(id) {
		ok = true
	}
	return ok
}

// count returns the number of memory-resident (possibly expired) sessions.
func (m *sessionManager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// shutdown checkpoints every resident session to disk and closes its store.
// jitd calls it after draining requests on SIGTERM, so a restart with the
// same data dir resumes every session where it left off. It returns the
// number of sessions checkpointed.
func (m *sessionManager) shutdown() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, e := range m.entries {
		if e.store != nil {
			if err := checkpointStore(e.store); err != nil {
				log.Printf("server: checkpointing session %s on shutdown: %v", id, err)
			} else {
				n++
			}
			e.store.Close()
		}
		delete(m.entries, id)
		metricSessionsLive.Add(-1)
	}
	return n
}

func (m *sessionManager) sweepLocked(now time.Time) {
	for id, e := range m.entries {
		if now.Sub(e.lastUsed) > m.ttl {
			m.dropLocked(id, e, metricEvictionsTTL)
		}
	}
}

func (m *sessionManager) evictLRULocked() {
	oldestID := ""
	var oldest time.Time
	for id, e := range m.entries {
		if oldestID == "" || e.lastUsed.Before(oldest) {
			oldestID, oldest = id, e.lastUsed
		}
	}
	if oldestID != "" {
		m.dropLocked(oldestID, m.entries[oldestID], metricEvictionsLRU)
	}
}

// dropLocked evicts one entry from memory, checkpointing it to disk first
// when persistence is on (so the WAL folds into a compact snapshot and the
// session survives for rehydration).
func (m *sessionManager) dropLocked(id string, e *sessionEntry, cause *expvar.Int) {
	if e.store != nil {
		if err := checkpointStore(e.store); err != nil {
			log.Printf("server: checkpointing session %s on eviction: %v", id, err)
		}
		e.store.Close()
	}
	delete(m.entries, id)
	metricSessionsLive.Add(-1)
	cause.Add(1)
}

// checkpointStore folds a session's WAL into a fresh snapshot, counting it.
func checkpointStore(st *persist.Store) error {
	if err := st.Checkpoint(); err != nil {
		return err
	}
	metricCheckpoints.Add(1)
	return nil
}
