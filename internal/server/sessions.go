package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"justintime/internal/core"
)

// newSessionID returns an unguessable session identifier (128 bits from
// crypto/rand). Session IDs are capability tokens — whoever holds one can
// read the applicant's whole candidates database — so they must not be
// enumerable the way sequential IDs are.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return "s-" + hex.EncodeToString(b[:]), nil
}

// sessionEntry is one live session with its LRU bookkeeping.
type sessionEntry struct {
	sess     *core.Session
	lastUsed time.Time
}

// sessionManager owns the server's session lifecycle: unguessable IDs, an
// idle TTL, and a hard cap enforced by least-recently-used eviction, so a
// long-running daemon serving many users holds a bounded number of
// candidate databases in memory. Expired entries are swept on every add
// and get, so memory tracks the live session count without a background
// goroutine (an idle daemon frees its sessions on the next request of any
// kind that touches the store).
type sessionManager struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	now     func() time.Time // test hook
	entries map[string]*sessionEntry
}

func newSessionManager(max int, ttl time.Duration) *sessionManager {
	if max < 1 {
		max = 1 // a non-positive cap would make add's eviction loop spin
	}
	return &sessionManager{
		max:     max,
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]*sessionEntry),
	}
}

// add registers sess under a fresh random ID and returns the ID. Expired
// sessions are swept first; if the store is still at capacity, the least
// recently used session is evicted — new applicants always get in.
func (m *sessionManager) add(sess *core.Session) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.sweepLocked(now)
	for len(m.entries) >= m.max {
		m.evictLRULocked()
	}
	id, err := newSessionID()
	if err != nil {
		return "", err
	}
	m.entries[id] = &sessionEntry{sess: sess, lastUsed: now}
	return id, nil
}

// get returns the session for id and marks it used; an expired or unknown
// id reports false. Every get also sweeps all expired entries so an idle
// daemon's memory shrinks with its live session count, not its peak.
func (m *sessionManager) get(id string) (*core.Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.sweepLocked(now)
	e, ok := m.entries[id]
	if !ok {
		return nil, false
	}
	e.lastUsed = now
	return e.sess, true
}

// remove deletes the session, reporting whether it existed (and had not
// expired).
func (m *sessionManager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if ok && m.now().Sub(e.lastUsed) > m.ttl {
		ok = false
	}
	delete(m.entries, id)
	return ok
}

// count returns the number of stored (possibly expired) sessions.
func (m *sessionManager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

func (m *sessionManager) sweepLocked(now time.Time) {
	for id, e := range m.entries {
		if now.Sub(e.lastUsed) > m.ttl {
			delete(m.entries, id)
		}
	}
}

func (m *sessionManager) evictLRULocked() {
	oldestID := ""
	var oldest time.Time
	for id, e := range m.entries {
		if oldestID == "" || e.lastUsed.Before(oldest) {
			oldestID, oldest = id, e.lastUsed
		}
	}
	if oldestID != "" {
		delete(m.entries, oldestID)
	}
}
