package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"expvar"
	"fmt"
	"hash/maphash"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"justintime/internal/core"
	"justintime/internal/fault"
	"justintime/internal/obs"
	"justintime/internal/sqldb/persist"
)

// newSessionID returns an unguessable session identifier (128 bits from
// crypto/rand). Session IDs are capability tokens — whoever holds one can
// read the applicant's whole candidates database — so they must not be
// enumerable the way sequential IDs are.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return "s-" + hex.EncodeToString(b[:]), nil
}

// entryState is the per-session lifecycle state machine. It exists so that
// persistence I/O can run outside the shard lock: the shard map only records
// *which phase* a session is in, and the goroutine that moved an entry into
// a transitional state owns finishing (or aborting) that transition.
type entryState uint8

const (
	// stateLive: resident and servable; any request may touch it.
	stateLive entryState = iota
	// stateCheckpointing: an evictor claimed this entry and is writing its
	// checkpoint outside the shard lock. The session is still fully
	// servable — a request that arrives mid-checkpoint marks the entry
	// touched, which aborts the eviction instead of racing it.
	stateCheckpointing
)

// sessionEntry is one memory-resident session with its LRU bookkeeping,
// state-machine phase and, when persistence is on, the open snapshot+WAL
// store backing it. All fields are guarded by the owning shard's mutex;
// sess/store are read outside it only by the goroutine that owns the
// entry's current transition.
type sessionEntry struct {
	sess     *core.Session
	store    *persist.Store // nil when running memory-only
	lastUsed time.Time
	state    entryState
	touched  bool // a get arrived mid-checkpoint: abort the eviction
	deleted  bool // a DELETE arrived mid-checkpoint: finish by discarding
}

// rehydration is one in-flight disk load, the unit of singleflight
// coalescing: the first goroutine to miss on a cold id becomes the winner
// and performs the load; every later miss for the same id blocks on done
// and shares the result instead of replaying the WAL again.
type rehydration struct {
	done    chan struct{}
	sess    *core.Session // valid iff ok, set before done closes
	ok      bool
	deleted bool // a DELETE raced the load: winner discards, waiters miss
}

// sessionShard is one lock domain of the manager: a private map of resident
// entries plus the in-flight rehydrations keyed into this shard. Lookups,
// inserts and evictions on different shards never contend.
type sessionShard struct {
	m        *sessionManager
	mu       sync.Mutex
	entries  map[string]*sessionEntry
	inflight map[string]*rehydration
	// deleting tombstones ids whose DELETE is between "forgotten in memory"
	// and "files gone from disk". A rehydration that starts inside that
	// window would find the files still present and resurrect the session;
	// the tombstone makes it miss instead (and makes a winner that already
	// loaded discard). The value is a refcount: a DELETE racing an evictor
	// that owns the entry hands the evictor a reference too, so the
	// tombstone outlives whichever of the two finishes its file removal
	// last (the eviction checkpoint's atomic rename can race RemoveAll and
	// leave files behind for the other party to clean up).
	deleting  map[string]int
	nextSweep time.Time // throttle: full-map TTL scans run at most once per sweepEvery
}

// sessionManager owns the server's session lifecycle: unguessable IDs, an
// idle TTL, and a global resident cap enforced by least-recently-used
// eviction. It is hash-sharded by session ID so lookups never contend
// across shards, and within a shard all persistence I/O (create snapshot,
// eviction checkpoint+fsync, rehydration load) runs *outside* the shard
// lock:
//
//   - Creation snapshots the new session before the entry is published —
//     the ID is fresh random, so nothing can contend on it.
//   - Eviction moves the entry to stateCheckpointing under the lock, then
//     checkpoints off-lock (the dump itself is taken under the DB's own
//     lock by persist.Store.Checkpoint). A request landing mid-checkpoint
//     gets the live session back and aborts the eviction; a DELETE landing
//     mid-checkpoint wins and the evictor discards.
//   - A cache miss registers a singleflight rehydration and loads from
//     disk off-lock; concurrent misses for the same ID coalesce onto the
//     winner's result instead of replaying the WAL N times.
//   - Checkpoints of sessions whose WAL is clean (read-only since the last
//     fold — the common case, sessions never mutate after creation) are
//     skipped entirely.
//
// The TTL bounds memory residency when persistence is on (evicted sessions
// checkpoint to disk and rehydrate on demand) and session lifetime when it
// is off. Expired entries are swept by whichever shard access trips the
// per-shard throttle, and by a background eviction loop so an idle daemon's
// memory shrinks without traffic.
type sessionManager struct {
	shards  []*sessionShard
	seed    maphash.Seed
	max     int          // global resident cap, enforced via live
	live    atomic.Int64 // resident entries across all shards
	ttl     time.Duration
	persist *persister // nil = memory-only

	nowFn      atomic.Pointer[func() time.Time] // test hook, read by every shard
	sweepEvery time.Duration

	stop   chan struct{}
	loopWG sync.WaitGroup
	finMu  sync.Mutex // serializes loopWG.Add for async finishers vs. shutdown's Wait
	closed atomic.Bool

	// Test seams, set before any traffic: called off-lock at the start of a
	// rehydration load / an eviction checkpoint / a DELETE's file removal
	// for the given id.
	hookRehydrate   func(id string)
	hookCheckpoint  func(id string)
	hookRemoveFiles func(id string)

	// traces, when non-nil, receives background-operation traces (eviction
	// checkpoints) and is the collector request spans threaded in via getCtx
	// belong to. logger, when non-nil, replaces slog.Default() for the
	// manager's diagnostics. Both are wired by the Server after construction;
	// tests building bare managers leave them nil.
	traces *obs.Collector
	logger *slog.Logger

	// onPersistError, when non-nil, receives every definitive durability
	// failure (creation snapshot, checkpoint after its retries) so the
	// owning Server can classify it — an ENOSPC flips the server into
	// read-only degraded mode. Wired by the Server after construction.
	onPersistError func(error)

	// keepID, when non-nil, filters freshly minted session IDs: add retries
	// until the predicate accepts one. It is how a cluster shard mints only
	// IDs it owns under the shard map's hash, so a created session's ID
	// routes back to the shard holding it. Wired by the Server after
	// construction, before any request runs.
	keepID func(string) bool
}

// log returns the manager's structured logger.
func (m *sessionManager) log() *slog.Logger {
	if m.logger != nil {
		return m.logger
	}
	return slog.Default()
}

func newSessionManager(max int, ttl time.Duration, shards int, p *persister) *sessionManager {
	if max < 1 {
		max = 1 // a non-positive cap would make the eviction loop spin
	}
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	m := &sessionManager{
		shards:  make([]*sessionShard, shards),
		seed:    maphash.MakeSeed(),
		max:     max,
		ttl:     ttl,
		persist: p,
		stop:    make(chan struct{}),
	}
	m.setNow(time.Now)
	// Sweep scans a whole shard map, so throttle them well below the TTL
	// but often enough that expiry is prompt at human time scales.
	m.sweepEvery = ttl / 8
	if m.sweepEvery > 30*time.Second {
		m.sweepEvery = 30 * time.Second
	}
	for i := range m.shards {
		m.shards[i] = &sessionShard{
			m:        m,
			entries:  make(map[string]*sessionEntry),
			inflight: make(map[string]*rehydration),
			deleting: make(map[string]int),
		}
	}
	registerManager(m)
	m.loopWG.Add(1)
	go m.evictionLoop()
	return m
}

// setNow installs the manager's clock (a test seam; production keeps
// time.Now). It is an atomic so the background eviction loop can read it
// while a test installs a fake.
func (m *sessionManager) setNow(fn func() time.Time) { m.nowFn.Store(&fn) }

func (m *sessionManager) now() time.Time { return (*m.nowFn.Load())() }

// shardFor maps an id onto its shard. maphash is seeded per manager, so
// shard placement is not attacker-predictable even though session IDs
// travel in URLs.
func (m *sessionManager) shardFor(id string) *sessionShard {
	return m.shards[m.shardIndexFor(id)]
}

// shardIndexFor exposes the shard number itself, for trace attribution.
func (m *sessionManager) shardIndexFor(id string) uint64 {
	return maphash.String(m.seed, id) % uint64(len(m.shards))
}

// noteResident adjusts the manager-local cap counter and the process-wide
// gauge together.
func (m *sessionManager) noteResident(delta int64) {
	m.live.Add(delta)
	metricSessionsLive.Add(delta)
}

// add registers sess under a fresh random ID and returns the ID. With
// persistence on, the session's database is snapshotted *before* the entry
// is published (no lock held — the ID is unguessable and unpublished, so
// nothing contends), so a crash immediately after the response can still
// serve it. If the insert pushes the store past the global cap, the least
// recently used session anywhere is evicted.
func (m *sessionManager) add(sess *core.Session, constraintSrcs []string) (string, error) {
	id, err := m.mintSessionID()
	if err != nil {
		return "", err
	}
	var store *persist.Store
	if m.persist != nil {
		store, err = m.persist.create(id, sess, constraintSrcs)
		if err != nil {
			return "", fmt.Errorf("server: persisting session: %w", err)
		}
	}
	m.makeRoom()
	sh := m.shardFor(id)
	now := m.now()
	sh.mu.Lock()
	sh.entries[id] = &sessionEntry{sess: sess, store: store, lastUsed: now, state: stateLive}
	victims := sh.maybeExpireLocked(now)
	sh.mu.Unlock()
	m.noteResident(1)
	m.asyncFinish(sh, victims)
	m.enforceCap()
	return id, nil
}

// mintSessionID generates session IDs until the keepID predicate accepts
// one (rejection sampling). With N cluster shards the acceptance rate is
// ~1/N per draw, so the bound is never hit in practice; reaching it means
// the predicate rejects everything (a shard map that doesn't contain this
// shard's name), which should fail loudly rather than loop forever.
func (m *sessionManager) mintSessionID() (string, error) {
	for attempt := 0; attempt < 4096; attempt++ {
		id, err := newSessionID()
		if err != nil {
			return "", err
		}
		if m.keepID == nil || m.keepID(id) {
			return id, nil
		}
	}
	return "", fmt.Errorf("server: could not mint an acceptable session id (is this shard in the cluster map?)")
}

// get returns the session for id and marks it used. A miss on the
// in-memory map falls through to disk when persistence is on: an evicted
// (or pre-restart) session is rehydrated from its snapshot + WAL instead
// of reporting 404, counting against the cap like any resident session.
func (m *sessionManager) get(id string) (*core.Session, bool) {
	return m.lookup(id, nil)
}

// getCtx is get with trace propagation: when ctx carries an active obs.Span,
// the lookup reports how it resolved — directly on the request's span for a
// trivial resident hit, or under a "session.get" child span for the paths
// that do real work (see lookup).
func (m *sessionManager) getCtx(ctx context.Context, id string) (*core.Session, bool) {
	return m.lookup(id, obs.FromContext(ctx))
}

// startGetSpan opens the "session.get" child under parent. Shard indexes are
// tiny, so Itoa hits strconv's small-int cache and the pre-publish attr
// costs neither an allocation nor a lock. Nil-safe (nil parent, nil span).
func startGetSpan(parent *obs.Span, shIdx uint64) *obs.Span {
	return parent.StartChildAttrs("session.get",
		obs.Attr{Key: "shard", Val: strconv.Itoa(int(shIdx))})
}

// coldGetSpan returns span, opening it now if the fast path hadn't: a
// lookup that leaves the fast path late (expiry, miss, delete race,
// coalesce, rehydrate) still gets its tree node.
func coldGetSpan(span, parent *obs.Span, shIdx uint64) *obs.Span {
	if span != nil {
		return span
	}
	return startGetSpan(parent, shIdx)
}

// endLookup finishes a "session.get" span with the lookup's resolution and
// the shard-lock wait. Nil-safe.
func endLookup(span *obs.Span, result string, lockWait time.Duration) {
	if span == nil {
		return
	}
	span.EndAttrs(obs.Attr{Key: "result", Val: result},
		obs.Attr{Key: "lock_wait_us", Val: strconv.FormatInt(lockWait.Microseconds(), 10)})
}

// lookup is the body of get/getCtx; parent (nil when untraced) is the
// request's active span. The fast path — an uncontended shard lock and a
// resident hit — annotates parent directly (session_result / session_shard
// attrs) instead of opening a child span: a trivial hit has no timing worth
// a tree node, and skipping the span keeps tracing's hot-path cost to two
// plain attr stores and zero clock reads. Every other resolution — lock
// contention, expiry, miss, delete race, singleflight coalesce, rehydrate —
// opens a "session.get" child covering the interesting work, so slow traces
// still show the session manager's role in the tree.
func (m *sessionManager) lookup(id string, parent *obs.Span) (*core.Session, bool) {
	shIdx := m.shardIndexFor(id)
	sh := m.shards[shIdx]
	now := m.now()
	var span *obs.Span
	var lockWait time.Duration
	if !sh.mu.TryLock() {
		// Contended: open the span before blocking so the wait is measured —
		// the span's own start is the baseline, so the wait costs one clock
		// read after the lock lands and nothing inside the critical section.
		span = startGetSpan(parent, shIdx)
		sh.mu.Lock()
		lockWait = span.SinceStart()
	}
	if e, ok := sh.entries[id]; ok && !e.deleted {
		// With persistence on, the TTL bounds residency, not lifetime, so an
		// expired-but-still-resident session is served directly instead of
		// being checkpointed to disk and immediately rehydrated
		// byte-identical. Memory-only keeps expired-means-gone semantics.
		if m.persist == nil && now.Sub(e.lastUsed) > m.ttl {
			// Drop the corpse only if no evictor has claimed it; a claimed
			// entry is the evictor's to delete and count (touching it here
			// would double-decrement the resident counter).
			if e.state == stateLive {
				delete(sh.entries, id)
				sh.mu.Unlock()
				m.noteResident(-1)
				metricEvictionsTTL.Add(1)
				endLookup(coldGetSpan(span, parent, shIdx), "expired", lockWait)
				return nil, false
			}
			sh.mu.Unlock()
			endLookup(coldGetSpan(span, parent, shIdx), "expired", lockWait)
			return nil, false
		}
		e.lastUsed = now
		if e.state == stateCheckpointing {
			// An evictor is mid-checkpoint on this very session. The live
			// object is still coherent (the checkpoint only reads a dump
			// taken under the DB's own lock), so serve it and make the
			// evictor abort instead of closing the store under us.
			e.touched = true
		}
		sess := e.sess
		victims := sh.maybeExpireLocked(now)
		sh.mu.Unlock()
		m.asyncFinish(sh, victims)
		if span != nil {
			endLookup(span, "hit", lockWait)
		} else if parent != nil {
			// Fast path: two plain attr stores on the request's span, no
			// child span, no clock read.
			parent.SetAttr("session_result", "hit")
			parent.SetAttrInt("session_shard", int64(shIdx))
		}
		return sess, true
	}
	victims := sh.maybeExpireLocked(now)
	if m.persist == nil {
		sh.mu.Unlock()
		m.asyncFinish(sh, victims)
		endLookup(coldGetSpan(span, parent, shIdx), "miss", lockWait)
		return nil, false
	}
	if sh.deleting[id] > 0 {
		// A DELETE is between forgetting the session and removing its
		// files; starting a load now could resurrect it. Delete wins.
		sh.mu.Unlock()
		m.asyncFinish(sh, victims)
		endLookup(coldGetSpan(span, parent, shIdx), "deleted", lockWait)
		return nil, false
	}
	// Cold miss: singleflight the disk load. Whoever installs the
	// rehydration first wins and performs the I/O; everyone else blocks on
	// the winner's result instead of reading the snapshot and replaying the
	// WAL once per caller.
	if r, ok := sh.inflight[id]; ok {
		sh.mu.Unlock()
		m.asyncFinish(sh, victims)
		metricRehydrationsCoalesced.Add(1)
		span = coldGetSpan(span, parent, shIdx)
		wait := span.StartChild("singleflight.wait")
		<-r.done
		wait.End()
		endLookup(span, "coalesced", lockWait)
		return r.sess, r.ok
	}
	r := &rehydration{done: make(chan struct{})}
	sh.inflight[id] = r
	sh.mu.Unlock()
	m.asyncFinish(sh, victims)
	return sh.rehydrate(id, r, coldGetSpan(span, parent, shIdx), lockWait)
}

// rehydrate performs the winner's side of a singleflight disk load: open
// the snapshot+WAL (no shard lock held), then publish the result — unless a
// DELETE raced the load, in which case delete wins: the files are removed
// and every waiter sees a miss. span (nil when untraced) receives a
// "session.rehydrate" child covering the disk load and is ended here.
func (sh *sessionShard) rehydrate(id string, r *rehydration, span *obs.Span, lockWait time.Duration) (*core.Session, bool) {
	m := sh.m
	if m.hookRehydrate != nil {
		m.hookRehydrate(id)
	}
	rs := span.StartChild("session.rehydrate")
	sess, store, err := m.persist.open(id)
	if err != nil && !errors.Is(err, errSessionNotOnDisk) {
		rs.SetAttr("error", err.Error())
	}
	rs.End()
	if err == nil {
		// Make room before publishing (as creation does). The inflight
		// record is still registered, so later misses keep coalescing and a
		// racing DELETE still finds something to flag; concurrent winners
		// can overshoot the cap only by the number of in-flight loads.
		m.makeRoom()
	}

	sh.mu.Lock()
	delete(sh.inflight, id)
	_, corpse := sh.entries[id] // a deleted entry an evictor still owns
	if r.deleted || corpse || sh.deleting[id] > 0 {
		sh.mu.Unlock()
		if err == nil {
			store.Close()
			m.persist.remove(id) // in case the open re-created anything
		}
		close(r.done)
		endLookup(span, "deleted", lockWait)
		return nil, false
	}
	if err != nil {
		sh.mu.Unlock()
		if !errors.Is(err, errSessionNotOnDisk) {
			m.log().Error("session rehydration failed", "session_id", id, "err", err)
		}
		close(r.done)
		endLookup(span, "miss", lockWait)
		return nil, false
	}
	sh.entries[id] = &sessionEntry{sess: sess, store: store, lastUsed: m.now(), state: stateLive}
	sh.mu.Unlock()
	m.noteResident(1)
	metricRehydrations.Add(1)
	r.sess, r.ok = sess, true
	close(r.done)
	m.enforceCap()
	endLookup(span, "rehydrate", lockWait)
	return sess, true
}

// remove deletes the session from memory AND disk (the DELETE endpoint's
// contract: after it, the capability is dead and no files remain). It
// reports whether anything existed to delete. Deletion wins every race: an
// entry mid-checkpoint is flagged for the evictor to discard, and an
// in-flight rehydration is flagged so the winner drops its load and every
// coalesced waiter sees a miss.
func (m *sessionManager) remove(id string) bool {
	sh := m.shardFor(id)
	existed := false
	flaggedEvictor := false
	var closeStore *persist.Store
	sh.mu.Lock()
	if e, ok := sh.entries[id]; ok && !e.deleted {
		switch {
		case m.persist == nil && m.now().Sub(e.lastUsed) > m.ttl:
			// Memory-only: an expired session is already gone; drop the
			// corpse but report a miss, like get would.
			delete(sh.entries, id)
		case e.state == stateCheckpointing:
			// An evictor owns the entry; flag it and let the evictor
			// finish by discarding. Resident bookkeeping stays with it,
			// and it inherits a tombstone reference (below) so the id
			// stays unrehydratable until its own file cleanup completes.
			e.deleted = true
			flaggedEvictor = true
			existed = true
		default:
			delete(sh.entries, id)
			closeStore = e.store
			existed = true
		}
		if e.state == stateLive {
			defer m.noteResident(-1)
		}
	}
	if r, ok := sh.inflight[id]; ok {
		r.deleted = true
		existed = true
	}
	if m.persist != nil {
		// Tombstone until the files are gone: a rehydration starting in
		// this window must miss, not reload the doomed files. One
		// reference for this DELETE's own removal; one more for the
		// evictor this call flagged (if any), whose checkpoint can race
		// our RemoveAll and leave files for its discard path to clean up
		// after us. Only the flipping DELETE grants that reference, so a
		// repeat DELETE cannot strand the tombstone.
		refs := 1
		if flaggedEvictor {
			refs++
		}
		sh.deleting[id] += refs
	}
	sh.mu.Unlock()
	if closeStore != nil {
		closeStore.Close() // no checkpoint: the files are about to go
	}
	if m.persist != nil {
		if m.hookRemoveFiles != nil {
			m.hookRemoveFiles(id)
		}
		if m.persist.remove(id) {
			existed = true
		}
		sh.dropTombstoneRef(id)
	}
	return existed
}

// dropTombstoneRef releases one delete-tombstone reference for id; the id
// becomes rehydratable again once the last holder (DELETE or a flagged
// evictor) has finished removing the files.
func (sh *sessionShard) dropTombstoneRef(id string) {
	sh.mu.Lock()
	if sh.deleting[id] > 1 {
		sh.deleting[id]--
	} else {
		delete(sh.deleting, id)
	}
	sh.mu.Unlock()
}

// count returns the number of memory-resident (possibly expired) sessions.
func (m *sessionManager) count() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// shardSizes returns the resident-session count of every shard, in shard
// order (the /debug/vars per-shard gauge).
func (m *sessionManager) shardSizes() []int {
	sizes := make([]int, len(m.shards))
	for i, sh := range m.shards {
		sh.mu.Lock()
		sizes[i] = len(sh.entries)
		sh.mu.Unlock()
	}
	return sizes
}

// shutdown stops the eviction loop, persists every resident session to disk
// and closes its store. jitd calls it after draining requests on SIGTERM,
// so a restart with the same data dir resumes every session where it left
// off. It returns the number of sessions made durable. The snapshot+fsync
// of each session runs outside the shard locks, so shards drain
// independently.
func (m *sessionManager) shutdown() int {
	m.stopBackgroundSweeps()
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		victims := make([]*evictionVictim, 0, len(sh.entries))
		for id, e := range sh.entries {
			if e.state != stateLive || e.deleted {
				continue // owned by an in-flight evictor; it will finish
			}
			e.state = stateCheckpointing
			victims = append(victims, &evictionVictim{id: id, e: e})
		}
		sh.mu.Unlock()
		for _, v := range victims {
			// Same settle protocol as finishEviction: a DELETE racing the
			// drain (Close can run before srv.Shutdown finishes if the
			// drain times out) must win and drop its tombstone ref, and a
			// request that touched the entry keeps its store open — its
			// WAL is already flushed per-append, so recovery loses
			// nothing.
			sh.mu.Lock()
			if done := sh.settleClaimLocked(v.id, v.e); done {
				continue
			}
			store := v.e.store
			sh.mu.Unlock()
			var cpErr error
			if store != nil {
				cpErr = m.checkpointIfDirty(v.id, store)
			}
			sh.mu.Lock()
			if done := sh.settleClaimLocked(v.id, v.e); done {
				continue
			}
			delete(sh.entries, v.id)
			sh.mu.Unlock()
			if store != nil {
				if cpErr != nil {
					m.log().Error("shutdown checkpoint failed", "session_id", v.id, "err", cpErr)
				} else {
					n++
				}
				store.Close()
			}
			m.noteResident(-1)
		}
	}
	return n
}

// stopBackgroundSweeps halts the background eviction loop and waits for
// its in-flight sweep, idempotently. shutdown uses it; interleaving tests
// call it directly so that every eviction is owned by a test-driven
// goroutine (the loop would otherwise race them for eviction claims and
// read the test hooks concurrently).
func (m *sessionManager) stopBackgroundSweeps() {
	if m.closed.CompareAndSwap(false, true) {
		close(m.stop)
		// Barrier: any async finisher that saw closed == false has already
		// done its loopWG.Add under finMu, so the Wait below covers it;
		// finishers starting after this run inline instead.
		m.finMu.Lock()
		m.finMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
		m.loopWG.Wait()
		unregisterManager(m)
	}
}

// asyncFinish completes claimed TTL evictions off the request goroutine, so
// a lookup that happens to trip the sweep throttle never pays for other
// sessions' checkpoint I/O. During shutdown the work runs inline instead
// (the loopWG window is closed).
func (m *sessionManager) asyncFinish(sh *sessionShard, victims []*evictionVictim) {
	if len(victims) == 0 {
		return
	}
	m.finMu.Lock()
	if m.closed.Load() {
		m.finMu.Unlock()
		sh.finishEvictions(victims, metricEvictionsTTL)
		return
	}
	m.loopWG.Add(1)
	m.finMu.Unlock()
	go func() {
		defer m.loopWG.Done()
		sh.finishEvictions(victims, metricEvictionsTTL)
	}()
}

// evictionLoop is the shard-independent background sweeper: it wakes every
// sweepEvery and checkpoints-out expired sessions, so an idle daemon's
// memory shrinks with its live session count even when no request arrives
// to trip the per-shard sweep throttle.
func (m *sessionManager) evictionLoop() {
	defer m.loopWG.Done()
	every := m.sweepEvery
	if every < time.Second {
		every = time.Second // don't busy-spin on micro TTLs (tests)
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.sweepAll()
		}
	}
}

// sweepAll expires idle sessions across every shard, running each shard's
// checkpoint I/O outside its lock.
func (m *sessionManager) sweepAll() {
	now := m.now()
	for _, sh := range m.shards {
		sh.mu.Lock()
		victims := sh.expireLocked(now)
		sh.mu.Unlock()
		sh.finishEvictions(victims, metricEvictionsTTL)
	}
}

type evictionVictim struct {
	id string
	e  *sessionEntry
}

// maybeExpireLocked runs expireLocked at most once per sweepEvery — the
// per-access sweep is an opportunistic assist to the background loop, not a
// full scan on every request.
func (sh *sessionShard) maybeExpireLocked(now time.Time) []*evictionVictim {
	if now.Before(sh.nextSweep) {
		return nil
	}
	return sh.expireLocked(now)
}

// expireLocked claims every expired live entry for eviction (moving it to
// stateCheckpointing) and returns the claimed victims. The caller must
// finish them with finishEvictions after releasing the shard lock.
func (sh *sessionShard) expireLocked(now time.Time) []*evictionVictim {
	sh.nextSweep = now.Add(sh.m.sweepEvery)
	var victims []*evictionVictim
	for id, e := range sh.entries {
		if e.state == stateLive && !e.deleted && now.Sub(e.lastUsed) > sh.m.ttl {
			e.state = stateCheckpointing
			victims = append(victims, &evictionVictim{id: id, e: e})
		}
	}
	return victims
}

// finishEvictions completes claimed evictions with no shard lock held
// during I/O.
func (sh *sessionShard) finishEvictions(victims []*evictionVictim, cause *expvar.Int) {
	for _, v := range victims {
		sh.finishEviction(v.id, v.e, cause)
	}
}

// finishEviction is the second half of the eviction state machine, entered
// with e claimed (stateCheckpointing) by this goroutine. It checkpoints the
// session outside the shard lock, then commits the eviction — unless a
// request touched the entry meanwhile (abort: the session stays live) or a
// DELETE flagged it (discard: close and remove the files).
func (sh *sessionShard) finishEviction(id string, e *sessionEntry, cause *expvar.Int) {
	m := sh.m

	sh.mu.Lock()
	if done := sh.settleClaimLocked(id, e); done {
		return // settleClaimLocked unlocked for us
	}
	store := e.store
	sh.mu.Unlock()

	var cpErr error
	if store != nil {
		if m.hookCheckpoint != nil {
			m.hookCheckpoint(id)
		}
		cpErr = m.checkpointIfDirty(id, store)
	}

	sh.mu.Lock()
	if done := sh.settleClaimLocked(id, e); done {
		return
	}
	delete(sh.entries, id)
	sh.mu.Unlock()
	if cpErr != nil {
		// The on-disk pair still holds the last good checkpoint + WAL; a
		// later rehydration recovers that state. Log the gap and proceed.
		m.log().Error("eviction checkpoint failed", "session_id", id, "err", cpErr)
	}
	if store != nil {
		store.Close()
	}
	m.noteResident(-1)
	cause.Add(1)
}

// settleClaimLocked resolves an eviction claim against flags raced onto the
// entry. It returns true — having released the shard lock and settled the
// entry — when the eviction must not proceed: either a request resurrected
// the session (abort, back to stateLive) or a DELETE won (discard: close
// the store, drop the entry, remove the files). Returns false with the lock
// still held when the eviction should continue.
func (sh *sessionShard) settleClaimLocked(id string, e *sessionEntry) bool {
	if e.deleted {
		delete(sh.entries, id)
		sh.mu.Unlock()
		if e.store != nil {
			e.store.Close()
		}
		if sh.m.persist != nil {
			sh.m.persist.remove(id) // a checkpoint may have re-written files
			sh.dropTombstoneRef(id) // the reference remove() granted us
		}
		sh.m.noteResident(-1)
		return true
	}
	if e.touched {
		e.touched = false
		e.state = stateLive
		sh.mu.Unlock()
		return true
	}
	return false
}

// enforceCap evicts globally-least-recently-used sessions until the
// resident count is back under the cap. Victim selection scans shard
// minima (shard locks taken one at a time, never nested); the checkpoint
// I/O itself runs off-lock like every other eviction.
//
// The cap is enforced eventually, not as a hard pre-insert gate: a new
// entry is published first and the overflow evicted right after (plus
// makeRoom before publishing), so concurrent inserts can overshoot the cap
// briefly — bounded by the number of in-flight creations (createSem) and
// rehydrations. When every candidate victim is already claimed by another
// evictor the loop stops; those claims each release one slot as they
// commit.
func (m *sessionManager) enforceCap() {
	for m.live.Load() > int64(m.max) {
		if !m.evictGlobalLRU() {
			return // nothing evictable right now (claims in flight)
		}
	}
}

// makeRoom pre-evicts so an imminent insert lands at (or under) the cap,
// mirroring the old manager's evict-before-insert behavior.
func (m *sessionManager) makeRoom() {
	for m.live.Load() >= int64(m.max) {
		if !m.evictGlobalLRU() {
			return
		}
	}
}

func (m *sessionManager) evictGlobalLRU() bool {
	victimShard := -1
	var victimID string
	var victimTime time.Time
	for si, sh := range m.shards {
		sh.mu.Lock()
		for id, e := range sh.entries {
			if e.state != stateLive || e.deleted {
				continue
			}
			if victimShard == -1 || e.lastUsed.Before(victimTime) {
				victimShard, victimID, victimTime = si, id, e.lastUsed
			}
		}
		sh.mu.Unlock()
	}
	if victimShard == -1 {
		return false
	}
	sh := m.shards[victimShard]
	sh.mu.Lock()
	e, ok := sh.entries[victimID]
	if !ok || e.state != stateLive || e.deleted {
		sh.mu.Unlock()
		return true // raced away; the caller re-checks the cap and retries
	}
	e.state = stateCheckpointing
	sh.mu.Unlock()
	sh.finishEviction(victimID, e, metricEvictionsLRU)
	return true
}

// checkpointIfDirty folds a session's WAL into a fresh snapshot, counting
// it — unless the WAL is clean, in which case the snapshot on disk already
// equals the live state and the write+fsync is skipped. A transient failure
// (a flaky device, a momentarily full disk) is retried under a capped
// jittered backoff before the error is declared definitive — the checkpoint
// protocol is idempotent (tmp + fsync + atomic rename), so a half-written
// attempt leaves nothing a retry can trip over. Corruption is not retried:
// rewriting the same bytes cannot fix a failing checksum.
func (m *sessionManager) checkpointIfDirty(id string, st *persist.Store) error {
	if !st.Dirty() {
		return nil
	}
	retry := fault.Backoff{Base: 50 * time.Millisecond, Max: time.Second}
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			metricCheckpointRetries.Add(1)
			m.log().Warn("checkpoint failed; retrying",
				"session_id", id, "attempt", attempt, "err", err)
			time.Sleep(retry.Next())
		}
		if err = m.checkpointOnce(id, st); err == nil {
			return nil
		}
		if persist.IsCorrupt(err) {
			break
		}
	}
	if m.onPersistError != nil {
		m.onPersistError(err)
	}
	return err
}

// checkpointOnce is one checkpoint attempt under a background trace (method
// "bg", route "session.checkpoint"), so eviction and shutdown I/O shows up
// in /debug/requests with the same span detail as request work.
func (m *sessionManager) checkpointOnce(id string, st *persist.Store) error {
	ctx := context.Background()
	var t *obs.Trace
	if m.traces != nil {
		t = m.traces.StartRequest("bg", "session.checkpoint")
		t.Root.SetAttr("session_id", id)
		ctx = obs.With(ctx, t.Root)
	}
	err := st.CheckpointCtx(ctx)
	if t != nil {
		status := 0
		if err != nil {
			status = 500
		}
		m.traces.Finish(t, status)
	}
	if err != nil {
		return err
	}
	metricCheckpoints.Add(1)
	if m.persist != nil {
		// The file set changed shape (new snapshot epoch, reset WAL, fresh
		// page files): ship the whole set to the standby.
		m.persist.noteSync(id)
	}
	return nil
}
