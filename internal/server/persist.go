package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"justintime/internal/core"
	"justintime/internal/sqldb/pager"
	"justintime/internal/sqldb/persist"
)

// sessionIDPattern is the exact shape newSessionID produces. Session IDs
// name directories under the data dir, so anything else — in particular a
// path-traversing id from the URL — must never reach the filesystem.
var sessionIDPattern = regexp.MustCompile(`^s-[0-9a-f]{32}$`)

const metaFile = "meta.json"

// sessionMeta is the per-session sidecar holding what the candidates
// database alone cannot reconstruct: the applicant's original profile (x_0
// may differ from it under custom temporal rules) and the constraint sources
// for operator inspection.
type sessionMeta struct {
	Profile     []float64 `json:"profile"`
	Constraints []string  `json:"constraints,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
}

// persister owns the on-disk session area (<data-dir>/sessions/<id>/) and
// the snapshot/WAL lifecycle of each session database.
type persister struct {
	root string
	sys  *core.System
	opts persist.Options
	pool *pager.Pool // non-nil: candidates tables go on paged storage
	// shipper, when non-nil, streams this session tree to a warm standby:
	// WAL appends ride per-session OnAppend hooks, file-set changes (create,
	// checkpoint) and deletions are announced through it. Wired by the Server
	// right after construction, before any session exists.
	shipper *persist.Shipper
}

// newPersister prepares <dataDir>/sessions and sweeps orphans left by a
// crash (directories without a complete snapshot, stray temp files). A
// non-nil pool opts every session's candidates table into paged storage.
func newPersister(dataDir string, sys *core.System, sync persist.SyncMode, pool *pager.Pool) *persister {
	p := &persister{
		root: filepath.Join(dataDir, "sessions"),
		sys:  sys,
		pool: pool,
		opts: persist.Options{
			Sync:       sync,
			OnWALWrite: func(n int) { metricWALBytes.Add(int64(n)) },
			OnFsync:    func(d time.Duration) { walFsyncHist.observe(d) },
			Pool:       pool,
		},
	}
	_ = os.MkdirAll(p.root, 0o755)
	p.sweepOrphans()
	return p
}

// optsFor returns the store options for one session, with the replication
// append hook bound to its id when shipping is on.
func (p *persister) optsFor(id string) persist.Options {
	opts := p.opts
	if p.shipper != nil {
		opts.OnAppend = p.shipper.OnAppend(id)
	}
	return opts
}

// noteSync announces that id's durable file set changed shape (created or
// checkpointed). Nil-safe when shipping is off.
func (p *persister) noteSync(id string) {
	if p.shipper != nil {
		p.shipper.NoteSync(id)
	}
}

// dir maps a validated session id to its directory.
func (p *persister) dir(id string) (string, bool) {
	if !sessionIDPattern.MatchString(id) {
		return "", false
	}
	return filepath.Join(p.root, id), true
}

// create makes id's directory the durable home of a freshly generated
// session: the sidecar metadata, a full snapshot of the candidates database,
// and an empty WAL attached to it. A failure cleans the directory up —
// creation is atomic-or-absent from the rehydrator's point of view.
func (p *persister) create(id string, sess *core.Session, constraintSrcs []string) (*persist.Store, error) {
	dir, ok := p.dir(id)
	if !ok {
		return nil, fmt.Errorf("server: unsafe session id %q", id)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta := sessionMeta{Profile: sess.Profile(), Constraints: constraintSrcs, CreatedAt: time.Now().UTC()}
	if err := writeFileAtomic(filepath.Join(dir, metaFile), meta); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if p.pool != nil {
		// Move the bulky candidates table off the heap before the first
		// snapshot: its rows land in slotted pages, and persist.Create
		// checkpoints the page file alongside the snapshot.
		if err := sess.DB().PageTable(core.CandidatesTable, p.pool, filepath.Join(dir, persist.SpillFileName(core.CandidatesTable))); err != nil {
			sess.DB().ClosePagedStores()
			os.RemoveAll(dir)
			return nil, err
		}
	}
	store, err := persist.Create(dir, sess.DB(), p.optsFor(id))
	if err != nil {
		sess.DB().ClosePagedStores()
		os.RemoveAll(dir)
		return nil, err
	}
	p.noteSync(id)
	return store, nil
}

// errSessionNotOnDisk distinguishes "this id was never persisted" (a plain
// 404) from "persisted but unreadable" (worth logging).
var errSessionNotOnDisk = errors.New("server: session not on disk")

// open rehydrates id from disk: snapshot + WAL into a database, then a live
// Session around it — no candidate regeneration.
func (p *persister) open(id string) (*core.Session, *persist.Store, error) {
	dir, ok := p.dir(id)
	if !ok {
		return nil, nil, errSessionNotOnDisk
	}
	if _, err := os.Stat(filepath.Join(dir, persist.SnapshotFile)); err != nil {
		return nil, nil, errSessionNotOnDisk
	}
	var meta sessionMeta
	if raw, err := os.ReadFile(filepath.Join(dir, metaFile)); err == nil {
		_ = json.Unmarshal(raw, &meta) // tolerate a missing/corrupt sidecar: x_0 stands in
	}
	db, store, err := persist.Open(dir, p.optsFor(id))
	if err != nil {
		return nil, nil, err
	}
	sess, err := p.sys.RestoreSession(db, meta.Profile)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return sess, store, nil
}

// remove deletes id's on-disk files, reporting whether any existed.
func (p *persister) remove(id string) bool {
	dir, ok := p.dir(id)
	if !ok {
		return false
	}
	if _, err := os.Stat(dir); err != nil {
		return false
	}
	if persist.Remove(dir) != nil {
		return false
	}
	if p.shipper != nil {
		p.shipper.NoteDelete(id)
	}
	return true
}

// sweepOrphans removes the debris an unclean shutdown can leave in the
// session area: entries that are not session directories, directories whose
// snapshot never completed (creation crashed before the atomic rename), and
// stray *.tmp files anywhere in between.
func (p *persister) sweepOrphans() {
	entries, err := os.ReadDir(p.root)
	if err != nil {
		return
	}
	for _, e := range entries {
		full := filepath.Join(p.root, e.Name())
		if !e.IsDir() {
			if filepath.Ext(e.Name()) == ".tmp" {
				_ = os.Remove(full)
			}
			continue
		}
		if !sessionIDPattern.MatchString(e.Name()) {
			continue // not ours; leave it alone
		}
		if _, err := os.Stat(filepath.Join(full, persist.SnapshotFile)); err != nil {
			_ = os.RemoveAll(full) // create never committed
		}
	}
}

// writeFileAtomic JSON-encodes v into path via the temp-write-rename dance,
// so a crash never leaves a partial file under the final name.
func writeFileAtomic(path string, v interface{}) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
