package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"justintime/internal/core"
	"justintime/internal/fault"
	"justintime/internal/sqldb/pager"
	"justintime/internal/sqldb/persist"
)

// sessionIDPattern is the exact shape newSessionID produces. Session IDs
// name directories under the data dir, so anything else — in particular a
// path-traversing id from the URL — must never reach the filesystem.
var sessionIDPattern = regexp.MustCompile(`^s-[0-9a-f]{32}$`)

const metaFile = "meta.json"

// sessionMeta is the per-session sidecar holding what the candidates
// database alone cannot reconstruct: the applicant's original profile (x_0
// may differ from it under custom temporal rules) and the constraint sources
// for operator inspection.
type sessionMeta struct {
	Profile     []float64 `json:"profile"`
	Constraints []string  `json:"constraints,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
}

// persister owns the on-disk session area (<data-dir>/sessions/<id>/) and
// the snapshot/WAL lifecycle of each session database.
type persister struct {
	root string
	sys  *core.System
	opts persist.Options
	pool *pager.Pool // non-nil: candidates tables go on paged storage
	// fs is the I/O plane every durable write goes through — the real
	// filesystem in production, a fault.Injector under test/chaos.
	fs fault.FS
	// logger, when non-nil, replaces slog.Default() for persistence
	// diagnostics (quarantine events). Wired by the Server.
	logger *slog.Logger
	// shipper, when non-nil, streams this session tree to a warm standby:
	// WAL appends ride per-session OnAppend hooks, file-set changes (create,
	// checkpoint) and deletions are announced through it. Wired by the Server
	// right after construction, before any session exists.
	shipper *persist.Shipper
}

// newPersister prepares <dataDir>/sessions and sweeps orphans left by a
// crash (directories without a complete snapshot, stray temp files). A
// non-nil pool opts every session's candidates table into paged storage.
// A non-nil fsys routes every durable write through it (fault injection).
func newPersister(dataDir string, sys *core.System, sync persist.SyncMode, pool *pager.Pool, fsys fault.FS) *persister {
	p := &persister{
		root: filepath.Join(dataDir, "sessions"),
		sys:  sys,
		pool: pool,
		fs:   fault.Of(fsys),
		opts: persist.Options{
			Sync:       sync,
			OnWALWrite: func(n int) { metricWALBytes.Add(int64(n)) },
			OnFsync:    func(d time.Duration) { walFsyncHist.observe(d) },
			Pool:       pool,
			FS:         fsys,
		},
	}
	_ = p.fs.MkdirAll(p.root, 0o755)
	p.sweepOrphans()
	return p
}

// log returns the persister's structured logger.
func (p *persister) log() *slog.Logger {
	if p.logger != nil {
		return p.logger
	}
	return slog.Default()
}

// optsFor returns the store options for one session, with the replication
// append hook bound to its id when shipping is on.
func (p *persister) optsFor(id string) persist.Options {
	opts := p.opts
	if p.shipper != nil {
		opts.OnAppend = p.shipper.OnAppend(id)
	}
	return opts
}

// noteSync announces that id's durable file set changed shape (created or
// checkpointed). Nil-safe when shipping is off.
func (p *persister) noteSync(id string) {
	if p.shipper != nil {
		p.shipper.NoteSync(id)
	}
}

// dir maps a validated session id to its directory.
func (p *persister) dir(id string) (string, bool) {
	if !sessionIDPattern.MatchString(id) {
		return "", false
	}
	return filepath.Join(p.root, id), true
}

// create makes id's directory the durable home of a freshly generated
// session: the sidecar metadata, a full snapshot of the candidates database,
// and an empty WAL attached to it. A failure cleans the directory up —
// creation is atomic-or-absent from the rehydrator's point of view.
func (p *persister) create(id string, sess *core.Session, constraintSrcs []string) (*persist.Store, error) {
	dir, ok := p.dir(id)
	if !ok {
		return nil, fmt.Errorf("server: unsafe session id %q", id)
	}
	if err := p.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta := sessionMeta{Profile: sess.Profile(), Constraints: constraintSrcs, CreatedAt: time.Now().UTC()}
	if err := writeFileAtomic(p.fs, filepath.Join(dir, metaFile), meta); err != nil {
		p.fs.RemoveAll(dir)
		return nil, err
	}
	if p.pool != nil {
		// Move the bulky candidates table off the heap before the first
		// snapshot: its rows land in slotted pages, and persist.Create
		// checkpoints the page file alongside the snapshot.
		if err := sess.DB().PageTableFS(p.opts.FS, core.CandidatesTable, p.pool, filepath.Join(dir, persist.SpillFileName(core.CandidatesTable))); err != nil {
			sess.DB().ClosePagedStores()
			p.fs.RemoveAll(dir)
			return nil, err
		}
	}
	store, err := persist.Create(dir, sess.DB(), p.optsFor(id))
	if err != nil {
		sess.DB().ClosePagedStores()
		p.fs.RemoveAll(dir)
		return nil, err
	}
	p.noteSync(id)
	return store, nil
}

// errSessionNotOnDisk distinguishes "this id was never persisted" (a plain
// 404) from "persisted but unreadable" (worth logging).
var errSessionNotOnDisk = errors.New("server: session not on disk")

// open rehydrates id from disk: snapshot + WAL into a database, then a live
// Session around it — no candidate regeneration. A store whose snapshot or
// page file fails its structural checks (bad magic, CRC mismatch, truncated
// frame) is quarantined: the directory moves aside, the id reports a plain
// miss, and the rest of the process keeps serving. Transient device errors
// (EIO) are NOT corruption and surface as ordinary failures instead.
func (p *persister) open(id string) (*core.Session, *persist.Store, error) {
	dir, ok := p.dir(id)
	if !ok {
		return nil, nil, errSessionNotOnDisk
	}
	if _, err := p.fs.Stat(filepath.Join(dir, persist.SnapshotFile)); err != nil {
		return nil, nil, errSessionNotOnDisk
	}
	var meta sessionMeta
	if f, err := p.fs.Open(filepath.Join(dir, metaFile)); err == nil {
		raw, rerr := io.ReadAll(f)
		f.Close()
		if rerr == nil {
			_ = json.Unmarshal(raw, &meta) // tolerate a missing/corrupt sidecar: x_0 stands in
		}
	}
	db, store, err := persist.Open(dir, p.optsFor(id))
	if err != nil {
		if persist.IsCorrupt(err) && p.quarantine(id, dir, err) {
			return nil, nil, errSessionNotOnDisk
		}
		return nil, nil, err
	}
	sess, err := p.sys.RestoreSession(db, meta.Profile)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return sess, store, nil
}

// quarantine moves a corrupt session directory to <data-dir>/quarantine/<id>
// so the damaged bytes survive for forensics while the id stops resolving.
// It uses the real filesystem deliberately: the move must succeed even while
// an injector is failing I/O, or the server would re-read the same corrupt
// snapshot forever.
func (p *persister) quarantine(id, dir string, cause error) bool {
	qroot := filepath.Join(filepath.Dir(p.root), "quarantine")
	if err := os.MkdirAll(qroot, 0o755); err != nil {
		return false
	}
	dest := filepath.Join(qroot, id)
	_ = os.RemoveAll(dest) // a prior quarantine of the same id: keep the newest
	if err := os.Rename(dir, dest); err != nil {
		return false
	}
	metricSessionsQuarantined.Add(1)
	p.log().Error("session store corrupt; quarantined",
		"session_id", id, "quarantine_dir", dest, "err", cause)
	return true
}

// remove deletes id's on-disk files, reporting whether any existed.
func (p *persister) remove(id string) bool {
	dir, ok := p.dir(id)
	if !ok {
		return false
	}
	if _, err := p.fs.Stat(dir); err != nil {
		return false
	}
	if persist.Remove(dir) != nil {
		return false
	}
	if p.shipper != nil {
		p.shipper.NoteDelete(id)
	}
	return true
}

// sweepOrphans removes the debris an unclean shutdown can leave in the
// session area: entries that are not session directories, directories whose
// snapshot never completed (creation crashed before the atomic rename), and
// stray *.tmp files anywhere in between.
func (p *persister) sweepOrphans() {
	entries, err := p.fs.ReadDir(p.root)
	if err != nil {
		return
	}
	for _, e := range entries {
		full := filepath.Join(p.root, e.Name())
		if !e.IsDir() {
			if filepath.Ext(e.Name()) == ".tmp" {
				_ = p.fs.Remove(full)
			}
			continue
		}
		if !sessionIDPattern.MatchString(e.Name()) {
			continue // not ours; leave it alone
		}
		if _, err := p.fs.Stat(filepath.Join(full, persist.SnapshotFile)); err != nil {
			_ = p.fs.RemoveAll(full) // create never committed
		}
	}
}

// writeFileAtomic JSON-encodes v into path via the temp-write-rename dance,
// so a crash never leaves a partial file under the final name.
func writeFileAtomic(fsys fault.FS, path string, v interface{}) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}
