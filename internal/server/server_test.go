package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"justintime/internal/candgen"
	"justintime/internal/core"
	"justintime/internal/dataset"
	"justintime/internal/drift"
	"justintime/internal/mlmodel"
)

var (
	sysOnce sync.Once
	sysVal  *core.System
	sysErr  error
)

// demoSystem trains one small system shared by all server tests and benches.
func demoSystem(t testing.TB) *core.System {
	t.Helper()
	sysOnce.Do(func() {
		d := dataset.MustGenerate(dataset.Config{Seed: 3, Eras: 4, RowsPerEra: 400, LabelNoise: 0.03, DriftScale: 1})
		hist := make([]drift.Era, d.Eras())
		for e := 0; e < d.Eras(); e++ {
			for _, ex := range d.Era(e) {
				hist[e].X = append(hist[e].X, ex.X)
				hist[e].Y = append(hist[e].Y, ex.Label)
			}
		}
		sysVal, sysErr = core.NewSystem(core.Config{
			Schema:     dataset.LoanSchema(),
			T:          2,
			DeltaYears: 1,
			Generator:  drift.Last{Trainer: drift.ForestTrainer(mlmodel.ForestConfig{Trees: 12, MaxDepth: 6, MinLeaf: 3, Seed: 7})},
			CandGen:    candgen.Config{K: 5, BeamWidth: 10, MaxIters: 12, Patience: 3, DiversityPenalty: 0.5},
			BaseYear:   2010,
		}, hist)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	h := New(demoSystem(t))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	// Release the manager too: its background eviction loop and registry
	// entry outlive the test otherwise.
	t.Cleanup(func() { h.Close() })
	return srv
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, map[string]interface{}) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func johnProfile() map[string]float64 {
	return map[string]float64{
		"age": 29, "household": 1, "income": 48000,
		"debt": 1900, "seniority": 4, "amount": 30000,
	}
}

func createSession(t *testing.T, srv *httptest.Server, constraints []string) string {
	t.Helper()
	resp, out := postJSON(t, srv.URL+"/api/sessions", map[string]interface{}{
		"profile":     johnProfile(),
		"constraints": constraints,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %d %v", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no session id in %v", out)
	}
	return id
}

func TestSchemaEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := getJSON(t, srv.URL+"/api/schema")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	fields, _ := out["fields"].([]interface{})
	if len(fields) != 6 {
		t.Fatalf("fields = %v", out)
	}
	first := fields[0].(map[string]interface{})
	if first["name"] != "age" || first["immutable"] != true {
		t.Errorf("age field = %v", first)
	}
}

func TestModelsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := getJSON(t, srv.URL+"/api/models")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	models, _ := out["models"].([]interface{})
	if len(models) != 3 {
		t.Fatalf("models = %v", out)
	}
}

func TestProfilesEndpoint(t *testing.T) {
	srv := testServer(t)
	_, out := getJSON(t, srv.URL+"/api/profiles")
	profiles, _ := out["profiles"].([]interface{})
	if len(profiles) != 5 {
		t.Fatalf("profiles = %v", out)
	}
}

func TestQuestionsEndpoint(t *testing.T) {
	srv := testServer(t)
	_, out := getJSON(t, srv.URL+"/api/questions")
	qs, _ := out["questions"].([]interface{})
	if len(qs) != 6 {
		t.Fatalf("questions = %v", out)
	}
}

func TestSessionLifecycle(t *testing.T) {
	srv := testServer(t)
	id := createSession(t, srv, []string{"income <= old(income) * 1.5"})

	// Inputs inspection endpoint.
	resp, out := getJSON(t, srv.URL+"/api/sessions/"+id+"/inputs")
	if resp.StatusCode != 200 {
		t.Fatalf("inputs: %d %v", resp.StatusCode, out)
	}
	rows, _ := out["rows"].([]interface{})
	if len(rows) != 3 { // T=2 => 3 temporal inputs
		t.Fatalf("inputs rows = %v", out)
	}

	// Ask every canned question.
	for _, kind := range []string{
		"no-modification", "minimal-features-set", "dominant-feature",
		"minimal-overall-modification", "maximal-confidence", "turning-point",
	} {
		body := map[string]interface{}{"kind": kind, "feature": "income", "alpha": 0.7}
		resp, out := postJSON(t, srv.URL+"/api/sessions/"+id+"/ask", body)
		if resp.StatusCode != 200 {
			t.Fatalf("ask %s: %d %v", kind, resp.StatusCode, out)
		}
		if out["text"] == "" || out["sql"] == "" {
			t.Errorf("ask %s: missing text/sql: %v", kind, out)
		}
	}

	// Expert SQL.
	resp, out = postJSON(t, srv.URL+"/api/sessions/"+id+"/sql",
		map[string]string{"query": "SELECT COUNT(*) FROM candidates"})
	if resp.StatusCode != 200 {
		t.Fatalf("sql: %d %v", resp.StatusCode, out)
	}
}

func TestSessionErrors(t *testing.T) {
	srv := testServer(t)

	// Missing attribute.
	resp, _ := postJSON(t, srv.URL+"/api/sessions", map[string]interface{}{
		"profile": map[string]float64{"age": 29},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing attribute: %d", resp.StatusCode)
	}
	// Unknown attribute.
	p := johnProfile()
	p["nosuch"] = 1
	resp, _ = postJSON(t, srv.URL+"/api/sessions", map[string]interface{}{"profile": p})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown attribute: %d", resp.StatusCode)
	}
	// Bad constraint.
	resp, _ = postJSON(t, srv.URL+"/api/sessions", map[string]interface{}{
		"profile": johnProfile(), "constraints": []string{"income >"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad constraint: %d", resp.StatusCode)
	}
	// Out-of-bounds profile.
	p = johnProfile()
	p["age"] = 5
	resp, _ = postJSON(t, srv.URL+"/api/sessions", map[string]interface{}{"profile": p})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad profile: %d", resp.StatusCode)
	}

	// Unknown session.
	resp, _ = postJSON(t, srv.URL+"/api/sessions/nope/ask", map[string]string{"kind": "no-modification"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d", resp.StatusCode)
	}

	id := createSession(t, srv, nil)
	// Unknown question kind.
	resp, _ = postJSON(t, srv.URL+"/api/sessions/"+id+"/ask", map[string]string{"kind": "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: %d", resp.StatusCode)
	}
	// Bad SQL.
	resp, _ = postJSON(t, srv.URL+"/api/sessions/"+id+"/sql", map[string]string{"query": "SELEC"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad sql: %d", resp.StatusCode)
	}
	// Empty SQL.
	resp, _ = postJSON(t, srv.URL+"/api/sessions/"+id+"/sql", map[string]string{"query": " "})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sql: %d", resp.StatusCode)
	}
	// Writes rejected up front through the expert endpoint.
	for _, q := range []string{"DELETE FROM candidates", "DROP TABLE candidates", "UPDATE candidates SET p = 1", "INSERT INTO candidates VALUES (1)"} {
		resp, _ = postJSON(t, srv.URL+"/api/sessions/"+id+"/sql", map[string]string{"query": q})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("non-SELECT %q through sql endpoint: %d", q, resp.StatusCode)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]interface{}{"profile": johnProfile()})
			resp, err := http.Post(srv.URL+"/api/sessions", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("worker %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv := testServer(t)
	id := createSession(t, srv, nil)
	resp, out := getJSON(t, srv.URL+"/api/sessions/"+id+"/plan")
	if resp.StatusCode != 200 {
		t.Fatalf("plan: %d %v", resp.StatusCode, out)
	}
	plan, _ := out["plan"].([]interface{})
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	step := plan[0].(map[string]interface{})
	if step["when"] == "" || step["confidence"] == nil {
		t.Errorf("step = %v", step)
	}
	resp, _ = getJSON(t, srv.URL+"/api/sessions/nope/plan")
	if resp.StatusCode != 404 {
		t.Errorf("unknown session plan: %d", resp.StatusCode)
	}
}
