package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"justintime/internal/fault"
	"justintime/internal/sqldb"
)

// handleMetrics renders the process's metrics in the Prometheus text
// exposition format (version 0.0.4), hand-rolled — the repo takes no
// dependency on a client library. The families mirror the /debug/vars
// expvars: lifecycle counters, planner and plan-cache counters, buffer-pool
// counters, trace-collector totals, and latency histograms (per-route HTTP,
// per-kind question, WAL fsync, pool page fault) with bucket bounds
// converted from the internal microsecond bounds to seconds.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	gauge("jitd_sessions_live", "Sessions currently resident in memory.", metricSessionsLive.Value())
	counter("jitd_evictions_ttl_total", "Sessions evicted by idle-TTL expiry.", metricEvictionsTTL.Value())
	counter("jitd_evictions_lru_total", "Sessions evicted by the LRU cap.", metricEvictionsLRU.Value())
	counter("jitd_rehydrations_total", "Sessions reloaded from disk on a cache miss.", metricRehydrations.Value())
	counter("jitd_rehydrations_coalesced_total", "Cache misses that piggybacked on an in-flight disk load.", metricRehydrationsCoalesced.Value())
	counter("jitd_wal_bytes_total", "Bytes of WAL records written.", metricWALBytes.Value())
	counter("jitd_checkpoints_total", "Snapshot checkpoints (WAL folds).", metricCheckpoints.Value())
	counter("jitd_creates_rejected_total", "Session creations refused with 429 (admission queue full).", metricCreatesRejected.Value())
	gauge("jitd_degraded_mode", "1 while the server is in read-only degraded mode (data dir not writable).", metricDegradedMode.Value())
	counter("jitd_degraded_rejected_total", "Mutations refused with 503 while in degraded mode.", metricDegradedRejects.Value())
	counter("jitd_sessions_quarantined_total", "Corrupt session stores moved to the quarantine directory.", metricSessionsQuarantined.Value())
	counter("jitd_checkpoint_retries_total", "Checkpoint attempts retried after a transient failure.", metricCheckpointRetries.Value())
	counter("jitd_fault_disk_injected_total", "Injected disk faults fired (chaos harness).", fault.DiskInjected())
	counter("jitd_fault_net_injected_total", "Injected network faults fired (chaos harness).", fault.NetInjected())

	labeledCounters(&b, "jitd_plan_shapes_total", "Query plans chosen, by access-path/join shape.", "shape", sqldb.PlanCounters())
	labeledCounters(&b, "jitd_plan_cache_total", "Plan-cache events, by kind.", "event", sqldb.PlanCacheCounters())

	ps := poolStats()
	counter("jitd_pool_hits_total", "Buffer-pool page requests served from a resident frame.", ps.Hits)
	counter("jitd_pool_misses_total", "Buffer-pool page requests that faulted a page in from disk.", ps.Misses)
	counter("jitd_pool_evictions_total", "Buffer-pool frames evicted to make room.", ps.Evictions)
	counter("jitd_pool_dirty_writebacks_total", "Dirty buffer-pool frames written back on eviction.", ps.DirtyWritebacks)
	gauge("jitd_pool_pinned", "Buffer-pool frames currently pinned by queries.", ps.Pinned)
	gauge("jitd_pool_resident_pages", "Buffer-pool frames currently mapped to a page.", ps.Resident)

	boolGauge := func(name, help string, v bool) {
		n := int64(0)
		if v {
			n = 1
		}
		gauge(name, help, n)
	}
	if st, any := shipperStats(); any {
		boolGauge("jitd_replication_connected", "Primary-side replication feed is connected (1 = yes).", st.Connected)
		gauge("jitd_replication_lag_records", "Replication events queued or shipped but unacknowledged.", st.LagRecords)
		gauge("jitd_replication_lag_bytes", "Replication bytes queued or shipped but unacknowledged.", st.LagBytes)
		counter("jitd_replication_shipped_records_total", "Replication frames shipped to the standby.", st.ShippedRecords)
		counter("jitd_replication_shipped_bytes_total", "Replication payload bytes shipped to the standby.", st.ShippedBytes)
		counter("jitd_replication_syncs_total", "Full session file sets shipped (create, checkpoint, resync).", st.Syncs)
		counter("jitd_replication_resyncs_total", "Resync requests received from the standby.", st.Resyncs)
		counter("jitd_replication_reconnects_total", "Times the replication feed (re)connected.", st.Reconnects)
		counter("jitd_replication_overflows_total", "Times the ship queue overflowed and forced a re-handshake.", st.Overflows)
	}
	if st, any := replicaStats(); any {
		boolGauge("jitd_replica_connected", "Standby-side replication feed is connected (1 = yes).", st.Connected)
		counter("jitd_replica_applied_records_total", "WAL records applied by the standby.", st.AppliedRecords)
		counter("jitd_replica_applied_bytes_total", "Replicated bytes applied by the standby.", st.AppliedBytes)
		counter("jitd_replica_syncs_total", "Full session file sets applied by the standby.", st.Syncs)
		counter("jitd_replica_deletes_total", "Session deletions applied by the standby.", st.Deletes)
		counter("jitd_replica_resyncs_sent_total", "Resync requests the standby sent to the primary.", st.ResyncsSent)
	}

	finished, kept, keptSlow := s.collector.Stats()
	counter("jitd_traces_finished_total", "Requests whose trace completed (sampled or not).", int64(finished))
	counter("jitd_traces_kept_total", "Fast-request traces kept by 1-in-N sampling.", int64(kept))
	counter("jitd_traces_kept_slow_total", "Slow-request traces kept unconditionally.", int64(keptSlow))

	httpSeries := routeHistSnapshot()
	routes := make([]string, 0, len(httpSeries))
	for route := range httpSeries {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	histHeader(&b, "jitd_http_request_duration_seconds", "HTTP request latency by route.")
	for _, route := range routes {
		histSeries(&b, "jitd_http_request_duration_seconds", `route="`+route+`"`, httpSeries[route])
	}

	kinds := make([]string, 0, len(questionLatencies))
	for kind := range questionLatencies {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	histHeader(&b, "jitd_question_duration_seconds", "Canned-question latency by question kind.")
	for _, kind := range kinds {
		histSeries(&b, "jitd_question_duration_seconds", `kind="`+kind+`"`, questionLatencies[kind])
	}

	histHeader(&b, "jitd_wal_fsync_duration_seconds", "WAL fsync latency.")
	histSeries(&b, "jitd_wal_fsync_duration_seconds", "", &walFsyncHist)
	histHeader(&b, "jitd_pool_fault_duration_seconds", "Buffer-pool page-fault read latency.")
	histSeries(&b, "jitd_pool_fault_duration_seconds", "", &poolFaultHist)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

// labeledCounters renders one counter family with one series per map key,
// keys sorted for a stable exposition.
func labeledCounters(b *bytes.Buffer, name, help, label string, vals map[string]uint64) {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, k := range keys {
		fmt.Fprintf(b, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

// histHeader emits one histogram family's HELP/TYPE preamble; every series
// of the family must follow before the next family starts.
func histHeader(b *bytes.Buffer, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// histSeries renders one histogram series (one label set) from a latencyHist:
// cumulative _bucket lines with le in seconds, then _sum and _count. labels
// is a pre-rendered `k="v"` list without braces, or empty.
func histSeries(b *bytes.Buffer, name, labels string, h *latencyHist) {
	counts, sumUs := h.cumulative()
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, bound := range latencyBoundsUs {
		le := strconv.FormatFloat(float64(bound)/1e6, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, counts[i])
	}
	total := counts[len(latencyBoundsUs)]
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(float64(sumUs)/1e6, 'g', -1, 64))
		fmt.Fprintf(b, "%s_count %d\n", name, total)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(float64(sumUs)/1e6, 'g', -1, 64))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, total)
	}
}
