// Package server exposes the JustInTime demo over a JSON HTTP API mirroring
// the three screens of the paper's demonstration: Personal Preferences
// (create a session with constraints), Queries (the canned questions), and
// Plans & Insights (answers), plus the behind-the-scenes inspection
// endpoints the demo walks the audience through (schema, models, temporal
// inputs, raw SQL).
package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"justintime/internal/constraints"
	"justintime/internal/core"
	"justintime/internal/dataset"
	"justintime/internal/fault"
	"justintime/internal/obs"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
	"justintime/internal/sqldb/persist"
)

// Config bounds the server's resource usage per deployment.
type Config struct {
	// MaxSessions caps live sessions; at capacity the least recently used
	// session is evicted. <= 0 selects 1024.
	MaxSessions int
	// SessionTTL is the idle lifetime of a session; a session untouched
	// for longer is dropped. <= 0 selects 30 minutes.
	SessionTTL time.Duration
	// MaxSQLRows caps the rows returned by the expert SQL endpoint (the
	// response carries "truncated": true past the cap). <= 0 selects 10000.
	MaxSQLRows int
	// DataDir, when non-empty, turns on the durability subsystem: every
	// session's candidates database is persisted under
	// DataDir/sessions/<id>/ (snapshot + write-ahead log), evictions
	// checkpoint to disk instead of destroying the session, and a cache
	// miss rehydrates from disk instead of returning 404 — so a daemon
	// restart resumes its sessions without re-running candidate
	// generation. Empty keeps sessions memory-only.
	DataDir string
	// WALSync selects the WAL fsync policy under DataDir (persist.SyncAlways
	// fsyncs per mutation; persist.SyncBatched defers fsync to checkpoints).
	WALSync persist.SyncMode
	// Shards is the session-manager shard count: independent lock domains
	// for session lookup/eviction/rehydration. <= 0 selects GOMAXPROCS.
	Shards int
	// MaxPendingCreates bounds concurrently admitted session creations
	// (each one runs T+1 beam searches). Past the bound, POST /api/sessions
	// answers 429 with Retry-After instead of piling goroutines onto the
	// CPU. <= 0 selects 32.
	MaxPendingCreates int
	// BufferPoolPages, when > 0 (and DataDir is set — paged storage needs a
	// backing file), puts every session's candidates table on paged row
	// storage behind one shared buffer pool of this many 8 KiB frames. Row
	// pages then fault in from disk on demand and evict under memory
	// pressure, so the resident heap cost of an idle session is its page
	// directory, not its rows. 0 keeps rows on plain in-heap slices.
	BufferPoolPages int
	// SlowRequest is the tail-sampling threshold: every request at or over
	// it is kept in the slow-trace ring (GET /debug/requests/slow) with a
	// rendered query plan, regardless of sampling. <= 0 selects 25ms.
	SlowRequest time.Duration
	// TraceSampleEvery keeps 1 in N fast (sub-threshold) requests in the
	// recent-trace ring (GET /debug/requests). <= 0 selects 16.
	TraceSampleEvery int
	// TraceRingCap bounds each trace ring (recent and slow). <= 0 selects 256.
	TraceRingCap int
	// DisableTracing turns request tracing off entirely: no spans, no trace
	// rings, and /debug/requests reports 404. /metrics and the access log
	// stay up.
	DisableTracing bool
	// Logger, when non-nil, replaces slog.Default() for the server's
	// structured logs (access log, session-manager diagnostics).
	Logger *slog.Logger
	// KeepSessionID, when non-nil, filters freshly minted session IDs:
	// creation redraws until the predicate accepts one. A cluster shard
	// passes cluster ownership of its own name here, so every session it
	// creates hashes back to it under the shard map — the invariant the
	// router's consistent hashing relies on. Nil accepts every ID.
	KeepSessionID func(id string) bool
	// ReplicateTo, when non-empty (and DataDir is set — replication ships
	// the on-disk session tree), streams every session's durable state to
	// the warm standby listening at this host:port: WAL appends as they
	// happen, full file sets on create/checkpoint, deletions as they
	// happen. The standby replays continuously and can be promoted to
	// primary after a failover.
	ReplicateTo string
	// FS, when non-nil, routes every durable write (snapshots, WAL, page
	// files, the degraded-mode probe) through this I/O plane instead of the
	// real filesystem. Tests and the chaos harness install a fault.Injector
	// here; nil is the real disk at zero overhead.
	FS fault.FS
	// ReplicationDial, when non-nil, replaces net.DialTimeout for the
	// replication shipper's connections to the standby — the seam the chaos
	// harness uses to inject network faults into the replication link.
	ReplicationDial persist.DialFunc
	// DegradedProbeInterval is how often a server in read-only degraded
	// mode (out-of-space data dir) re-attempts a durable write to detect
	// recovery. <= 0 selects 1s.
	DegradedProbeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.MaxSQLRows <= 0 {
		c.MaxSQLRows = 10000
	}
	if c.MaxPendingCreates <= 0 {
		c.MaxPendingCreates = 32
	}
	if c.SlowRequest <= 0 {
		c.SlowRequest = 25 * time.Millisecond
	}
	if c.TraceSampleEvery <= 0 {
		c.TraceSampleEvery = 16
	}
	if c.TraceRingCap <= 0 {
		c.TraceRingCap = 256
	}
	if c.DegradedProbeInterval <= 0 {
		c.DegradedProbeInterval = time.Second
	}
	return c
}

// Server is an http.Handler serving the demo API.
type Server struct {
	sys      *core.System
	cfg      Config
	mux      *http.ServeMux
	sessions *sessionManager
	// pool is the shared buffer pool behind every paged candidates table
	// (nil when paged storage is off).
	pool *pager.Pool
	// createSem is the bounded admission queue for session creation: a slot
	// must be held for the whole generate+persist span, and an unavailable
	// slot turns into 429 + Retry-After instead of an unbounded goroutine
	// pile-up behind the beam searches.
	createSem chan struct{}
	// collector owns the per-request trace rings (nil when tracing is
	// disabled; every use is nil-safe).
	collector *obs.Collector
	// logger receives the access log and flows into the session manager.
	logger *slog.Logger
	// shipper streams the session tree to a warm standby (nil when
	// Config.ReplicateTo is empty).
	shipper *persist.Shipper
	// degraded is the read-only mode flag (see degrade.go); stop ends the
	// recovery probe goroutine when the server closes.
	degraded atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
}

// New builds a Server around a configured system with default limits.
func New(sys *core.System) *Server { return NewWithConfig(sys, Config{}) }

// NewWithConfig builds a Server with explicit session/query limits.
func NewWithConfig(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	var pool *pager.Pool
	if cfg.DataDir != "" && cfg.BufferPoolPages > 0 {
		pool = pager.NewPool(cfg.BufferPoolPages)
		registerPool(pool)
	}
	var p *persister
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	if cfg.DataDir != "" {
		p = newPersister(cfg.DataDir, sys, cfg.WALSync, pool, cfg.FS)
		p.logger = logger
	}
	var shipper *persist.Shipper
	if p != nil && cfg.ReplicateTo != "" {
		// Wired before the session manager exists, so no session's store can
		// be created without its append hook.
		shipper = persist.NewShipperDialer(p.root, cfg.ReplicateTo, logger, cfg.ReplicationDial)
		p.shipper = shipper
		registerShipper(shipper)
	}
	var collector *obs.Collector
	if !cfg.DisableTracing {
		collector = obs.NewCollector(cfg.SlowRequest, cfg.TraceSampleEvery, cfg.TraceRingCap)
	}
	s := &Server{
		sys:       sys,
		cfg:       cfg,
		pool:      pool,
		sessions:  newSessionManager(cfg.MaxSessions, cfg.SessionTTL, cfg.Shards, p),
		createSem: make(chan struct{}, cfg.MaxPendingCreates),
		collector: collector,
		logger:    logger,
		shipper:   shipper,
		stop:      make(chan struct{}),
	}
	// The manager is built by newSessionManager (whose signature tests
	// depend on); observability and cluster seams are wired in afterwards.
	s.sessions.traces = collector
	s.sessions.logger = logger
	s.sessions.keepID = cfg.KeepSessionID
	s.sessions.onPersistError = s.notePersistError
	mux := http.NewServeMux()
	s.route(mux, "GET /api/schema", s.handleSchema)
	s.route(mux, "GET /api/models", s.handleModels)
	s.route(mux, "GET /api/profiles", s.handleProfiles)
	s.route(mux, "GET /api/questions", s.handleQuestions)
	s.route(mux, "POST /api/sessions", s.handleCreateSession)
	s.route(mux, "DELETE /api/sessions/{id}", s.handleDeleteSession)
	s.route(mux, "GET /api/sessions/{id}/inputs", s.handleInputs)
	s.route(mux, "GET /api/sessions/{id}/plan", s.handlePlan)
	s.route(mux, "POST /api/sessions/{id}/ask", s.handleAsk)
	s.route(mux, "POST /api/sessions/{id}/sql", s.handleSQL)
	// Introspection endpoints are served bare: scrapes and debug reads must
	// not pollute the trace rings or the per-route latency histograms.
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/requests", s.handleRequests)
	mux.HandleFunc("GET /debug/requests/slow", s.handleRequestsSlow)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// statusWriter captures the response status for the access log and the
// trace envelope.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// route registers handler under pattern, wrapped in the server's
// observability middleware: a per-request trace carried on the request
// context (tail-sampled into /debug/requests), an X-Request-Id response
// header, a per-route latency histogram exported on /metrics, and a
// structured access log line. The route label is the pattern's path as
// registered — Go's mux matched pattern, not the raw URL — so label
// cardinality is fixed at registration time.
func (s *Server) route(mux *http.ServeMux, pattern string, handler http.HandlerFunc) {
	method, path, _ := strings.Cut(pattern, " ")
	hist := routeHist(path)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t := s.collector.StartRequest(method, path)
		sw := &statusWriter{ResponseWriter: w}
		// Finish recycles the trace, so the request ID is captured here and
		// the trace itself is never touched after the Finish call below.
		reqID := ""
		if t != nil {
			reqID = t.ID()
			sw.Header().Set("X-Request-Id", reqID)
			r = r.WithContext(obs.With(r.Context(), t.Root))
		}
		start := time.Now()
		handler(sw, r)
		d := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		hist.observe(d)
		s.collector.Finish(t, sw.status)
		s.logRequest(r, method, path, reqID, sw.status, d)
	})
}

// logRequest writes one access-log line. Levels keep routine traffic out of
// the way: 2xx/3xx log at Debug, slow requests at Info, client errors at
// Warn, server errors at Error.
func (s *Server) logRequest(r *http.Request, method, path, reqID string, status int, d time.Duration) {
	lvl := slog.LevelDebug
	switch {
	case status >= 500:
		lvl = slog.LevelError
	case status >= 400:
		lvl = slog.LevelWarn
	case reqID != "" && d >= s.collector.SlowThreshold():
		lvl = slog.LevelInfo
	}
	if !s.logger.Enabled(r.Context(), lvl) {
		return
	}
	attrs := []any{"method", method, "route", path, "status", status, "dur_us", d.Microseconds()}
	if reqID != "" {
		attrs = append(attrs, "request_id", reqID)
	}
	if id := r.PathValue("id"); id != "" {
		attrs = append(attrs, "session_id", id)
	}
	s.logger.Log(r.Context(), lvl, "request", attrs...)
}

// handleRequests serves the sampled recent traces, newest first.
func (s *Server) handleRequests(w http.ResponseWriter, _ *http.Request) {
	if s.collector == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("request tracing is disabled"))
		return
	}
	finished, kept, keptSlow := s.collector.Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"finished":  finished,
		"kept":      kept,
		"kept_slow": keptSlow,
		"traces":    s.collector.Recent(),
	})
}

// handleRequestsSlow serves the slow-request ring (the slow-query log):
// every request over the slow threshold, newest first, each carrying its
// full span tree and — for SQL statements — the rendered plan text.
func (s *Server) handleRequestsSlow(w http.ResponseWriter, _ *http.Request) {
	if s.collector == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("request tracing is disabled"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"threshold_us": s.collector.SlowThreshold().Microseconds(),
		"traces":       s.collector.Slow(),
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close persists every resident session to disk (a no-op without a data
// dir) and releases their stores; sessions whose WAL is clean keep their
// current snapshot without a rewrite. Call it after draining in-flight
// requests; it returns the number of sessions made durable.
func (s *Server) Close() int {
	s.stopOnce.Do(func() { close(s.stop) })
	n := s.sessions.shutdown()
	if s.shipper != nil {
		// Shutdown checkpoints queued sync events behind it; give the standby
		// a bounded window to acknowledge them before letting go.
		s.shipper.Close(3 * time.Second)
		unregisterShipper(s.shipper)
	}
	if s.pool != nil {
		unregisterPool(s.pool)
	}
	return n
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*core.Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.sessions.getCtx(r.Context(), id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", id))
		return nil, false
	}
	return sess, true
}

type fieldJSON struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Temporal  bool    `json:"temporal"`
	Immutable bool    `json:"immutable"`
	Unit      string  `json:"unit,omitempty"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	schema := s.sys.Schema()
	fields := make([]fieldJSON, schema.Dim())
	for i := 0; i < schema.Dim(); i++ {
		f := schema.Field(i)
		fields[i] = fieldJSON{
			Name: f.Name, Kind: f.Kind.String(), Min: f.Min, Max: f.Max,
			Temporal: f.Temporal, Immutable: f.Immutable, Unit: f.Unit,
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"fields": fields})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	type modelJSON struct {
		Time      int     `json:"time"`
		Label     string  `json:"label"`
		Model     string  `json:"model"`
		Threshold float64 `json:"threshold"`
	}
	models := s.sys.Models()
	out := make([]modelJSON, len(models))
	for t, m := range models {
		out[t] = modelJSON{Time: t, Label: s.sys.TimeLabel(t), Model: m.Model.Name(), Threshold: m.Threshold}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"models": out})
}

func (s *Server) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	schema := s.sys.Schema()
	var out []map[string]float64
	for _, p := range dataset.RejectedProfiles() {
		m := make(map[string]float64, schema.Dim())
		for i, name := range schema.Names() {
			m[name] = p[i]
		}
		out = append(out, m)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"profiles": out})
}

func (s *Server) handleQuestions(w http.ResponseWriter, _ *http.Request) {
	type qJSON struct {
		Kind        string `json:"kind"`
		Description string `json:"description"`
	}
	out := []qJSON{
		{core.QNoModification.String(), "What is the closest time point at which reapplying without modifications is approved?"},
		{core.QMinimalFeatures.String(), "What is the smallest set of features whose modification leads to approval?"},
		{core.QDominantFeature.String(), "Can modifying a single given feature lead to approval at all future time points?"},
		{core.QMinimalOverall.String(), "What is the minimal overall modification (l2 distance) that leads to approval?"},
		{core.QMaximalConfidence.String(), "Which modification, at which time point, maximizes approval confidence?"},
		{core.QTurningPoint.String(), "Is there a time point after which approval confidence can always exceed alpha?"},
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"questions": out})
}

type createSessionRequest struct {
	Profile     map[string]float64 `json:"profile"`
	Constraints []string           `json:"constraints"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	// A read-only server rejects before reading the body: creation is the
	// one endpoint that must write durably, and the Retry-After hint tells
	// the client when the recovery probe could have cleared the mode.
	if s.rejectDegraded(w) {
		return
	}
	// Read the (size-capped) body before taking an admission slot: a slot
	// held during the read would let slow-trickling clients pin every slot
	// and starve creation outright. Decoding costs microseconds against
	// the beam searches the slot actually guards.
	var req createSessionRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Admission control: past the bound, reject with a retry hint instead
	// of piling goroutines onto the CPU behind the generators.
	select {
	case s.createSem <- struct{}{}:
		defer func() { <-s.createSem }()
	default:
		metricCreatesRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("session creation queue is full (%d pending); retry shortly", cap(s.createSem)))
		return
	}
	schema := s.sys.Schema()
	profile := make([]float64, schema.Dim())
	for i, name := range schema.Names() {
		v, ok := req.Profile[name]
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("profile missing attribute %q", name))
			return
		}
		profile[i] = v
	}
	for name := range req.Profile {
		if _, ok := schema.Index(name); !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("profile has unknown attribute %q", name))
			return
		}
	}
	prefs := constraints.NewSet()
	for _, src := range req.Constraints {
		c, err := constraints.Parse(src)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		prefs.Add(c)
	}
	// Session creation is the expensive step (T+1 beam searches); run it
	// under the request context so a disconnected client cancels the
	// generators instead of leaving them burning CPU.
	genCtx, genSpan := obs.Start(r.Context(), "session.generate")
	sess, err := s.sys.NewSessionContext(genCtx, profile, prefs)
	genSpan.End()
	if err != nil {
		if r.Context().Err() != nil {
			return // client is gone; nobody reads the response
		}
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Count before registering: a failure here must not leave an orphaned
	// session occupying a cap slot under an ID the client never saw.
	n, err := sess.CandidateCount()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	_, addSpan := obs.Start(r.Context(), "session.persist")
	id, err := s.sessions.add(sess, req.Constraints)
	addSpan.End()
	if err != nil {
		// An out-of-space disk degrades the server instead of 500ing one
		// request: this creation failed, but the response says when to retry
		// and every later mutation short-circuits until the probe clears.
		s.notePersistError(err)
		if s.degraded.Load() {
			s.rejectDegraded(w)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"id":         id,
		"candidates": n,
	})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// inputsStmt is compiled once per process, like the canned questions.
var inputsStmt = sqldb.MustPrepare("SELECT * FROM temporal_inputs ORDER BY time")

func (s *Server) handleInputs(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	res, err := inputsStmt.QueryCtx(r.Context(), sess.DB())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res))
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	plan, err := sess.Plan()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"plan": plan})
}

type askRequest struct {
	Kind    string  `json:"kind"`
	Feature string  `json:"feature,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	kind, err := core.ParseQuestionKind(req.Kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	ins, err := sess.AskCtx(r.Context(), core.Question{Kind: kind, Feature: req.Feature, Alpha: req.Alpha})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	observeQuestionLatency(kind, time.Since(start))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"kind":   req.Kind,
		"sql":    ins.SQL,
		"text":   ins.Text,
		"result": resultJSON(ins.Result),
	})
}

type sqlRequest struct {
	Query string `json:"query"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req sqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	// Parse once: a malformed statement reports 422, a well-formed
	// non-SELECT is rejected with 400 (the endpoint is read-only by
	// contract), and a SELECT executes from the already-compiled form.
	parseStart := time.Now()
	st, err := sqldb.Prepare(req.Query)
	obs.FromContext(r.Context()).Event("sql.parse", time.Since(parseStart))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !st.IsSelect() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("expert SQL endpoint accepts SELECT statements only"))
		return
	}
	// Cap row production inside execution (limit pushdown): the executor
	// stops at MaxSQLRows+1 produced rows, so a SELECT over a huge table
	// never materializes beyond the response cap. The one extra row is the
	// truncation signal.
	res, err := st.QueryCappedCtx(r.Context(), sess.DB(), s.cfg.MaxSQLRows+1)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	truncated := false
	if len(res.Rows) > s.cfg.MaxSQLRows {
		res.Rows = res.Rows[:s.cfg.MaxSQLRows]
		truncated = true
	}
	out := resultJSON(res)
	out["truncated"] = truncated
	writeJSON(w, http.StatusOK, out)
}

// resultJSON converts a query result to a JSON-friendly shape (NULL -> nil).
func resultJSON(res *sqldb.Result) map[string]interface{} {
	rows := make([][]interface{}, len(res.Rows))
	for i, row := range res.Rows {
		out := make([]interface{}, len(row))
		for j, v := range row {
			out[j] = valueJSON(v)
		}
		rows[i] = out
	}
	return map[string]interface{}{"columns": res.Columns, "rows": rows}
}

func valueJSON(v sqldb.Value) interface{} {
	switch v.Type() {
	case sqldb.IntType:
		i, _ := v.AsInt()
		return i
	case sqldb.FloatType:
		f, _ := v.AsFloat()
		return f
	case sqldb.TextType:
		s, _ := v.AsText()
		return s
	case sqldb.BoolType:
		b, _ := v.AsBool()
		return b
	default:
		return nil
	}
}
