// Package server exposes the JustInTime demo over a JSON HTTP API mirroring
// the three screens of the paper's demonstration: Personal Preferences
// (create a session with constraints), Queries (the canned questions), and
// Plans & Insights (answers), plus the behind-the-scenes inspection
// endpoints the demo walks the audience through (schema, models, temporal
// inputs, raw SQL).
package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"time"

	"justintime/internal/constraints"
	"justintime/internal/core"
	"justintime/internal/dataset"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
	"justintime/internal/sqldb/persist"
)

// Config bounds the server's resource usage per deployment.
type Config struct {
	// MaxSessions caps live sessions; at capacity the least recently used
	// session is evicted. <= 0 selects 1024.
	MaxSessions int
	// SessionTTL is the idle lifetime of a session; a session untouched
	// for longer is dropped. <= 0 selects 30 minutes.
	SessionTTL time.Duration
	// MaxSQLRows caps the rows returned by the expert SQL endpoint (the
	// response carries "truncated": true past the cap). <= 0 selects 10000.
	MaxSQLRows int
	// DataDir, when non-empty, turns on the durability subsystem: every
	// session's candidates database is persisted under
	// DataDir/sessions/<id>/ (snapshot + write-ahead log), evictions
	// checkpoint to disk instead of destroying the session, and a cache
	// miss rehydrates from disk instead of returning 404 — so a daemon
	// restart resumes its sessions without re-running candidate
	// generation. Empty keeps sessions memory-only.
	DataDir string
	// WALSync selects the WAL fsync policy under DataDir (persist.SyncAlways
	// fsyncs per mutation; persist.SyncBatched defers fsync to checkpoints).
	WALSync persist.SyncMode
	// Shards is the session-manager shard count: independent lock domains
	// for session lookup/eviction/rehydration. <= 0 selects GOMAXPROCS.
	Shards int
	// MaxPendingCreates bounds concurrently admitted session creations
	// (each one runs T+1 beam searches). Past the bound, POST /api/sessions
	// answers 429 with Retry-After instead of piling goroutines onto the
	// CPU. <= 0 selects 32.
	MaxPendingCreates int
	// BufferPoolPages, when > 0 (and DataDir is set — paged storage needs a
	// backing file), puts every session's candidates table on paged row
	// storage behind one shared buffer pool of this many 8 KiB frames. Row
	// pages then fault in from disk on demand and evict under memory
	// pressure, so the resident heap cost of an idle session is its page
	// directory, not its rows. 0 keeps rows on plain in-heap slices.
	BufferPoolPages int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.MaxSQLRows <= 0 {
		c.MaxSQLRows = 10000
	}
	if c.MaxPendingCreates <= 0 {
		c.MaxPendingCreates = 32
	}
	return c
}

// Server is an http.Handler serving the demo API.
type Server struct {
	sys      *core.System
	cfg      Config
	mux      *http.ServeMux
	sessions *sessionManager
	// pool is the shared buffer pool behind every paged candidates table
	// (nil when paged storage is off).
	pool *pager.Pool
	// createSem is the bounded admission queue for session creation: a slot
	// must be held for the whole generate+persist span, and an unavailable
	// slot turns into 429 + Retry-After instead of an unbounded goroutine
	// pile-up behind the beam searches.
	createSem chan struct{}
}

// New builds a Server around a configured system with default limits.
func New(sys *core.System) *Server { return NewWithConfig(sys, Config{}) }

// NewWithConfig builds a Server with explicit session/query limits.
func NewWithConfig(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	var pool *pager.Pool
	if cfg.DataDir != "" && cfg.BufferPoolPages > 0 {
		pool = pager.NewPool(cfg.BufferPoolPages)
		registerPool(pool)
	}
	var p *persister
	if cfg.DataDir != "" {
		p = newPersister(cfg.DataDir, sys, cfg.WALSync, pool)
	}
	s := &Server{
		sys:       sys,
		cfg:       cfg,
		pool:      pool,
		sessions:  newSessionManager(cfg.MaxSessions, cfg.SessionTTL, cfg.Shards, p),
		createSem: make(chan struct{}, cfg.MaxPendingCreates),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/schema", s.handleSchema)
	mux.HandleFunc("GET /api/models", s.handleModels)
	mux.HandleFunc("GET /api/profiles", s.handleProfiles)
	mux.HandleFunc("GET /api/questions", s.handleQuestions)
	mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("GET /api/sessions/{id}/inputs", s.handleInputs)
	mux.HandleFunc("GET /api/sessions/{id}/plan", s.handlePlan)
	mux.HandleFunc("POST /api/sessions/{id}/ask", s.handleAsk)
	mux.HandleFunc("POST /api/sessions/{id}/sql", s.handleSQL)
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close persists every resident session to disk (a no-op without a data
// dir) and releases their stores; sessions whose WAL is clean keep their
// current snapshot without a rewrite. Call it after draining in-flight
// requests; it returns the number of sessions made durable.
func (s *Server) Close() int {
	n := s.sessions.shutdown()
	if s.pool != nil {
		unregisterPool(s.pool)
	}
	return n
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*core.Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.sessions.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", id))
		return nil, false
	}
	return sess, true
}

type fieldJSON struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Temporal  bool    `json:"temporal"`
	Immutable bool    `json:"immutable"`
	Unit      string  `json:"unit,omitempty"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	schema := s.sys.Schema()
	fields := make([]fieldJSON, schema.Dim())
	for i := 0; i < schema.Dim(); i++ {
		f := schema.Field(i)
		fields[i] = fieldJSON{
			Name: f.Name, Kind: f.Kind.String(), Min: f.Min, Max: f.Max,
			Temporal: f.Temporal, Immutable: f.Immutable, Unit: f.Unit,
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"fields": fields})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	type modelJSON struct {
		Time      int     `json:"time"`
		Label     string  `json:"label"`
		Model     string  `json:"model"`
		Threshold float64 `json:"threshold"`
	}
	models := s.sys.Models()
	out := make([]modelJSON, len(models))
	for t, m := range models {
		out[t] = modelJSON{Time: t, Label: s.sys.TimeLabel(t), Model: m.Model.Name(), Threshold: m.Threshold}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"models": out})
}

func (s *Server) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	schema := s.sys.Schema()
	var out []map[string]float64
	for _, p := range dataset.RejectedProfiles() {
		m := make(map[string]float64, schema.Dim())
		for i, name := range schema.Names() {
			m[name] = p[i]
		}
		out = append(out, m)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"profiles": out})
}

func (s *Server) handleQuestions(w http.ResponseWriter, _ *http.Request) {
	type qJSON struct {
		Kind        string `json:"kind"`
		Description string `json:"description"`
	}
	out := []qJSON{
		{core.QNoModification.String(), "What is the closest time point at which reapplying without modifications is approved?"},
		{core.QMinimalFeatures.String(), "What is the smallest set of features whose modification leads to approval?"},
		{core.QDominantFeature.String(), "Can modifying a single given feature lead to approval at all future time points?"},
		{core.QMinimalOverall.String(), "What is the minimal overall modification (l2 distance) that leads to approval?"},
		{core.QMaximalConfidence.String(), "Which modification, at which time point, maximizes approval confidence?"},
		{core.QTurningPoint.String(), "Is there a time point after which approval confidence can always exceed alpha?"},
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"questions": out})
}

type createSessionRequest struct {
	Profile     map[string]float64 `json:"profile"`
	Constraints []string           `json:"constraints"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	// Read the (size-capped) body before taking an admission slot: a slot
	// held during the read would let slow-trickling clients pin every slot
	// and starve creation outright. Decoding costs microseconds against
	// the beam searches the slot actually guards.
	var req createSessionRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Admission control: past the bound, reject with a retry hint instead
	// of piling goroutines onto the CPU behind the generators.
	select {
	case s.createSem <- struct{}{}:
		defer func() { <-s.createSem }()
	default:
		metricCreatesRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("session creation queue is full (%d pending); retry shortly", cap(s.createSem)))
		return
	}
	schema := s.sys.Schema()
	profile := make([]float64, schema.Dim())
	for i, name := range schema.Names() {
		v, ok := req.Profile[name]
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("profile missing attribute %q", name))
			return
		}
		profile[i] = v
	}
	for name := range req.Profile {
		if _, ok := schema.Index(name); !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("profile has unknown attribute %q", name))
			return
		}
	}
	prefs := constraints.NewSet()
	for _, src := range req.Constraints {
		c, err := constraints.Parse(src)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		prefs.Add(c)
	}
	// Session creation is the expensive step (T+1 beam searches); run it
	// under the request context so a disconnected client cancels the
	// generators instead of leaving them burning CPU.
	sess, err := s.sys.NewSessionContext(r.Context(), profile, prefs)
	if err != nil {
		if r.Context().Err() != nil {
			return // client is gone; nobody reads the response
		}
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Count before registering: a failure here must not leave an orphaned
	// session occupying a cap slot under an ID the client never saw.
	n, err := sess.CandidateCount()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	id, err := s.sessions.add(sess, req.Constraints)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"id":         id,
		"candidates": n,
	})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// inputsStmt is compiled once per process, like the canned questions.
var inputsStmt = sqldb.MustPrepare("SELECT * FROM temporal_inputs ORDER BY time")

func (s *Server) handleInputs(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	res, err := inputsStmt.Query(sess.DB())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res))
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	plan, err := sess.Plan()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"plan": plan})
}

type askRequest struct {
	Kind    string  `json:"kind"`
	Feature string  `json:"feature,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	kind, err := core.ParseQuestionKind(req.Kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	ins, err := sess.Ask(core.Question{Kind: kind, Feature: req.Feature, Alpha: req.Alpha})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	observeQuestionLatency(kind, time.Since(start))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"kind":   req.Kind,
		"sql":    ins.SQL,
		"text":   ins.Text,
		"result": resultJSON(ins.Result),
	})
}

type sqlRequest struct {
	Query string `json:"query"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req sqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	// Parse once: a malformed statement reports 422, a well-formed
	// non-SELECT is rejected with 400 (the endpoint is read-only by
	// contract), and a SELECT executes from the already-compiled form.
	st, err := sqldb.Prepare(req.Query)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !st.IsSelect() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("expert SQL endpoint accepts SELECT statements only"))
		return
	}
	// Cap row production inside execution (limit pushdown): the executor
	// stops at MaxSQLRows+1 produced rows, so a SELECT over a huge table
	// never materializes beyond the response cap. The one extra row is the
	// truncation signal.
	res, err := st.QueryCapped(sess.DB(), s.cfg.MaxSQLRows+1)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	truncated := false
	if len(res.Rows) > s.cfg.MaxSQLRows {
		res.Rows = res.Rows[:s.cfg.MaxSQLRows]
		truncated = true
	}
	out := resultJSON(res)
	out["truncated"] = truncated
	writeJSON(w, http.StatusOK, out)
}

// resultJSON converts a query result to a JSON-friendly shape (NULL -> nil).
func resultJSON(res *sqldb.Result) map[string]interface{} {
	rows := make([][]interface{}, len(res.Rows))
	for i, row := range res.Rows {
		out := make([]interface{}, len(row))
		for j, v := range row {
			out[j] = valueJSON(v)
		}
		rows[i] = out
	}
	return map[string]interface{}{"columns": res.Columns, "rows": rows}
}

func valueJSON(v sqldb.Value) interface{} {
	switch v.Type() {
	case sqldb.IntType:
		i, _ := v.AsInt()
		return i
	case sqldb.FloatType:
		f, _ := v.AsFloat()
		return f
	case sqldb.TextType:
		s, _ := v.AsText()
		return s
	case sqldb.BoolType:
		b, _ := v.AsBool()
		return b
	default:
		return nil
	}
}
