// Package temporal implements the paper's Definition II.4: a Temporal
// Update Function that advances a user's feature vector to its expected
// representation at future time points. Non-temporal features pass through
// the identity; temporal features follow per-feature rules (age grows by
// Delta per step, seniority grows while capped by the schema bounds, and
// arbitrary custom rules can be registered).
package temporal

import (
	"fmt"

	"justintime/internal/feature"
)

// Rule computes a temporal feature's value at time step t (t >= 0, in units
// of the configured interval Delta) from the full input vector x. Rules see
// the whole vector so cross-feature updates ("seniority grows only while
// employed") are expressible.
type Rule func(x []float64, t int) float64

// Updater is a compiled temporal update function f(x, t) for one schema.
type Updater struct {
	schema *feature.Schema
	rules  []Rule // indexed by feature; nil = identity
}

// NewUpdater creates an Updater with no rules: every feature is untouched
// until a rule is registered. Features marked Temporal in the schema without
// a registered rule get the default linear rule (+Delta per step scaled by
// deltaYears), which matches age-like features.
func NewUpdater(schema *feature.Schema, deltaYears float64) (*Updater, error) {
	if schema == nil {
		return nil, fmt.Errorf("temporal: nil schema")
	}
	if deltaYears <= 0 {
		return nil, fmt.Errorf("temporal: deltaYears must be positive, got %g", deltaYears)
	}
	u := &Updater{schema: schema, rules: make([]Rule, schema.Dim())}
	for _, i := range schema.TemporalIndices() {
		u.rules[i] = LinearRule(i, deltaYears)
	}
	return u, nil
}

// SetRule registers a custom rule for the named feature, replacing any
// default. The feature need not be marked Temporal in the schema.
func (u *Updater) SetRule(name string, r Rule) error {
	i, ok := u.schema.Index(name)
	if !ok {
		return fmt.Errorf("temporal: unknown feature %q", name)
	}
	if r == nil {
		return fmt.Errorf("temporal: nil rule for %q", name)
	}
	u.rules[i] = r
	return nil
}

// LinearRule returns a rule adding slope*t to feature i — the paper's
// Example II.5 (f(x,3)[age] = x[age] + 3*Delta).
func LinearRule(i int, slope float64) Rule {
	return func(x []float64, t int) float64 {
		return x[i] + slope*float64(t)
	}
}

// CappedLinearRule grows feature i linearly but never beyond cap.
func CappedLinearRule(i int, slope, cap float64) Rule {
	return func(x []float64, t int) float64 {
		v := x[i] + slope*float64(t)
		if v > cap {
			return cap
		}
		return v
	}
}

// DecayRule shrinks feature i geometrically by factor per step (e.g. a debt
// balance being paid down on schedule). factor must be in [0, 1].
func DecayRule(i int, factor float64) Rule {
	return func(x []float64, t int) float64 {
		v := x[i]
		for k := 0; k < t; k++ {
			v *= factor
		}
		return v
	}
}

// GrowthRule grows feature i geometrically by factor per step (e.g. salary
// inflation).
func GrowthRule(i int, factor float64) Rule {
	return func(x []float64, t int) float64 {
		v := x[i]
		for k := 0; k < t; k++ {
			v *= factor
		}
		return v
	}
}

// At returns f(x, t): the expected representation of x after t intervals,
// clamped into schema bounds. At(x, 0) applies every rule at t=0, which is
// the identity for all rules constructed in this package.
func (u *Updater) At(x []float64, t int) ([]float64, error) {
	if err := u.schema.Validate(x); err != nil {
		return nil, fmt.Errorf("temporal: %w", err)
	}
	if t < 0 {
		return nil, fmt.Errorf("temporal: negative time %d", t)
	}
	out := feature.Clone(x)
	for i, r := range u.rules {
		if r != nil {
			out[i] = r(x, t)
		}
	}
	return u.schema.Clamp(out), nil
}

// Sequence returns the temporal input vectors x_0 .. x_T (the paper's
// temporal_inputs table contents).
func (u *Updater) Sequence(x []float64, T int) ([][]float64, error) {
	if T < 0 {
		return nil, fmt.Errorf("temporal: negative horizon %d", T)
	}
	out := make([][]float64, T+1)
	for t := 0; t <= T; t++ {
		v, err := u.At(x, t)
		if err != nil {
			return nil, err
		}
		out[t] = v
	}
	return out, nil
}
