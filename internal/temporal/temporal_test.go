package temporal

import (
	"testing"

	"justintime/internal/dataset"
	"justintime/internal/feature"
)

func newLoanUpdater(t *testing.T) *Updater {
	t.Helper()
	u, err := NewUpdater(dataset.LoanSchema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewUpdaterValidation(t *testing.T) {
	if _, err := NewUpdater(nil, 1); err == nil {
		t.Error("nil schema should fail")
	}
	if _, err := NewUpdater(dataset.LoanSchema(), 0); err == nil {
		t.Error("zero delta should fail")
	}
	if _, err := NewUpdater(dataset.LoanSchema(), -1); err == nil {
		t.Error("negative delta should fail")
	}
}

func TestDefaultTemporalRules(t *testing.T) {
	u := newLoanUpdater(t)
	x := []float64{29, 1, 48000, 1900, 4, 30000}
	x3, err := u.At(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Example II.5: f(x,3)[age] = x[age] + 3*Delta.
	if x3[dataset.FAge] != 32 {
		t.Errorf("age at t=3 is %g, want 32", x3[dataset.FAge])
	}
	if x3[dataset.FSeniority] != 7 {
		t.Errorf("seniority at t=3 is %g, want 7", x3[dataset.FSeniority])
	}
	// Non-temporal features are untouched.
	if x3[dataset.FIncome] != 48000 || x3[dataset.FDebt] != 1900 || x3[dataset.FAmount] != 30000 {
		t.Errorf("non-temporal features changed: %v", x3)
	}
	// t=0 is the identity.
	x0, err := u.At(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !feature.Equal(x0, x) {
		t.Errorf("At(x,0) = %v, want x", x0)
	}
	// Input must not be mutated.
	if x[dataset.FAge] != 29 {
		t.Error("At mutated its input")
	}
}

func TestAtValidation(t *testing.T) {
	u := newLoanUpdater(t)
	if _, err := u.At([]float64{1, 2}, 0); err == nil {
		t.Error("wrong dim should fail")
	}
	if _, err := u.At([]float64{29, 1, 48000, 1900, 4, 30000}, -1); err == nil {
		t.Error("negative time should fail")
	}
}

func TestClampAtSchemaBounds(t *testing.T) {
	u := newLoanUpdater(t)
	x := []float64{99, 1, 48000, 1900, 4, 30000}
	x5, err := u.At(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if x5[dataset.FAge] != 100 {
		t.Errorf("age should clamp at 100, got %g", x5[dataset.FAge])
	}
}

func TestCustomRules(t *testing.T) {
	u := newLoanUpdater(t)
	// Debt decays 20% per year; income grows 3%/year.
	if err := u.SetRule("debt", DecayRule(dataset.FDebt, 0.8)); err != nil {
		t.Fatal(err)
	}
	if err := u.SetRule("income", GrowthRule(dataset.FIncome, 1.03)); err != nil {
		t.Fatal(err)
	}
	if err := u.SetRule("seniority", CappedLinearRule(dataset.FSeniority, 1, 10)); err != nil {
		t.Fatal(err)
	}
	x := []float64{29, 1, 48000, 1000, 8, 30000}
	x2, err := u.At(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := x2[dataset.FDebt]; got != 640 {
		t.Errorf("debt at t=2 = %g, want 640", got)
	}
	if got, want := x2[dataset.FIncome], 48000*1.03*1.03; got < want-1e-6 || got > want+1e-6 {
		t.Errorf("income at t=2 = %g, want %g", got, want)
	}
	x5, err := u.At(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if x5[dataset.FSeniority] != 10 {
		t.Errorf("capped seniority = %g, want 10", x5[dataset.FSeniority])
	}
}

func TestSetRuleErrors(t *testing.T) {
	u := newLoanUpdater(t)
	if err := u.SetRule("nosuch", LinearRule(0, 1)); err == nil {
		t.Error("unknown feature should fail")
	}
	if err := u.SetRule("age", nil); err == nil {
		t.Error("nil rule should fail")
	}
}

func TestSequence(t *testing.T) {
	u := newLoanUpdater(t)
	x := []float64{29, 1, 48000, 1900, 4, 30000}
	seq, err := u.Sequence(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 5 {
		t.Fatalf("sequence length %d, want 5", len(seq))
	}
	for i, xt := range seq {
		if xt[dataset.FAge] != float64(29+i) {
			t.Errorf("age at t=%d is %g", i, xt[dataset.FAge])
		}
	}
	if _, err := u.Sequence(x, -1); err == nil {
		t.Error("negative horizon should fail")
	}
}

func TestCrossFeatureRule(t *testing.T) {
	u := newLoanUpdater(t)
	// Seniority grows only if income is above a floor (a proxy for being
	// employed) — rules see the whole vector.
	err := u.SetRule("seniority", func(x []float64, tt int) float64 {
		if x[dataset.FIncome] < 1000 {
			return x[dataset.FSeniority]
		}
		return x[dataset.FSeniority] + float64(tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	employed := []float64{29, 1, 48000, 1900, 4, 30000}
	unemployed := []float64{29, 1, 0, 1900, 4, 30000}
	e2, _ := u.At(employed, 2)
	u2, _ := u.At(unemployed, 2)
	if e2[dataset.FSeniority] != 6 {
		t.Errorf("employed seniority = %g", e2[dataset.FSeniority])
	}
	if u2[dataset.FSeniority] != 4 {
		t.Errorf("unemployed seniority = %g", u2[dataset.FSeniority])
	}
}
