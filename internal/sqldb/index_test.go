package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// indexedDB builds a small two-table fixture with an index on
// candidates(time).
func indexedDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE candidates (time INT, income FLOAT, diff FLOAT, gap INT, p FLOAT)")
	db.MustExec("CREATE TABLE temporal_inputs (time INT, income FLOAT)")
	rng := rand.New(rand.NewSource(7))
	var rows [][]Value
	for i := 0; i < 500; i++ {
		rows = append(rows, []Value{
			Int(int64(rng.Intn(8))),
			Float(40000 + rng.Float64()*40000),
			Float(rng.Float64() * 20000),
			Int(int64(rng.Intn(3))),
			Float(rng.Float64()),
		})
	}
	if err := db.InsertRows("candidates", rows); err != nil {
		t.Fatal(err)
	}
	var ti [][]Value
	for tp := 0; tp < 8; tp++ {
		ti = append(ti, []Value{Int(int64(tp)), Float(48000)})
	}
	if err := db.InsertRows("temporal_inputs", ti); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
	return db
}

// queryBoth runs the query with the index enabled and disabled and fails on
// any divergence (result rows, order, or error).
func queryBoth(t *testing.T, db *DB, q string, args ...Value) *Result {
	t.Helper()
	indexed, ierr := db.Query(q, args...)
	db.DisableIndexScan = true
	scanned, serr := db.Query(q, args...)
	db.DisableIndexScan = false
	if (ierr == nil) != (serr == nil) {
		t.Fatalf("%s: indexed err=%v, scan err=%v", q, ierr, serr)
	}
	if ierr != nil {
		return nil
	}
	if !reflect.DeepEqual(indexed, scanned) {
		t.Fatalf("%s: indexed and scan paths differ:\nindexed: %+v\nscan:    %+v", q, indexed, scanned)
	}
	return indexed
}

func TestIndexScanMatchesFullScan(t *testing.T) {
	db := indexedDB(t)
	queries := []string{
		"SELECT * FROM candidates WHERE time = 3",
		"SELECT * FROM candidates WHERE 3 = time",
		"SELECT COUNT(*) FROM candidates WHERE time = 3 AND p > 0.5",
		"SELECT * FROM candidates WHERE time > 5",
		"SELECT * FROM candidates WHERE time >= 5 AND time < 7",
		"SELECT * FROM candidates WHERE time BETWEEN 2 AND 4",
		"SELECT * FROM candidates WHERE time = 3.0",  // float probe on INT column
		"SELECT * FROM candidates WHERE time = 3.5",  // never matches
		"SELECT * FROM candidates WHERE time = NULL", // 3VL: empty
		"SELECT * FROM candidates WHERE time = 99",
		"SELECT time, COUNT(*) FROM candidates WHERE time <= 2 GROUP BY time ORDER BY time",
		"SELECT * FROM candidates c WHERE c.time = 1 AND c.gap = 0",
		// Join with an indexed restriction on the first table.
		"SELECT COUNT(*) FROM candidates c INNER JOIN temporal_inputs ti ON c.time = ti.time WHERE c.time = 2",
		// Correlated EXISTS: the inner scan uses the index per outer row.
		`SELECT distinct time as t FROM temporal_inputs WHERE EXISTS
		 (SELECT * FROM candidates c WHERE c.time = t AND c.p > 0.9) ORDER BY t`,
	}
	for _, q := range queries {
		queryBoth(t, db, q)
	}
	// Parameterized probes agree as well.
	queryBoth(t, db, "SELECT * FROM candidates WHERE time = ?", Int(4))
	queryBoth(t, db, "SELECT * FROM candidates WHERE time BETWEEN ? AND ?", Int(1), Int(2))
}

func TestIndexScanSelectsRightRows(t *testing.T) {
	db := indexedDB(t)
	res, err := db.Query("SELECT COUNT(*) FROM candidates WHERE time = 3")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Rows[0][0].AsInt()
	if n == 0 {
		t.Fatal("fixture has no rows at time 3")
	}
	// Cross-check against a manual count.
	all, err := db.Query("SELECT time FROM candidates")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, row := range all.Rows {
		if v, _ := row[0].AsInt(); v == 3 {
			want++
		}
	}
	if n != want {
		t.Fatalf("indexed count = %d, manual count = %d", n, want)
	}
}

func TestIndexTypeErrorParity(t *testing.T) {
	db := indexedDB(t)
	// A text probe on a numeric column must error identically with and
	// without the index (the index path falls back to the scan).
	if _, err := db.Query("SELECT * FROM candidates WHERE time = 'x'"); err == nil {
		t.Fatal("text probe on INT column should error")
	}
	db.DisableIndexScan = true
	if _, err := db.Query("SELECT * FROM candidates WHERE time = 'x'"); err == nil {
		t.Fatal("text probe on INT column should error on the scan path too")
	}
}

func TestIndexResidualErrorParity(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE c (time INT, p FLOAT)")
	db.MustExec("CREATE INDEX c_time ON c (time)")
	db.MustExec("INSERT INTO c VALUES (1, 0.5), (2, 0.9)")
	// A row-independent error in a residual conjunct (unknown column) must
	// surface even when the indexed conjunct eliminates every row: the
	// sentinel row keeps the WHERE evaluation alive.
	for _, q := range []string{
		"SELECT * FROM c WHERE bogus = 1 AND time = -1",
		"SELECT * FROM c WHERE bogus = 1 AND time = NULL",
		"SELECT * FROM c WHERE bogus = 1 AND time > 100",
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("%s: unknown residual column should error on the index path", q)
		}
	}
	// With the erroring conjunct on the right of AND, both paths
	// short-circuit on the false indexed conjunct and agree on no error.
	queryBoth(t, db, "SELECT * FROM c WHERE time > 100 AND bogus = 1")
}

func TestDeleteUpdateErrorsLeaveTableIntact(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
	// Row 1 matches, row 3 errors (INT vs TEXT comparison): the statement
	// must fail atomically, leaving all five rows in place exactly once.
	if _, err := db.Exec("DELETE FROM t WHERE (a = 1) OR (a = 3 AND a = 'x')"); err == nil {
		t.Fatal("mixed-type comparison should error")
	}
	res, err := db.Query("SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("after failed DELETE: %d rows, want 5", len(res.Rows))
	}
	for i, row := range res.Rows {
		if v, _ := row[0].AsInt(); v != int64(i+1) {
			t.Fatalf("after failed DELETE: row %d = %v", i, row[0])
		}
	}
	if _, err := db.Exec("UPDATE t SET a = a + 100 WHERE (a = 1) OR (a = 3 AND a = 'x')"); err == nil {
		t.Fatal("mixed-type comparison should error")
	}
	res, _ = db.Query("SELECT a FROM t ORDER BY a")
	for i, row := range res.Rows {
		if v, _ := row[0].AsInt(); v != int64(i+1) {
			t.Fatalf("after failed UPDATE: row %d = %v (partial update leaked)", i, row[0])
		}
	}
}

func TestIndexMaintenanceAcrossMutations(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	db.MustExec("CREATE INDEX t_a ON t (a)")
	db.MustExec("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (2, 'dos'), (3, 'three')")
	res := queryBoth(t, db, "SELECT b FROM t WHERE a = 2 ORDER BY b")
	if len(res.Rows) != 2 {
		t.Fatalf("a=2 rows = %d", len(res.Rows))
	}
	db.MustExec("INSERT INTO t VALUES (2, 'zwei')")
	if res = queryBoth(t, db, "SELECT b FROM t WHERE a = 2"); len(res.Rows) != 3 {
		t.Fatalf("after insert: a=2 rows = %d", len(res.Rows))
	}
	db.MustExec("DELETE FROM t WHERE b = 'dos'")
	if res = queryBoth(t, db, "SELECT b FROM t WHERE a = 2"); len(res.Rows) != 2 {
		t.Fatalf("after delete: a=2 rows = %d", len(res.Rows))
	}
	db.MustExec("UPDATE t SET a = 9 WHERE b = 'two'")
	if res = queryBoth(t, db, "SELECT b FROM t WHERE a = 9"); len(res.Rows) != 1 {
		t.Fatalf("after update: a=9 rows = %d", len(res.Rows))
	}
	if res = queryBoth(t, db, "SELECT b FROM t WHERE a = 2"); len(res.Rows) != 1 {
		t.Fatalf("after update: a=2 rows = %d", len(res.Rows))
	}
}

func TestFailedMutationsKeepIndexVersion(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1), (2)")
	tb := db.tables["t"]
	v0 := tb.version
	if _, err := db.Exec("INSERT INTO t (nope) VALUES (1)"); err == nil {
		t.Fatal("insert into unknown column should error")
	}
	if _, err := db.Exec("DELETE FROM t WHERE a = 'x'"); err == nil {
		t.Fatal("mixed-type delete should error")
	}
	if _, err := db.Exec("UPDATE t SET a = 'x'"); err == nil {
		t.Fatal("uncoercible update should error")
	}
	if _, err := db.Exec("DELETE FROM t WHERE a = 99"); err != nil {
		t.Fatal(err)
	}
	if tb.version != v0 {
		t.Fatalf("mutation-free statements bumped version %d -> %d (spurious index rebuilds)", v0, tb.version)
	}
	db.MustExec("INSERT INTO t VALUES (3)")
	if tb.version == v0 {
		t.Fatal("a real insert must bump the version")
	}
}

func TestIndexIgnoresNullKeys(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("CREATE INDEX t_a ON t (a)")
	db.MustExec("INSERT INTO t VALUES (1), (NULL), (2), (NULL)")
	res := queryBoth(t, db, "SELECT * FROM t WHERE a >= 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (NULLs never match)", len(res.Rows))
	}
}

func TestIndexNegativeZeroEquality(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (x FLOAT)")
	db.MustExec("CREATE INDEX t_x ON t (x)")
	db.MustExec("INSERT INTO t VALUES (1.5), (-1 * 0.0)")
	res := queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE x = 0.0")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("x = 0.0 matched %d rows, want 1 (-0.0 compares equal to 0.0)", n)
	}
}

func TestIndexNaNFallsBackToScan(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (x FLOAT)")
	db.MustExec("CREATE INDEX t_x ON t (x)")
	if err := db.InsertRows("t", [][]Value{{Float(5)}, {Float(math.NaN())}, {Float(2)}}); err != nil {
		t.Fatal(err)
	}
	// Compare treats NaN as equal to every number, which no hash or sorted
	// structure can mirror; the index must disable itself so both paths
	// agree (queryBoth fails on any divergence).
	queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE x = 5")
	queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE x BETWEEN 1 AND 9")
	// A NaN probe likewise falls back to the scan path.
	queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE x = ?", Float(math.NaN()))
}

func TestIndexIsNotAReservedWord(t *testing.T) {
	db := New()
	// Schemas may legitimately name a column "index"; CREATE/DROP INDEX
	// must stay parseable as a contextual keyword alongside it.
	db.MustExec("CREATE TABLE t (index INT, v FLOAT)")
	db.MustExec("INSERT INTO t VALUES (1, 0.5), (2, 0.7)")
	res, err := db.Query("SELECT index FROM t WHERE index = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	db.MustExec("CREATE INDEX t_index ON t (index)")
	res = queryBoth(t, db, "SELECT v FROM t WHERE index = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("indexed lookup rows = %d", len(res.Rows))
	}
	db.MustExec("DROP INDEX t_index")
}

func TestCreateDropIndexStatements(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("CREATE INDEX t_a ON t (a)")
	if _, err := db.Exec("CREATE INDEX t_a ON t (a)"); err == nil {
		t.Fatal("duplicate index name should error")
	}
	db.MustExec("CREATE INDEX IF NOT EXISTS t_a ON t (a)")
	if names, _ := db.IndexNames("t"); len(names) != 1 || names[0] != "t_a" {
		t.Fatalf("IndexNames = %v", names)
	}
	if _, err := db.Exec("CREATE INDEX nope ON missing (a)"); err == nil {
		t.Fatal("index on missing table should error")
	}
	if _, err := db.Exec("CREATE INDEX nope ON t (missing)"); err == nil {
		t.Fatal("index on missing column should error")
	}
	db.MustExec("DROP INDEX t_a")
	if names, _ := db.IndexNames("t"); len(names) != 0 {
		t.Fatalf("IndexNames after drop = %v", names)
	}
	if _, err := db.Exec("DROP INDEX t_a"); err == nil {
		t.Fatal("dropping a missing index should error")
	}
	db.MustExec("DROP INDEX IF EXISTS t_a")
}

func TestCreateTableAndIndexAPI(t *testing.T) {
	db := New()
	cols := []Column{{Name: "a", Type: IntType}, {Name: "b", Type: FloatType}}
	if err := db.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", cols); err == nil {
		t.Fatal("duplicate table should error")
	}
	if err := db.CreateIndex("t_a", "t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t_a2", "t", "nope"); err == nil {
		t.Fatal("missing column should error")
	}
	if err := db.InsertRows("t", [][]Value{{Int(1), Float(2)}, {Int(1), Float(3)}}); err != nil {
		t.Fatal(err)
	}
	res := queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE a = 1")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("count = %d", n)
	}
}

func TestPreparedStatementReuse(t *testing.T) {
	st, err := Prepare("SELECT * FROM t WHERE a = ? ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d", st.NumParams())
	}
	// The same compiled statement runs against two different databases.
	for i := 0; i < 2; i++ {
		db := New()
		db.MustExec("CREATE TABLE t (a INT, b TEXT)")
		db.MustExec("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (1, 'z')")
		res, err := st.Query(db, Int(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("db %d: rows = %d", i, len(res.Rows))
		}
	}
}

func TestPreparedStatementArgChecks(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	st := MustPrepare("SELECT * FROM t WHERE a = ?")
	if _, err := st.Query(db); err == nil {
		t.Fatal("missing argument should error")
	}
	if _, err := st.Query(db, Int(1), Int(2)); err == nil {
		t.Fatal("extra argument should error")
	}
	if _, err := st.Exec(db, Int(1)); err == nil {
		t.Fatal("Exec of a SELECT should error")
	}
	if _, err := db.Query("SELECT * FROM t WHERE a = ?"); err == nil {
		t.Fatal("unbound parameter via Query should error")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (?)"); err == nil {
		t.Fatal("unbound parameter via Exec should error")
	}
}

func TestPreparedExecWithParams(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	ins := MustPrepare("INSERT INTO t VALUES (?, ?)")
	for i := 0; i < 3; i++ {
		n, err := ins.Exec(db, Int(int64(i)), Text(fmt.Sprintf("row%d", i)))
		if err != nil || n != 1 {
			t.Fatalf("insert %d: n=%d err=%v", i, n, err)
		}
	}
	del := MustPrepare("DELETE FROM t WHERE a >= ?")
	n, err := del.Exec(db, Int(1))
	if err != nil || n != 2 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	res, err := db.Query("SELECT b FROM t")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("rows=%v err=%v", res, err)
	}
}

func TestQueryWithInlineArgs(t *testing.T) {
	db := indexedDB(t)
	res, err := db.Query("SELECT COUNT(*) FROM candidates WHERE time = ? AND p > ?", Int(2), Float(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.Query("SELECT COUNT(*) FROM candidates WHERE time = 2 AND p > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, ref.Rows) {
		t.Fatalf("parameterized %v != literal %v", res.Rows, ref.Rows)
	}
}

// TestConcurrentIndexedReads exercises the lazy index rebuild under many
// concurrent readers (run with -race): the first readers after an insert
// race to rebuild, later ones must see a consistent structure.
func TestConcurrentIndexedReads(t *testing.T) {
	db := indexedDB(t)
	want, err := db.Query("SELECT COUNT(*) FROM candidates WHERE time = 3")
	if err != nil {
		t.Fatal(err)
	}
	st := MustPrepare("SELECT COUNT(*) FROM candidates WHERE time = ?")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := st.Query(db, Int(3))
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs <- fmt.Errorf("got %v, want %v", res.Rows, want.Rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
