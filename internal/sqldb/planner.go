package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the cost-aware access-path planner behind SELECT execution:
// it decides, per query level, how the first FROM table is scanned (full
// scan, single/composite index scan, index intersection, or an impossible
// NULL probe) and whether an ORDER BY ... LIMIT can stream top-k rows out
// of a sorted index instead of materializing and sorting. Index
// nested-loop joins live in exec.go next to the other join strategies.
//
// Error parity with the scan path is the planner's contract (the
// differential harness asserts it): an incomparable probe falls back to
// the full scan so the type error surfaces identically, and when a plan
// eliminates every row of a non-empty table one sentinel row is kept so
// row-independent errors in residual predicates (an unknown column, say)
// still surface. Row-dependent errors on rows the plan pruned are not
// re-raised — like any planner, choosing a plan that never evaluates a
// predicate on a pruned row also skips that row's evaluation errors.

// colSarg accumulates the index-usable constraints on one column of the
// scan table: at most one equality probe (first wins; later equalities stay
// residual) and the tightest lower/upper bounds.
type colSarg struct {
	eq       *Value
	lo, hi   *Value
	loStrict bool
	hiStrict bool
}

func (s *colSarg) tightenLo(v Value, strict bool) {
	if s.lo == nil {
		s.lo, s.loStrict = &v, strict
		return
	}
	if c, _ := Compare(v, *s.lo); c > 0 || (c == 0 && strict && !s.loStrict) {
		s.lo, s.loStrict = &v, strict
	}
}

func (s *colSarg) tightenHi(v Value, strict bool) {
	if s.hi == nil {
		s.hi, s.hiStrict = &v, strict
		return
	}
	if c, _ := Compare(v, *s.hi); c < 0 || (c == 0 && strict && !s.hiStrict) {
		s.hi, s.hiStrict = &v, strict
	}
}

func (s *colSarg) hasRange() bool { return s.lo != nil || s.hi != nil }

// sargSet is every per-column constraint extracted from the WHERE conjuncts
// of one query level, keyed by column position of the scan table.
type sargSet struct {
	byCol map[int]*colSarg
	// empty records a NULL probe on an indexable column: the conjunct is
	// AND-ed into WHERE and a comparison with NULL is never TRUE, so no row
	// can survive.
	empty bool
}

// sarg is one index-usable WHERE conjunct in raw form: column op constant,
// with the constant already evaluated (op "between" carries both bounds).
type sarg struct {
	ci int
	op string
	v  Value
	hi Value
}

// collectSargs extracts the sargable conjuncts of sel.Where that touch an
// indexed column of the scan table. ok=false demands a full-scan fallback
// (an incomparable probe must surface its type error exactly as the scan
// path would).
func (ex *executor) collectSargs(t *Table, rel relation, sel *SelectStmt, parent *scope) (sargSet, bool) {
	set := sargSet{byCol: make(map[int]*colSarg)}
	indexed := t.indexedCols()
	var conjs []Expr
	collectConjuncts(sel.Where, &conjs)
	for _, c := range conjs {
		sg, ok := ex.sargable(c, t, rel, sel, parent)
		if !ok || !indexed[sg.ci] {
			continue // stays residual
		}
		colType := t.Cols[sg.ci].Type
		if sg.v.IsNull() || (sg.op == "between" && sg.hi.IsNull()) {
			set.empty = true
			continue
		}
		if !comparableWith(colType, sg.v) || (sg.op == "between" && !comparableWith(colType, sg.hi)) {
			return sargSet{}, false
		}
		cs := set.byCol[sg.ci]
		if cs == nil {
			cs = &colSarg{}
			set.byCol[sg.ci] = cs
		}
		switch sg.op {
		case "=":
			if cs.eq == nil {
				v := sg.v
				cs.eq = &v
			}
		case "<":
			cs.tightenHi(sg.v, true)
		case "<=":
			cs.tightenHi(sg.v, false)
		case ">":
			cs.tightenLo(sg.v, true)
		case ">=":
			cs.tightenLo(sg.v, false)
		case "between":
			cs.tightenLo(sg.v, false)
			cs.tightenHi(sg.hi, false)
		}
	}
	return set, true
}

// sargable decides whether one conjunct has the shape `column op constant`
// (either orientation, or BETWEEN with constant bounds), where "constant"
// means: no reference to any relation of this FROM clause, so the value is
// fixed for the whole scan (literals, parameters, and correlated references
// to enclosing scopes all qualify).
func (ex *executor) sargable(c Expr, t *Table, rel relation, sel *SelectStmt, parent *scope) (sarg, bool) {
	switch n := c.(type) {
	case *BinaryExpr:
		if n.Quant != "" || n.Sub != nil {
			return sarg{}, false
		}
		switch n.Op {
		case "=", "<", "<=", ">", ">=":
		default:
			return sarg{}, false
		}
		if ci, ok := ex.sargColumn(n.L, t, rel, sel); ok && ex.outerConst(n.R, sel) {
			v, err := ex.eval(n.R, parent)
			if err != nil {
				return sarg{}, false
			}
			return sarg{ci: ci, op: n.Op, v: v}, true
		}
		if ci, ok := ex.sargColumn(n.R, t, rel, sel); ok && ex.outerConst(n.L, sel) {
			v, err := ex.eval(n.L, parent)
			if err != nil {
				return sarg{}, false
			}
			return sarg{ci: ci, op: flipCmp(n.Op), v: v}, true
		}
	case *BetweenExpr:
		if n.Not {
			return sarg{}, false
		}
		ci, ok := ex.sargColumn(n.E, t, rel, sel)
		if !ok || !ex.outerConst(n.Lo, sel) || !ex.outerConst(n.Hi, sel) {
			return sarg{}, false
		}
		lo, err := ex.eval(n.Lo, parent)
		if err != nil {
			return sarg{}, false
		}
		hi, err := ex.eval(n.Hi, parent)
		if err != nil {
			return sarg{}, false
		}
		return sarg{ci: ci, op: "between", v: lo, hi: hi}, true
	}
	return sarg{}, false
}

// flipCmp mirrors a comparison for the `constant op column` orientation.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// sargColumn resolves e as a column of the scan table, returning false when
// e is not a column of that table or when the reference could be ambiguous
// against another FROM item.
func (ex *executor) sargColumn(e Expr, t *Table, rel relation, sel *SelectStmt) (int, bool) {
	cr, ok := e.(*ColumnRef)
	if !ok {
		return 0, false
	}
	ci, ok := t.colIdx[cr.Column]
	if !ok {
		return 0, false
	}
	if cr.Table != "" {
		if cr.Table != rel.alias {
			return 0, false
		}
		for _, other := range sel.From[1:] {
			if fromAlias(other) == rel.alias {
				return 0, false // duplicate alias: resolution is ambiguous
			}
		}
	} else {
		for _, other := range sel.From[1:] {
			if other.Subquery != nil {
				return 0, false // unknown columns: could shadow or be ambiguous
			}
			ot, ok := ex.db.tables[other.Name]
			if !ok {
				return 0, false
			}
			if _, dup := ot.colIdx[cr.Column]; dup {
				return 0, false // ambiguous with a joined table's column
			}
		}
	}
	return ci, true
}

// outerConst reports whether e cannot reference any relation or select
// alias of this query level, making it constant for the whole scan.
func (ex *executor) outerConst(e Expr, sel *SelectStmt) bool {
	switch n := e.(type) {
	case *Literal, *ParamExpr:
		return true
	case *ColumnRef:
		if n.Table != "" {
			for _, ref := range sel.From {
				if fromAlias(ref) == n.Table {
					return false
				}
			}
			return true // qualified with an enclosing scope's alias
		}
		for _, ref := range sel.From {
			if ref.Subquery != nil {
				return false
			}
			ot, ok := ex.db.tables[ref.Name]
			if !ok {
				return false
			}
			if _, local := ot.colIdx[n.Column]; local {
				return false
			}
		}
		for _, item := range sel.Items {
			if item.Alias == n.Column {
				return false // select-list alias would shadow the outer name
			}
		}
		return true
	case *UnaryExpr:
		return ex.outerConst(n.E, sel)
	case *BinaryExpr:
		if n.Quant != "" || n.Sub != nil {
			return false
		}
		return ex.outerConst(n.L, sel) && ex.outerConst(n.R, sel)
	case *FuncCall:
		if n.Star || aggregateFuncs[n.Name] {
			return false
		}
		for _, a := range n.Args {
			if !ex.outerConst(a, sel) {
				return false
			}
		}
		return true
	default:
		return false // subqueries, CASE, LIKE, ...: conservatively local
	}
}

// accessPath is one usable way to probe one index: equality on a leading
// prefix of its columns, optionally followed by a range on the next column.
type accessPath struct {
	ix  *tableIndex
	eq  []Value  // probes for ix.cols[:len(eq)]
	rng *colSarg // optional bounds on ix.cols[len(eq)]
}

// usedCols is the number of leading index columns the path constrains.
func (p accessPath) usedCols() int {
	n := len(p.eq)
	if p.rng != nil {
		n++
	}
	return n
}

// coveredCols lists the table column positions the path constrains.
func (p accessPath) coveredCols() []int {
	return p.ix.cols[:p.usedCols()]
}

// describe renders the path for EXPLAIN: eq columns as "col=", the range
// column as "col range".
func (p accessPath) describe(t *Table) string {
	parts := make([]string, 0, p.usedCols())
	for i := range p.eq {
		parts = append(parts, t.Cols[p.ix.cols[i]].Name+"=")
	}
	if p.rng != nil {
		parts = append(parts, t.Cols[p.ix.cols[len(p.eq)]].Name+" range")
	}
	return fmt.Sprintf("%s (%s)", p.ix.name, strings.Join(parts, ", "))
}

// buildPaths derives every usable access path from the table's indexes and
// the collected sargs: the longest equality prefix of each index, plus a
// range on the following column when bounds exist.
func buildPaths(t *Table, set sargSet) []accessPath {
	var out []accessPath
	for _, ix := range t.indexes {
		var eq []Value
		for _, ci := range ix.cols {
			cs := set.byCol[ci]
			if cs == nil || cs.eq == nil {
				break
			}
			eq = append(eq, *cs.eq)
		}
		var rng *colSarg
		if len(eq) < len(ix.cols) {
			if cs := set.byCol[ix.cols[len(eq)]]; cs != nil && cs.hasRange() {
				rng = cs
			}
		}
		if len(eq) == 0 && rng == nil {
			continue
		}
		out = append(out, accessPath{ix: ix, eq: eq, rng: rng})
	}
	return out
}

// choosePaths orders the candidate paths by estimated selectivity —
// most constrained columns first, equality beating range, narrower indexes
// beating wider ones, name as the deterministic tiebreak — then keeps the
// best path plus any path that constrains a column no kept path covers
// (intersecting a redundant path would cost lookups without pruning rows).
func choosePaths(paths []accessPath) []accessPath {
	if len(paths) == 0 {
		return nil
	}
	sort.Slice(paths, func(a, b int) bool {
		pa, pb := paths[a], paths[b]
		if pa.usedCols() != pb.usedCols() {
			return pa.usedCols() > pb.usedCols()
		}
		if len(pa.eq) != len(pb.eq) {
			return len(pa.eq) > len(pb.eq)
		}
		if len(pa.ix.cols) != len(pb.ix.cols) {
			return len(pa.ix.cols) < len(pb.ix.cols)
		}
		return pa.ix.name < pb.ix.name
	})
	covered := make(map[int]bool)
	var chosen []accessPath
	for _, p := range paths {
		adds := false
		for _, ci := range p.coveredCols() {
			if !covered[ci] {
				adds = true
			}
		}
		if !adds {
			continue
		}
		for _, ci := range p.coveredCols() {
			covered[ci] = true
		}
		chosen = append(chosen, p)
	}
	return chosen
}

// pathPositions computes the candidate row positions of one path. When the
// path leaves trailing index columns unconstrained, rows missing from the
// key structures only because of a NULL in such a column could still match,
// so nullRows join the candidate set (the residual WHERE filters them).
// The result is a superset of the rows the full WHERE keeps.
func pathPositions(p accessPath) []int {
	var pos []int
	if p.rng == nil && len(p.eq) == len(p.ix.cols) {
		pos = p.ix.lookupEqual(p.eq) // shared with the index — read only
	} else {
		var lo, hi *Value
		var loS, hiS bool
		if p.rng != nil {
			lo, hi, loS, hiS = p.rng.lo, p.rng.hi, p.rng.loStrict, p.rng.hiStrict
		}
		pos = p.ix.lookupPrefixRange(p.eq, lo, hi, loS, hiS)
	}
	if p.usedCols() < len(p.ix.cols) && len(p.ix.nullRows) > 0 {
		pos = append(append(make([]int, 0, len(pos)+len(p.ix.nullRows)), pos...), p.ix.nullRows...)
	}
	return pos
}

// intersectPositions intersects several candidate sets (each with unique
// members) and returns the result sorted ascending (table order).
func intersectPositions(sets [][]int) []int {
	if len(sets) == 1 {
		out := append([]int(nil), sets[0]...)
		sort.Ints(out)
		return out
	}
	counts := make(map[int]int, len(sets[0]))
	for _, s := range sets {
		for _, p := range s {
			counts[p]++
		}
	}
	var out []int
	for p, n := range counts {
		if n == len(sets) {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// indexScan tries to answer the sargable WHERE conjuncts on the first FROM
// table through its secondary indexes: a single (possibly composite) index
// scan, or the intersection of several paths' row-id sets. It returns the
// filtered rows (a superset of the rows the full WHERE will keep — the
// residual WHERE still runs over every returned row) and whether an index
// was used. See the error-parity contract at the top of this file.
func (ex *executor) indexScan(t *Table, rel relation, sel *SelectStmt, parent *scope) ([][]Value, bool, error) {
	if t == nil || len(t.indexes) == 0 {
		return nil, false, nil
	}
	set, ok := ex.collectSargs(t, rel, sel, parent)
	if !ok {
		return nil, false, nil
	}
	paths := choosePaths(buildPaths(t, set))
	if len(paths) == 0 && !set.empty {
		return nil, false, nil
	}
	var pos []int
	if !set.empty {
		sets := make([][]int, len(paths))
		for i, p := range paths {
			if err := p.ix.ensure(t); err != nil {
				return nil, false, err
			}
			if p.ix.nan {
				return nil, false, nil // NaN in an indexed column: only a scan has parity
			}
			sets[i] = pathPositions(p)
		}
		pos = intersectPositions(sets)
	}
	switch {
	case set.empty:
		planCounts.emptyProbe.Add(1)
		ex.note("scan %s using impossible predicate (NULL probe)", rel.alias)
	case len(paths) == 1:
		planCounts.indexScan.Add(1)
		ex.note("scan %s using index %s", rel.alias, paths[0].describe(t))
	default:
		planCounts.indexIntersect.Add(1)
		descs := make([]string, len(paths))
		for i, p := range paths {
			descs[i] = p.describe(t)
		}
		ex.note("scan %s using index intersection of %s", rel.alias, strings.Join(descs, " and "))
	}
	if len(pos) == 0 && t.store.Len() > 0 {
		// Keep one sentinel row: the sargable conjuncts are not TRUE on it,
		// so the residual WHERE drops it — but row-independent errors in
		// other conjuncts still surface (see the error-parity contract).
		pos = []int{0}
	}
	rows := make([][]Value, len(pos))
	for i, p := range pos {
		row, err := t.store.Get(p)
		if err != nil {
			return nil, false, err
		}
		rows[i] = row
	}
	return rows, true, nil
}

// collectConjuncts flattens a WHERE tree over AND into its conjuncts.
func collectConjuncts(e Expr, out *[]Expr) {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		collectConjuncts(be.L, out)
		collectConjuncts(be.R, out)
		return
	}
	*out = append(*out, e)
}

// tryTopK streams ORDER BY ... LIMIT straight out of a sorted index instead
// of materializing and sorting the whole table. It applies when the query
// reads one stored table with no grouping/DISTINCT, every ORDER BY key is a
// bare column, all keys share one direction, and some index has the order
// keys as a contiguous column run preceded only by equality-constrained
// columns. Rows whose order key is NULL are not in the index; they are
// emitted from nullRows first (ascending; NULLs sort first) or last
// (descending), which is only well-defined for a single order key — other
// NULL configurations fall back to the general path.
func (ex *executor) tryTopK(sel *SelectStmt, parent *scope) (*Result, bool, error) {
	if ex.db.DisableIndexScan || sel.Limit == nil || len(sel.OrderBy) == 0 {
		return nil, false, nil
	}
	if sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, false, nil
	}
	if len(sel.From) != 1 || sel.From[0].Subquery != nil {
		return nil, false, nil
	}
	var aggs []*FuncCall
	for _, item := range sel.Items {
		collectAggregates(item.Expr, &aggs)
	}
	for _, o := range sel.OrderBy {
		collectAggregates(o.Expr, &aggs)
	}
	if len(aggs) > 0 {
		return nil, false, nil
	}
	t, ok := ex.db.tables[sel.From[0].Name]
	if !ok || len(t.indexes) == 0 {
		return nil, false, nil
	}
	rel := relationOf(t)
	if sel.From[0].Alias != "" {
		rel.alias = sel.From[0].Alias
	}

	// Every ORDER BY key must be a bare column of the table, one direction.
	desc := sel.OrderBy[0].Desc
	orderCols := make([]int, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		if o.Desc != desc {
			return nil, false, nil
		}
		cr, isCol := o.Expr.(*ColumnRef)
		if !isCol || (cr.Table != "" && cr.Table != rel.alias) {
			return nil, false, nil
		}
		ci, ok := t.colIdx[cr.Column]
		if !ok {
			return nil, false, nil
		}
		orderCols[i] = ci
	}

	set, ok := ex.collectSargs(t, rel, sel, parent)
	if !ok || set.empty {
		return nil, false, nil // scan fallback / impossible predicate: general path
	}

	// Find an index whose TRAILING columns are exactly the order run and
	// whose leading columns all carry equality sargs: the equality prefix
	// pins the leading key parts to one value, so key order within the
	// probed range is exactly (order keys, original row position) — the
	// same total order the stable scan sort produces. An order run that
	// stops short of the index's last column would let the unused trailing
	// columns reorder ties, so it never qualifies. Prefer the longest
	// equality prefix (narrowest key range), then creation order.
	var ix *tableIndex
	bestJ := -1
	for _, cand := range t.indexes {
		j := len(cand.cols) - len(orderCols)
		if j < 0 || j <= bestJ {
			continue
		}
		match := true
		for i, oc := range orderCols {
			if cand.cols[j+i] != oc {
				match = false
				break
			}
		}
		for i := 0; match && i < j; i++ {
			cs := set.byCol[cand.cols[i]]
			if cs == nil || cs.eq == nil {
				match = false
			}
		}
		if match {
			ix, bestJ = cand, j
		}
	}
	if ix == nil {
		return nil, false, nil
	}
	j := bestJ

	if err := ix.ensure(t); err != nil {
		return nil, true, err
	}
	if ix.nan {
		return nil, false, nil
	}
	if len(ix.nullRows) > 0 && len(orderCols) > 1 {
		// With several order keys a NULL in a later key interleaves inside
		// each group of the earlier keys; only the general sort reproduces
		// that ordering.
		return nil, false, nil
	}

	off := 0
	if sel.Offset != nil {
		off = int(*sel.Offset)
		if off < 0 {
			return nil, true, fmt.Errorf("sqldb: negative OFFSET")
		}
	}
	lim := int(*sel.Limit)
	if lim < 0 {
		return nil, true, fmt.Errorf("sqldb: negative LIMIT")
	}
	need := off + lim

	eq := make([]Value, j)
	for i := 0; i < j; i++ {
		eq[i] = *set.byCol[ix.cols[i]].eq
	}
	// A range sarg on the first order column narrows the key range further;
	// rows outside it violate that conjunct, so skipping them is safe.
	var lo, hi *Value
	var loS, hiS bool
	if cs := set.byCol[ix.cols[j]]; cs != nil && cs.hasRange() {
		lo, hi, loS, hiS = cs.lo, cs.hi, cs.loStrict, cs.hiStrict
	}
	start, end := ix.prefixRange(eq, lo, hi, loS, hiS)

	aliasExpr := make(map[string]Expr)
	for _, item := range sel.Items {
		if item.Alias != "" && item.Expr != nil {
			aliasExpr[item.Alias] = item.Expr
		}
	}
	rels := []relation{rel}
	mkScope := func(row []Value) *scope {
		sc := newScope(parent)
		sc.push(rel, row)
		sc.aliasExpr = aliasExpr
		sc.aliasBusy = make(map[string]bool)
		return sc
	}

	var columns []string
	var out [][]Value
	processed := 0
	emit := func(ri int) (bool, error) {
		processed++
		row, rerr := t.store.Get(ri)
		if rerr != nil {
			return true, rerr
		}
		sc := mkScope(row)
		if sel.Where != nil {
			v, err := ex.eval(sel.Where, sc)
			if err != nil {
				return true, err
			}
			if !isTrue(v) {
				return false, nil
			}
		}
		vals, names, err := ex.projectRow(sel, rels, sc)
		if err != nil {
			return true, err
		}
		columns = names
		out = append(out, vals)
		return len(out) >= need, nil
	}

	done := need == 0 // LIMIT 0 (without OFFSET) keeps nothing
	var err error
	emitNulls := func() {
		for _, ri := range ix.nullRows {
			if done || err != nil {
				return
			}
			done, err = emit(ri)
		}
	}
	emitKeys := func() {
		if !desc {
			for ki := start; ki < end && !done && err == nil; ki++ {
				for _, ri := range ix.keyRows[ki] {
					if done, err = emit(ri); done || err != nil {
						break
					}
				}
			}
			return
		}
		for ki := end - 1; ki >= start && !done && err == nil; ki-- {
			for _, ri := range ix.keyRows[ki] {
				if done, err = emit(ri); done || err != nil {
					break
				}
			}
		}
	}
	if !done {
		if desc {
			emitKeys()
			emitNulls() // NULL order keys sort last descending
		} else {
			emitNulls() // NULL order keys sort first ascending
			emitKeys()
		}
	}
	if err != nil {
		return nil, true, err
	}
	if processed == 0 && t.store.Len() > 0 {
		// Sentinel evaluation: the scan path runs WHERE (and, on survivors,
		// the projection) over every row even when LIMIT keeps none, so
		// row-independent errors must still surface here.
		if _, serr := emit(0); serr != nil {
			return nil, true, serr
		}
		out = out[:0]
	}

	if off > len(out) {
		off = len(out)
	}
	out = out[off:]
	if out == nil {
		out = [][]Value{} // match the general path's non-nil empty Rows
	}
	if columns == nil {
		if columns, err = ex.staticColumns(sel, rels); err != nil {
			return nil, true, err
		}
	}

	planCounts.topK.Add(1)
	if ex.trace != nil {
		parts := make([]string, 0, j+len(orderCols))
		for i := 0; i < j; i++ {
			parts = append(parts, t.Cols[ix.cols[i]].Name+"=")
		}
		dir := "asc"
		if desc {
			dir = "desc"
		}
		for _, oc := range orderCols {
			parts = append(parts, t.Cols[oc].Name+" "+dir)
		}
		step := fmt.Sprintf("top-k scan %s using index %s (%s) limit %d", rel.alias, ix.name, strings.Join(parts, ", "), lim)
		if sel.Offset != nil {
			// The query's OFFSET, not the clamped one — matching the
			// general path's note so EXPLAIN text is plan-shape-stable.
			step += fmt.Sprintf(" offset %d", *sel.Offset)
		}
		ex.note("%s", step)
	}
	return &Result{Columns: columns, Rows: out}, true, nil
}
