package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"justintime/internal/sqldb/pager"
)

// This file is the cost-aware access-path planner behind SELECT execution:
// it decides, per query level, how the first FROM table is scanned (full
// scan, single/composite index scan, index intersection, or an impossible
// NULL probe) and whether an ORDER BY ... LIMIT can stream top-k rows out
// of a sorted index instead of materializing and sorting. Index
// nested-loop joins live in exec.go next to the other join strategies.
//
// Error parity with the scan path is the planner's contract (the
// differential harness asserts it): an incomparable probe falls back to
// the full scan so the type error surfaces identically, and when a plan
// eliminates every row of a non-empty table one sentinel row is kept so
// row-independent errors in residual predicates (an unknown column, say)
// still surface. Row-dependent errors on rows the plan pruned are not
// re-raised — like any planner, choosing a plan that never evaluates a
// predicate on a pruned row also skips that row's evaluation errors.

// colSarg accumulates the index-usable constraints on one column of the
// scan table: at most one equality probe (first wins; later equalities stay
// residual), at most one IN list (likewise), and the tightest lower/upper
// bounds.
type colSarg struct {
	eq       *Value
	in       []Value // IN-list probes: deduplicated, non-NULL; first list wins
	lo, hi   *Value
	loStrict bool
	hiStrict bool
}

func (s *colSarg) tightenLo(v Value, strict bool) {
	if s.lo == nil {
		s.lo, s.loStrict = &v, strict
		return
	}
	if c, _ := Compare(v, *s.lo); c > 0 || (c == 0 && strict && !s.loStrict) {
		s.lo, s.loStrict = &v, strict
	}
}

func (s *colSarg) tightenHi(v Value, strict bool) {
	if s.hi == nil {
		s.hi, s.hiStrict = &v, strict
		return
	}
	if c, _ := Compare(v, *s.hi); c < 0 || (c == 0 && strict && !s.hiStrict) {
		s.hi, s.hiStrict = &v, strict
	}
}

func (s *colSarg) hasRange() bool { return s.lo != nil || s.hi != nil }

// sargSet is every per-column constraint extracted from the WHERE conjuncts
// of one query level, keyed by column position of the scan table.
type sargSet struct {
	byCol map[int]*colSarg
	// empty records a NULL probe on an indexable column: the conjunct is
	// AND-ed into WHERE and a comparison with NULL is never TRUE, so no row
	// can survive.
	empty bool
}

// sarg is one index-usable WHERE conjunct in raw form: column op constant,
// with the constant already evaluated (op "between" carries both bounds, op
// "in" carries the member list).
type sarg struct {
	ci   int
	op   string
	v    Value
	hi   Value
	list []Value
}

// collectSargs extracts the sargable conjuncts of sel.Where that touch an
// indexed column of the scan table. ok=false demands a full-scan fallback
// (an incomparable probe must surface its type error exactly as the scan
// path would).
func (ex *executor) collectSargs(t *Table, rel relation, sel *SelectStmt, parent *scope) (sargSet, bool) {
	var conjs []Expr
	collectConjuncts(sel.Where, &conjs)
	return ex.collectSargsFrom(t, rel, sel, parent, conjs)
}

// collectSargsFrom is collectSargs over an explicit conjunct list, so
// OR-expansion can collect per-disjunct sargs with the same rules.
func (ex *executor) collectSargsFrom(t *Table, rel relation, sel *SelectStmt, parent *scope, conjs []Expr) (sargSet, bool) {
	set := sargSet{byCol: make(map[int]*colSarg)}
	indexed := t.indexedCols()
	for _, c := range conjs {
		sg, ok := ex.sargable(c, t, rel, sel, parent)
		if !ok || !indexed[sg.ci] {
			continue // stays residual
		}
		colType := t.Cols[sg.ci].Type
		if sg.op == "in" {
			// NULL members never match and drop out (a list of only NULLs
			// matches nothing); members are deduplicated by index key so the
			// per-member position sets of a multi-probe stay disjoint.
			var vals []Value
			seen := make(map[string]bool, len(sg.list))
			for _, v := range sg.list {
				if v.IsNull() {
					continue
				}
				if !comparableWith(colType, v) {
					return sargSet{}, false
				}
				k, _ := indexKey(v)
				if seen[k] {
					continue
				}
				seen[k] = true
				vals = append(vals, v)
			}
			if len(vals) == 0 {
				set.empty = true
				continue
			}
			cs := set.byCol[sg.ci]
			if cs == nil {
				cs = &colSarg{}
				set.byCol[sg.ci] = cs
			}
			if cs.in == nil {
				cs.in = vals
			}
			continue
		}
		if sg.v.IsNull() || (sg.op == "between" && sg.hi.IsNull()) {
			set.empty = true
			continue
		}
		if !comparableWith(colType, sg.v) || (sg.op == "between" && !comparableWith(colType, sg.hi)) {
			return sargSet{}, false
		}
		cs := set.byCol[sg.ci]
		if cs == nil {
			cs = &colSarg{}
			set.byCol[sg.ci] = cs
		}
		switch sg.op {
		case "=":
			if cs.eq == nil {
				v := sg.v
				cs.eq = &v
			}
		case "<":
			cs.tightenHi(sg.v, true)
		case "<=":
			cs.tightenHi(sg.v, false)
		case ">":
			cs.tightenLo(sg.v, true)
		case ">=":
			cs.tightenLo(sg.v, false)
		case "between":
			cs.tightenLo(sg.v, false)
			cs.tightenHi(sg.hi, false)
		}
	}
	return set, true
}

// sargable decides whether one conjunct has the shape `column op constant`
// (either orientation, or BETWEEN with constant bounds), where "constant"
// means: no reference to any relation of this FROM clause, so the value is
// fixed for the whole scan (literals, parameters, and correlated references
// to enclosing scopes all qualify).
func (ex *executor) sargable(c Expr, t *Table, rel relation, sel *SelectStmt, parent *scope) (sarg, bool) {
	switch n := c.(type) {
	case *BinaryExpr:
		if n.Quant != "" || n.Sub != nil {
			return sarg{}, false
		}
		switch n.Op {
		case "=", "<", "<=", ">", ">=":
		default:
			return sarg{}, false
		}
		if ci, ok := ex.sargColumn(n.L, t, rel, sel); ok && ex.outerConst(n.R, sel) {
			v, err := ex.eval(n.R, parent)
			if err != nil {
				return sarg{}, false
			}
			return sarg{ci: ci, op: n.Op, v: v}, true
		}
		if ci, ok := ex.sargColumn(n.R, t, rel, sel); ok && ex.outerConst(n.L, sel) {
			v, err := ex.eval(n.L, parent)
			if err != nil {
				return sarg{}, false
			}
			return sarg{ci: ci, op: flipCmp(n.Op), v: v}, true
		}
	case *InExpr:
		if n.Not || n.Sub != nil {
			return sarg{}, false
		}
		ci, ok := ex.sargColumn(n.E, t, rel, sel)
		if !ok {
			return sarg{}, false
		}
		vals := make([]Value, 0, len(n.List))
		for _, item := range n.List {
			if !ex.outerConst(item, sel) {
				return sarg{}, false
			}
			v, err := ex.eval(item, parent)
			if err != nil {
				return sarg{}, false
			}
			vals = append(vals, v)
		}
		return sarg{ci: ci, op: "in", list: vals}, true
	case *BetweenExpr:
		if n.Not {
			return sarg{}, false
		}
		ci, ok := ex.sargColumn(n.E, t, rel, sel)
		if !ok || !ex.outerConst(n.Lo, sel) || !ex.outerConst(n.Hi, sel) {
			return sarg{}, false
		}
		lo, err := ex.eval(n.Lo, parent)
		if err != nil {
			return sarg{}, false
		}
		hi, err := ex.eval(n.Hi, parent)
		if err != nil {
			return sarg{}, false
		}
		return sarg{ci: ci, op: "between", v: lo, hi: hi}, true
	}
	return sarg{}, false
}

// flipCmp mirrors a comparison for the `constant op column` orientation.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// sargColumn resolves e as a column of the scan table, returning false when
// e is not a column of that table or when the reference could be ambiguous
// against another FROM item.
func (ex *executor) sargColumn(e Expr, t *Table, rel relation, sel *SelectStmt) (int, bool) {
	cr, ok := e.(*ColumnRef)
	if !ok {
		return 0, false
	}
	ci, ok := t.colIdx[cr.Column]
	if !ok {
		return 0, false
	}
	if cr.Table != "" {
		if cr.Table != rel.alias {
			return 0, false
		}
		for _, other := range sel.From[1:] {
			if fromAlias(other) == rel.alias {
				return 0, false // duplicate alias: resolution is ambiguous
			}
		}
	} else {
		for _, other := range sel.From[1:] {
			if other.Subquery != nil {
				return 0, false // unknown columns: could shadow or be ambiguous
			}
			ot, ok := ex.db.tables[other.Name]
			if !ok {
				return 0, false
			}
			if _, dup := ot.colIdx[cr.Column]; dup {
				return 0, false // ambiguous with a joined table's column
			}
		}
	}
	return ci, true
}

// outerConst reports whether e cannot reference any relation or select
// alias of this query level, making it constant for the whole scan.
func (ex *executor) outerConst(e Expr, sel *SelectStmt) bool {
	switch n := e.(type) {
	case *Literal, *ParamExpr:
		return true
	case *ColumnRef:
		if n.Table != "" {
			for _, ref := range sel.From {
				if fromAlias(ref) == n.Table {
					return false
				}
			}
			return true // qualified with an enclosing scope's alias
		}
		for _, ref := range sel.From {
			if ref.Subquery != nil {
				return false
			}
			ot, ok := ex.db.tables[ref.Name]
			if !ok {
				return false
			}
			if _, local := ot.colIdx[n.Column]; local {
				return false
			}
		}
		for _, item := range sel.Items {
			if item.Alias == n.Column {
				return false // select-list alias would shadow the outer name
			}
		}
		return true
	case *UnaryExpr:
		return ex.outerConst(n.E, sel)
	case *BinaryExpr:
		if n.Quant != "" || n.Sub != nil {
			return false
		}
		return ex.outerConst(n.L, sel) && ex.outerConst(n.R, sel)
	case *FuncCall:
		if n.Star || aggregateFuncs[n.Name] {
			return false
		}
		for _, a := range n.Args {
			if !ex.outerConst(a, sel) {
				return false
			}
		}
		return true
	default:
		return false // subqueries, CASE, LIKE, ...: conservatively local
	}
}

// accessPath is one usable way to probe one index: equality on a leading
// prefix of its columns, optionally followed by an IN multi-probe or a range
// on the next column (mutually exclusive, both terminal).
type accessPath struct {
	ix  *tableIndex
	eq  []Value  // probes for ix.cols[:len(eq)]
	in  []Value  // multi-probe members for ix.cols[len(eq)]
	rng *colSarg // optional bounds on ix.cols[len(eq)]
}

// usedCols is the number of leading index columns the path constrains.
func (p accessPath) usedCols() int {
	n := len(p.eq)
	if len(p.in) > 0 || p.rng != nil {
		n++
	}
	return n
}

// coveredCols lists the table column positions the path constrains.
func (p accessPath) coveredCols() []int {
	return p.ix.cols[:p.usedCols()]
}

// describe renders the path for EXPLAIN: eq columns as "col=", an IN
// multi-probe as "col in(n)", the range column as "col range".
func (p accessPath) describe(t *Table) string {
	parts := make([]string, 0, p.usedCols())
	for i := range p.eq {
		parts = append(parts, t.Cols[p.ix.cols[i]].Name+"=")
	}
	switch {
	case len(p.in) > 0:
		parts = append(parts, fmt.Sprintf("%s in(%d)", t.Cols[p.ix.cols[len(p.eq)]].Name, len(p.in)))
	case p.rng != nil:
		parts = append(parts, t.Cols[p.ix.cols[len(p.eq)]].Name+" range")
	}
	return fmt.Sprintf("%s (%s)", p.ix.name, strings.Join(parts, ", "))
}

// buildPaths derives every usable access path from the table's indexes and
// the collected sargs: the longest equality prefix of each index, plus an IN
// multi-probe or a range on the following column when one exists (IN wins —
// it probes exact keys where a range walks between bounds).
func buildPaths(t *Table, set sargSet) []accessPath {
	var out []accessPath
	for _, ix := range t.indexes {
		var eq []Value
		for _, ci := range ix.cols {
			cs := set.byCol[ci]
			if cs == nil || cs.eq == nil {
				break
			}
			eq = append(eq, *cs.eq)
		}
		var in []Value
		var rng *colSarg
		if len(eq) < len(ix.cols) {
			if cs := set.byCol[ix.cols[len(eq)]]; cs != nil {
				switch {
				case len(cs.in) > 0:
					in = cs.in
				case cs.hasRange():
					rng = cs
				}
			}
		}
		if len(eq) == 0 && in == nil && rng == nil {
			continue
		}
		out = append(out, accessPath{ix: ix, eq: eq, in: in, rng: rng})
	}
	return out
}

// pathEstimate estimates the candidate rows one path yields, from the
// index's statistics: an equality prefix divides rows by the prefix NDV, an
// IN list multiplies one deeper prefix's share by its member count, a range
// on the leading column reads the histogram, a range on a later column
// applies a fixed selectivity. Unconstrained trailing columns re-admit the
// index's NULL rows (as pathPositions does). The estimate is clamped to
// [1, rows+nullRows]; ok=false when no statistics have been derived yet.
func pathEstimate(p accessPath) (float64, bool) {
	s := p.ix.stats.Load()
	if s == nil {
		return 0, false
	}
	rows := float64(s.rows)
	est := rows
	k := len(p.eq)
	if k > 0 && s.prefixNDV[k-1] > 0 {
		est = rows / float64(s.prefixNDV[k-1])
	}
	switch {
	case len(p.in) > 0:
		if ndv := s.prefixNDV[k]; ndv > 0 {
			est = float64(len(p.in)) * rows / float64(ndv)
		}
	case p.rng != nil:
		if k == 0 {
			est = s.rangeRows(p.rng.lo, p.rng.hi, p.rng.loStrict, p.rng.hiStrict)
		} else {
			est *= defaultRangeSelectivity
		}
	}
	if p.usedCols() < len(p.ix.cols) {
		est += float64(s.nullRows)
	}
	if est < 1 {
		est = 1
	}
	if max := rows + float64(s.nullRows); est > max {
		est = max
	}
	return est, true
}

// combinedEstimate is the estimated candidate count of a (possibly
// intersected) plan under the independence assumption, for the EXPLAIN
// est_rows note. ok=false when any path lacks statistics.
func combinedEstimate(paths []accessPath, tableRows int) (float64, bool) {
	est := -1.0
	for _, p := range paths {
		e, ok := pathEstimate(p)
		if !ok {
			return 0, false
		}
		if est < 0 {
			est = e
		} else if tableRows > 0 {
			est *= e / float64(tableRows)
		}
	}
	if est < 0 {
		return 0, false
	}
	if est < 1 {
		est = 1
	}
	return est, true
}

// choosePaths picks which candidate paths to execute. With statistics on
// every candidate (and costing enabled) the order is by estimated rows,
// cheapest first, and an extra path joins the intersection only when its
// pruning pays for its lookups; without statistics the structural order
// applies — most constrained columns first, equality beating range,
// covering beating non-covering, narrower indexes beating wider ones, name
// as the deterministic tiebreak — and any path constraining a new column
// joins the intersection. The second result reports whether the chosen plan
// is a covering scan: a single path whose index holds every column the
// statement reads (see coveringRefs) — an intersection already touches
// several indexes, so covering only applies to one-path plans.
func (ex *executor) choosePaths(t *Table, paths []accessPath, coverCols map[int]bool, coverOK bool) ([]accessPath, bool) {
	if len(paths) == 0 {
		return nil, false
	}
	costing := !ex.db.DisableStatsCosting
	type cand struct {
		p      accessPath
		est    float64
		hasEst bool
		cover  bool
	}
	cands := make([]cand, len(paths))
	allEst := costing
	for i, p := range paths {
		c := cand{p: p}
		c.est, c.hasEst = pathEstimate(p)
		if !c.hasEst {
			allEst = false
		}
		if coverOK && costing {
			c.cover = true
			for ci := range coverCols {
				found := false
				for _, ic := range p.ix.cols {
					if ic == ci {
						found = true
						break
					}
				}
				if !found {
					c.cover = false
					break
				}
			}
		}
		cands[i] = c
	}
	structuralLess := func(a, b cand) bool {
		pa, pb := a.p, b.p
		if pa.usedCols() != pb.usedCols() {
			return pa.usedCols() > pb.usedCols()
		}
		if len(pa.eq) != len(pb.eq) {
			return len(pa.eq) > len(pb.eq)
		}
		if a.cover != b.cover {
			return a.cover
		}
		if len(pa.ix.cols) != len(pb.ix.cols) {
			return len(pa.ix.cols) < len(pb.ix.cols)
		}
		return pa.ix.name < pb.ix.name
	}
	sort.Slice(cands, func(i, j int) bool {
		if allEst && cands[i].est != cands[j].est {
			return cands[i].est < cands[j].est
		}
		return structuralLess(cands[i], cands[j])
	})
	tableRows := float64(t.store.Len())
	covered := make(map[int]bool)
	var chosen []cand
	curEst := 0.0
	for _, c := range cands {
		adds := false
		for _, ci := range c.p.coveredCols() {
			if !covered[ci] {
				adds = true
			}
		}
		if !adds {
			continue
		}
		if len(chosen) > 0 && allEst {
			// Intersecting costs ~est lookups and prunes the current
			// candidate set by (1 - est/tableRows) under independence; skip
			// paths whose pruning cannot pay for their lookups.
			sel := 1.0
			if tableRows > 0 {
				sel = c.est / tableRows
			}
			if curEst*(1-sel) <= c.est {
				continue
			}
			curEst *= sel
		} else {
			curEst = c.est
		}
		chosen = append(chosen, c)
		for _, ci := range c.p.coveredCols() {
			covered[ci] = true
		}
	}
	out := make([]accessPath, len(chosen))
	for i, c := range chosen {
		out[i] = c.p
	}
	return out, len(chosen) == 1 && chosen[0].cover
}

// pathPositions computes the candidate row positions of one path. When the
// path leaves trailing index columns unconstrained, rows missing from the
// key structures only because of a NULL in such a column could still match,
// so nullRows join the candidate set (the residual WHERE filters them).
// The result is a superset of the rows the full WHERE keeps.
func pathPositions(p accessPath) []int {
	var pos []int
	switch {
	case len(p.in) > 0:
		// Multi-probe: one lookup per IN member. Members are deduplicated at
		// collection, so the per-member position sets are disjoint.
		probe := make([]Value, len(p.eq)+1)
		copy(probe, p.eq)
		full := len(p.eq)+1 == len(p.ix.cols)
		for _, v := range p.in {
			probe[len(p.eq)] = v
			if full {
				pos = append(pos, p.ix.lookupEqual(probe)...)
			} else {
				pos = append(pos, p.ix.lookupPrefixRange(probe, nil, nil, false, false)...)
			}
		}
	case p.rng == nil && len(p.eq) == len(p.ix.cols):
		pos = p.ix.lookupEqual(p.eq) // shared with the index — read only
	default:
		var lo, hi *Value
		var loS, hiS bool
		if p.rng != nil {
			lo, hi, loS, hiS = p.rng.lo, p.rng.hi, p.rng.loStrict, p.rng.hiStrict
		}
		pos = p.ix.lookupPrefixRange(p.eq, lo, hi, loS, hiS)
	}
	if p.usedCols() < len(p.ix.cols) && len(p.ix.nullRows) > 0 {
		pos = append(append(make([]int, 0, len(pos)+len(p.ix.nullRows)), pos...), p.ix.nullRows...)
	}
	return pos
}

// intersectPositions intersects several candidate sets (each with unique
// members) and returns the result sorted ascending (table order).
func intersectPositions(sets [][]int) []int {
	if len(sets) == 1 {
		out := append([]int(nil), sets[0]...)
		sort.Ints(out)
		return out
	}
	counts := make(map[int]int, len(sets[0]))
	for _, s := range sets {
		for _, p := range s {
			counts[p]++
		}
	}
	var out []int
	for p, n := range counts {
		if n == len(sets) {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// indexScan tries to answer the sargable WHERE conjuncts on the first FROM
// table through its secondary indexes: a single (possibly composite) index
// scan — covering when the index holds every column the statement reads —
// the intersection of several paths' row-id sets, or a union of
// per-disjunct paths for a top-level OR. Prepared statements memoize the
// chosen path template per DB, stamped with (schema version, stats epoch);
// see plancache.go. It returns the filtered rows (a superset of the rows
// the full WHERE will keep — the residual WHERE still runs over every
// returned row) and whether an index was used. See the error-parity
// contract at the top of this file.
func (ex *executor) indexScan(t *Table, rel relation, sel *SelectStmt, parent *scope) ([][]Value, bool, error) {
	if t == nil || len(t.indexes) == 0 {
		return nil, false, nil
	}
	set, ok := ex.collectSargs(t, rel, sel, parent)
	if !ok {
		return nil, false, nil
	}
	if set.empty {
		// A NULL probe is AND-ed into WHERE, so no row can survive whatever
		// the paths; skip path choice but keep the sentinel-row contract.
		planCounts.emptyProbe.Add(1)
		ex.note("scan %s using impossible predicate (NULL probe)", rel.alias)
		ex.notePlan("empty_probe", false, 0, 0)
		return ex.sentinelRows(t)
	}
	db := ex.db
	schemaV, statsE := db.schemaVersion.Load(), db.statsEpoch.Load()
	var paths []accessPath
	covering, cached := false, false
	if cp := db.plans.get(sel); cp != nil {
		if cp.schemaVersion == schemaV && cp.statsEpoch == statsE {
			if ps, ok := cp.instantiate(set); ok && !cp.full {
				paths, covering, cached = ps, cp.covering, true
				planCacheCounts.hits.Add(1)
			}
		} else {
			db.plans.drop(sel)
			planCacheCounts.invalidations.Add(1)
		}
	}
	// Plan-cache hits do no planning work, so only misses time it — the
	// cache-hit hot path pays zero clock reads for the plan event.
	var planDur time.Duration
	if !cached {
		planCacheCounts.misses.Add(1)
		var planStart time.Time
		if ex.span != nil {
			planStart = time.Now()
		}
		built := buildPaths(t, set)
		if len(built) == 0 {
			if !db.DisableStatsCosting {
				// No conjunct is sargable on its own; a top-level OR whose
				// disjuncts all are can still avoid the full scan.
				return ex.orUnionScan(t, rel, sel, parent)
			}
			return nil, false, nil
		}
		var coverCols map[int]bool
		coverOK := false
		if !db.DisableStatsCosting {
			coverCols, coverOK = ex.coveringRefs(sel, t, rel)
		}
		paths, covering = ex.choosePaths(t, built, coverCols, coverOK)
		db.plans.put(sel, planTemplateOf(schemaV, statsE, paths, covering))
		if ex.span != nil {
			planDur = time.Since(planStart)
		}
	}
	// Estimate before ensure: the note must reflect the statistics the plan
	// was chosen under, not the ones this execution's index builds derive.
	suffix := ""
	estRows := int64(-1)
	if !db.DisableStatsCosting {
		if e, ok := combinedEstimate(paths, t.store.Len()); ok {
			estRows = int64(e + 0.5)
			suffix = fmt.Sprintf(" est_rows=%d", estRows)
		}
	}
	if cached {
		suffix += " (cached)"
	}
	sets := make([][]int, len(paths))
	for i, p := range paths {
		if err := p.ix.ensure(t); err != nil {
			return nil, false, err
		}
		if p.ix.nan {
			return nil, false, nil // NaN in an indexed column: only a scan has parity
		}
		sets[i] = pathPositions(p)
	}
	pos := intersectPositions(sets)
	shape := "index_scan"
	switch {
	case covering && len(paths) == 1:
		shape = "covering_scan"
		planCounts.coveringScan.Add(1)
		ex.note("scan %s using covering index %s%s", rel.alias, paths[0].describe(t), suffix)
	case len(paths) == 1:
		planCounts.indexScan.Add(1)
		ex.note("scan %s using index %s%s", rel.alias, paths[0].describe(t), suffix)
	default:
		shape = "index_intersection"
		planCounts.indexIntersect.Add(1)
		descs := make([]string, len(paths))
		for i, p := range paths {
			descs[i] = p.describe(t)
		}
		ex.note("scan %s using index intersection of %s%s", rel.alias, strings.Join(descs, " and "), suffix)
	}
	if ex.span != nil {
		ex.notePlan(shape, cached, estRows, planDur)
	}
	if len(pos) == 0 && t.store.Len() > 0 {
		// Keep one sentinel row: the sargable conjuncts are not TRUE on it,
		// so the residual WHERE drops it — but row-independent errors in
		// other conjuncts still surface (see the error-parity contract).
		pos = []int{0}
	}
	if covering && len(paths) == 1 {
		rows, err := coveringRows(t, paths[0], pos, ex.ptrack)
		if err != nil {
			return nil, false, err
		}
		return rows, true, nil
	}
	rows := make([][]Value, len(pos))
	for i, p := range pos {
		row, err := ex.storeGet(t, p)
		if err != nil {
			return nil, false, err
		}
		rows[i] = row
	}
	return rows, true, nil
}

// sentinelRows implements the empty-plan half of the error-parity contract:
// a non-empty table keeps row 0 (the residual WHERE drops it, but
// row-independent errors in other conjuncts still surface).
func (ex *executor) sentinelRows(t *Table) ([][]Value, bool, error) {
	if t.store.Len() == 0 {
		return [][]Value{}, true, nil
	}
	row, err := ex.storeGet(t, 0)
	if err != nil {
		return nil, false, err
	}
	return [][]Value{row}, true, nil
}

// orUnionScan expands a top-level OR conjunct into a deduplicated union of
// per-disjunct index paths; the full WHERE stays residual over the union,
// so rows admitted by one disjunct's path are still checked against the
// whole predicate. Every disjunct must independently yield a path (a
// disjunct only a full scan can answer makes the union pointless), a NULL
// probe disjunct contributes no rows, and incomparable probes or NaN force
// the full-scan parity fallback. Union plans are re-derived per execution
// rather than cached — the per-disjunct sarg collection is the expensive
// part and it cannot be skipped anyway.
func (ex *executor) orUnionScan(t *Table, rel relation, sel *SelectStmt, parent *scope) ([][]Value, bool, error) {
	var conjs []Expr
	collectConjuncts(sel.Where, &conjs)
	for _, conj := range conjs {
		be, ok := conj.(*BinaryExpr)
		if !ok || be.Op != "OR" {
			continue
		}
		var disjs []Expr
		collectDisjuncts(conj, &disjs)
		var paths []accessPath
		usable := true
		for _, d := range disjs {
			var dc []Expr
			collectConjuncts(d, &dc)
			dset, ok := ex.collectSargsFrom(t, rel, sel, parent, dc)
			if !ok {
				usable = false
				break
			}
			if dset.empty {
				continue // a NULL-probe disjunct can match nothing
			}
			built := buildPaths(t, dset)
			if len(built) == 0 {
				usable = false
				break
			}
			chosen, _ := ex.choosePaths(t, built, nil, false)
			paths = append(paths, chosen[0])
		}
		if !usable {
			continue // another OR conjunct may still be expandable
		}
		seen := make(map[int]bool)
		var pos []int
		for _, p := range paths {
			if err := p.ix.ensure(t); err != nil {
				return nil, false, err
			}
			if p.ix.nan {
				return nil, false, nil
			}
			for _, ri := range pathPositions(p) {
				if !seen[ri] {
					seen[ri] = true
					pos = append(pos, ri)
				}
			}
		}
		sort.Ints(pos)
		if len(paths) == 0 {
			// Every disjunct was a NULL probe: the conjunct is never TRUE.
			planCounts.emptyProbe.Add(1)
			ex.note("scan %s using impossible predicate (NULL probe)", rel.alias)
			ex.notePlan("empty_probe", false, 0, 0)
		} else {
			planCounts.indexUnion.Add(1)
			descs := make([]string, len(paths))
			for i, p := range paths {
				descs[i] = p.describe(t)
			}
			ex.note("scan %s using index union of %s", rel.alias, strings.Join(descs, " and "))
			ex.notePlan("index_union", false, -1, 0)
		}
		if len(pos) == 0 && t.store.Len() > 0 {
			pos = []int{0} // sentinel row, as above
		}
		rows := make([][]Value, len(pos))
		for i, ri := range pos {
			row, err := ex.storeGet(t, ri)
			if err != nil {
				return nil, false, err
			}
			rows[i] = row
		}
		return rows, true, nil
	}
	return nil, false, nil
}

// collectDisjuncts flattens an expression over OR into its disjuncts.
func collectDisjuncts(e Expr, out *[]Expr) {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "OR" {
		collectDisjuncts(be.L, out)
		collectDisjuncts(be.R, out)
		return
	}
	*out = append(*out, e)
}

// coveringRefs gathers the scan-table columns the statement reads, when the
// query shape permits answering from index key tuples alone: one stored
// FROM table, no star projection, and no subquery anywhere in the
// statement's expressions (a subquery's scan reads whatever it likes).
// ok=false means covering can never apply to this statement.
func (ex *executor) coveringRefs(sel *SelectStmt, t *Table, rel relation) (map[int]bool, bool) {
	if len(sel.From) != 1 {
		return nil, false
	}
	refs := make(map[int]bool)
	sub := false
	visit := func(cr *ColumnRef) {
		if cr.Table != "" && cr.Table != rel.alias {
			return // an enclosing scope's relation
		}
		if ci, ok := t.colIdx[cr.Column]; ok {
			refs[ci] = true
		}
		// Unknown names resolve to select aliases, enclosing scopes, or an
		// error — none of which read this table's rows.
	}
	for _, item := range sel.Items {
		if item.Star {
			return nil, false
		}
		walkColumnRefs(item.Expr, visit, &sub)
	}
	walkColumnRefs(sel.Where, visit, &sub)
	for _, g := range sel.GroupBy {
		walkColumnRefs(g, visit, &sub)
	}
	walkColumnRefs(sel.Having, visit, &sub)
	for _, o := range sel.OrderBy {
		walkColumnRefs(o.Expr, visit, &sub)
	}
	if sub {
		return nil, false
	}
	return refs, true
}

// walkColumnRefs visits every ColumnRef under e; *sub is set when a node
// that can execute a subquery (or an unrecognized node) is found, which
// makes covering analysis bail.
func walkColumnRefs(e Expr, visit func(*ColumnRef), sub *bool) {
	switch n := e.(type) {
	case nil:
		return
	case *ColumnRef:
		visit(n)
	case *Literal, *ParamExpr:
	case *UnaryExpr:
		walkColumnRefs(n.E, visit, sub)
	case *BinaryExpr:
		if n.Sub != nil {
			*sub = true
			return
		}
		walkColumnRefs(n.L, visit, sub)
		walkColumnRefs(n.R, visit, sub)
	case *FuncCall:
		for _, a := range n.Args {
			walkColumnRefs(a, visit, sub)
		}
	case *IsNullExpr:
		walkColumnRefs(n.E, visit, sub)
	case *InExpr:
		if n.Sub != nil {
			*sub = true
			return
		}
		walkColumnRefs(n.E, visit, sub)
		for _, item := range n.List {
			walkColumnRefs(item, visit, sub)
		}
	case *BetweenExpr:
		walkColumnRefs(n.E, visit, sub)
		walkColumnRefs(n.Lo, visit, sub)
		walkColumnRefs(n.Hi, visit, sub)
	case *LikeExpr:
		walkColumnRefs(n.E, visit, sub)
		walkColumnRefs(n.Pattern, visit, sub)
	case *CaseExpr:
		walkColumnRefs(n.Operand, visit, sub)
		for _, w := range n.Whens {
			walkColumnRefs(w.Cond, visit, sub)
			walkColumnRefs(w.Then, visit, sub)
		}
		walkColumnRefs(n.Else, visit, sub)
	default:
		*sub = true // ExistsExpr, SubqueryExpr, future node kinds
	}
}

// coveringFullScan answers a statement whose referenced columns all live in
// one index straight from its key structures, when no access path applies
// (including statements with no WHERE at all): the covering analog of the
// full scan. Every position is returned; WHERE, if any, stays residual.
// On paged tables this touches zero row pages.
func (ex *executor) coveringFullScan(t *Table, rel relation, sel *SelectStmt) ([][]Value, bool, error) {
	if t == nil || len(t.indexes) == 0 || ex.db.DisableIndexScan || ex.db.DisableStatsCosting {
		return nil, false, nil
	}
	refs, ok := ex.coveringRefs(sel, t, rel)
	if !ok {
		return nil, false, nil
	}
	var best *tableIndex
	for _, ix := range t.indexes {
		all := true
		for ci := range refs {
			found := false
			for _, ic := range ix.cols {
				if ic == ci {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all && (best == nil || len(ix.cols) < len(best.cols)) {
			best = ix // fewest columns: fewest store.Get fallbacks for NULL rows
		}
	}
	if best == nil {
		return nil, false, nil
	}
	if err := best.ensure(t); err != nil {
		return nil, false, err
	}
	if best.nan {
		return nil, false, nil
	}
	pos := make([]int, t.store.Len())
	for i := range pos {
		pos[i] = i
	}
	rows, err := coveringRows(t, accessPath{ix: best}, pos, ex.ptrack)
	if err != nil {
		return nil, false, err
	}
	planCounts.coveringScan.Add(1)
	ex.note("scan %s using covering index %s", rel.alias, best.name)
	ex.notePlan("covering_scan", false, -1, 0)
	return rows, true, nil
}

// coveringRows synthesizes result rows for the chosen positions straight
// from the index key tuples — no row materialization, so zero page faults
// on paged tables. Columns the index does not cover are never read (the
// covering gate guarantees it) and stay NULL. Rows the key structures
// exclude are the exceptions: a single-column index's NULL rows synthesize
// as all-NULL (the one referenced column IS NULL there), while composite
// NULL rows and the sentinel row materialize through the store.
func coveringRows(t *Table, p accessPath, pos []int, tk *pager.Tracker) ([][]Value, error) {
	ix := p.ix
	tup := make(map[int][]Value, len(pos))
	addRange := func(start, end int) {
		for ki := start; ki < end; ki++ {
			for _, ri := range ix.keyRows[ki] {
				tup[ri] = ix.keys[ki]
			}
		}
	}
	if len(p.in) > 0 {
		probe := make([]Value, len(p.eq)+1)
		copy(probe, p.eq)
		for _, v := range p.in {
			probe[len(p.eq)] = v
			s, e := ix.prefixRange(probe, nil, nil, false, false)
			addRange(s, e)
		}
	} else {
		var lo, hi *Value
		var loS, hiS bool
		if p.rng != nil {
			lo, hi, loS, hiS = p.rng.lo, p.rng.hi, p.rng.loStrict, p.rng.hiStrict
		}
		s, e := ix.prefixRange(p.eq, lo, hi, loS, hiS)
		addRange(s, e)
	}
	nulls := make(map[int]bool, len(ix.nullRows))
	for _, ri := range ix.nullRows {
		nulls[ri] = true
	}
	rows := make([][]Value, len(pos))
	for i, ri := range pos {
		if kt, ok := tup[ri]; ok {
			row := make([]Value, len(t.Cols))
			for j, ci := range ix.cols {
				row[ci] = kt[j]
			}
			rows[i] = row
			continue
		}
		if nulls[ri] && len(ix.cols) == 1 {
			rows[i] = make([]Value, len(t.Cols)) // the zero Value is NULL
			continue
		}
		row, err := storeGetTracked(t, ri, tk)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// collectConjuncts flattens a WHERE tree over AND into its conjuncts.
func collectConjuncts(e Expr, out *[]Expr) {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		collectConjuncts(be.L, out)
		collectConjuncts(be.R, out)
		return
	}
	*out = append(*out, e)
}

// tryTopK streams ORDER BY ... LIMIT straight out of a sorted index instead
// of materializing and sorting the whole table. It applies when the query
// reads one stored table with no grouping/DISTINCT, every ORDER BY key is a
// bare column, all keys share one direction, and some index has the order
// keys as a contiguous column run preceded only by equality-constrained
// columns. Rows whose order key is NULL are not in the index; they are
// emitted from nullRows first (ascending; NULLs sort first) or last
// (descending), which is only well-defined for a single order key — other
// NULL configurations fall back to the general path.
func (ex *executor) tryTopK(sel *SelectStmt, parent *scope) (*Result, bool, error) {
	if ex.db.DisableIndexScan || sel.Limit == nil || len(sel.OrderBy) == 0 {
		return nil, false, nil
	}
	if sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, false, nil
	}
	if len(sel.From) != 1 || sel.From[0].Subquery != nil {
		return nil, false, nil
	}
	var aggs []*FuncCall
	for _, item := range sel.Items {
		collectAggregates(item.Expr, &aggs)
	}
	for _, o := range sel.OrderBy {
		collectAggregates(o.Expr, &aggs)
	}
	if len(aggs) > 0 {
		return nil, false, nil
	}
	t, ok := ex.db.tables[sel.From[0].Name]
	if !ok || len(t.indexes) == 0 {
		return nil, false, nil
	}
	rel := relationOf(t)
	if sel.From[0].Alias != "" {
		rel.alias = sel.From[0].Alias
	}

	// Every ORDER BY key must be a bare column of the table, one direction.
	desc := sel.OrderBy[0].Desc
	orderCols := make([]int, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		if o.Desc != desc {
			return nil, false, nil
		}
		cr, isCol := o.Expr.(*ColumnRef)
		if !isCol || (cr.Table != "" && cr.Table != rel.alias) {
			return nil, false, nil
		}
		ci, ok := t.colIdx[cr.Column]
		if !ok {
			return nil, false, nil
		}
		orderCols[i] = ci
	}

	set, ok := ex.collectSargs(t, rel, sel, parent)
	if !ok || set.empty {
		return nil, false, nil // scan fallback / impossible predicate: general path
	}

	// Find an index whose TRAILING columns are exactly the order run and
	// whose leading columns all carry equality sargs: the equality prefix
	// pins the leading key parts to one value, so key order within the
	// probed range is exactly (order keys, original row position) — the
	// same total order the stable scan sort produces. An order run that
	// stops short of the index's last column would let the unused trailing
	// columns reorder ties, so it never qualifies. Prefer the longest
	// equality prefix (narrowest key range), then creation order.
	var ix *tableIndex
	bestJ := -1
	for _, cand := range t.indexes {
		j := len(cand.cols) - len(orderCols)
		if j < 0 || j <= bestJ {
			continue
		}
		match := true
		for i, oc := range orderCols {
			if cand.cols[j+i] != oc {
				match = false
				break
			}
		}
		for i := 0; match && i < j; i++ {
			cs := set.byCol[cand.cols[i]]
			if cs == nil || cs.eq == nil {
				match = false
			}
		}
		if match {
			ix, bestJ = cand, j
		}
	}
	if ix == nil {
		return nil, false, nil
	}
	j := bestJ

	if err := ix.ensure(t); err != nil {
		return nil, true, err
	}
	if ix.nan {
		return nil, false, nil
	}
	if len(ix.nullRows) > 0 && len(orderCols) > 1 {
		// With several order keys a NULL in a later key interleaves inside
		// each group of the earlier keys; only the general sort reproduces
		// that ordering.
		return nil, false, nil
	}

	off := 0
	if sel.Offset != nil {
		off = int(*sel.Offset)
		if off < 0 {
			return nil, true, fmt.Errorf("sqldb: negative OFFSET")
		}
	}
	lim := int(*sel.Limit)
	if lim < 0 {
		return nil, true, fmt.Errorf("sqldb: negative LIMIT")
	}
	need := off + lim

	eq := make([]Value, j)
	for i := 0; i < j; i++ {
		eq[i] = *set.byCol[ix.cols[i]].eq
	}
	// A range sarg on the first order column narrows the key range further;
	// rows outside it violate that conjunct, so skipping them is safe.
	var lo, hi *Value
	var loS, hiS bool
	if cs := set.byCol[ix.cols[j]]; cs != nil && cs.hasRange() {
		lo, hi, loS, hiS = cs.lo, cs.hi, cs.loStrict, cs.hiStrict
	}
	start, end := ix.prefixRange(eq, lo, hi, loS, hiS)

	aliasExpr := make(map[string]Expr)
	for _, item := range sel.Items {
		if item.Alias != "" && item.Expr != nil {
			aliasExpr[item.Alias] = item.Expr
		}
	}
	rels := []relation{rel}
	mkScope := func(row []Value) *scope {
		sc := newScope(parent)
		sc.push(rel, row)
		sc.aliasExpr = aliasExpr
		sc.aliasBusy = make(map[string]bool)
		return sc
	}

	var columns []string
	var out [][]Value
	processed := 0
	emit := func(ri int) (bool, error) {
		processed++
		row, rerr := ex.storeGet(t, ri)
		if rerr != nil {
			return true, rerr
		}
		sc := mkScope(row)
		if sel.Where != nil {
			v, err := ex.eval(sel.Where, sc)
			if err != nil {
				return true, err
			}
			if !isTrue(v) {
				return false, nil
			}
		}
		vals, names, err := ex.projectRow(sel, rels, sc)
		if err != nil {
			return true, err
		}
		columns = names
		out = append(out, vals)
		return len(out) >= need, nil
	}

	done := need == 0 // LIMIT 0 (without OFFSET) keeps nothing
	var err error
	emitNulls := func() {
		for _, ri := range ix.nullRows {
			if done || err != nil {
				return
			}
			done, err = emit(ri)
		}
	}
	emitKeys := func() {
		if !desc {
			for ki := start; ki < end && !done && err == nil; ki++ {
				for _, ri := range ix.keyRows[ki] {
					if done, err = emit(ri); done || err != nil {
						break
					}
				}
			}
			return
		}
		for ki := end - 1; ki >= start && !done && err == nil; ki-- {
			for _, ri := range ix.keyRows[ki] {
				if done, err = emit(ri); done || err != nil {
					break
				}
			}
		}
	}
	if !done {
		if desc {
			emitKeys()
			emitNulls() // NULL order keys sort last descending
		} else {
			emitNulls() // NULL order keys sort first ascending
			emitKeys()
		}
	}
	if err != nil {
		return nil, true, err
	}
	if processed == 0 && t.store.Len() > 0 {
		// Sentinel evaluation: the scan path runs WHERE (and, on survivors,
		// the projection) over every row even when LIMIT keeps none, so
		// row-independent errors must still surface here.
		if _, serr := emit(0); serr != nil {
			return nil, true, serr
		}
		out = out[:0]
	}

	if off > len(out) {
		off = len(out)
	}
	out = out[off:]
	if out == nil {
		out = [][]Value{} // match the general path's non-nil empty Rows
	}
	if columns == nil {
		if columns, err = ex.staticColumns(sel, rels); err != nil {
			return nil, true, err
		}
	}

	planCounts.topK.Add(1)
	ex.notePlan("top_k", false, -1, 0)
	if ex.trace != nil {
		parts := make([]string, 0, j+len(orderCols))
		for i := 0; i < j; i++ {
			parts = append(parts, t.Cols[ix.cols[i]].Name+"=")
		}
		dir := "asc"
		if desc {
			dir = "desc"
		}
		for _, oc := range orderCols {
			parts = append(parts, t.Cols[oc].Name+" "+dir)
		}
		step := fmt.Sprintf("top-k scan %s using index %s (%s) limit %d", rel.alias, ix.name, strings.Join(parts, ", "), lim)
		if sel.Offset != nil {
			// The query's OFFSET, not the clamped one — matching the
			// general path's note so EXPLAIN text is plan-shape-stable.
			step += fmt.Sprintf(" offset %d", *sel.Offset)
		}
		ex.note("%s", step)
	}
	return &Result{Columns: columns, Rows: out}, true, nil
}
