package sqldb

import (
	"fmt"
	"sync/atomic"
)

// planCounts are process-wide per-plan-shape counters, bumped at every plan
// decision (one bump per scan/join/top-k choice, not per row). The server
// exports them on /debug/vars; tests assert on deltas, not absolutes.
var planCounts struct {
	fullScan       atomic.Uint64
	indexScan      atomic.Uint64
	indexIntersect atomic.Uint64
	emptyProbe     atomic.Uint64
	topK           atomic.Uint64
	indexJoin      atomic.Uint64
	hashJoin       atomic.Uint64
	nestedLoopJoin atomic.Uint64
	coveringScan   atomic.Uint64
	indexUnion     atomic.Uint64
}

// PlanCounters snapshots the per-plan-shape execution counters: how many
// times each access-path and join shape was chosen since process start.
func PlanCounters() map[string]uint64 {
	return map[string]uint64{
		"full_scan":          planCounts.fullScan.Load(),
		"index_scan":         planCounts.indexScan.Load(),
		"index_intersection": planCounts.indexIntersect.Load(),
		"empty_probe":        planCounts.emptyProbe.Load(),
		"top_k":              planCounts.topK.Load(),
		"index_join":         planCounts.indexJoin.Load(),
		"hash_join":          planCounts.hashJoin.Load(),
		"nested_loop_join":   planCounts.nestedLoopJoin.Load(),
		"covering_scan":      planCounts.coveringScan.Load(),
		"index_union":        planCounts.indexUnion.Load(),
	}
}

// planTrace records the plan decisions of one EXPLAIN execution as a tree:
// one node per SELECT level (subqueries nest), one entry per decision, in
// execution order. A subquery that executes many times (a correlated EXISTS
// probes once per outer row) is recorded at its first execution only.
type planTrace struct {
	root  *planNode
	stack []*planNode
	seen  map[*SelectStmt]bool
}

type planNode struct {
	label   string
	entries []planEntry
}

// planEntry is either a step line (text) or a nested subquery node (child).
type planEntry struct {
	text  string
	child *planNode
}

// tracePush opens a node for sel. A SELECT that was already recorded (a
// correlated subquery re-executing per outer row) gets a detached node
// instead: its notes still land somewhere, but nowhere the rendered tree
// can see, so repeat executions never leak steps into their parent.
func (ex *executor) tracePush(sel *SelectStmt) {
	tr := ex.trace
	if tr.seen[sel] {
		tr.stack = append(tr.stack, &planNode{})
		return
	}
	tr.seen[sel] = true
	label := "subquery"
	if tr.root == nil {
		label = "select"
	}
	node := &planNode{label: label}
	if tr.root == nil {
		tr.root = node
	} else {
		top := tr.stack[len(tr.stack)-1]
		top.entries = append(top.entries, planEntry{child: node})
	}
	tr.stack = append(tr.stack, node)
}

func (ex *executor) tracePop() {
	ex.trace.stack = ex.trace.stack[:len(ex.trace.stack)-1]
}

// note records one plan step on the innermost traced SELECT. It is a no-op
// when tracing is off or the current SELECT was already recorded.
func (ex *executor) note(format string, args ...interface{}) {
	if ex.trace == nil || len(ex.trace.stack) == 0 {
		return
	}
	top := ex.trace.stack[len(ex.trace.stack)-1]
	top.entries = append(top.entries, planEntry{text: fmt.Sprintf(format, args...)})
}

// render flattens the trace into indented text lines (two spaces per
// nesting level).
func (tr *planTrace) render() []string {
	var lines []string
	var walk func(n *planNode, depth int)
	walk = func(n *planNode, depth int) {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		lines = append(lines, indent+n.label)
		for _, e := range n.entries {
			if e.child != nil {
				walk(e.child, depth+1)
			} else {
				lines = append(lines, indent+"  "+e.text)
			}
		}
	}
	if tr.root != nil {
		walk(tr.root, 0)
	}
	return lines
}

// explain executes the SELECT with plan tracing enabled, discards the rows,
// and returns the recorded plan — one text line per result row under the
// single column "plan". Because the query really executes, the plan is the
// one the current data shape actually gets (a NaN-poisoned index that falls
// back to a scan shows as the scan it became), and execution errors surface
// exactly as they would without EXPLAIN.
func (ex *executor) explain(sel *SelectStmt) (*Result, error) {
	ex.trace = &planTrace{seen: make(map[*SelectStmt]bool)}
	if _, err := ex.execSelect(sel, nil); err != nil {
		return nil, err
	}
	lines := ex.trace.render()
	rows := make([][]Value, len(lines))
	for i, l := range lines {
		rows[i] = []Value{Text(l)}
	}
	return &Result{Columns: []string{"plan"}, Rows: rows}, nil
}
