package sqldb

import (
	"reflect"
	"strings"
	"testing"
)

// TestCompositeIndexPrefixSuperset pins the planner's NULL-superset rule: a
// row excluded from a composite index only because an UNCONSTRAINED
// trailing column is NULL still matches a prefix-only predicate, so prefix
// scans must fold nullRows back into the candidate set.
func TestCompositeIndexPrefixSuperset(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT, c TEXT)")
	db.MustExec("CREATE INDEX t_ab ON t (a, b)")
	db.MustExec("INSERT INTO t VALUES (1, 2, 'full'), (1, NULL, 'btail'), (NULL, 2, 'ahead'), (2, 2, 'other')")
	res := queryBoth(t, db, "SELECT c FROM t WHERE a = 1")
	if len(res.Rows) != 2 {
		t.Fatalf("a=1 rows = %d, want 2 (row with NULL b must survive the prefix scan)", len(res.Rows))
	}
	got := map[string]bool{}
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		got[s] = true
	}
	if !got["full"] || !got["btail"] {
		t.Fatalf("a=1 rows = %v", got)
	}
	// Fully constrained composite: the NULL rows cannot match and stay out.
	res = queryBoth(t, db, "SELECT c FROM t WHERE a = 1 AND b = 2")
	if len(res.Rows) != 1 {
		t.Fatalf("a=1,b=2 rows = %d, want 1", len(res.Rows))
	}
	// Range on the second key column under an equality prefix.
	queryBoth(t, db, "SELECT c FROM t WHERE a = 1 AND b >= 0")
	queryBoth(t, db, "SELECT c FROM t WHERE a = 1 AND b BETWEEN 0 AND 9")
}

// TestCompositeIndexMaintenance re-runs prefix queries across mutations so
// the lazy composite rebuild is exercised, not just the first build.
func TestCompositeIndexMaintenance(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	db.MustExec("CREATE INDEX t_ab ON t (a, b)")
	db.MustExec("INSERT INTO t VALUES (1, 1), (1, 2), (2, 1)")
	if res := queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2"); res.Rows[0][0].String() != "1" {
		t.Fatalf("count = %s", res.Rows[0][0])
	}
	db.MustExec("INSERT INTO t VALUES (1, 2)")
	if res := queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2"); res.Rows[0][0].String() != "2" {
		t.Fatalf("after insert: count = %s", res.Rows[0][0])
	}
	db.MustExec("UPDATE t SET b = 9 WHERE b = 2")
	if res := queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 9"); res.Rows[0][0].String() != "2" {
		t.Fatalf("after update: count = %s", res.Rows[0][0])
	}
	db.MustExec("DELETE FROM t WHERE a = 1")
	if res := queryBoth(t, db, "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 9"); res.Rows[0][0].String() != "0" {
		t.Fatalf("after delete: count = %s", res.Rows[0][0])
	}
}

// TestTopKNullOrderKeys pins the top-k NULL placement: rows whose order key
// is NULL sort first ascending and last descending, exactly as the stable
// scan sort places them — and the plan really is top-k, not a silent
// fallback.
func TestTopKNullOrderKeys(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (p FLOAT, tag TEXT)")
	db.MustExec("CREATE INDEX t_p ON t (p)")
	db.MustExec("INSERT INTO t VALUES (0.9, 'hi'), (NULL, 'n1'), (0.1, 'lo'), (NULL, 'n2'), (0.5, 'mid')")
	for _, q := range []string{
		"SELECT tag FROM t ORDER BY p LIMIT 3",
		"SELECT tag FROM t ORDER BY p DESC LIMIT 3",
		"SELECT tag FROM t ORDER BY p LIMIT 2 OFFSET 1",
		"SELECT tag FROM t ORDER BY p DESC LIMIT 9",
		"SELECT tag FROM t WHERE p > 0.2 ORDER BY p DESC LIMIT 2",
		"SELECT tag FROM t ORDER BY p LIMIT 0",
	} {
		queryBoth(t, db, q)
		res, err := db.Query("EXPLAIN " + q)
		if err != nil {
			t.Fatal(err)
		}
		if txt := resultPlanText(res); !strings.Contains(txt, "top-k scan t using index t_p") {
			t.Errorf("%s: expected a top-k plan, got:\n%s", q, txt)
		}
	}
	res, err := db.Query("SELECT tag FROM t ORDER BY p LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	var tags []string
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		tags = append(tags, s)
	}
	if !reflect.DeepEqual(tags, []string{"n1", "n2", "lo"}) {
		t.Fatalf("ascending NULLs-first order = %v", tags)
	}
}

// TestTopKStability pins that ties at the LIMIT boundary keep original row
// order, matching the stable scan sort.
func TestTopKStability(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (k INT, seq INT)")
	db.MustExec("CREATE INDEX t_k ON t (k)")
	db.MustExec("INSERT INTO t VALUES (1, 0), (0, 1), (1, 2), (0, 3), (1, 4)")
	res := queryBoth(t, db, "SELECT seq FROM t ORDER BY k DESC LIMIT 2")
	want := [][]Value{{Int(0)}, {Int(2)}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("descending tie order = %v, want %v", res.Rows, want)
	}
}

// TestCompositeIndexDumpRoundTrip ensures composite declarations survive
// Dump/NewFromDump (the persistence wire form joins columns with ",").
func TestCompositeIndexDumpRoundTrip(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
	db.MustExec("CREATE INDEX t_ab ON t (a, b)")
	db.MustExec("CREATE INDEX t_c ON t (c)")
	db.MustExec("INSERT INTO t VALUES (1, 0.5, 'x'), (1, 0.7, 'y')")
	d := db.Dump()
	found := false
	for _, ix := range d.Indexes {
		if ix.Name == "t_ab" {
			found = true
			if ix.Column != "a,b" {
				t.Fatalf("composite dump column = %q, want \"a,b\"", ix.Column)
			}
		}
	}
	if !found {
		t.Fatal("composite index missing from dump")
	}
	db2, err := NewFromDump(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query("EXPLAIN SELECT * FROM t WHERE a = 1 AND b = 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if txt := resultPlanText(res); !strings.Contains(txt, "index t_ab (a=, b=)") {
		t.Fatalf("restored composite index not used:\n%s", txt)
	}
}
