package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDB builds a table of n rows with integer, float and nullable
// columns derived from the seed.
func randomDB(seed int64, n int) *DB {
	rng := rand.New(rand.NewSource(seed))
	db := New()
	db.MustExec("CREATE TABLE t (k INT, v FLOAT, w FLOAT)")
	rows := make([][]Value, n)
	for i := range rows {
		w := Null()
		if rng.Intn(4) != 0 {
			w = Float(math.Round(rng.Float64()*100) / 10)
		}
		rows[i] = []Value{
			Int(int64(rng.Intn(5))),
			Float(math.Round(rng.Float64()*1000) / 10),
			w,
		}
	}
	if err := db.InsertRows("t", rows); err != nil {
		panic(err)
	}
	return db
}

// Property: COUNT(*) equals the inserted row count and survives a WHERE TRUE.
func TestPropertyCountMatchesRows(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 1
		db := randomDB(seed, n)
		res, err := db.Query("SELECT COUNT(*) FROM t")
		if err != nil {
			return false
		}
		c, _ := res.Rows[0][0].AsInt()
		res2, err := db.Query("SELECT COUNT(*) FROM t WHERE TRUE")
		if err != nil {
			return false
		}
		c2, _ := res2.Rows[0][0].AsInt()
		return int(c) == n && c2 == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ORDER BY produces a non-decreasing key sequence (NULLs first),
// and sorting twice is idempotent.
func TestPropertyOrderBySorted(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 2
		db := randomDB(seed, n)
		res, err := db.Query("SELECT w FROM t ORDER BY w")
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			a, b := res.Rows[i-1][0], res.Rows[i][0]
			if a.IsNull() {
				continue // NULLs first: anything may follow
			}
			if b.IsNull() {
				return false // non-null before null ascending is wrong
			}
			c, err := Compare(a, b)
			if err != nil || c > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: LIMIT k returns a prefix of the unlimited ordered result.
func TestPropertyLimitIsPrefix(t *testing.T) {
	f := func(seed int64, sz, limit uint8) bool {
		n := int(sz)%40 + 1
		k := int(limit) % (n + 2)
		db := randomDB(seed, n)
		full, err := db.Query("SELECT k, v FROM t ORDER BY v, k")
		if err != nil {
			return false
		}
		lim, err := db.Query(fmt.Sprintf("SELECT k, v FROM t ORDER BY v, k LIMIT %d", k))
		if err != nil {
			return false
		}
		if len(lim.Rows) != min(k, len(full.Rows)) {
			return false
		}
		for i := range lim.Rows {
			for j := range lim.Rows[i] {
				if lim.Rows[i][j].String() != full.Rows[i][j].String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: GROUP BY partitions rows — group counts sum to the table size
// and the number of groups equals COUNT(DISTINCT key).
func TestPropertyGroupByPartitions(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 1
		db := randomDB(seed, n)
		groups, err := db.Query("SELECT k, COUNT(*) FROM t GROUP BY k")
		if err != nil {
			return false
		}
		var total int64
		for _, row := range groups.Rows {
			c, _ := row[1].AsInt()
			total += c
		}
		distinct, err := db.Query("SELECT COUNT(DISTINCT k) FROM t")
		if err != nil {
			return false
		}
		d, _ := distinct.Rows[0][0].AsInt()
		return int(total) == n && int(d) == len(groups.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SUM/AVG/MIN/MAX computed by SQL agree with Go-side computation
// over the same rows (NULLs skipped).
func TestPropertyAggregatesMatchGo(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 1
		db := randomDB(seed, n)
		rows, err := db.Query("SELECT w FROM t")
		if err != nil {
			return false
		}
		var sum, minV, maxV float64
		count := 0
		for _, r := range rows.Rows {
			if r[0].IsNull() {
				continue
			}
			v, _ := r[0].AsFloat()
			if count == 0 || v < minV {
				minV = v
			}
			if count == 0 || v > maxV {
				maxV = v
			}
			sum += v
			count++
		}
		agg, err := db.Query("SELECT SUM(w), AVG(w), MIN(w), MAX(w), COUNT(w) FROM t")
		if err != nil {
			return false
		}
		row := agg.Rows[0]
		gotCount, _ := row[4].AsInt()
		if int(gotCount) != count {
			return false
		}
		if count == 0 {
			return row[0].IsNull() && row[1].IsNull() && row[2].IsNull() && row[3].IsNull()
		}
		gs, _ := row[0].AsFloat()
		ga, _ := row[1].AsFloat()
		gmin, _ := row[2].AsFloat()
		gmax, _ := row[3].AsFloat()
		return math.Abs(gs-sum) < 1e-9 &&
			math.Abs(ga-sum/float64(count)) < 1e-9 &&
			gmin == minV && gmax == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hash join and nested-loop join agree on arbitrary data.
func TestPropertyJoinStrategiesAgree(t *testing.T) {
	f := func(seed int64, szA, szB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func(disable bool) ([][]Value, error) {
			db := New()
			db.DisableHashJoin = disable
			db.MustExec("CREATE TABLE a (k INT, x FLOAT)")
			db.MustExec("CREATE TABLE b (k INT, y FLOAT)")
			r := rand.New(rand.NewSource(seed + 1))
			aRows := make([][]Value, int(szA)%20+1)
			for i := range aRows {
				aRows[i] = []Value{Int(int64(r.Intn(6))), Float(float64(r.Intn(100)))}
			}
			bRows := make([][]Value, int(szB)%20+1)
			for i := range bRows {
				bRows[i] = []Value{Int(int64(r.Intn(6))), Float(float64(r.Intn(100)))}
			}
			if err := db.InsertRows("a", aRows); err != nil {
				return nil, err
			}
			if err := db.InsertRows("b", bRows); err != nil {
				return nil, err
			}
			res, err := db.Query("SELECT a.k, x, y FROM a INNER JOIN b ON a.k = b.k ORDER BY a.k, x, y")
			if err != nil {
				return nil, err
			}
			return res.Rows, nil
		}
		hash, err1 := build(false)
		loop, err2 := build(true)
		if err1 != nil || err2 != nil || len(hash) != len(loop) {
			return false
		}
		for i := range hash {
			for j := range hash[i] {
				if hash[i][j].String() != loop[i][j].String() {
					return false
				}
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: DISTINCT never returns duplicates and never grows the result.
func TestPropertyDistinct(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 1
		db := randomDB(seed, n)
		all, err := db.Query("SELECT k FROM t")
		if err != nil {
			return false
		}
		dist, err := db.Query("SELECT DISTINCT k FROM t")
		if err != nil {
			return false
		}
		if len(dist.Rows) > len(all.Rows) {
			return false
		}
		seen := map[string]bool{}
		for _, r := range dist.Rows {
			key := r[0].String()
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
