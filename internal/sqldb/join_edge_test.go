package sqldb

import (
	"reflect"
	"strings"
	"testing"
)

// joinEdgeDB builds the leftjoin fixture plus an index on the usual inner
// join column, so the same queries can exercise the index-nested-loop path.
func joinEdgeDB(t *testing.T, emptyInner bool) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE orders (id INT, cust INT, total FLOAT)")
	db.MustExec("CREATE TABLE customers (id INT, name TEXT)")
	if !emptyInner {
		db.MustExec("INSERT INTO customers VALUES (1, 'ann'), (2, 'bob'), (NULL, 'ghost')")
	}
	db.MustExec("INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.5), (12, 3, 9.0), (13, NULL, 1.0)")
	db.MustExec("CREATE INDEX customers_id ON customers (id)")
	return db
}

// runJoinAllPaths executes q under every join strategy — index nested loop
// (index enabled), hash (index disabled), and plain nested loop (both
// disabled) — failing on any divergence, and returns the common result.
func runJoinAllPaths(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	run := func(disableIndex, disableHash bool) *Result {
		db.DisableIndexScan = disableIndex
		db.DisableHashJoin = disableHash
		defer func() { db.DisableIndexScan = false; db.DisableHashJoin = false }()
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s (index=%v hash=%v): %v", q, !disableIndex, !disableHash, err)
		}
		return res
	}
	indexed := run(false, false)
	hashed := run(true, false)
	nested := run(true, true)
	if !reflect.DeepEqual(indexed, hashed) {
		t.Fatalf("%s: index join diverges from hash join:\nindex: %+v\nhash:  %+v", q, indexed, hashed)
	}
	if !reflect.DeepEqual(hashed, nested) {
		t.Fatalf("%s: hash join diverges from nested loop:\nhash:   %+v\nnested: %+v", q, hashed, nested)
	}
	return indexed
}

// assertPlanContains EXPLAINs q and requires the fragment in the plan text,
// so these tests provably exercise the join shape they claim to.
func assertPlanContains(t *testing.T, db *DB, q, fragment string) {
	t.Helper()
	res, err := db.Query("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if txt := resultPlanText(res); !strings.Contains(txt, fragment) {
		t.Fatalf("%s: plan lacks %q:\n%s", q, fragment, txt)
	}
}

func TestJoinNullKeysAllPaths(t *testing.T) {
	db := joinEdgeDB(t, false)
	const inner = `SELECT o.id, c.name FROM orders o INNER JOIN customers c ON o.cust = c.id ORDER BY o.id`
	assertPlanContains(t, db, inner, "index nested loop (customers_id)")
	res := runJoinAllPaths(t, db, inner)
	// NULL never equi-joins from either side: order 13 (NULL cust) and the
	// NULL-id 'ghost' customer must both vanish from the inner join.
	if len(res.Rows) != 2 {
		t.Fatalf("inner join rows = %d, want 2 (NULL keys never match)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if s, _ := row[1].AsText(); s == "ghost" {
			t.Fatal("NULL-keyed inner row matched an outer row")
		}
	}

	const left = `SELECT o.id, c.name FROM orders o LEFT JOIN customers c ON o.cust = c.id ORDER BY o.id`
	res = runJoinAllPaths(t, db, left)
	if len(res.Rows) != 4 {
		t.Fatalf("left join rows = %d, want 4", len(res.Rows))
	}
	// Orders 12 (no such customer) and 13 (NULL key) pad with NULLs.
	if !res.Rows[2][1].IsNull() || !res.Rows[3][1].IsNull() {
		t.Fatalf("unmatched/NULL-keyed outer rows must pad: %v %v", res.Rows[2][1], res.Rows[3][1])
	}
}

func TestJoinEmptyInnerAllPaths(t *testing.T) {
	db := joinEdgeDB(t, true)
	const inner = `SELECT o.id, c.name FROM orders o INNER JOIN customers c ON o.cust = c.id`
	if res := runJoinAllPaths(t, db, inner); len(res.Rows) != 0 {
		t.Fatalf("inner join against empty table rows = %d, want 0", len(res.Rows))
	}
	const left = `SELECT o.id, c.name FROM orders o LEFT JOIN customers c ON o.cust = c.id ORDER BY o.id`
	res := runJoinAllPaths(t, db, left)
	if len(res.Rows) != 4 {
		t.Fatalf("left join against empty table rows = %d, want 4", len(res.Rows))
	}
	for i, row := range res.Rows {
		if !row[1].IsNull() {
			t.Fatalf("row %d: empty inner table must pad every outer row, got %v", i, row[1])
		}
	}
	// The index join must stay chosen even when the inner table is empty.
	assertPlanContains(t, db, left, "index nested loop (customers_id)")
}

// TestIndexJoinKeyFamilyParity pins the subtle contract that the index
// nested-loop join matches exactly what the hash join matches — including
// the hash join's key-family behavior where a BOOL column never matches a
// numeric probe even though Compare would — by running mixed-type join keys
// through every path.
func TestIndexJoinKeyFamilyParity(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE l (k INT)")
	db.MustExec("CREATE TABLE flags (b BOOL, tag TEXT)")
	db.MustExec("INSERT INTO l VALUES (0), (1), (2), (NULL)")
	db.MustExec("INSERT INTO flags VALUES (TRUE, 'yes'), (FALSE, 'no'), (NULL, 'null')")
	db.MustExec("CREATE INDEX flags_b ON flags (b)")
	q := `SELECT l.k, f.tag FROM l LEFT JOIN flags f ON l.k = f.b ORDER BY l.k`
	db.DisableIndexScan = false
	indexed, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.DisableIndexScan = true
	hashed, err := db.Query(q)
	db.DisableIndexScan = false
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(indexed, hashed) {
		t.Fatalf("index join diverges from hash join on BOOL keys:\nindex: %+v\nhash:  %+v", indexed, hashed)
	}
	// Float keys with a stored INT column and vice versa DO match across
	// the numeric family.
	db.MustExec("CREATE TABLE r (k FLOAT)")
	db.MustExec("INSERT INTO r VALUES (1.0), (2.5)")
	db.MustExec("CREATE INDEX r_k ON r (k)")
	res := runJoinAllPaths(t, db, `SELECT l.k, r.k FROM l INNER JOIN r ON l.k = r.k`)
	if len(res.Rows) != 1 {
		t.Fatalf("numeric-family join rows = %d, want 1 (INT 1 = FLOAT 1.0)", len(res.Rows))
	}
}
