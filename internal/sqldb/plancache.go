package sqldb

import (
	"sync"
	"sync/atomic"
)

// The plan cache memoizes access-path selection per prepared statement.
// Entries are keyed by the *SelectStmt node (a prepared statement reuses
// its AST across executions, so the pointer is a stable identity; ad-hoc
// db.Query calls parse fresh nodes and simply miss) and stamped with the
// (schema version, stats epoch) pair they were chosen under. A stale stamp
// counts as an invalidation and forces a re-plan — this is how index DDL
// and stats drift retire plans that reference dropped indexes or outdated
// estimates.
//
// What is cached is the structural template of the plan — which indexes,
// how many equality columns, whether a range/IN probe or covering applies —
// never the probe values: every execution re-derives values from its own
// parameters, so the NULL-probe and incomparable-probe parity fallbacks
// keep working on cache hits. The template itself reflects the first
// execution's estimates (classic parameter sniffing; documented behavior).

// planCacheCap bounds entries per DB so ad-hoc query churn cannot grow the
// map without bound; overflow evicts an arbitrary entry.
const planCacheCap = 512

// planCacheCounts are process-wide hit/miss/invalidation counters, exported
// on /debug/vars as jitd_plan_cache_{hits,misses,invalidations}.
var planCacheCounts struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// PlanCacheCounters snapshots the plan-cache counters since process start.
func PlanCacheCounters() map[string]uint64 {
	return map[string]uint64{
		"hits":          planCacheCounts.hits.Load(),
		"misses":        planCacheCounts.misses.Load(),
		"invalidations": planCacheCounts.invalidations.Load(),
	}
}

// cachedPath is the value-free template of one access path.
type cachedPath struct {
	ix     *tableIndex
	nEq    int
	hasIn  bool
	hasRng bool
}

// cachedPlan is the memoized outcome of one statement level's access-path
// selection against one DB.
type cachedPlan struct {
	schemaVersion uint64
	statsEpoch    uint64
	full          bool // planning found no usable path: go straight to the full scan
	covering      bool
	paths         []cachedPath
}

// instantiate rebuilds concrete access paths from the template and this
// execution's sarg values. ok=false when the sargs no longer carry the
// constraints the template expects (defensive; the caller re-plans).
func (cp *cachedPlan) instantiate(set sargSet) ([]accessPath, bool) {
	if cp.full {
		return nil, true
	}
	paths := make([]accessPath, 0, len(cp.paths))
	for _, t := range cp.paths {
		p := accessPath{ix: t.ix}
		for i := 0; i < t.nEq; i++ {
			cs := set.byCol[t.ix.cols[i]]
			if cs == nil || cs.eq == nil {
				return nil, false
			}
			p.eq = append(p.eq, *cs.eq)
		}
		switch {
		case t.hasIn:
			cs := set.byCol[t.ix.cols[t.nEq]]
			if cs == nil || len(cs.in) == 0 {
				return nil, false
			}
			p.in = cs.in
		case t.hasRng:
			cs := set.byCol[t.ix.cols[t.nEq]]
			if cs == nil || !cs.hasRange() {
				return nil, false
			}
			p.rng = cs
		}
		paths = append(paths, p)
	}
	return paths, true
}

// planTemplateOf strips the chosen paths down to their cacheable template.
func planTemplateOf(schemaV, statsE uint64, paths []accessPath, covering bool) *cachedPlan {
	cp := &cachedPlan{
		schemaVersion: schemaV,
		statsEpoch:    statsE,
		full:          len(paths) == 0,
		covering:      covering,
	}
	for _, p := range paths {
		cp.paths = append(cp.paths, cachedPath{
			ix:     p.ix,
			nEq:    len(p.eq),
			hasIn:  len(p.in) > 0,
			hasRng: p.rng != nil,
		})
	}
	return cp
}

// planCache is the per-DB store. Its own mutex (not the DB lock) guards the
// map: read-locked queries insert entries concurrently.
type planCache struct {
	mu sync.Mutex
	m  map[*SelectStmt]*cachedPlan
}

func (c *planCache) get(sel *SelectStmt) *cachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[sel]
}

func (c *planCache) put(sel *SelectStmt, cp *cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[*SelectStmt]*cachedPlan)
	}
	if len(c.m) >= planCacheCap {
		for k := range c.m { // evict an arbitrary entry
			delete(c.m, k)
			break
		}
	}
	c.m[sel] = cp
}

func (c *planCache) drop(sel *SelectStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, sel)
}
