package sqldb

import (
	"path/filepath"
	"testing"

	"justintime/internal/sqldb/pager"
)

// TestCoveringScanZeroPageFaults is the paged-storage acceptance test for
// covering scans: once the index is built, a query answerable entirely from
// index key tuples must not fault a single page back in — that is the whole
// point of covering. The structural full-row path on the same query faults.
func TestCoveringScanZeroPageFaults(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE candidates (time INT, income FLOAT)")
	rows := make([][]Value, 2000)
	for i := range rows {
		rows[i] = []Value{Int(int64(i % 8)), Float(float64(i))}
	}
	if err := db.InsertRows("candidates", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX candidates_time ON candidates (time)")

	pool := pager.NewPool(4)
	if err := db.PageTable("candidates", pool, filepath.Join(t.TempDir(), "spill.db")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.ClosePagedStores() })

	const q = "SELECT COUNT(*) FROM candidates WHERE time = 3"
	assertPlanContains(t, db, q, "covering index candidates_time (time=)")

	count := func() int64 {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := res.Rows[0][0].AsInt()
		return n
	}
	want := count() // builds the index (faults pages while scanning rows)

	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	m0 := pool.Stats().Misses
	if got := count(); got != want {
		t.Fatalf("covering count = %d, want %d", got, want)
	}
	if faults := pool.Stats().Misses - m0; faults != 0 {
		t.Fatalf("covering scan faulted %d pages on an evicted pool, want 0", faults)
	}

	// Contrast: ablate covering (structural planning still uses the index,
	// but fetches full rows) and the same query must fault pages back in.
	db.DisableStatsCosting = true
	defer func() { db.DisableStatsCosting = false }()
	assertPlanContains(t, db, q, "using index candidates_time (time=)")
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	m0 = pool.Stats().Misses
	if got := count(); got != want {
		t.Fatalf("structural count = %d, want %d", got, want)
	}
	if faults := pool.Stats().Misses - m0; faults == 0 {
		t.Fatal("structural row-fetching scan faulted 0 pages; the covering contrast is vacuous")
	}
}

// TestOrUnionParity: OR-expansion must deduplicate rows matched by both
// disjuncts — planned results must equal the ablated full-scan results.
func TestOrUnionParity(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	rows := [][]Value{
		{Int(1), Int(1)}, // matches both disjuncts: must appear exactly once
		{Int(1), Int(2)},
		{Int(3), Int(1)},
		{Int(3), Int(4)},
		{Null(), Int(1)},
		{Int(1), Null()},
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX t_a ON t (a)")
	db.MustExec("CREATE INDEX t_b ON t (b)")

	const q = "SELECT * FROM t WHERE a = 1 OR b = 1"
	assertPlanContains(t, db, q, "index union of t_a (a=) and t_b (b=)")
	planned, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.DisableIndexScan = true
	scanned, err := db.Query(q)
	db.DisableIndexScan = false
	if err != nil {
		t.Fatal(err)
	}
	if planned.Format() != scanned.Format() {
		t.Fatalf("OR-union and full-scan results differ:\n%s\nvs\n%s", planned.Format(), scanned.Format())
	}
	// (1,1) matches both disjuncts but appears once; (NULL,1) and (1,NULL)
	// each match via their non-NULL side; only (3,4) matches neither.
	if len(planned.Rows) != 5 {
		t.Fatalf("OR-union returned %d rows, want 5 (overlap deduplicated)", len(planned.Rows))
	}
}

// TestInListProbes pins IN-probe edge handling on the index path: duplicate
// members collapse to one probe, NULL members drop out (they can match
// nothing), and an incomparable member forces the full-scan fallback — all
// with full-scan parity.
func TestInListProbes(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	var rows [][]Value
	for i := 0; i < 40; i++ {
		rows = append(rows, []Value{Int(int64(i % 10)), Int(int64(i))})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX t_a ON t (a)")

	parity := func(q string) *Result {
		t.Helper()
		planned, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		db.DisableIndexScan = true
		scanned, err := db.Query(q)
		db.DisableIndexScan = false
		if err != nil {
			t.Fatal(err)
		}
		if planned.Format() != scanned.Format() {
			t.Fatalf("%s: planned and scanned results differ:\n%s\nvs\n%s", q, planned.Format(), scanned.Format())
		}
		return planned
	}

	// Duplicates collapse: 3 literals, 2 distinct probes.
	assertPlanContains(t, db, "SELECT * FROM t WHERE a IN (1, 1, 2)", "t_a (a in(2))")
	if res := parity("SELECT * FROM t WHERE a IN (1, 1, 2)"); len(res.Rows) != 8 {
		t.Fatalf("IN (1,1,2) returned %d rows, want 8", len(res.Rows))
	}
	// NULL members match nothing and are dropped from the probe set.
	if res := parity("SELECT * FROM t WHERE a IN (1, NULL)"); len(res.Rows) != 4 {
		t.Fatalf("IN (1, NULL) returned %d rows, want 4", len(res.Rows))
	}
	if res := parity("SELECT * FROM t WHERE a IN (NULL)"); len(res.Rows) != 0 {
		t.Fatalf("IN (NULL) returned %d rows, want 0", len(res.Rows))
	}
	// An incomparable member (text vs int column) is a type error, and the
	// error must surface identically whether or not the index path is used.
	const bad = "SELECT * FROM t WHERE a IN (1, 'x')"
	_, errPlanned := db.Query(bad)
	db.DisableIndexScan = true
	_, errScanned := db.Query(bad)
	db.DisableIndexScan = false
	if errPlanned == nil || errScanned == nil {
		t.Fatalf("IN (1, 'x') errors: planned=%v scanned=%v, want both non-nil", errPlanned, errScanned)
	}
	if errPlanned.Error() != errScanned.Error() {
		t.Fatalf("IN (1, 'x') error differs by plan: %q vs %q", errPlanned, errScanned)
	}
}
