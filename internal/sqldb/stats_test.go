package sqldb

import (
	"reflect"
	"strings"
	"testing"
)

// statsFixture is a 1000-row table with a skewed low-cardinality column, a
// unique column and a column carrying NULLs — enough shape to exercise NDV
// counting, histogram packing and NULL exclusion.
func statsFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
	rows := make([][]Value, 1000)
	for i := range rows {
		c := Text("x")
		if i%4 == 0 {
			c = Null()
		}
		rows[i] = []Value{Int(int64(i % 10)), Float(float64(i)), c}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX t_a ON t (a)")
	db.MustExec("CREATE INDEX t_a_b ON t (a, b)")
	db.MustExec("CREATE INDEX t_c ON t (c)")
	return db
}

func TestAnalyzeBuildsStats(t *testing.T) {
	db := statsFixture(t)
	if s := db.IndexStats("t", "t_a"); s != nil {
		t.Fatalf("stats exist before any index build or ANALYZE: %+v", s)
	}
	epoch := db.StatsEpoch()
	if _, err := db.Exec("ANALYZE t"); err != nil {
		t.Fatal(err)
	}
	if db.StatsEpoch() <= epoch {
		t.Fatal("ANALYZE did not bump the stats epoch")
	}

	s := db.IndexStats("t", "t_a")
	if s == nil {
		t.Fatal("no stats for t_a after ANALYZE")
	}
	if s.Rows != 1000 || s.NullRows != 0 {
		t.Errorf("t_a rows/nullRows = %d/%d, want 1000/0", s.Rows, s.NullRows)
	}
	if !reflect.DeepEqual(s.PrefixNDV, []int{10}) {
		t.Errorf("t_a prefix NDV = %v, want [10]", s.PrefixNDV)
	}
	// Equi-depth invariants: cumulative counts strictly increase to the row
	// total and bucket uppers strictly increase (runs of one value are never
	// split across buckets, so each upper appears once).
	if len(s.HistCum) == 0 || s.HistCum[len(s.HistCum)-1] != 1000 {
		t.Errorf("t_a histogram does not accumulate to 1000: %v", s.HistCum)
	}
	for i := 1; i < len(s.HistUppers); i++ {
		if c, err := Compare(s.HistUppers[i-1], s.HistUppers[i]); err != nil || c >= 0 {
			t.Errorf("t_a histogram uppers not strictly increasing at %d: %v", i, s.HistUppers)
		}
		if s.HistCum[i] <= s.HistCum[i-1] {
			t.Errorf("t_a histogram cum not strictly increasing at %d: %v", i, s.HistCum)
		}
	}

	if s := db.IndexStats("t", "t_a_b"); !reflect.DeepEqual(s.PrefixNDV, []int{10, 1000}) {
		t.Errorf("t_a_b prefix NDV = %v, want [10 1000]", s.PrefixNDV)
	}
	if s := db.IndexStats("t", "t_c"); s.Rows != 750 || s.NullRows != 250 {
		t.Errorf("t_c rows/nullRows = %d/%d, want 750/250 (NULLs excluded)", s.Rows, s.NullRows)
	}
}

func TestAnalyzeUnknownTable(t *testing.T) {
	db := statsFixture(t)
	if _, err := db.Exec("ANALYZE nope"); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("ANALYZE nope: got %v, want unknown-table error", err)
	}
}

// TestAnalyzeNotLogged pins the WAL contract: ANALYZE mutates no rows and
// must not be replayed on rehydration (the statistics ride the snapshot
// instead), while genuine mutations keep logging.
func TestAnalyzeNotLogged(t *testing.T) {
	db := statsFixture(t)
	log := &recordingLogger{}
	db.SetLogger(log)
	if _, err := db.Exec("ANALYZE t"); err != nil {
		t.Fatal(err)
	}
	if len(log.events) != 0 {
		t.Fatalf("ANALYZE was WAL-logged: %v", log.events)
	}
	if _, err := db.Exec("UPDATE t SET b = b WHERE a = -1"); err != nil {
		t.Fatal(err)
	}
	if len(log.events) != 1 {
		t.Fatalf("UPDATE logged %d records, want 1", len(log.events))
	}
}

// TestStatsDriftBumpsEpoch pins the drift threshold: after ANALYZE of 1000
// rows the threshold is max(32, 1000/5) = 200 mutated rows; 199 mutations
// leave the epoch alone, the 200th bumps it.
func TestStatsDriftBumpsEpoch(t *testing.T) {
	db := statsFixture(t)
	db.MustExec("ANALYZE t")
	epoch := db.StatsEpoch()

	rows := make([][]Value, 199)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Float(0), Null()}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	if got := db.StatsEpoch(); got != epoch {
		t.Fatalf("epoch bumped after 199/200 drifted rows: %d -> %d", epoch, got)
	}
	if err := db.InsertRows("t", [][]Value{{Int(0), Float(0), Null()}}); err != nil {
		t.Fatal(err)
	}
	if got := db.StatsEpoch(); got != epoch+1 {
		t.Fatalf("epoch after crossing the drift threshold = %d, want %d", got, epoch+1)
	}
}

// TestHistogramEquiDepth checks the bucket packer directly: 10 values with
// 100 rows each against a depth of ceil(1000/32)=32 means every run
// overflows its own bucket, one bucket per distinct value.
func TestHistogramEquiDepth(t *testing.T) {
	keys := make([][]Value, 10)
	keyRows := make([][]int, 10)
	for i := range keys {
		keys[i] = []Value{Int(int64(i))}
		keyRows[i] = make([]int, 100)
	}
	s := deriveIndexStats(1, keys, keyRows, 0)
	if s.rows != 1000 || len(s.hist) != 10 {
		t.Fatalf("rows=%d buckets=%d, want 1000 rows in 10 buckets", s.rows, len(s.hist))
	}
	// A strict bound landing exactly on a bucket upper still assumes half
	// the bucket below (the interpolation rule), hence 550, not 500.
	if got := s.rowsBelow(Int(5), false); got != 550 {
		t.Errorf("rowsBelow(5, strict) = %v, want 550", got)
	}
	if got := s.rowsBelow(Int(5), true); got != 600 {
		t.Errorf("rowsBelow(5, inclusive) = %v, want 600", got)
	}
	if got := s.rangeRows(nil, nil, false, false); got != 1000 {
		t.Errorf("unbounded rangeRows = %v, want 1000", got)
	}
}

// TestStatsDumpRoundtrip checks that statistics survive Dump/NewFromDump
// and are usable immediately — restored without triggering index builds.
func TestStatsDumpRoundtrip(t *testing.T) {
	db := statsFixture(t)
	db.MustExec("ANALYZE t")
	d := db.Dump()
	if len(d.Stats) != 3 {
		t.Fatalf("dump carries %d stats records, want 3", len(d.Stats))
	}
	db2, err := NewFromDump(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range []string{"t_a", "t_a_b", "t_c"} {
		want := db.IndexStats("t", ix)
		got := db2.IndexStats("t", ix)
		if got == nil || !reflect.DeepEqual(*got, *want) {
			t.Errorf("restored stats for %s = %+v, want %+v", ix, got, want)
		}
	}
	if db2.StatsEpoch() == 0 {
		t.Error("restore did not bump the stats epoch")
	}
}

// TestRestoreIndexStatsShapeMismatch: a dump whose shape no longer matches
// the index (schema changed since) is refused, not installed.
func TestRestoreIndexStatsShapeMismatch(t *testing.T) {
	db := statsFixture(t)
	if db.RestoreIndexStats(IndexStatsDump{Table: "t", Index: "t_a", Rows: 5, PrefixNDV: []int{5, 5}}) {
		t.Error("mismatched PrefixNDV arity was accepted")
	}
	if db.RestoreIndexStats(IndexStatsDump{Table: "t", Index: "nope", Rows: 5, PrefixNDV: []int{5}}) {
		t.Error("unknown index was accepted")
	}
	if db.RestoreIndexStats(IndexStatsDump{Table: "nope", Index: "t_a", Rows: 5, PrefixNDV: []int{5}}) {
		t.Error("unknown table was accepted")
	}
	if s := db.IndexStats("t", "t_a"); s != nil {
		t.Errorf("refused restore still installed stats: %+v", s)
	}
}
