package sqldb

import (
	"fmt"
	"reflect"
	"testing"
)

func dumpFixtureDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT, score FLOAT, ok BOOL)")
	db.MustExec("INSERT INTO items VALUES (1, 'a', 1.5, TRUE)")
	db.MustExec("INSERT INTO items VALUES (2, NULL, NULL, FALSE)")
	db.MustExec("CREATE TABLE empty (x INT)")
	db.MustExec("CREATE INDEX items_id ON items (id)")
	db.MustExec("CREATE INDEX items_score ON items (score)")
	return db
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := dumpFixtureDB(t)
	d := db.Dump()
	db2, err := NewFromDump(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, db2.Dump()) {
		t.Fatalf("restored dump differs:\n%#v\nvs\n%#v", d, db2.Dump())
	}
	// The restored index declarations must actually serve queries.
	res, err := db2.Query("SELECT name FROM items WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if s, _ := res.Rows[0][0].AsText(); s != "a" {
		t.Fatalf("name = %v", res.Rows[0][0])
	}
}

func TestDumpIsIsolatedFromLaterWrites(t *testing.T) {
	db := dumpFixtureDB(t)
	d := db.Dump()
	// UPDATE mutates rows in place; the dump must not see it.
	db.MustExec("UPDATE items SET score = 99 WHERE id = 1")
	db.MustExec("INSERT INTO items VALUES (3, 'c', 3.0, TRUE)")
	for _, td := range d.Tables {
		if td.Name != "items" {
			continue
		}
		if len(td.Rows) != 2 {
			t.Fatalf("dump rows = %d, want 2", len(td.Rows))
		}
		if f, _ := td.Rows[0][2].AsFloat(); f != 1.5 {
			t.Fatalf("dump saw in-place update: score = %v", td.Rows[0][2])
		}
	}
	// And mutating a restored DB must not affect the origin.
	db2, err := NewFromDump(d)
	if err != nil {
		t.Fatal(err)
	}
	db2.MustExec("UPDATE items SET name = 'z'")
	res, err := db.Query("SELECT name FROM items WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("origin mutated through restored DB: %v", res.Rows[0][0])
	}
}

func TestCheckpointWithExcludesWriters(t *testing.T) {
	db := dumpFixtureDB(t)
	done := make(chan struct{})
	err := db.CheckpointWith(func(d *Dump) error {
		// A concurrent writer must block until fn returns.
		go func() {
			db.MustExec("INSERT INTO items VALUES (9, 'x', 0.0, TRUE)")
			close(done)
		}()
		select {
		case <-done:
			return fmt.Errorf("writer ran during checkpoint")
		default:
		}
		for _, td := range d.Tables {
			if td.Name == "items" && len(td.Rows) != 2 {
				return fmt.Errorf("dump rows = %d, want 2", len(td.Rows))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
}

// recordingLogger captures the hook calls for assertions.
type recordingLogger struct {
	events []string
	fail   bool
}

func (l *recordingLogger) LogExec(sql string, params []Value) error {
	if l.fail {
		return fmt.Errorf("log sink down")
	}
	l.events = append(l.events, fmt.Sprintf("exec:%s/%d", sql, len(params)))
	return nil
}

func (l *recordingLogger) LogInsertRows(table string, rows [][]Value) error {
	if l.fail {
		return fmt.Errorf("log sink down")
	}
	l.events = append(l.events, fmt.Sprintf("insertrows:%s/%d", table, len(rows)))
	return nil
}

func (l *recordingLogger) LogCreateTable(name string, cols []Column) error {
	l.events = append(l.events, fmt.Sprintf("createtable:%s/%d", name, len(cols)))
	return nil
}

func (l *recordingLogger) LogCreateIndex(name, table, column string) error {
	l.events = append(l.events, fmt.Sprintf("createindex:%s:%s.%s", name, table, column))
	return nil
}

func TestMutationLoggerHook(t *testing.T) {
	db := New()
	rl := &recordingLogger{}
	db.SetLogger(rl)

	db.MustExec("CREATE TABLE u (a INT, b TEXT)")
	db.MustExec("INSERT INTO u VALUES (?, ?)", Int(1), Text("x"))
	if err := db.InsertRows("u", [][]Value{{Int(2), Text("y")}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("u_a", "u", "a"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("UPDATE u SET b = 'z' WHERE a = 1")
	db.MustExec("DELETE FROM u WHERE a = 2")

	// Failures that mutate nothing are not logged.
	if _, err := db.Exec("INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := db.Query("SELECT * FROM u"); err != nil {
		t.Fatal(err) // reads never log
	}

	want := []string{
		"exec:CREATE TABLE u (a INT, b TEXT)/0",
		"exec:INSERT INTO u VALUES (?, ?)/2",
		"insertrows:u/1",
		"createindex:u_a:u.a",
		"exec:UPDATE u SET b = 'z' WHERE a = 1/0",
		"exec:DELETE FROM u WHERE a = 2/0",
	}
	if !reflect.DeepEqual(rl.events, want) {
		t.Fatalf("events = %v\nwant %v", rl.events, want)
	}
}

func TestMutationLoggerTypedCreateTable(t *testing.T) {
	db := New()
	rl := &recordingLogger{}
	db.SetLogger(rl)
	if err := db.CreateTable("t", []Column{{Name: "a", Type: IntType}}); err != nil {
		t.Fatal(err)
	}
	want := []string{"createtable:t/1"}
	if !reflect.DeepEqual(rl.events, want) {
		t.Fatalf("events = %v, want %v", rl.events, want)
	}
}

func TestMutationLoggerErrorSurfaces(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE u (a INT)")
	rl := &recordingLogger{fail: true}
	db.SetLogger(rl)
	n, err := db.Exec("INSERT INTO u VALUES (1)")
	if err == nil {
		t.Fatal("logger failure not surfaced")
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1 (mutation stays applied)", n)
	}
	if err := db.InsertRows("u", [][]Value{{Int(2)}}); err == nil {
		t.Fatal("logger failure not surfaced for InsertRows")
	}
	// Both rows are in memory despite the log failures.
	res, qerr := db.Query("SELECT COUNT(*) FROM u")
	if qerr != nil {
		t.Fatal(qerr)
	}
	if c, _ := res.Rows[0][0].AsInt(); c != 2 {
		t.Fatalf("count = %d, want 2", c)
	}
}
