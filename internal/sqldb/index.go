package sqldb

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// tableIndex is a secondary index over one or more columns: a hash table
// from full key tuples to row positions for equality lookups, plus the
// distinct key tuples in lexicographic sorted order for range scans, prefix
// scans and top-k streaming. A row is excluded from the key structures when
// ANY indexed column is NULL (no comparison matches a NULL); the excluded
// rows are remembered in nullRows so prefix scans that constrain only a
// leading subset of the columns can still return a superset of the matching
// rows, and so top-k scans can place NULL order keys first or last.
//
// The index is built lazily: lookups call ensure, which compares the
// version the index was built at against the table's mutation counter and
// rebuilds when stale. Mutations happen only under the DB write lock, so
// during any read-locked query the table version is frozen; the first
// reader to touch a stale index rebuilds it under the index mutex while
// later readers wait, then everyone reads the immutable built state.
type tableIndex struct {
	name string
	cols []int // indexed column positions, most significant first

	mu      sync.Mutex
	built   uint64 // table version the structures below reflect; 0 = never
	hash    map[string][]int
	keys    [][]Value // distinct key tuples, sorted lexicographically by Compare
	keyRows [][]int   // row positions per key, aligned with keys, ascending
	// nullRows are the positions excluded from keys because some indexed
	// column is NULL, in ascending row order.
	nullRows []int
	// nan records that an indexed column holds a NaN: Compare treats NaN as
	// equal to every number, which neither the hash keys nor the sorted
	// order can represent, so the index disables itself and scans keep
	// parity.
	nan bool

	// stats is the distribution snapshot the cost model reads (see
	// stats.go). It is published atomically because readers cost paths
	// before taking ix.mu, and because restored snapshot stats must be
	// readable without triggering a build.
	stats atomic.Pointer[indexStats]
}

// indexKey normalizes a value for hash lookups so that values that compare
// equal share a key across dynamic types (Int 3, Float 3.0 and Bool-as-1
// all probe the same bucket, matching Compare semantics).
func indexKey(v Value) (string, bool) {
	if f, ok := v.AsFloat(); ok {
		if f == 0 {
			f = 0 // -0.0 compares equal to 0.0 but formats as "-0"
		}
		return Float(f).key(), true
	}
	if s, ok := v.AsText(); ok {
		return Text(s).key(), true
	}
	return "", false
}

// compositeKey concatenates per-column keys unambiguously (length-prefixed,
// so a TEXT key containing the separator of another cannot collide).
func compositeKey(parts []string) string {
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(strconv.Itoa(len(p)))
		sb.WriteByte(':')
		sb.WriteString(p)
	}
	return sb.String()
}

// compareKeyTuples orders two key tuples lexicographically. Keys of one
// column share a comparable group (values are coerced to the column type on
// insert), so Compare cannot fail here.
func compareKeyTuples(a, b []Value) int {
	for i := range a {
		c, _ := Compare(a[i], b[i])
		if c != 0 {
			return c
		}
	}
	return 0
}

// ensure (re)builds the index if the table mutated since the last build. It
// can fail only for paged tables (a page fault hitting an I/O error); the
// index is left untouched then and the caller aborts the query.
func (ix *tableIndex) ensure(t *Table) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.built == t.version {
		return nil
	}
	hash := make(map[string][]int)
	var keys [][]Value
	var keyRows [][]int
	var nullRows []int
	nan := false
	pos := make(map[string]int)
	parts := make([]string, len(ix.cols))
	err := t.store.Scan(func(ri int, row []Value) error {
		for i, ci := range ix.cols {
			v := row[ci]
			if v.IsNull() {
				nullRows = append(nullRows, ri)
				return nil
			}
			if f, isNum := v.AsFloat(); isNum && math.IsNaN(f) {
				nan = true
			}
			k, ok := indexKey(v)
			if !ok { // unreachable for non-null values; keep the superset honest
				nullRows = append(nullRows, ri)
				return nil
			}
			parts[i] = k
		}
		k := compositeKey(parts)
		if i, seen := pos[k]; seen {
			keyRows[i] = append(keyRows[i], ri)
		} else {
			tup := make([]Value, len(ix.cols))
			for i, ci := range ix.cols {
				tup[i] = row[ci]
			}
			pos[k] = len(keys)
			keys = append(keys, tup)
			keyRows = append(keyRows, []int{ri})
		}
		return nil
	})
	if err != nil {
		return err
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return compareKeyTuples(keys[order[a]], keys[order[b]]) < 0
	})
	sortedKeys := make([][]Value, len(keys))
	sortedRows := make([][]int, len(keys))
	for i, o := range order {
		sortedKeys[i] = keys[o]
		sortedRows[i] = keyRows[o]
	}
	// pos already maps each composite key to its tuple slot; the row
	// buckets are shared with sortedRows, so no key re-derivation needed.
	for k, i := range pos {
		hash[k] = keyRows[i]
	}
	ix.hash = hash
	ix.keys = sortedKeys
	ix.keyRows = sortedRows
	ix.nullRows = nullRows
	ix.nan = nan
	ix.built = t.version
	// The sorted distinct tuples and their buckets are exactly what the
	// statistics need; derive them here for free. Only the FIRST derivation
	// bumps the stats epoch (plans chosen blind must re-cost); later
	// rebuilds refresh the numbers silently — estimates always read the
	// current stats, and retiring cached plans on bounded drift is the
	// mutation hooks' job (see DB.noteDriftLocked).
	first := ix.stats.Load() == nil
	ix.stats.Store(deriveIndexStats(len(ix.cols), sortedKeys, sortedRows, len(nullRows)))
	if first && t.epochRef != nil {
		t.epochRef.Add(1)
	}
	return nil
}

// lookupEqual returns the positions of rows whose full key tuple equals
// vals (one probe per indexed column). Call ensure first. The returned
// slice is shared with the index — read only. Positions are ascending.
func (ix *tableIndex) lookupEqual(vals []Value) []int {
	parts := make([]string, len(vals))
	for i, v := range vals {
		k, ok := indexKey(v)
		if !ok {
			return nil
		}
		parts[i] = k
	}
	return ix.hash[compositeKey(parts)]
}

// prefixRange returns the half-open key range [start, end) of tuples whose
// leading len(eq) columns equal eq and whose next column, when lo/hi are
// set, lies within the bounds (strict excludes the bound). With empty eq
// and nil bounds this is the whole key space. Call ensure first.
func (ix *tableIndex) prefixRange(eq []Value, lo, hi *Value, loStrict, hiStrict bool) (int, int) {
	m := len(eq)
	start := sort.Search(len(ix.keys), func(i int) bool {
		k := ix.keys[i]
		if c := compareKeyTuples(k[:m], eq); c != 0 {
			return c > 0
		}
		if lo == nil {
			return true
		}
		c, _ := Compare(k[m], *lo)
		if loStrict {
			return c > 0
		}
		return c >= 0
	})
	end := sort.Search(len(ix.keys), func(i int) bool {
		k := ix.keys[i]
		if c := compareKeyTuples(k[:m], eq); c != 0 {
			return c > 0
		}
		if hi == nil {
			return false
		}
		c, _ := Compare(k[m], *hi)
		if hiStrict {
			return c >= 0
		}
		return c > 0
	})
	if end < start {
		end = start
	}
	return start, end
}

// lookupPrefixRange gathers the row positions of every key in the prefix
// range (see prefixRange). The returned slice is freshly allocated; the
// positions are NOT globally sorted (they follow key order).
func (ix *tableIndex) lookupPrefixRange(eq []Value, lo, hi *Value, loStrict, hiStrict bool) []int {
	start, end := ix.prefixRange(eq, lo, hi, loStrict, hiStrict)
	var out []int
	for i := start; i < end; i++ {
		out = append(out, ix.keyRows[i]...)
	}
	return out
}

// comparableWith reports whether probing an indexed column (declared type
// colType) with v has well-defined Compare semantics. When it does not, the
// caller must fall back to a full scan so type errors surface exactly as in
// the unindexed path.
func comparableWith(colType Type, v Value) bool {
	switch colType {
	case IntType, FloatType, BoolType:
		f, ok := v.AsFloat()
		// A NaN probe compares "equal" to every number under Compare;
		// only the scan path reproduces that, so reject it here.
		return ok && !math.IsNaN(f)
	case TextType:
		_, ok := v.AsText()
		return ok
	default:
		return false
	}
}
