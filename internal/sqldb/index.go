package sqldb

import (
	"math"
	"sort"
	"sync"
)

// tableIndex is a secondary index over one column: a hash table from value
// key to row positions for equality lookups, plus the distinct keys in
// sorted order for range scans. NULLs are not indexed (no comparison
// matches them).
//
// The index is built lazily: lookups call ensure, which compares the
// version the index was built at against the table's mutation counter and
// rebuilds when stale. Mutations happen only under the DB write lock, so
// during any read-locked query the table version is frozen; the first
// reader to touch a stale index rebuilds it under the index mutex while
// later readers wait, then everyone reads the immutable built state.
type tableIndex struct {
	name string
	col  int

	mu      sync.Mutex
	built   uint64 // table version the structures below reflect; 0 = never
	hash    map[string][]int
	keys    []Value // distinct non-null keys, sorted by Compare
	keyRows [][]int // row positions per key, aligned with keys
	// nan records that the column holds a NaN: Compare treats NaN as equal
	// to every number, which neither the hash keys nor the sorted order
	// can represent, so the index disables itself and scans keep parity.
	nan bool
}

// indexKey normalizes a value for hash lookups so that values that compare
// equal share a key across dynamic types (Int 3, Float 3.0 and Bool-as-1
// all probe the same bucket, matching Compare semantics).
func indexKey(v Value) (string, bool) {
	if f, ok := v.AsFloat(); ok {
		if f == 0 {
			f = 0 // -0.0 compares equal to 0.0 but formats as "-0"
		}
		return Float(f).key(), true
	}
	if s, ok := v.AsText(); ok {
		return Text(s).key(), true
	}
	return "", false
}

// ensure (re)builds the index if the table mutated since the last build.
func (ix *tableIndex) ensure(t *Table) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.built == t.version {
		return
	}
	hash := make(map[string][]int)
	var keys []Value
	var keyRows [][]int
	nan := false
	pos := make(map[string]int)
	for ri, row := range t.rows {
		v := row[ix.col]
		if v.IsNull() {
			continue
		}
		if f, isNum := v.AsFloat(); isNum && math.IsNaN(f) {
			nan = true
		}
		k, ok := indexKey(v)
		if !ok {
			continue
		}
		if i, seen := pos[k]; seen {
			keyRows[i] = append(keyRows[i], ri)
		} else {
			pos[k] = len(keys)
			keys = append(keys, v)
			keyRows = append(keyRows, []int{ri})
		}
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		// Keys of one column share a comparable group (values are coerced
		// to the column type on insert), so Compare cannot fail here.
		c, _ := Compare(keys[order[a]], keys[order[b]])
		return c < 0
	})
	sortedKeys := make([]Value, len(keys))
	sortedRows := make([][]int, len(keys))
	for i, o := range order {
		sortedKeys[i] = keys[o]
		sortedRows[i] = keyRows[o]
		k, _ := indexKey(keys[o])
		hash[k] = keyRows[o]
	}
	ix.hash = hash
	ix.keys = sortedKeys
	ix.keyRows = sortedRows
	ix.nan = nan
	ix.built = t.version
}

// lookupEqual returns the positions of rows whose key equals v. Call ensure
// first. v must be comparable with the column (see comparableWith).
func (ix *tableIndex) lookupEqual(v Value) []int {
	k, ok := indexKey(v)
	if !ok {
		return nil
	}
	return ix.hash[k]
}

// lookupRange returns the positions of rows whose key lies between lo and
// hi (nil bound = unbounded; strict excludes the bound). Call ensure first.
func (ix *tableIndex) lookupRange(lo, hi *Value, loStrict, hiStrict bool) []int {
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.keys), func(i int) bool {
			c, _ := Compare(ix.keys[i], *lo)
			if loStrict {
				return c > 0
			}
			return c >= 0
		})
	}
	end := len(ix.keys)
	if hi != nil {
		end = sort.Search(len(ix.keys), func(i int) bool {
			c, _ := Compare(ix.keys[i], *hi)
			if hiStrict {
				return c >= 0
			}
			return c > 0
		})
	}
	var out []int
	for i := start; i < end; i++ {
		out = append(out, ix.keyRows[i]...)
	}
	return out
}

// comparableWith reports whether probing the index's column (declared type
// colType) with v has well-defined Compare semantics. When it does not, the
// caller must fall back to a full scan so type errors surface exactly as in
// the unindexed path.
func comparableWith(colType Type, v Value) bool {
	switch colType {
	case IntType, FloatType, BoolType:
		f, ok := v.AsFloat()
		// A NaN probe compares "equal" to every number under Compare;
		// only the scan path reproduces that, so reject it here.
		return ok && !math.IsNaN(f)
	case TextType:
		_, ok := v.AsText()
		return ok
	default:
		return false
	}
}
