package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column is one column of a stored table.
type Column struct {
	Name string
	Type Type
}

// Table is a stored table, optionally carrying secondary indexes. Row
// storage lives behind a RowStore: a plain heap slice by default, or slotted
// pages behind a shared buffer pool after DB.PageTable.
type Table struct {
	Name   string
	Cols   []Column
	colIdx map[string]int
	store  RowStore

	// version counts row mutations (insert/delete/update); secondary
	// indexes compare it against the version they were built at and
	// rebuild lazily when stale.
	version uint64
	indexes []*tableIndex
	// idxCols caches the column positions covered by any index. It is
	// rebuilt under the write lock on index DDL and read immutably by the
	// planner on every scan (correlated subqueries plan once per outer
	// row, so recomputing it there would be a hot-path allocation).
	idxCols map[int]bool

	// statRows/statDrift track stats drift (see DB.noteDriftLocked):
	// statRows is the row count when drift last reset, statDrift the
	// mutated rows since. Both are touched only under the DB write lock.
	statRows  int
	statDrift int
	// epochRef points at the owning DB's stats epoch so a lazy index build
	// (which runs under the read lock) can bump it when fresh statistics
	// appear; set when the table is registered.
	epochRef *atomic.Uint64
}

func newTable(name string, cols []Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqldb: table %q needs at least one column", name)
	}
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("sqldb: table %q has an unnamed column", name)
		}
		if _, dup := idx[c.Name]; dup {
			return nil, fmt.Errorf("sqldb: table %q has duplicate column %q", name, c.Name)
		}
		idx[c.Name] = i
	}
	return &Table{Name: name, Cols: cols, colIdx: idx, store: &sliceStore{}, version: 1}, nil
}

// indexOn returns the table's single-column index over exactly column col,
// if any (the shape index nested-loop joins probe).
func (t *Table) indexOn(col int) *tableIndex {
	for _, ix := range t.indexes {
		if len(ix.cols) == 1 && ix.cols[0] == col {
			return ix
		}
	}
	return nil
}

// indexedCols returns the cached set of column positions covered by any
// index (at any position within a composite key); only sargs on these
// columns can ever contribute to an access path.
func (t *Table) indexedCols() map[int]bool { return t.idxCols }

// rebuildIdxCols refreshes the cache; call under the DB write lock after
// any index DDL.
func (t *Table) rebuildIdxCols() {
	out := make(map[int]bool)
	for _, ix := range t.indexes {
		for _, ci := range ix.cols {
			out[ci] = true
		}
	}
	t.idxCols = out
}

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int { return t.store.Len() }

// columnNames returns the column names in order.
func (t *Table) columnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// DB is an in-memory SQL database.
//
// Concurrency contract: a DB is safe for concurrent use by many goroutines.
// Query and Stmt.Query acquire a shared (read) lock, so any number of
// readers execute concurrently against one database — this is how many
// requests query a single applicant session at once. Exec, Stmt.Exec,
// InsertRows, CreateTable and CreateIndex acquire the exclusive (write)
// lock and serialize against all readers. Secondary indexes rebuild lazily
// on first use after a mutation; the rebuild is internally synchronized and
// safe under concurrent readers. Prepared statements (Prepare) are
// immutable after compilation and may be shared freely across goroutines
// and databases. The knob fields (DisableHashJoin, DisableIndexScan) are
// not synchronized: set them before the database is shared.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// logger, when non-nil, receives every applied mutation under the write
	// lock (see MutationLogger). Attach/detach via SetLogger.
	logger MutationLogger

	// DisableHashJoin forces nested-loop joins; used by the join ablation
	// benchmark. Set before issuing queries.
	DisableHashJoin bool

	// DisableIndexScan forces full scans even where a secondary index
	// could answer a WHERE conjunct; used by the index ablation benchmark
	// and equivalence tests. Set before issuing queries.
	DisableIndexScan bool

	// DisableStatsCosting reverts the planner to PR 4's purely structural
	// behavior: no estimated-rows costing, no covering scans, no
	// stats-driven join-strategy choice. The "v2 vs v3" benchmark knob.
	// Set before issuing queries.
	DisableStatsCosting bool

	// schemaVersion bumps on any DDL (table or index); statsEpoch on any
	// statistics event (see stats.go). Both stamp cached plans.
	schemaVersion atomic.Uint64
	statsEpoch    atomic.Uint64

	// plans memoizes access-path selection per prepared statement (see
	// plancache.go); it has its own mutex because read-locked queries
	// insert entries concurrently.
	plans planCache
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// TableNames returns the sorted names of all tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result is the outcome of a SELECT.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Format renders the result as an aligned text table for CLIs and logs.
func (r *Result) Format() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, s := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			if pad := widths[i] - len(s); pad > 0 && i < len(vals)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// Query parses and executes a SELECT statement. Optional args bind `?`
// placeholders positionally; hot paths should Prepare once and reuse the
// compiled statement instead.
func (db *DB) Query(sql string, args ...Value) (*Result, error) {
	st, err := Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Query(db, args...)
}

// Exec parses and executes a non-SELECT statement, returning the number of
// rows affected (0 for DDL). Optional args bind `?` placeholders.
func (db *DB) Exec(sql string, args ...Value) (int, error) {
	st, err := Prepare(sql)
	if err != nil {
		return 0, err
	}
	return st.Exec(db, args...)
}

// execStatement runs a parsed non-SELECT statement under the already-held
// write lock.
func (db *DB) execStatement(stmt Statement, params []Value) (int, error) {
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return 0, db.execCreate(s)
	case *DropTableStmt:
		return 0, db.execDrop(s)
	case *CreateIndexStmt:
		return 0, db.createIndexLocked(s.Name, s.Table, s.Columns, s.IfNotExists)
	case *DropIndexStmt:
		return 0, db.dropIndexLocked(s.Name, s.IfExists)
	case *InsertStmt:
		return db.execInsert(s, params)
	case *DeleteStmt:
		return db.execDelete(s, params)
	case *UpdateStmt:
		return db.execUpdate(s, params)
	case *AnalyzeStmt:
		return db.execAnalyze(s)
	case *SelectStmt, *ExplainStmt:
		return 0, fmt.Errorf("sqldb: use Query for SELECT statements")
	default:
		return 0, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// MustExec is Exec that panics on error, for tests and fixtures.
func (db *DB) MustExec(sql string, args ...Value) {
	if _, err := db.Exec(sql, args...); err != nil {
		panic(err)
	}
}

// CreateTable registers a table directly against the catalog, bypassing SQL
// parsing. This is the typed fast path session loaders use.
func (db *DB) CreateTable(name string, cols []Column) error {
	t, err := newTable(name, cols)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return fmt.Errorf("sqldb: table %q already exists", name)
	}
	t.epochRef = &db.statsEpoch
	db.tables[name] = t
	db.schemaVersion.Add(1)
	if db.logger != nil {
		if err := db.logger.LogCreateTable(name, cols); err != nil {
			return fmt.Errorf("sqldb: table %q created but not logged: %w", name, err)
		}
	}
	return nil
}

// CreateIndex registers a secondary index named name over one or more
// columns of table (the first column is the most significant key part). The
// index serves equality lookups from a hash table, range and prefix scans
// from sorted key tuples, and top-k streaming in key order; it is built
// lazily on first use and rebuilt after mutations. A comma-joined column
// list is also accepted inside a single string (the persistence layer's
// wire form).
func (db *DB) CreateIndex(name, table string, columns ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.createIndexLocked(name, table, columns, false); err != nil {
		return err
	}
	if db.logger != nil {
		if err := db.logger.LogCreateIndex(name, table, strings.Join(columns, ",")); err != nil {
			return fmt.Errorf("sqldb: index %q created but not logged: %w", name, err)
		}
	}
	return nil
}

func (db *DB) createIndexLocked(name, table string, columns []string, ifNotExists bool) error {
	if name == "" {
		return fmt.Errorf("sqldb: index needs a name")
	}
	// Accept the persistence wire form: column lists joined with ",".
	var cols []string
	for _, c := range columns {
		cols = append(cols, strings.Split(c, ",")...)
	}
	if len(cols) == 0 {
		return fmt.Errorf("sqldb: index %q needs at least one column", name)
	}
	for _, t := range db.tables {
		for _, ix := range t.indexes {
			if ix.name == name {
				if ifNotExists {
					return nil
				}
				return fmt.Errorf("sqldb: index %q already exists", name)
			}
		}
	}
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("sqldb: unknown table %q", table)
	}
	cis := make([]int, len(cols))
	seen := make(map[int]bool, len(cols))
	for i, column := range cols {
		ci, ok := t.colIdx[column]
		if !ok {
			return fmt.Errorf("sqldb: table %q has no column %q", table, column)
		}
		if seen[ci] {
			return fmt.Errorf("sqldb: index %q repeats column %q", name, column)
		}
		seen[ci] = true
		cis[i] = ci
	}
	t.indexes = append(t.indexes, &tableIndex{name: name, cols: cis})
	t.rebuildIdxCols()
	// Index DDL changes the path space: retire every cached plan stamped
	// with the old schema version, and re-cost against the new epoch.
	db.schemaVersion.Add(1)
	db.statsEpoch.Add(1)
	return nil
}

func (db *DB) dropIndexLocked(name string, ifExists bool) error {
	for _, t := range db.tables {
		for i, ix := range t.indexes {
			if ix.name == name {
				t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
				// Both caches must move together: idxCols gates sarg
				// collection, and the version bumps retire any cached plan
				// still holding the dropped *tableIndex.
				t.rebuildIdxCols()
				db.schemaVersion.Add(1)
				db.statsEpoch.Add(1)
				return nil
			}
		}
	}
	if ifExists {
		return nil
	}
	return fmt.Errorf("sqldb: unknown index %q", name)
}

// IndexNames returns the names of the table's secondary indexes, in column
// order of creation.
func (db *DB) IndexNames(table string) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[table]
	if !ok {
		return nil, fmt.Errorf("sqldb: unknown table %q", table)
	}
	out := make([]string, len(t.indexes))
	for i, ix := range t.indexes {
		out[i] = ix.name
	}
	return out, nil
}

// InsertRows bulk-loads pre-built values into a table, bypassing SQL parsing.
// Every row must match the table's arity and coerce to its column types.
// This is the fast path the candidates generator uses.
func (db *DB) InsertRows(table string, rows [][]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("sqldb: unknown table %q", table)
	}
	prepared := make([][]Value, 0, len(rows))
	for ri, row := range rows {
		if len(row) != len(t.Cols) {
			return fmt.Errorf("sqldb: row %d has %d values, table %q has %d columns", ri, len(row), table, len(t.Cols))
		}
		stored := make([]Value, len(row))
		for ci, v := range row {
			cv, err := coerceTo(v, t.Cols[ci].Type)
			if err != nil {
				return fmt.Errorf("sqldb: row %d column %q: %w", ri, t.Cols[ci].Name, err)
			}
			stored[ci] = cv
		}
		prepared = append(prepared, stored)
	}
	if len(prepared) > 0 {
		if err := t.store.Append(prepared); err != nil {
			return err
		}
		t.version++
		db.noteDriftLocked(t, len(prepared))
		if db.logger != nil {
			if err := db.logger.LogInsertRows(table, prepared); err != nil {
				return fmt.Errorf("sqldb: rows inserted but not logged: %w", err)
			}
		}
	}
	return nil
}

func (db *DB) execCreate(s *CreateTableStmt) error {
	if _, exists := db.tables[s.Name]; exists {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: table %q already exists", s.Name)
	}
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Column{Name: c.Name, Type: c.Type}
	}
	t, err := newTable(s.Name, cols)
	if err != nil {
		return err
	}
	t.epochRef = &db.statsEpoch
	db.tables[s.Name] = t
	db.schemaVersion.Add(1)
	return nil
}

func (db *DB) execDrop(s *DropTableStmt) error {
	t, ok := db.tables[s.Name]
	if !ok {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("sqldb: unknown table %q", s.Name)
	}
	delete(db.tables, s.Name)
	db.schemaVersion.Add(1)
	return t.store.Close() // releases page files/frames for paged tables
}

func (db *DB) execInsert(s *InsertStmt, params []Value) (int, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %q", s.Table)
	}
	// Invalidate indexes only when rows were actually appended (partial
	// inserts before an error count; pure failures must not force the
	// next indexed query into a spurious rebuild).
	n0 := t.store.Len()
	defer func() {
		if n := t.store.Len() - n0; n != 0 {
			t.version++
			db.noteDriftLocked(t, n)
		}
	}()
	// Map statement columns to table positions.
	targets := make([]int, 0, len(t.Cols))
	if s.Cols == nil {
		for i := range t.Cols {
			targets = append(targets, i)
		}
	} else {
		for _, name := range s.Cols {
			i, ok := t.colIdx[name]
			if !ok {
				return 0, fmt.Errorf("sqldb: table %q has no column %q", s.Table, name)
			}
			targets = append(targets, i)
		}
	}
	ex := &executor{db: db, params: params}
	if s.Select != nil {
		res, err := ex.execSelect(s.Select, nil)
		if err != nil {
			return 0, err
		}
		inserted := 0
		for _, srcRow := range res.Rows {
			if len(srcRow) != len(targets) {
				return inserted, fmt.Errorf("sqldb: INSERT ... SELECT yields %d columns, want %d", len(srcRow), len(targets))
			}
			row := make([]Value, len(t.Cols))
			for i, v := range srcRow {
				cv, err := coerceTo(v, t.Cols[targets[i]].Type)
				if err != nil {
					return inserted, fmt.Errorf("sqldb: column %q: %w", t.Cols[targets[i]].Name, err)
				}
				row[targets[i]] = cv
			}
			if err := t.store.Append([][]Value{row}); err != nil {
				return inserted, err
			}
			inserted++
		}
		return inserted, nil
	}
	inserted := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(targets) {
			return inserted, fmt.Errorf("sqldb: INSERT expects %d values, got %d", len(targets), len(exprRow))
		}
		row := make([]Value, len(t.Cols)) // unspecified columns default to NULL
		for i, e := range exprRow {
			v, err := ex.eval(e, nil)
			if err != nil {
				return inserted, err
			}
			cv, err := coerceTo(v, t.Cols[targets[i]].Type)
			if err != nil {
				return inserted, fmt.Errorf("sqldb: column %q: %w", t.Cols[targets[i]].Name, err)
			}
			row[targets[i]] = cv
		}
		if err := t.store.Append([][]Value{row}); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

func (db *DB) execDelete(s *DeleteStmt, params []Value) (int, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %q", s.Table)
	}
	ex := &executor{db: db, params: params}
	// Evaluate the whole WHERE pass into a fresh slice before touching the
	// store: an evaluation error mid-scan must leave the table unchanged
	// (compacting in place would duplicate already-shifted rows).
	kept := make([][]Value, 0, t.store.Len())
	deleted := 0
	err := t.store.Scan(func(_ int, row []Value) error {
		keep := true
		if s.Where != nil {
			scope := newScope(nil)
			scope.push(relationOf(t), row)
			v, err := ex.eval(s.Where, scope)
			if err != nil {
				return err
			}
			keep = !isTrue(v)
		} else {
			keep = false
		}
		if keep {
			kept = append(kept, row)
		} else {
			deleted++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if deleted > 0 {
		if err := t.store.ReplaceAll(kept); err != nil {
			return 0, err
		}
		t.version++
		db.noteDriftLocked(t, deleted)
	}
	return deleted, nil
}

func (db *DB) execUpdate(s *UpdateStmt, params []Value) (int, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: unknown table %q", s.Table)
	}
	cols := make([]int, len(s.Cols))
	for i, name := range s.Cols {
		ci, ok := t.colIdx[name]
		if !ok {
			return 0, fmt.Errorf("sqldb: table %q has no column %q", s.Table, name)
		}
		cols[i] = ci
	}
	ex := &executor{db: db, params: params}
	// Two passes: evaluate every row's assignments first, then write. An
	// evaluation or coercion error mid-scan must leave the table unchanged
	// rather than half-updated.
	type pending struct {
		ri   int
		row  []Value
		vals []Value
	}
	var writes []pending
	err := t.store.Scan(func(ri int, row []Value) error {
		scope := newScope(nil)
		scope.push(relationOf(t), row)
		if s.Where != nil {
			v, err := ex.eval(s.Where, scope)
			if err != nil {
				return err
			}
			if !isTrue(v) {
				return nil
			}
		}
		// Evaluate all assignments against the pre-update row.
		newVals := make([]Value, len(cols))
		for i, e := range s.Exprs {
			v, err := ex.eval(e, scope)
			if err != nil {
				return err
			}
			cv, err := coerceTo(v, t.Cols[cols[i]].Type)
			if err != nil {
				return fmt.Errorf("sqldb: column %q: %w", s.Cols[i], err)
			}
			newVals[i] = cv
		}
		writes = append(writes, pending{ri: ri, row: row, vals: newVals})
		return nil
	})
	if err != nil {
		return 0, err
	}
	applied := 0
	var werr error
	for _, w := range writes {
		for i, ci := range cols {
			w.row[ci] = w.vals[i]
		}
		if werr = t.store.Set(w.ri, w.row); werr != nil {
			break // paged I/O failure: report the partial update
		}
		applied++
	}
	if applied > 0 {
		t.version++
		db.noteDriftLocked(t, applied)
	}
	return applied, werr
}
