package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// tuple is one combined row across the FROM relations of a query level.
type tuple [][]Value

// execSelect runs a SELECT with the given parent scope (nil at top level,
// the enclosing row scope for subqueries).
func (ex *executor) execSelect(sel *SelectStmt, parent *scope) (*Result, error) {
	if ex.trace != nil {
		ex.tracePush(sel)
		defer ex.tracePop()
	}

	// Consume the row cap on entry: it bounds only this statement's output.
	// Subqueries (which recurse here) must run uncapped — truncating an IN
	// list or a scalar subquery would change results, not just their size.
	capRows := ex.capRows
	ex.capRows = 0

	// --- Top-k fast path: ORDER BY ... LIMIT streamed from a sorted index.
	if res, ok, err := ex.tryTopK(sel, parent); ok {
		if err == nil && capRows > 0 && len(res.Rows) > capRows {
			res.Rows = res.Rows[:capRows]
		}
		return res, err
	}

	// --- Capped streaming fast path: a simple single-table SELECT under a
	// row cap stops producing as soon as the cap is reached, instead of
	// materializing every matching row and slicing afterwards.
	if capRows > 0 {
		if res, ok, err := ex.trySimpleCapped(sel, parent, capRows); ok {
			return res, err
		}
	}

	// --- FROM: materialize and join row sources.
	rels, tuples, err := ex.execFrom(sel, parent)
	if err != nil {
		return nil, err
	}

	aliasExpr := make(map[string]Expr)
	for _, item := range sel.Items {
		if item.Alias != "" && item.Expr != nil {
			aliasExpr[item.Alias] = item.Expr
		}
	}
	mkScope := func(tp tuple, agg map[*FuncCall]Value) *scope {
		sc := newScope(parent)
		for i, rel := range rels {
			var row []Value
			if tp != nil {
				row = tp[i]
			} else {
				row = make([]Value, len(rel.cols)) // all NULL (empty-group projection)
			}
			sc.push(rel, row)
		}
		sc.aliasExpr = aliasExpr
		sc.aliasBusy = make(map[string]bool)
		sc.aggValues = agg
		return sc
	}

	// --- WHERE.
	if sel.Where != nil {
		kept := tuples[:0]
		for _, tp := range tuples {
			v, err := ex.eval(sel.Where, mkScope(tp, nil))
			if err != nil {
				return nil, err
			}
			if isTrue(v) {
				kept = append(kept, tp)
			}
		}
		tuples = kept
	}

	// --- Grouping.
	var aggs []*FuncCall
	for _, item := range sel.Items {
		collectAggregates(item.Expr, &aggs)
	}
	collectAggregates(sel.Having, &aggs)
	for _, o := range sel.OrderBy {
		collectAggregates(o.Expr, &aggs)
	}
	grouped := len(sel.GroupBy) > 0 || len(aggs) > 0

	type outRow struct {
		vals []Value // projected values
		keys []Value // order-by keys
	}
	var outputs []outRow

	project := func(sc *scope) ([]Value, []string, error) {
		return ex.projectRow(sel, rels, sc)
	}

	orderKeys := func(sc *scope, projected []Value) ([]Value, error) {
		if len(sel.OrderBy) == 0 {
			return nil, nil
		}
		keys := make([]Value, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			// ORDER BY <ordinal> selects a projected column.
			if lit, ok := o.Expr.(*Literal); ok && lit.Val.Type() == IntType {
				idx, _ := lit.Val.AsInt()
				if idx < 1 || int(idx) > len(projected) {
					return nil, fmt.Errorf("sqldb: ORDER BY position %d out of range", idx)
				}
				keys[i] = projected[idx-1]
				continue
			}
			v, err := ex.eval(o.Expr, sc)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		return keys, nil
	}

	var columns []string
	if grouped {
		ex.note("group")
		groups, err := ex.groupTuples(sel, tuples, mkScope)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			agg, err := ex.computeAggregates(aggs, g, mkScope)
			if err != nil {
				return nil, err
			}
			var rep tuple
			if len(g) > 0 {
				rep = g[0]
			}
			sc := mkScope(rep, agg)
			if sel.Having != nil {
				hv, err := ex.eval(sel.Having, sc)
				if err != nil {
					return nil, err
				}
				if !isTrue(hv) {
					continue
				}
			}
			vals, names, err := project(sc)
			if err != nil {
				return nil, err
			}
			columns = names
			keys, err := orderKeys(sc, vals)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, outRow{vals: vals, keys: keys})
		}
	} else {
		if sel.Having != nil {
			return nil, fmt.Errorf("sqldb: HAVING requires aggregation or GROUP BY")
		}
		for _, tp := range tuples {
			sc := mkScope(tp, nil)
			vals, names, err := project(sc)
			if err != nil {
				return nil, err
			}
			columns = names
			keys, err := orderKeys(sc, vals)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, outRow{vals: vals, keys: keys})
		}
	}

	// Column names must be available even with zero rows.
	if columns == nil {
		var err error
		if columns, err = ex.staticColumns(sel, rels); err != nil {
			return nil, err
		}
	}

	// --- DISTINCT.
	if sel.Distinct {
		ex.note("distinct")
		seen := make(map[string]bool, len(outputs))
		kept := outputs[:0]
		for _, o := range outputs {
			var sb strings.Builder
			for _, v := range o.vals {
				sb.WriteString(v.key())
				sb.WriteByte(0)
			}
			k := sb.String()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, o)
			}
		}
		outputs = kept
	}

	// --- ORDER BY (stable; NULLs sort first ascending, last descending).
	if len(sel.OrderBy) > 0 {
		ex.note("sort")
		var sortErr error
		sort.SliceStable(outputs, func(a, b int) bool {
			for i, o := range sel.OrderBy {
				va, vb := outputs[a].keys[i], outputs[b].keys[i]
				c, err := orderCompare(va, vb)
				if err != nil && sortErr == nil {
					sortErr = err
				}
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	// --- LIMIT / OFFSET.
	if sel.Offset != nil {
		off := int(*sel.Offset)
		if off < 0 {
			return nil, fmt.Errorf("sqldb: negative OFFSET")
		}
		ex.note("offset %d", off)
		if off > len(outputs) {
			off = len(outputs)
		}
		outputs = outputs[off:]
	}
	if sel.Limit != nil {
		lim := int(*sel.Limit)
		if lim < 0 {
			return nil, fmt.Errorf("sqldb: negative LIMIT")
		}
		if lim < len(outputs) {
			outputs = outputs[:lim]
		}
		ex.note("limit %d", lim)
	}

	// Shapes too complex to stream (grouping, sorting, joins, ...) run in
	// full; the cap still bounds what the caller receives.
	if capRows > 0 && len(outputs) > capRows {
		outputs = outputs[:capRows]
	}

	res := &Result{Columns: columns, Rows: make([][]Value, len(outputs))}
	for i, o := range outputs {
		res.Rows[i] = o.vals
	}
	return res, nil
}

// trySimpleCapped streams a capped simple SELECT — one stored table, no
// grouping, DISTINCT, ordering, limit, or aggregates — producing at most
// capRows rows and stopping the moment the cap is reached. The WHERE clause
// runs over an index prefilter when the planner finds one (so only matching
// pages fault in on paged storage) and over a streaming store scan otherwise;
// either way, predicate and projection semantics are byte-identical to the
// general pipeline's, which remains the fallback for every other shape.
func (ex *executor) trySimpleCapped(sel *SelectStmt, parent *scope, capRows int) (*Result, bool, error) {
	if len(sel.From) != 1 || sel.From[0].Subquery != nil ||
		len(sel.GroupBy) > 0 || sel.Having != nil || sel.Distinct ||
		len(sel.OrderBy) > 0 || sel.Limit != nil || sel.Offset != nil {
		return nil, false, nil
	}
	var aggs []*FuncCall
	for _, item := range sel.Items {
		collectAggregates(item.Expr, &aggs)
	}
	if len(aggs) > 0 {
		return nil, false, nil
	}
	t, ok := ex.db.tables[sel.From[0].Name]
	if !ok {
		return nil, false, nil // the general path owns the unknown-table error
	}
	rel := relationOf(t)
	if alias := fromAlias(sel.From[0]); alias != "" {
		rel.alias = alias
	}
	rels := []relation{rel}
	aliasExpr := make(map[string]Expr)
	for _, item := range sel.Items {
		if item.Alias != "" && item.Expr != nil {
			aliasExpr[item.Alias] = item.Expr
		}
	}
	mkScope := func(row []Value) *scope {
		sc := newScope(parent)
		sc.push(rel, row)
		sc.aliasExpr = aliasExpr
		sc.aliasBusy = make(map[string]bool)
		return sc
	}

	var columns []string
	out := make([][]Value, 0) // non-nil: Result.Rows is never nil
	emit := func(row []Value) (bool, error) {
		sc := mkScope(row)
		if sel.Where != nil {
			v, err := ex.eval(sel.Where, sc)
			if err != nil {
				return false, err
			}
			if !isTrue(v) {
				return false, nil
			}
		}
		vals, names, err := ex.projectRow(sel, rels, sc)
		if err != nil {
			return false, err
		}
		columns = names
		out = append(out, vals)
		return len(out) >= capRows, nil
	}

	prefiltered := false
	if sel.Where != nil && !ex.db.DisableIndexScan {
		rows, ok, err := ex.indexScan(t, rel, sel, parent)
		if err != nil {
			return nil, true, err
		}
		if ok {
			prefiltered = true
			for _, row := range rows {
				if done, err := emit(row); err != nil {
					return nil, true, err
				} else if done {
					break
				}
			}
		}
	}
	if !prefiltered {
		planCounts.fullScan.Add(1)
		ex.note("scan %s", rel.alias)
		ex.notePlan("full_scan", false, -1, 0)
		err := ex.storeScan(t, func(_ int, row []Value) error {
			done, err := emit(row)
			if err != nil {
				return err
			}
			if done {
				return errCapReached
			}
			return nil
		})
		if err != nil && err != errCapReached {
			return nil, true, err
		}
	}
	if columns == nil {
		var err error
		if columns, err = ex.staticColumns(sel, rels); err != nil {
			return nil, true, err
		}
	}
	return &Result{Columns: columns, Rows: out}, true, nil
}

// errCapReached is the internal scan-stop sentinel of trySimpleCapped; it
// never escapes to callers.
var errCapReached = errors.New("sqldb: row cap reached")

// orderCompare orders values for ORDER BY: NULL sorts before everything;
// otherwise Compare semantics.
func orderCompare(a, b Value) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	return Compare(a, b)
}

func hasRel(rels []relation, alias string) bool {
	for _, r := range rels {
		if r.alias == alias {
			return true
		}
	}
	return false
}

// itemName derives the output column name of a projection item.
func itemName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *ColumnRef:
		return e.Column
	case *FuncCall:
		return strings.ToLower(e.Name)
	case *Literal:
		return e.Val.String()
	default:
		return "expr"
	}
}

// projectRow evaluates the select list against one row scope, returning the
// projected values and output column names. Shared by the general pipeline
// and the top-k streaming path so both produce identical projections.
func (ex *executor) projectRow(sel *SelectStmt, rels []relation, sc *scope) ([]Value, []string, error) {
	var vals []Value
	var names []string
	for _, item := range sel.Items {
		if item.Star {
			for i, rel := range rels {
				if item.StarTable != "" && rel.alias != item.StarTable {
					continue
				}
				vals = append(vals, sc.rows[i]...)
				names = append(names, rel.cols...)
			}
			if item.StarTable != "" && !hasRel(rels, item.StarTable) {
				return nil, nil, fmt.Errorf("sqldb: unknown relation %q in %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		v, err := ex.eval(item.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, v)
		names = append(names, itemName(item))
	}
	return vals, names, nil
}

// staticColumns computes output column names without any rows.
func (ex *executor) staticColumns(sel *SelectStmt, rels []relation) ([]string, error) {
	var names []string
	for _, item := range sel.Items {
		if item.Star {
			found := false
			for _, rel := range rels {
				if item.StarTable != "" && rel.alias != item.StarTable {
					continue
				}
				names = append(names, rel.cols...)
				found = true
			}
			if item.StarTable != "" && !found {
				return nil, fmt.Errorf("sqldb: unknown relation %q in %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		names = append(names, itemName(item))
	}
	return names, nil
}

// execFrom materializes the FROM clause into relations and joined tuples.
// When the first FROM item is a stored table and WHERE conjuncts are
// sargable against its secondary indexes, the table's rows are pre-filtered
// through the planner's chosen access paths (single index scan or index
// intersection) instead of scanned in full; the WHERE clause is still
// evaluated over the survivors, so residual predicates and three-valued
// logic behave exactly as in the scan path.
func (ex *executor) execFrom(sel *SelectStmt, parent *scope) ([]relation, []tuple, error) {
	refs := sel.From
	if len(refs) == 0 {
		// SELECT without FROM: one empty tuple.
		return nil, []tuple{nil}, nil
	}
	var rels []relation
	tuples := []tuple{{}}
	for i, ref := range refs {
		// Stored tables come back with rows == nil: materialization is
		// deferred until a path actually needs every row, so an index scan
		// (or index nested-loop join) touches only the pages its matches
		// live on when the table is on paged storage.
		rel, rows, t, err := ex.sourceRows(ref, parent)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 && ref.Subquery == nil {
			used := false
			if sel.Where != nil && !ex.db.DisableIndexScan {
				filtered, ok, err := ex.indexScan(t, rel, sel, parent)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					rows, used = filtered, true
				}
			}
			if !used {
				// No access path applies (or there is no WHERE at all) — a
				// covering index can still answer the statement from key
				// tuples without materializing a single row.
				filtered, ok, err := ex.coveringFullScan(t, rel, sel)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					rows, used = filtered, true
				}
			}
			if !used {
				planCounts.fullScan.Add(1)
				ex.note("scan %s", rel.alias)
				ex.notePlan("full_scan", false, -1, 0)
				if rows, err = ex.storeAll(t); err != nil {
					return nil, nil, err
				}
			}
		}
		joined, err := ex.join(rels, tuples, rel, rows, t, ref.JoinCond, ref.LeftJoin, parent)
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, rel)
		tuples = joined
	}
	return rels, tuples, nil
}

// fromAlias is the name a FROM item is visible under.
func fromAlias(ref TableRef) string {
	if ref.Alias != "" {
		return ref.Alias
	}
	return ref.Name
}

// sourceRows resolves one FROM item to a relation and, for stored tables,
// the backing *Table (nil for subqueries) so join planning can probe its
// indexes. Stored tables return nil rows — callers materialize via
// t.store.All() only on paths that truly need every row, keeping index
// access paths from faulting the whole table through the buffer pool.
func (ex *executor) sourceRows(ref TableRef, parent *scope) (relation, [][]Value, *Table, error) {
	if ref.Subquery != nil {
		res, err := ex.execSelect(ref.Subquery, parent)
		if err != nil {
			return relation{}, nil, nil, err
		}
		return relationFromResult(ref.Alias, res), res.Rows, nil, nil
	}
	t, ok := ex.db.tables[ref.Name]
	if !ok {
		return relation{}, nil, nil, fmt.Errorf("sqldb: unknown table %q", ref.Name)
	}
	rel := relationOf(t)
	if ref.Alias != "" {
		rel.alias = ref.Alias
	}
	return rel, nil, t, nil
}

// join combines existing tuples with a new relation's rows, applying the
// optional join condition. Simple equi-joins probe a single-column index of
// the inner table with each outer row's key (index nested-loop join) when
// one exists, and fall back to a hash join (unless disabled), then to the
// nested loop. When leftJoin is set, tuples with no matching row are kept
// and padded with a NULL row for the new relation.
func (ex *executor) join(rels []relation, tuples []tuple, rel relation, rows [][]Value, t *Table, cond Expr, leftJoin bool, parent *scope) ([]tuple, error) {
	kind := "join"
	if leftJoin {
		kind = "left join"
	}
	// Stored join sources arrive unmaterialized (rows == nil); the index
	// nested-loop path below never needs them, so materialization waits
	// until the hash join or the generic loop is actually chosen.
	materialize := func() error {
		if rows != nil || t == nil {
			return nil
		}
		var err error
		rows, err = ex.storeAll(t)
		return err
	}
	if cond != nil && len(rels) > 0 {
		if left, right, ok := splitEquiJoin(cond, rels, rel); ok {
			// Index nested-loop: the inner side must be a bare column of a
			// stored table with a single-column index (the inner rows are
			// then exactly the table's stored rows, so index positions
			// address them), and the index must be NaN-free (Compare treats
			// NaN as equal to every number; only the hash/scan paths
			// reproduce that).
			if !ex.db.DisableIndexScan && t != nil {
				if cr, isCol := right.(*ColumnRef); isCol {
					if ci, ok := t.colIdx[cr.Column]; ok {
						// The strategy choice reads the statistics available
						// at plan time (possibly none — then the probe is
						// kept) rather than forcing an index build first.
						if ix := t.indexOn(ci); ix != nil && (ex.db.DisableHashJoin || ex.preferIndexNL(len(tuples), ix)) {
							if err := ix.ensure(t); err != nil {
								return nil, err
							}
							if !ix.nan {
								planCounts.indexJoin.Add(1)
								ex.note("%s %s using index nested loop (%s)", kind, rel.alias, ix.name)
								return ex.indexNestedLoopJoin(rels, tuples, rel, t, ix, left, leftJoin, parent)
							}
						}
					}
				}
			}
			if !ex.db.DisableHashJoin {
				if err := materialize(); err != nil {
					return nil, err
				}
				planCounts.hashJoin.Add(1)
				ex.note("%s %s using hash join", kind, rel.alias)
				return ex.hashJoin(rels, tuples, rel, rows, left, right, leftJoin, parent)
			}
			// Both fast paths unavailable: loop, but match by the same
			// Value.key() families as the hash/index joins so equi-join
			// semantics stay unified across strategies (BOOL never equals
			// numeric, -0.0 != 0.0, NULL never joins).
			if err := materialize(); err != nil {
				return nil, err
			}
			planCounts.nestedLoopJoin.Add(1)
			ex.note("%s %s using nested loop", kind, rel.alias)
			return ex.nestedEquiLoopJoin(rels, tuples, rel, rows, left, right, leftJoin, parent)
		}
	}
	if len(rels) > 0 {
		if cond == nil {
			ex.note("cross join %s", rel.alias)
		} else {
			planCounts.nestedLoopJoin.Add(1)
			ex.note("%s %s using nested loop", kind, rel.alias)
		}
	}
	if err := materialize(); err != nil {
		return nil, err
	}
	var out []tuple
	for _, tp := range tuples {
		matched := false
		for _, r := range rows {
			nt := make(tuple, len(tp)+1)
			copy(nt, tp)
			nt[len(tp)] = r
			if cond != nil {
				sc := newScope(parent)
				for i, lr := range rels {
					sc.push(lr, tp[i])
				}
				sc.push(rel, r)
				v, err := ex.eval(cond, sc)
				if err != nil {
					return nil, err
				}
				if !isTrue(v) {
					continue
				}
			}
			matched = true
			out = append(out, nt)
		}
		if leftJoin && !matched {
			out = append(out, padTuple(tp, rel))
		}
	}
	return out, nil
}

// indexNestedLoopJoin matches each outer tuple against the inner table by
// probing ix (a single-column index on the join column) with the outer join
// key. Match semantics are byte-identical to the hash join's: candidates
// come from the normalized index bucket, then each is verified with the
// same Value.key() equality the hash join groups by (the index normalizes
// BOOL to its numeric key and -0.0 to 0.0, which Value.key() does not — the
// verification keeps the two join paths in exact agreement). NULL keys
// never join on either side.
func (ex *executor) indexNestedLoopJoin(rels []relation, tuples []tuple, rel relation, t *Table, ix *tableIndex, left Expr, leftJoin bool, parent *scope) ([]tuple, error) {
	col := ix.cols[0]
	probe := make([]Value, 1)
	var out []tuple
	for _, tp := range tuples {
		sc := newScope(parent)
		for i, lr := range rels {
			sc.push(lr, tp[i])
		}
		v, err := ex.eval(left, sc)
		if err != nil {
			return nil, err
		}
		matched := false
		if !v.IsNull() {
			probe[0] = v
			pk := v.key()
			for _, ri := range ix.lookupEqual(probe) {
				row, err := ex.storeGet(t, ri)
				if err != nil {
					return nil, err
				}
				if row[col].key() != pk {
					continue
				}
				nt := make(tuple, len(tp)+1)
				copy(nt, tp)
				nt[len(tp)] = row
				out = append(out, nt)
				matched = true
			}
		}
		if leftJoin && !matched {
			out = append(out, padTuple(tp, rel))
		}
	}
	return out, nil
}

// padTuple extends tp with an all-NULL row for rel.
func padTuple(tp tuple, rel relation) tuple {
	nt := make(tuple, len(tp)+1)
	copy(nt, tp)
	nt[len(tp)] = make([]Value, len(rel.cols))
	return nt
}

// preferIndexNL decides index-nested-loop vs hash join for an equi-join:
// with statistics, probing beats building a hash table only while the outer
// tuple count stays within the inner key cardinality (each probe is a hash
// lookup either way; the hash join additionally materializes and hashes the
// whole inner table). Without statistics, or with costing disabled, the
// index probe is kept — the pre-stats structural behavior.
func (ex *executor) preferIndexNL(outer int, ix *tableIndex) bool {
	if ex.db.DisableStatsCosting {
		return true
	}
	s := ix.stats.Load()
	if s == nil || s.rows == 0 || len(s.prefixNDV) == 0 || s.prefixNDV[0] == 0 {
		return true // no stats, or an empty inner side: probing costs nothing
	}
	return outer <= s.prefixNDV[0]
}

// nestedEquiLoopJoin is the equi-join fallback when both the index probe and
// the hash join are unavailable: a plain nested loop that matches by the
// same Value.key() equality the fast paths use. Inner keys are evaluated
// once per row, exactly as the hash join's build pass does, so evaluation
// errors surface identically across strategies.
func (ex *executor) nestedEquiLoopJoin(rels []relation, tuples []tuple, rel relation, rows [][]Value, left, right Expr, leftJoin bool, parent *scope) ([]tuple, error) {
	keys := make([]string, len(rows))
	null := make([]bool, len(rows))
	for ri, r := range rows {
		sc := newScope(parent)
		sc.push(rel, r)
		v, err := ex.eval(right, sc)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			null[ri] = true // NULL never equi-joins
			continue
		}
		keys[ri] = v.key()
	}
	var out []tuple
	for _, tp := range tuples {
		sc := newScope(parent)
		for i, lr := range rels {
			sc.push(lr, tp[i])
		}
		v, err := ex.eval(left, sc)
		if err != nil {
			return nil, err
		}
		matched := false
		if !v.IsNull() {
			lk := v.key()
			for ri, r := range rows {
				if null[ri] || keys[ri] != lk {
					continue
				}
				nt := make(tuple, len(tp)+1)
				copy(nt, tp)
				nt[len(tp)] = r
				out = append(out, nt)
				matched = true
			}
		}
		if leftJoin && !matched {
			out = append(out, padTuple(tp, rel))
		}
	}
	return out, nil
}

// hashJoin builds a hash table over the new relation keyed by the right
// expression and probes it with the left expression over existing tuples.
func (ex *executor) hashJoin(rels []relation, tuples []tuple, rel relation, rows [][]Value, left, right Expr, leftJoin bool, parent *scope) ([]tuple, error) {
	index := make(map[string][]int)
	for ri, r := range rows {
		sc := newScope(parent)
		sc.push(rel, r)
		v, err := ex.eval(right, sc)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue // NULL never equi-joins
		}
		index[v.key()] = append(index[v.key()], ri)
	}
	var out []tuple
	for _, tp := range tuples {
		sc := newScope(parent)
		for i, lr := range rels {
			sc.push(lr, tp[i])
		}
		v, err := ex.eval(left, sc)
		if err != nil {
			return nil, err
		}
		matches := []int(nil)
		if !v.IsNull() {
			matches = index[v.key()]
		}
		if len(matches) == 0 {
			if leftJoin {
				out = append(out, padTuple(tp, rel))
			}
			continue
		}
		for _, ri := range matches {
			nt := make(tuple, len(tp)+1)
			copy(nt, tp)
			nt[len(tp)] = rows[ri]
			out = append(out, nt)
		}
	}
	return out, nil
}

// splitEquiJoin decides whether cond is `leftExpr = rightExpr` with leftExpr
// referencing only the existing relations and rightExpr only the new one
// (either orientation). Expressions containing subqueries or aggregates are
// never split.
func splitEquiJoin(cond Expr, leftRels []relation, rightRel relation) (left, right Expr, ok bool) {
	be, isBin := cond.(*BinaryExpr)
	if !isBin || be.Op != "=" || be.Quant != "" {
		return nil, nil, false
	}
	lSide, lOK := exprSide(be.L, leftRels, rightRel)
	rSide, rOK := exprSide(be.R, leftRels, rightRel)
	if !lOK || !rOK {
		return nil, nil, false
	}
	switch {
	case lSide == "left" && rSide == "right":
		return be.L, be.R, true
	case lSide == "right" && rSide == "left":
		return be.R, be.L, true
	default:
		return nil, nil, false
	}
}

// exprSide classifies which side's relations an expression references:
// "left", "right", or "" (mixed, unresolvable, or contains subqueries).
func exprSide(e Expr, leftRels []relation, rightRel relation) (string, bool) {
	var refs []*ColumnRef
	if !collectColumnRefs(e, &refs) {
		return "", false
	}
	side := ""
	for _, ref := range refs {
		s, ok := refSide(ref, leftRels, rightRel)
		if !ok {
			return "", false
		}
		if side == "" {
			side = s
		} else if side != s {
			return "", false
		}
	}
	if side == "" {
		return "", false // constant expressions are not join keys
	}
	return side, true
}

func refSide(ref *ColumnRef, leftRels []relation, rightRel relation) (string, bool) {
	if ref.Table != "" {
		if rightRel.alias == ref.Table {
			if _, ok := rightRel.colIdx[ref.Column]; ok {
				return "right", true
			}
			return "", false
		}
		for _, lr := range leftRels {
			if lr.alias == ref.Table {
				if _, ok := lr.colIdx[ref.Column]; ok {
					return "left", true
				}
			}
		}
		return "", false // may be a correlated outer reference
	}
	inLeft := false
	for _, lr := range leftRels {
		if _, ok := lr.colIdx[ref.Column]; ok {
			inLeft = true
			break
		}
	}
	_, inRight := rightRel.colIdx[ref.Column]
	switch {
	case inLeft && !inRight:
		return "left", true
	case inRight && !inLeft:
		return "right", true
	default:
		return "", false
	}
}

// collectColumnRefs gathers all column references of a subquery-free,
// aggregate-free expression; it returns false when the expression contains a
// construct that disqualifies hash-join splitting.
func collectColumnRefs(e Expr, out *[]*ColumnRef) bool {
	switch n := e.(type) {
	case nil:
		return true
	case *Literal, *ParamExpr:
		return true
	case *ColumnRef:
		*out = append(*out, n)
		return true
	case *BinaryExpr:
		if n.Sub != nil {
			return false
		}
		return collectColumnRefs(n.L, out) && collectColumnRefs(n.R, out)
	case *UnaryExpr:
		return collectColumnRefs(n.E, out)
	case *FuncCall:
		if aggregateFuncs[n.Name] {
			return false
		}
		for _, a := range n.Args {
			if !collectColumnRefs(a, out) {
				return false
			}
		}
		return true
	case *IsNullExpr:
		return collectColumnRefs(n.E, out)
	case *BetweenExpr:
		return collectColumnRefs(n.E, out) && collectColumnRefs(n.Lo, out) && collectColumnRefs(n.Hi, out)
	case *LikeExpr:
		return collectColumnRefs(n.E, out) && collectColumnRefs(n.Pattern, out)
	case *CaseExpr:
		if n.Operand != nil && !collectColumnRefs(n.Operand, out) {
			return false
		}
		for _, w := range n.Whens {
			if !collectColumnRefs(w.Cond, out) || !collectColumnRefs(w.Then, out) {
				return false
			}
		}
		if n.Else != nil {
			return collectColumnRefs(n.Else, out)
		}
		return true
	default:
		return false // subqueries, EXISTS, IN
	}
}

// collectAggregates appends every aggregate FuncCall node in e to out,
// without descending into subqueries (their aggregates belong to the inner
// query).
func collectAggregates(e Expr, out *[]*FuncCall) {
	switch n := e.(type) {
	case nil:
	case *Literal, *ColumnRef, *ExistsExpr, *SubqueryExpr:
	case *BinaryExpr:
		collectAggregates(n.L, out)
		collectAggregates(n.R, out)
	case *UnaryExpr:
		collectAggregates(n.E, out)
	case *FuncCall:
		if aggregateFuncs[n.Name] {
			*out = append(*out, n)
			return
		}
		for _, a := range n.Args {
			collectAggregates(a, out)
		}
	case *IsNullExpr:
		collectAggregates(n.E, out)
	case *InExpr:
		collectAggregates(n.E, out)
		for _, le := range n.List {
			collectAggregates(le, out)
		}
	case *BetweenExpr:
		collectAggregates(n.E, out)
		collectAggregates(n.Lo, out)
		collectAggregates(n.Hi, out)
	case *LikeExpr:
		collectAggregates(n.E, out)
		collectAggregates(n.Pattern, out)
	case *CaseExpr:
		collectAggregates(n.Operand, out)
		for _, w := range n.Whens {
			collectAggregates(w.Cond, out)
			collectAggregates(w.Then, out)
		}
		collectAggregates(n.Else, out)
	}
}

// groupTuples partitions tuples by the GROUP BY expressions (one group of
// all tuples when none), preserving first-seen order. A query with
// aggregates but no GROUP BY and no rows still produces one empty group.
func (ex *executor) groupTuples(sel *SelectStmt, tuples []tuple, mkScope func(tuple, map[*FuncCall]Value) *scope) ([][]tuple, error) {
	if len(sel.GroupBy) == 0 {
		return [][]tuple{tuples}, nil
	}
	index := make(map[string]int)
	var groups [][]tuple
	for _, tp := range tuples {
		sc := mkScope(tp, nil)
		var sb strings.Builder
		for _, ge := range sel.GroupBy {
			v, err := ex.eval(ge, sc)
			if err != nil {
				return nil, err
			}
			sb.WriteString(v.key())
			sb.WriteByte(0)
		}
		k := sb.String()
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], tp)
	}
	return groups, nil
}

// computeAggregates evaluates each aggregate call over the group's tuples.
func (ex *executor) computeAggregates(aggs []*FuncCall, group []tuple, mkScope func(tuple, map[*FuncCall]Value) *scope) (map[*FuncCall]Value, error) {
	out := make(map[*FuncCall]Value, len(aggs))
	for _, agg := range aggs {
		if _, done := out[agg]; done {
			continue
		}
		v, err := ex.computeAggregate(agg, group, mkScope)
		if err != nil {
			return nil, err
		}
		out[agg] = v
	}
	return out, nil
}

func (ex *executor) computeAggregate(agg *FuncCall, group []tuple, mkScope func(tuple, map[*FuncCall]Value) *scope) (Value, error) {
	if agg.Star {
		if agg.Name != "COUNT" {
			return Value{}, fmt.Errorf("sqldb: %s(*) is not valid", agg.Name)
		}
		return Int(int64(len(group))), nil
	}
	if len(agg.Args) != 1 {
		return Value{}, fmt.Errorf("sqldb: %s takes exactly one argument", agg.Name)
	}
	var vals []Value
	seen := make(map[string]bool)
	for _, tp := range group {
		v, err := ex.eval(agg.Args[0], mkScope(tp, nil))
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if agg.Distinct {
			k := v.key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch agg.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		allInt := true
		var sum float64
		var isum int64
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return Value{}, fmt.Errorf("sqldb: %s over non-numeric value %s", agg.Name, v)
			}
			sum += f
			if v.Type() == IntType {
				i, _ := v.AsInt()
				isum += i
			} else {
				allInt = false
			}
		}
		if agg.Name == "AVG" {
			return Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return Int(isum), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := Compare(v, best)
			if err != nil {
				return Value{}, err
			}
			if (agg.Name == "MIN" && c < 0) || (agg.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Value{}, fmt.Errorf("sqldb: unknown aggregate %s", agg.Name)
	}
}
