package sqldb

// MutationLogger receives every mutation applied to a DB, in apply order.
// It is the hook a write-ahead log attaches to: each method is invoked under
// the database's exclusive write lock, immediately after the mutation has
// been applied in memory, so the log sequence is exactly the serialization
// order of the writes and a replay of the sequence against the pre-log state
// reproduces the database.
//
// LogExec is also invoked for a statement that failed after partially
// applying (an INSERT appending some rows before an evaluation error):
// execution is deterministic, so replaying the statement reproduces the
// identical partial effect. Statements that failed without mutating anything
// are not logged.
//
// A logger error is returned to the caller of the mutating operation wrapped
// in the operation's error — the in-memory mutation stays applied, but the
// caller learns durability was not achieved.
type MutationLogger interface {
	// LogExec records a mutating SQL statement with its bound parameters.
	LogExec(sql string, params []Value) error
	// LogInsertRows records a typed bulk load into table.
	LogInsertRows(table string, rows [][]Value) error
	// LogCreateTable records a typed table creation.
	LogCreateTable(name string, cols []Column) error
	// LogCreateIndex records a typed index creation. column carries the
	// indexed column names joined with "," for composite indexes (the form
	// DB.CreateIndex accepts back on replay), keeping the WAL record layout
	// identical to the single-column era.
	LogCreateIndex(name, table, column string) error
}

// SetLogger attaches (or, with nil, detaches) the mutation logger. The swap
// happens under the write lock, so it serializes against in-flight mutations:
// every mutation is logged to exactly one of the old or new logger.
func (db *DB) SetLogger(l MutationLogger) {
	db.mu.Lock()
	db.logger = l
	db.mu.Unlock()
}
