package sqldb

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name        string
	Cols        []ColumnDef
	IfNotExists bool
}

// ColumnDef declares one column.
type ColumnDef struct {
	Name string
	Type Type
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...) or
// INSERT INTO name [(cols)] SELECT ....
type InsertStmt struct {
	Table  string
	Cols   []string // nil means all columns in table order
	Rows   [][]Expr
	Select *SelectStmt // non-nil for INSERT ... SELECT
}

// DeleteStmt is DELETE FROM name [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// UpdateStmt is UPDATE name SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// CreateIndexStmt is CREATE INDEX [IF NOT EXISTS] name ON table (col, ...).
type CreateIndexStmt struct {
	Name        string
	Table       string
	Columns     []string // most significant key part first
	IfNotExists bool
}

// DropIndexStmt is DROP INDEX [IF EXISTS] name.
type DropIndexStmt struct {
	Name     string
	IfExists bool
}

// ExplainStmt is EXPLAIN SELECT ...: it executes the SELECT against the
// current database state, discards the rows, and returns the plan the
// executor actually chose as one text line per row.
type ExplainStmt struct {
	Sel *SelectStmt
}

// SelectStmt is a full SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // joined left-to-right; Join conditions attach to the right table
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

// SelectItem is one projection item.
type SelectItem struct {
	Star      bool   // SELECT * or tbl.*
	StarTable string // non-empty for tbl.*
	Expr      Expr
	Alias     string
}

// TableRef is a table (or subquery) in FROM, optionally join-conditioned.
type TableRef struct {
	Name     string
	Subquery *SelectStmt // non-nil for (SELECT ...) AS alias
	Alias    string
	JoinCond Expr // nil for the first table or comma-joined tables
	LeftJoin bool // LEFT [OUTER] JOIN: unmatched left tuples pad with NULLs
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DropTableStmt) stmt()   {}
func (*CreateIndexStmt) stmt() {}
func (*DropIndexStmt) stmt()   {}
func (*SelectStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
func (*AnalyzeStmt) stmt()     {}

// AnalyzeStmt is `ANALYZE [table]`: eagerly rebuild the statistics of one
// table's indexes, or of every table when none is named. It mutates no rows.
type AnalyzeStmt struct {
	Table string
}

// Expr is any SQL expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct {
	Val Value
}

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table  string // empty if unqualified
	Column string
}

// ParamExpr is a positional `?` placeholder, bound at execution time by the
// arguments of DB.Query, DB.Exec, Stmt.Query or Stmt.Exec. Index counts
// placeholders left to right from 0.
type ParamExpr struct {
	Index int
}

// BinaryExpr is a binary operation. Op is one of
// = != < <= > >= + - * / % AND OR.
type BinaryExpr struct {
	Op    string
	L, R  Expr
	Quant string      // "", "ALL", "ANY" for quantified comparisons
	Sub   *SelectStmt // subquery for quantified comparisons
}

// UnaryExpr is NOT expr or - expr.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

// FuncCall is a function or aggregate invocation.
type FuncCall struct {
	Name     string // upper-cased
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Args     []Expr
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// InExpr is expr [NOT] IN (list | subquery).
type InExpr struct {
	E    Expr
	Not  bool
	List []Expr
	Sub  *SelectStmt
}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E      Expr
	Not    bool
	Lo, Hi Expr
}

// LikeExpr is expr [NOT] LIKE pattern.
type LikeExpr struct {
	E       Expr
	Not     bool
	Pattern Expr
}

// ExistsExpr is EXISTS (subquery).
type ExistsExpr struct {
	Sub *SelectStmt
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Sub *SelectStmt
}

// CaseExpr is CASE [operand] WHEN .. THEN .. [ELSE ..] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*Literal) expr()      {}
func (*ColumnRef) expr()    {}
func (*ParamExpr) expr()    {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*FuncCall) expr()     {}
func (*IsNullExpr) expr()   {}
func (*InExpr) expr()       {}
func (*BetweenExpr) expr()  {}
func (*LikeExpr) expr()     {}
func (*ExistsExpr) expr()   {}
func (*SubqueryExpr) expr() {}
func (*CaseExpr) expr()     {}
