// Package sqldb is an in-memory relational database engine with a SQL
// dialect sufficient to run every query JustInTime issues (the paper stores
// candidates in MySQL): CREATE TABLE / INSERT / DELETE / UPDATE and SELECT
// with inner joins, WHERE, GROUP BY / HAVING, ORDER BY, LIMIT/OFFSET,
// DISTINCT, aggregates, and scalar / EXISTS / IN / quantified (ALL, ANY)
// subqueries including correlated ones. SELECTs run through a cost-aware
// planner over single- and multi-column secondary indexes (prefix scans,
// index intersection, index nested-loop joins, top-k under ORDER BY/LIMIT)
// whose chosen plan is inspectable with EXPLAIN; results are always
// byte-identical to the naive scan path. It is the repository's database
// substrate and is usable independently of the rest of the system.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the dynamic types a Value can hold.
type Type int

const (
	// NullType is the type of the SQL NULL value.
	NullType Type = iota
	// IntType is a 64-bit signed integer.
	IntType
	// FloatType is a 64-bit float.
	FloatType
	// TextType is a string.
	TextType
	// BoolType is a boolean.
	BoolType
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case NullType:
		return "NULL"
	case IntType:
		return "INT"
	case FloatType:
		return "FLOAT"
	case TextType:
		return "TEXT"
	case BoolType:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is one dynamically-typed SQL value.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   bool
}

// Null returns the SQL NULL value (also the zero Value).
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{typ: IntType, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{typ: FloatType, f: v} }

// Text wraps a string.
func Text(v string) Value { return Value{typ: TextType, s: v} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{typ: BoolType, b: v} }

// Type returns the value's dynamic type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == NullType }

// AsFloat converts numeric and boolean values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.typ {
	case IntType:
		return float64(v.i), true
	case FloatType:
		return v.f, true
	case BoolType:
		if v.b {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsInt returns the value as an int64 when it is an integer or an integral
// float.
func (v Value) AsInt() (int64, bool) {
	switch v.typ {
	case IntType:
		return v.i, true
	case FloatType:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			return int64(v.f), true
		}
		return 0, false
	case BoolType:
		if v.b {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsText returns the string payload of a TEXT value.
func (v Value) AsText() (string, bool) {
	if v.typ == TextType {
		return v.s, true
	}
	return "", false
}

// AsBool returns the boolean payload of a BOOL value.
func (v Value) AsBool() (bool, bool) {
	if v.typ == BoolType {
		return v.b, true
	}
	return false, false
}

// String renders the value for display ("NULL" for null).
func (v Value) String() string {
	switch v.typ {
	case NullType:
		return "NULL"
	case IntType:
		return strconv.FormatInt(v.i, 10)
	case FloatType:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TextType:
		return v.s
	case BoolType:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// key encodes the value for hashing in DISTINCT / GROUP BY, with NULLs equal
// to each other and ints equal to integral floats (so GROUP BY 1 and 1.0
// coincide, matching comparison semantics).
func (v Value) key() string {
	switch v.typ {
	case NullType:
		return "n"
	case IntType:
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case FloatType:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case TextType:
		return "t" + v.s
	case BoolType:
		if v.b {
			return "b1"
		}
		return "b0"
	default:
		return "?"
	}
}

// Compare orders two non-null values. It returns (-1|0|1, nil) when
// comparable; comparing a NULL or incompatible types yields an error (the
// caller decides on three-valued-logic handling).
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, errNullCompare
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	switch {
	case aNum && bNum:
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	case a.typ == TextType && b.typ == TextType:
		return strings.Compare(a.s, b.s), nil
	default:
		return 0, fmt.Errorf("sqldb: cannot compare %s with %s", a.typ, b.typ)
	}
}

var errNullCompare = fmt.Errorf("sqldb: comparison with NULL")

// coerceTo converts v to the declared column type on insert/update, erroring
// on lossy or nonsensical conversions. NULL passes through any type.
func coerceTo(v Value, t Type) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case IntType:
		if i, ok := v.AsInt(); ok {
			return Int(i), nil
		}
	case FloatType:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
	case TextType:
		if s, ok := v.AsText(); ok {
			return Text(s), nil
		}
	case BoolType:
		if b, ok := v.AsBool(); ok {
			return Bool(b), nil
		}
		if i, ok := v.AsInt(); ok && (i == 0 || i == 1) {
			return Bool(i == 1), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: cannot store %s value %s in %s column", v.typ, v, t)
}
