package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	stmt, _, err := parseSQL(input)
	return stmt, err
}

// parseSQL parses one statement and reports how many `?` placeholders it
// contains.
func parseSQL(input string) (Statement, int, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks, input: input}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, 0, p.errorf("unexpected %q after statement", p.cur().text)
	}
	return stmt, p.params, nil
}

type parser struct {
	toks   []token
	pos    int
	input  string
	params int // number of `?` placeholders seen so far
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %s, got %q", want, p.cur().text)
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tkKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tkKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tkKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tkKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tkKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tkKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tkIdent, "") && strings.EqualFold(p.cur().text, "EXPLAIN"):
		// EXPLAIN is contextual (columns named "explain" keep working): a
		// statement can never start with a bare identifier otherwise.
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Sel: sel}, nil
	case p.at(tkIdent, "") && strings.EqualFold(p.cur().text, "ANALYZE"):
		// ANALYZE is contextual for the same reason as EXPLAIN.
		p.next()
		var table string
		if p.at(tkIdent, "") {
			table = p.next().text
		}
		return &AnalyzeStmt{Table: table}, nil
	default:
		return nil, p.errorf("expected a statement, got %q", p.cur().text)
	}
}

func (p *parser) parseIdent() (string, error) {
	if p.at(tkIdent, "") {
		return p.next().text, nil
	}
	return "", p.errorf("expected identifier, got %q", p.cur().text)
}

// acceptIndexWord consumes the contextual keyword INDEX, which lexes as a
// plain identifier so that columns named "index" keep working.
func (p *parser) acceptIndexWord() bool {
	if p.at(tkIdent, "") && strings.EqualFold(p.cur().text, "INDEX") {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	if p.acceptIndexWord() {
		return p.parseCreateIndex()
	}
	if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
		return nil, err
	}
	ifNotExists := false
	if p.accept(tkKeyword, "IF") {
		if _, err := p.expect(tkKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		ifNotExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		colName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseColumnType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColumnDef{Name: colName, Type: typ})
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name, Cols: cols, IfNotExists: ifNotExists}, nil
}

// parseCreateIndex parses the tail of CREATE INDEX [IF NOT EXISTS] name ON
// table (col, ...); composite indexes list the most significant key part
// first.
func (p *parser) parseCreateIndex() (Statement, error) {
	ifNotExists := false
	if p.accept(tkKeyword, "IF") {
		if _, err := p.expect(tkKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		ifNotExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Columns: cols, IfNotExists: ifNotExists}, nil
}

func (p *parser) parseColumnType() (Type, error) {
	t := p.cur()
	if t.kind != tkKeyword {
		return 0, p.errorf("expected column type, got %q", t.text)
	}
	p.next()
	switch t.text {
	case "INT", "INTEGER":
		return IntType, nil
	case "FLOAT", "DOUBLE", "REAL":
		return FloatType, nil
	case "TEXT":
		return TextType, nil
	case "VARCHAR":
		// Optional length, ignored.
		if p.accept(tkSymbol, "(") {
			if _, err := p.expect(tkNumber, ""); err != nil {
				return 0, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return 0, err
			}
		}
		return TextType, nil
	case "BOOL", "BOOLEAN":
		return BoolType, nil
	default:
		return 0, p.errorf("unknown column type %q", t.text)
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(tkSymbol, "(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if p.at(tkKeyword, "SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &InsertStmt{Table: name, Cols: cols, Select: sub}, nil
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	return &InsertStmt{Table: name, Cols: cols, Rows: rows}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.accept(tkKeyword, "WHERE") {
		if where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return &DeleteStmt{Table: name, Where: where}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	var cols []string
	var exprs []Expr
	for {
		c, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		exprs = append(exprs, e)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	var where Expr
	if p.accept(tkKeyword, "WHERE") {
		if where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return &UpdateStmt{Table: name, Cols: cols, Exprs: exprs, Where: where}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if p.acceptIndexWord() {
		ifExists := false
		if p.accept(tkKeyword, "IF") {
			if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name, IfExists: ifExists}, nil
	}
	if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.accept(tkKeyword, "IF") {
		if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name, IfExists: ifExists}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	sel.Distinct = p.accept(tkKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}

	if p.accept(tkKeyword, "FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		for {
			switch {
			case p.accept(tkSymbol, ","):
				ref, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				sel.From = append(sel.From, ref)
			case p.at(tkKeyword, "INNER") || p.at(tkKeyword, "JOIN") || p.at(tkKeyword, "LEFT"):
				left := p.accept(tkKeyword, "LEFT")
				if left {
					p.accept(tkKeyword, "OUTER")
				} else {
					p.accept(tkKeyword, "INNER")
				}
				if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
					return nil, err
				}
				ref, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tkKeyword, "ON"); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ref.JoinCond = cond
				ref.LeftJoin = left
				sel.From = append(sel.From, ref)
			default:
				goto fromDone
			}
		}
	}
fromDone:

	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = &n
		if p.accept(tkKeyword, "OFFSET") {
			m, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			sel.Offset = &m
		}
	}
	return sel, nil
}

func (p *parser) parseInt() (int64, error) {
	t, err := p.expect(tkNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errorf("expected integer, got %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tkSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// tbl.* needs two tokens of lookahead.
	if p.at(tkIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tkSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tkSymbol && p.toks[p.pos+2].text == "*" {
		tbl := p.next().text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tkKeyword, "AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.at(tkIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	if p.accept(tkSymbol, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return ref, err
		}
		ref.Subquery = sub
		p.accept(tkKeyword, "AS")
		alias, err := p.parseIdent()
		if err != nil {
			return ref, p.errorf("subquery in FROM requires an alias")
		}
		ref.Alias = alias
		return ref, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return ref, err
	}
	ref.Name = name
	if p.accept(tkKeyword, "AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return ref, err
		}
		ref.Alias = alias
	} else if p.at(tkIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
// expr := and (OR and)*
// and  := not (AND not)*
// not  := NOT not | predicate
// predicate := additive [comparison | IS NULL | IN | BETWEEN | LIKE]
// additive := multiplicative (("+"|"-") multiplicative)*
// multiplicative := unary (("*"|"/"|"%") unary)*
// unary := "-" unary | primary

func (p *parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

var comparisonOps = map[string]bool{"=": true, "!=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.kind == tkSymbol && comparisonOps[t.text]:
		p.next()
		op := t.text
		if op == "<>" {
			op = "!="
		}
		// Quantified comparison: cmp ALL|ANY|SOME (subquery).
		if p.at(tkKeyword, "ALL") || p.at(tkKeyword, "ANY") || p.at(tkKeyword, "SOME") {
			quant := p.next().text
			if quant == "SOME" {
				quant = "ANY"
			}
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, Quant: quant, Sub: sub}, nil
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil
	case t.kind == tkKeyword && t.text == "IS":
		p.next()
		not := p.accept(tkKeyword, "NOT")
		if _, err := p.expect(tkKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	case t.kind == tkKeyword && (t.text == "IN" || t.text == "BETWEEN" || t.text == "LIKE" || t.text == "NOT"):
		not := false
		if t.text == "NOT" {
			// Only consume NOT when followed by IN/BETWEEN/LIKE.
			nxt := p.toks[p.pos+1]
			if nxt.kind != tkKeyword || (nxt.text != "IN" && nxt.text != "BETWEEN" && nxt.text != "LIKE") {
				return l, nil
			}
			p.next()
			not = true
		}
		switch {
		case p.accept(tkKeyword, "IN"):
			return p.parseInRest(l, not)
		case p.accept(tkKeyword, "BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BetweenExpr{E: l, Not: not, Lo: lo, Hi: hi}, nil
		case p.accept(tkKeyword, "LIKE"):
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &LikeExpr{E: l, Not: not, Pattern: pat}, nil
		default:
			return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
		}
	default:
		return l, nil
	}
}

func (p *parser) parseInRest(l Expr, not bool) (Expr, error) {
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	if p.at(tkKeyword, "SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, Not: not, Sub: sub}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &InExpr{E: l, Not: not, List: list}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tkSymbol, "+") || p.at(tkSymbol, "-") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tkSymbol, "*") || p.at(tkSymbol, "/") || p.at(tkSymbol, "%") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tkSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		return &Literal{Val: Int(i)}, nil
	case t.kind == tkString:
		p.next()
		return &Literal{Val: Text(t.text)}, nil
	case t.kind == tkSymbol && t.text == "?":
		p.next()
		e := &ParamExpr{Index: p.params}
		p.params++
		return e, nil
	case t.kind == tkKeyword && t.text == "NULL":
		p.next()
		return &Literal{Val: Null()}, nil
	case t.kind == tkKeyword && t.text == "TRUE":
		p.next()
		return &Literal{Val: Bool(true)}, nil
	case t.kind == tkKeyword && t.text == "FALSE":
		p.next()
		return &Literal{Val: Bool(false)}, nil
	case t.kind == tkKeyword && t.text == "EXISTS":
		p.next()
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil
	case t.kind == tkKeyword && t.text == "CASE":
		return p.parseCase()
	case t.kind == tkSymbol && t.text == "(":
		p.next()
		if p.at(tkKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkIdent:
		p.next()
		// Function call?
		if p.at(tkSymbol, "(") {
			return p.parseFuncCall(t.text)
		}
		// Qualified column?
		if p.accept(tkSymbol, ".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	default:
		return nil, p.errorf("unexpected %q in expression", t.text)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // (
	fc := &FuncCall{Name: strings.ToUpper(name)}
	if p.accept(tkSymbol, "*") {
		fc.Star = true
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	fc.Distinct = p.accept(tkKeyword, "DISTINCT")
	if !p.at(tkSymbol, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	if !p.at(tkKeyword, "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.accept(tkKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(tkKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if _, err := p.expect(tkKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}
