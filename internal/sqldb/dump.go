package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// TableDump is the structural state of one table: its declared schema and a
// deep copy of its rows. It carries no index state — indexes are declared
// separately (IndexDump) and rebuilt lazily after a restore.
//
// For tables on paged storage, Rows is nil and Paged carries the live store
// instead: materializing every row would defeat the buffer pool, so the
// persistence layer checkpoints the pages themselves (CheckpointTo) while
// the dump is exclusively locked. A dump holding Paged entries is only
// coherent for the duration of CheckpointWith.
type TableDump struct {
	Name  string
	Cols  []Column
	Rows  [][]Value
	Paged *PagedTable
}

// IndexDump is one secondary index declaration. Column holds the indexed
// column names joined with "," (identifiers cannot contain commas), so
// composite indexes ride in the same snapshot/WAL wire slot single-column
// indexes always used — old snapshots load unchanged.
type IndexDump struct {
	Name   string
	Table  string
	Column string
}

// Dump is a point-in-time structural copy of a whole database, suitable for
// serialization. Tables are ordered by name and indexes by (table, creation
// order), so two dumps of equal databases are deeply equal.
//
// Stats carries the planner statistics of every index that has derived any
// (same order as Indexes, minus stat-less entries). They are advisory: a
// restore that drops or ignores them only costs the first plans their
// estimates, never correctness.
type Dump struct {
	Tables  []TableDump
	Indexes []IndexDump
	Stats   []IndexStatsDump
}

// Dump returns a consistent structural copy of the database taken under the
// read lock. Row slices are deep-copied (UPDATE mutates rows in place, so
// sharing them would let later writes leak into the dump); Values themselves
// are immutable and copied by value.
func (db *DB) Dump() *Dump {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dumpLocked()
}

// CheckpointWith runs fn against a structural dump while the database is
// exclusively locked: no mutation (and no mutation-log append — the logger
// runs under the same lock) can interleave with fn. This is the consistency
// point persistence checkpoints hang off: fn typically writes the dump to a
// snapshot file and resets the write-ahead log, and the exclusive lock
// guarantees no logged mutation falls between the two.
func (db *DB) CheckpointWith(fn func(*Dump) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return fn(db.dumpLocked())
}

func (db *DB) dumpLocked() *Dump {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	d := &Dump{}
	for _, n := range names {
		t := db.tables[n]
		cols := make([]Column, len(t.Cols))
		copy(cols, t.Cols)
		td := TableDump{Name: t.Name, Cols: cols}
		if pt, paged := t.store.(*PagedTable); paged {
			td.Paged = pt
		} else {
			live, _ := t.store.All() // slice store: cannot fail
			rows := make([][]Value, len(live))
			for i, r := range live {
				rows[i] = append([]Value(nil), r...)
			}
			td.Rows = rows
		}
		d.Tables = append(d.Tables, td)
		for _, ix := range t.indexes {
			names := make([]string, len(ix.cols))
			for i, ci := range ix.cols {
				names[i] = t.Cols[ci].Name
			}
			d.Indexes = append(d.Indexes, IndexDump{Name: ix.name, Table: t.Name, Column: strings.Join(names, ",")})
		}
	}
	d.Stats = db.dumpStatsLocked()
	return d
}

// NewFromDump builds a fresh database from a structural dump. The result
// shares no state with the dump (rows are copied on load) and has no logger
// attached; secondary indexes are declared but rebuilt lazily on first use.
func NewFromDump(d *Dump) (*DB, error) {
	db := New()
	for _, td := range d.Tables {
		if td.Paged != nil {
			return nil, fmt.Errorf("sqldb: table %q is paged; restore it through the persistence layer", td.Name)
		}
		if err := db.CreateTable(td.Name, td.Cols); err != nil {
			return nil, fmt.Errorf("sqldb: restoring table %q: %w", td.Name, err)
		}
		if len(td.Rows) > 0 {
			if err := db.InsertRows(td.Name, td.Rows); err != nil {
				return nil, fmt.Errorf("sqldb: restoring rows of %q: %w", td.Name, err)
			}
		}
	}
	for _, ix := range d.Indexes {
		if err := db.CreateIndex(ix.Name, ix.Table, ix.Column); err != nil {
			return nil, fmt.Errorf("sqldb: restoring index %q: %w", ix.Name, err)
		}
	}
	// Statistics are best-effort: a dump whose stats no longer match the
	// schema (or reference a dropped index) restores without them.
	for _, sd := range d.Stats {
		db.RestoreIndexStats(sd)
	}
	return db, nil
}
