package sqldb

// RowStore abstracts a table's row storage so the executor, planner, and
// index code stop assuming an in-memory slice. Two implementations exist:
// sliceStore (the default, rows on the heap) and PagedTable (rows encoded
// into slotted pages behind a shared buffer pool). Positions are stable row
// ids between mutations — exactly the contract secondary indexes rely on,
// since they record positions and rebuild on any version bump.
//
// All methods are called under the DB's lock (read lock for the read-only
// methods, write lock for mutations), so implementations need not add their
// own table-level synchronization; the paged store's internal pool handles
// cross-DB frame sharing.
type RowStore interface {
	// Len returns the number of stored rows.
	Len() int
	// Get returns the row at position i. Paged stores return a fresh copy;
	// the slice store returns the live row (callers never mutate rows
	// obtained via Get).
	Get(i int) ([]Value, error)
	// All returns every row, positionally. The slice store returns its live
	// backing slice (read-only by contract); paged stores materialize.
	All() ([][]Value, error)
	// Scan calls fn for each row in position order, stopping on error.
	Scan(fn func(i int, row []Value) error) error
	// Append adds rows at the end, preserving order.
	Append(rows [][]Value) error
	// Set overwrites the row at position i.
	Set(i int, row []Value) error
	// ReplaceAll swaps in a complete new row set (DELETE compaction,
	// UPDATE fallback).
	ReplaceAll(rows [][]Value) error
	// Close releases any resources (page files, pool frames).
	Close() error
}

// sliceStore is the default RowStore: a plain [][]Value heap slice with the
// exact semantics Table.rows had before the storage abstraction.
type sliceStore struct {
	rows [][]Value
}

func (s *sliceStore) Len() int { return len(s.rows) }

func (s *sliceStore) Get(i int) ([]Value, error) { return s.rows[i], nil }

func (s *sliceStore) All() ([][]Value, error) { return s.rows, nil }

func (s *sliceStore) Scan(fn func(i int, row []Value) error) error {
	for i, row := range s.rows {
		if err := fn(i, row); err != nil {
			return err
		}
	}
	return nil
}

func (s *sliceStore) Append(rows [][]Value) error {
	s.rows = append(s.rows, rows...)
	return nil
}

func (s *sliceStore) Set(i int, row []Value) error {
	s.rows[i] = row
	return nil
}

func (s *sliceStore) ReplaceAll(rows [][]Value) error {
	s.rows = rows
	return nil
}

func (s *sliceStore) Close() error { return nil }
