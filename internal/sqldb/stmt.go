package sqldb

import (
	"context"
	"errors"
	"fmt"
)

// errQueryNotSelect is returned when Query runs a non-SELECT statement.
var errQueryNotSelect = errors.New("sqldb: Query requires a SELECT statement")

// Stmt is a compiled SQL statement: the parse happens once, at Prepare time,
// and every execution reuses the AST. A Stmt is bound to no particular
// database — the same compiled statement may be executed against any number
// of DBs (the canned questions are compiled once per process and run against
// every applicant session's database). A Stmt is immutable after Prepare and
// safe for concurrent use.
type Stmt struct {
	sql       string
	stmt      Statement
	numParams int
}

// Prepare compiles a single SQL statement. `?` placeholders become
// positional parameters bound by the args of Query/Exec.
func Prepare(sql string) (*Stmt, error) {
	stmt, nparams, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{sql: sql, stmt: stmt, numParams: nparams}, nil
}

// MustPrepare is Prepare that panics on error, for statements fixed at
// compile time.
func MustPrepare(sql string) *Stmt {
	st, err := Prepare(sql)
	if err != nil {
		panic(err)
	}
	return st
}

// Prepare compiles a statement. The result is not bound to the receiver:
// like the package-level Prepare, the compiled statement runs against any
// database.
func (db *DB) Prepare(sql string) (*Stmt, error) { return Prepare(sql) }

// SQL returns the statement's source text.
func (st *Stmt) SQL() string { return st.sql }

// IsSelect reports whether the statement is read-only and executable via
// Query: a SELECT or an EXPLAIN SELECT (anything else goes through Exec).
func (st *Stmt) IsSelect() bool {
	switch st.stmt.(type) {
	case *SelectStmt, *ExplainStmt:
		return true
	}
	return false
}

// NumParams returns the number of `?` placeholders.
func (st *Stmt) NumParams() int { return st.numParams }

func (st *Stmt) checkArgs(args []Value) error {
	if len(args) != st.numParams {
		return fmt.Errorf("sqldb: statement has %d parameter(s), got %d argument(s)", st.numParams, len(args))
	}
	return nil
}

// Query executes a prepared SELECT (or EXPLAIN SELECT) against db under its
// read lock.
func (st *Stmt) Query(db *DB, args ...Value) (*Result, error) {
	return st.queryTraced(context.Background(), db, 0, args)
}

// QueryCapped is Query with limit pushdown: the top-level statement stops
// producing rows once maxRows have been emitted, so a SELECT over a huge
// table costs the cap, not the table. Simple single-table SELECTs stream and
// stop early (on paged storage, rows past the cap never even fault in);
// shapes that must see every row to be correct (aggregation, DISTINCT,
// ORDER BY, joins) run in full and are truncated at the cap. Subqueries are
// never capped — that would change results, not just bound their size.
// maxRows <= 0 means uncapped; EXPLAIN output is never capped.
func (st *Stmt) QueryCapped(db *DB, maxRows int, args ...Value) (*Result, error) {
	return st.queryTraced(context.Background(), db, maxRows, args)
}

// Exec executes a prepared non-SELECT statement against db under its write
// lock, returning the number of rows affected (0 for DDL).
func (st *Stmt) Exec(db *DB, args ...Value) (int, error) {
	if err := st.checkArgs(args); err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	n, err := db.execStatement(st.stmt, args)
	// Log whenever state may have changed: a clean success (DDL reports
	// n=0, err=nil) or a partial INSERT (n>0 with an error; replaying the
	// deterministic statement reproduces the identical partial effect).
	// SELECT-through-Exec and pure failures mutate nothing and are skipped,
	// as is ANALYZE: it only refreshes statistics, which ride the snapshot
	// (Dump.Stats) rather than the WAL.
	_, isAnalyze := st.stmt.(*AnalyzeStmt)
	if db.logger != nil && !isAnalyze && (err == nil || n > 0) {
		if lerr := db.logger.LogExec(st.sql, args); lerr != nil {
			lerr = fmt.Errorf("sqldb: statement applied but not logged: %w", lerr)
			if err == nil {
				err = lerr
			} else {
				err = fmt.Errorf("%w (additionally: %v)", err, lerr)
			}
		}
	}
	return n, err
}
