package sqldb

import (
	"fmt"
	"sort"
)

// This file is the planner's statistics layer: per-index cardinality (NDV
// per leading prefix) plus a small equi-depth histogram over the leading
// indexed column, derived for free whenever an index (re)builds — the build
// already has the distinct key tuples sorted with their row buckets — and
// rebuilt eagerly by ANALYZE. Statistics are advisory: they feed the cost
// model's row estimates and never affect which rows a plan returns.
//
// Every DB carries a monotonically increasing stats epoch. It bumps when an
// index build derives fresh statistics, when ANALYZE runs, when index DDL
// changes the path space, and when enough rows mutate to drift past
// statsDriftFraction of the last-counted table size (the same write-lock
// hook discipline as MutationLogger). Cached plans are stamped with the
// epoch they were chosen under and lazily recompute when it moves.

const (
	// histBuckets bounds the equi-depth histogram size; a bucket holds
	// ~rows/histBuckets rows and one distinct leading value never splits
	// across buckets.
	histBuckets = 32

	// statsDriftMin / statsDriftFraction: a table's stats are considered
	// drifted once max(statsDriftMin, rows/statsDriftFraction) rows have
	// been inserted, deleted or updated since the last epoch reset.
	statsDriftMin      = 32
	statsDriftFraction = 5

	// defaultRangeSelectivity estimates a range predicate on a non-leading
	// index column, where no histogram applies.
	defaultRangeSelectivity = 1.0 / 3
)

// histBucket is one equi-depth bucket: the greatest leading-column value it
// holds and the cumulative row count through it.
type histBucket struct {
	upper Value
	cum   int
}

// indexStats is the distribution snapshot of one index, immutable once
// published (readers load it atomically; builders replace it wholesale).
type indexStats struct {
	rows      int   // rows present in the key structures (no NULL in any indexed column)
	nullRows  int   // rows excluded for a NULL indexed column
	prefixNDV []int // distinct count of the leading k columns, k = 1..len(cols)
	hist      []histBucket
}

// deriveIndexStats computes statistics from a freshly built index: keys are
// the distinct tuples in sorted order, keyRows the aligned row buckets.
func deriveIndexStats(ncols int, keys [][]Value, keyRows [][]int, nullRows int) *indexStats {
	s := &indexStats{nullRows: nullRows, prefixNDV: make([]int, ncols)}
	for _, rs := range keyRows {
		s.rows += len(rs)
	}
	// Keys are sorted lexicographically, so a k-prefix is new exactly when
	// it differs from the previous key within the first k columns.
	for i, k := range keys {
		if i == 0 {
			for d := 0; d < ncols; d++ {
				s.prefixNDV[d]++
			}
			continue
		}
		for d := 0; d < ncols; d++ {
			if c, _ := Compare(keys[i-1][d], k[d]); c != 0 {
				for e := d; e < ncols; e++ {
					s.prefixNDV[e]++
				}
				break
			}
		}
	}
	// Equi-depth histogram over the leading column: runs of equal leading
	// values are contiguous in key order; pack whole runs until a bucket
	// reaches its depth.
	if s.rows > 0 {
		depth := (s.rows + histBuckets - 1) / histBuckets
		cum, inBucket := 0, 0
		for i := range keys {
			w := len(keyRows[i])
			cum += w
			inBucket += w
			last := i == len(keys)-1
			boundary := last
			if !last {
				c, _ := Compare(keys[i][0], keys[i+1][0])
				boundary = c != 0
			}
			if boundary && (inBucket >= depth || last) {
				s.hist = append(s.hist, histBucket{upper: keys[i][0], cum: cum})
				inBucket = 0
			}
		}
	}
	return s
}

// rowsBelow estimates how many rows have leading column < v (or <= v when
// inclusive). Within a bucket the distribution is unknown; half the bucket
// is assumed below.
func (s *indexStats) rowsBelow(v Value, inclusive bool) float64 {
	if len(s.hist) == 0 {
		return 0
	}
	i := sort.Search(len(s.hist), func(i int) bool {
		c, _ := Compare(s.hist[i].upper, v)
		return c >= 0
	})
	if i == len(s.hist) {
		return float64(s.rows)
	}
	prev := 0.0
	if i > 0 {
		prev = float64(s.hist[i-1].cum)
	}
	width := float64(s.hist[i].cum) - prev
	if c, _ := Compare(s.hist[i].upper, v); c == 0 && inclusive {
		return prev + width
	}
	return prev + width/2
}

// rangeRows estimates the rows whose leading column falls within the given
// bounds (nil = unbounded; strict excludes the bound).
func (s *indexStats) rangeRows(lo, hi *Value, loStrict, hiStrict bool) float64 {
	hiRows := float64(s.rows)
	if hi != nil {
		hiRows = s.rowsBelow(*hi, !hiStrict)
	}
	loRows := 0.0
	if lo != nil {
		loRows = s.rowsBelow(*lo, loStrict)
	}
	est := hiRows - loRows
	if est < 0 {
		est = 0
	}
	if est > float64(s.rows) {
		est = float64(s.rows)
	}
	return est
}

// SchemaVersion returns the DB's schema version, bumped by any DDL (table
// or index). Cached plans are stamped with it.
func (db *DB) SchemaVersion() uint64 { return db.schemaVersion.Load() }

// StatsEpoch returns the DB's statistics epoch (see the file comment).
func (db *DB) StatsEpoch() uint64 { return db.statsEpoch.Load() }

// noteDriftLocked accumulates mutated-row counts against the drift
// threshold under the write lock; crossing it bumps the stats epoch so
// cached plans re-cost against the next index rebuild's statistics.
func (db *DB) noteDriftLocked(t *Table, changed int) {
	if changed < 0 {
		changed = -changed
	}
	t.statDrift += changed
	thresh := t.statRows / statsDriftFraction
	if thresh < statsDriftMin {
		thresh = statsDriftMin
	}
	if t.statDrift >= thresh {
		t.statDrift = 0
		t.statRows = t.store.Len()
		db.statsEpoch.Add(1)
	}
}

// execAnalyze runs ANALYZE under the already-held write lock: it eagerly
// (re)builds every index of the named table (or all tables), which derives
// fresh statistics as a side effect, resets the drift counters, and bumps
// the stats epoch. ANALYZE mutates no rows and is never WAL-logged; the
// statistics themselves ride the snapshot (see Dump.Stats).
func (db *DB) execAnalyze(s *AnalyzeStmt) (int, error) {
	var tables []*Table
	if s.Table == "" {
		names := make([]string, 0, len(db.tables))
		for n := range db.tables {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			tables = append(tables, db.tables[n])
		}
	} else {
		t, ok := db.tables[s.Table]
		if !ok {
			return 0, fmt.Errorf("sqldb: unknown table %q", s.Table)
		}
		tables = append(tables, t)
	}
	for _, t := range tables {
		for _, ix := range t.indexes {
			if err := ix.ensure(t); err != nil {
				return 0, err
			}
		}
		t.statRows = t.store.Len()
		t.statDrift = 0
	}
	db.statsEpoch.Add(1)
	return 0, nil
}

// IndexStatsDump is the serializable form of one index's statistics. Stats
// ride the snapshot (Dump.Stats) so a rehydrated session plans with real
// estimates without re-running ANALYZE or paying an index build.
type IndexStatsDump struct {
	Table      string
	Index      string
	Rows       int
	NullRows   int
	PrefixNDV  []int
	HistUppers []Value
	HistCum    []int
}

// dumpStatsLocked collects the statistics of every index that has any, in
// sorted-table then index-creation order (the snapshot codec's order).
func (db *DB) dumpStatsLocked() []IndexStatsDump {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []IndexStatsDump
	for _, n := range names {
		t := db.tables[n]
		for _, ix := range t.indexes {
			s := ix.stats.Load()
			if s == nil {
				continue
			}
			d := IndexStatsDump{
				Table:     n,
				Index:     ix.name,
				Rows:      s.rows,
				NullRows:  s.nullRows,
				PrefixNDV: append([]int(nil), s.prefixNDV...),
			}
			for _, b := range s.hist {
				d.HistUppers = append(d.HistUppers, b.upper)
				d.HistCum = append(d.HistCum, b.cum)
			}
			out = append(out, d)
		}
	}
	return out
}

// RestoreIndexStats installs dumped statistics onto the named index,
// returning false when the table or index is unknown or the dump's shape
// does not match the index (a schema that changed since the dump). The
// restored stats are usable immediately — the planner costs paths from them
// without triggering an index build.
func (db *DB) RestoreIndexStats(d IndexStatsDump) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[d.Table]
	if !ok {
		return false
	}
	for _, ix := range t.indexes {
		if ix.name != d.Index {
			continue
		}
		if len(d.PrefixNDV) != len(ix.cols) || len(d.HistUppers) != len(d.HistCum) {
			return false
		}
		s := &indexStats{
			rows:      d.Rows,
			nullRows:  d.NullRows,
			prefixNDV: append([]int(nil), d.PrefixNDV...),
		}
		for i, u := range d.HistUppers {
			s.hist = append(s.hist, histBucket{upper: u, cum: d.HistCum[i]})
		}
		ix.stats.Store(s)
		t.statRows = t.store.Len()
		db.statsEpoch.Add(1)
		return true
	}
	return false
}

// IndexStats returns the current statistics of one index (nil when none
// have been derived yet), in dump form. Test and introspection helper.
func (db *DB) IndexStats(table, index string) *IndexStatsDump {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[table]
	if !ok {
		return nil
	}
	for _, ix := range t.indexes {
		if ix.name != index {
			continue
		}
		s := ix.stats.Load()
		if s == nil {
			return nil
		}
		d := &IndexStatsDump{
			Table:     table,
			Index:     index,
			Rows:      s.rows,
			NullRows:  s.nullRows,
			PrefixNDV: append([]int(nil), s.prefixNDV...),
		}
		for _, b := range s.hist {
			d.HistUppers = append(d.HistUppers, b.upper)
			d.HistCum = append(d.HistCum, b.cum)
		}
		return d
	}
	return nil
}
