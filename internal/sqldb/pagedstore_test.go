package sqldb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"justintime/internal/sqldb/pager"
)

// pageDiffDB moves every table of a differential database onto paged storage
// behind a deliberately tiny pool, so queries churn frames mid-execution.
func pageDiffDB(t testing.TB, db *DB, tables []diffTable, frames int) *pager.Pool {
	t.Helper()
	pool := pager.NewPool(frames)
	dir := t.TempDir()
	for _, tb := range tables {
		if err := db.PageTable(tb.name, pool, filepath.Join(dir, "spill-"+tb.name+".db")); err != nil {
			t.Fatalf("PageTable(%s): %v", tb.name, err)
		}
	}
	t.Cleanup(func() {
		if err := db.ClosePagedStores(); err != nil {
			t.Errorf("ClosePagedStores: %v", err)
		}
	})
	return pool
}

// TestDifferentialPagedParity extends the differential harness with a paged
// arm: every generated query must return byte-identical results after the
// tables move onto slotted pages behind a 4-frame shared pool — with the
// planner on and with DisableIndexScan forcing full scans, which stream every
// page through the pool and evict continuously.
func TestDifferentialPagedParity(t *testing.T) {
	cases := 60
	if testing.Short() {
		cases = 12
	}
	for seed := int64(0); seed < int64(cases); seed++ {
		r := rand.New(rand.NewSource(seed))
		db, tables := buildDiffDB(t, r)
		type q struct {
			sql     string
			args    []Value
			want    *Result
			wantErr bool
		}
		var qs []q
		for i := 0; i < 12; i++ {
			sql, args := buildDiffQuery(r, tables)
			want, err := db.Query(sql, args...)
			qs = append(qs, q{sql, args, want, err != nil})
		}
		pool := pageDiffDB(t, db, tables, 4)
		for _, arm := range []bool{false, true} {
			db.DisableIndexScan = arm
			for _, qq := range qs {
				got, err := db.Query(qq.sql, qq.args...)
				if (err != nil) != qq.wantErr {
					t.Fatalf("seed %d paged (scan=%v): %s %v: err=%v, slice err=%v", seed, arm, qq.sql, qq.args, err, qq.wantErr)
				}
				if err != nil {
					continue
				}
				if !reflect.DeepEqual(got, qq.want) {
					t.Fatalf("seed %d paged (scan=%v): %s %v:\npaged: %+v\nslice: %+v", seed, arm, qq.sql, qq.args, got, qq.want)
				}
			}
		}
		db.DisableIndexScan = false
		if s := pool.Stats(); s.Pinned != 0 {
			t.Fatalf("seed %d: queries leaked pins: %+v", seed, s)
		}
	}
}

// TestPagedMutationParity applies the same SQL mutation workload to a slice
// database and its paged twin and checks the full table state after every
// statement. UPDATE takes the in-place PageReplace path when the new record
// fits and the rewrite fallback when it grows; DELETE compacts via
// ReplaceAll; INSERT appends across page boundaries.
func TestPagedMutationParity(t *testing.T) {
	setup := func() *DB {
		db := New()
		if err := db.CreateTable("t", []Column{
			{Name: "id", Type: IntType},
			{Name: "txt", Type: TextType},
			{Name: "x", Type: FloatType},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("CREATE INDEX t_id ON t (id)"); err != nil {
			t.Fatal(err)
		}
		rows := make([][]Value, 600)
		for i := range rows {
			rows[i] = []Value{Int(int64(i)), Text(fmt.Sprintf("row-%d", i)), Float(float64(i) / 3)}
		}
		if err := db.InsertRows("t", rows); err != nil {
			t.Fatal(err)
		}
		return db
	}
	slice := setup()
	paged := setup()
	pool := pager.NewPool(3)
	if err := paged.PageTable("t", pool, filepath.Join(t.TempDir(), "spill.db")); err != nil {
		t.Fatal(err)
	}
	defer paged.ClosePagedStores()

	check := func(stage string) {
		t.Helper()
		for _, sql := range []string{
			"SELECT * FROM t ORDER BY id",
			"SELECT COUNT(*) FROM t",
			"SELECT * FROM t WHERE id = 42",
			"SELECT id, txt FROM t WHERE id >= 100 AND id < 120 ORDER BY id DESC",
		} {
			want, werr := slice.Query(sql)
			got, gerr := paged.Query(sql)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: %s: slice err=%v paged err=%v", stage, sql, werr, gerr)
			}
			if werr == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: %s diverged:\npaged: %+v\nslice: %+v", stage, sql, got, want)
			}
		}
	}
	check("initial")
	steps := []struct {
		name string
		sql  string
		args []Value
	}{
		{"insert", "INSERT INTO t (id, txt, x) VALUES (?, ?, ?)", []Value{Int(9001), Text("late"), Float(1.5)}},
		{"update-in-place", "UPDATE t SET x = x + 1 WHERE id < 50", nil},
		{"update-grow", "UPDATE t SET txt = 'a-much-longer-replacement-string-that-will-not-fit-in-place' WHERE id = 10", nil},
		{"delete", "DELETE FROM t WHERE id % 7 = 0", nil},
		{"insert-select", "INSERT INTO t (id, txt, x) SELECT id + 10000, txt, x FROM t WHERE id < 5", nil},
		{"update-after-compact", "UPDATE t SET txt = 'z' WHERE id > 9000", nil},
	}
	for _, st := range steps {
		ns, errS := slice.Exec(st.sql, st.args...)
		np, errP := paged.Exec(st.sql, st.args...)
		if (errS == nil) != (errP == nil) || ns != np {
			t.Fatalf("%s: slice (n=%d, err=%v) vs paged (n=%d, err=%v)", st.name, ns, errS, np, errP)
		}
		check(st.name)
	}
	if s := pool.Stats(); s.Pinned != 0 {
		t.Fatalf("mutations leaked pins: %+v", s)
	}
}

// TestPagedIndexScanFaultsOnlyMatchedPages is the pool-miss assertion behind
// the "cold queries fault only plan-touched pages" contract: after a full
// eviction, an indexed point query must fault exactly the one page its
// matching row lives on, while a full scan re-faults the whole table.
func TestPagedIndexScanFaultsOnlyMatchedPages(t *testing.T) {
	db := New()
	if err := db.CreateTable("t", []Column{
		{Name: "a", Type: IntType},
		{Name: "b", Type: IntType},
		{Name: "c", Type: IntType},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX t_a ON t (a)"); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 1000)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Int(int64(i % 7)), Int(int64(i % 13))}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	pool := pager.NewPool(64)
	if err := db.PageTable("t", pool, filepath.Join(t.TempDir(), "spill.db")); err != nil {
		t.Fatal(err)
	}
	defer db.ClosePagedStores()

	// Warm pass: builds the lazy index and measures the table's page count.
	if _, err := db.Query("SELECT * FROM t WHERE a = 500"); err != nil {
		t.Fatal(err)
	}
	full, err := db.Query("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != 1000 {
		t.Fatalf("full scan returned %d rows", len(full.Rows))
	}
	npages := int(pool.Stats().Resident)
	if npages < 2 {
		t.Fatalf("table spans %d resident pages; need >= 2 for the contrast to mean anything", npages)
	}

	// Cold indexed point query: exactly one page faults in.
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	m0 := pool.Stats().Misses
	res, err := db.Query("SELECT * FROM t WHERE a = 500")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("point query returned %d rows", len(res.Rows))
	}
	if got := pool.Stats().Misses - m0; got != 1 {
		t.Fatalf("cold indexed point query faulted %d pages, want exactly 1 (table has %d)", got, npages)
	}

	// Cold full scan: every page faults.
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	m0 = pool.Stats().Misses
	if _, err := db.Query("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Misses - m0; got != int64(npages) {
		t.Fatalf("cold full scan faulted %d pages, want %d", got, npages)
	}
}

// TestPagedConcurrentReads hammers one paged database from many goroutines
// through a pool smaller than the table, so concurrent queries race each
// other's faults and evictions (meaningful under -race). Results must stay
// identical throughout.
func TestPagedConcurrentReads(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db, tables := buildDiffDB(t, r)
	type q struct {
		sql  string
		args []Value
		want *Result
	}
	var qs []q
	for len(qs) < 6 {
		sql, args := buildDiffQuery(r, tables)
		res, err := db.Query(sql, args...)
		if err != nil {
			continue
		}
		qs = append(qs, q{sql, args, res})
	}
	pageDiffDB(t, db, tables, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				for _, qq := range qs {
					res, err := db.Query(qq.sql, qq.args...)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, qq.want) {
						errs <- fmt.Errorf("%s: paged concurrent result diverged", qq.sql)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPageTableKeepsIndexesValid verifies the PageTable migration preserves
// positional row ids: a pre-built index keeps answering correctly without a
// rebuild being forced by the migration itself.
func TestPageTableKeepsIndexesValid(t *testing.T) {
	db := New()
	if err := db.CreateTable("t", []Column{{Name: "a", Type: IntType}, {Name: "b", Type: TextType}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX t_a ON t (a)"); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 300)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Text(fmt.Sprintf("v%d", i))}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	// Build the index before migrating.
	if _, err := db.Query("SELECT * FROM t WHERE a = 7"); err != nil {
		t.Fatal(err)
	}
	pool := pager.NewPool(4)
	if err := db.PageTable("t", pool, filepath.Join(t.TempDir(), "spill.db")); err != nil {
		t.Fatal(err)
	}
	defer db.ClosePagedStores()
	res, err := db.Query("SELECT b FROM t WHERE a = 123")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "v123" {
		t.Fatalf("indexed lookup after migration: %+v", res)
	}
	// Migrating an already-paged or unknown table behaves sanely.
	if err := db.PageTable("t", pool, "unused"); err != nil {
		t.Fatalf("re-paging a paged table: %v", err)
	}
	if err := db.PageTable("nope", pool, "unused"); err == nil {
		t.Fatal("PageTable on a missing table succeeded")
	}
}
