package sqldb

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b1 FROM t WHERE x >= 1.5e2 AND name = 'O''Brien' -- comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b1", "FROM", "t", "WHERE", "x", ">=", "1.5e2", "AND", "name", "=", "O'Brien", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tkEOF {
		t.Error("missing EOF")
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a ! b", "a # b"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex("a != b <> c <= d >= e < f > g")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.kind == tkSymbol {
			ops = append(ops, tk.text)
		}
	}
	want := []string{"!=", "<>", "<=", ">=", "<", ">"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestParseSelectShape(t *testing.T) {
	stmt, err := Parse(`SELECT DISTINCT time AS t, Min(diff) FROM candidates AS c
		INNER JOIN temporal_inputs ti ON ti.time = c.time
		WHERE diff > 0 AND gap <= 2
		GROUP BY time HAVING COUNT(*) > 1
		ORDER BY t DESC, diff LIMIT 10 OFFSET 2;`)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if !sel.Distinct || len(sel.Items) != 2 || sel.Items[0].Alias != "t" {
		t.Errorf("items parsed wrong: %+v", sel.Items)
	}
	if len(sel.From) != 2 || sel.From[0].Alias != "c" || sel.From[1].Alias != "ti" || sel.From[1].JoinCond == nil {
		t.Errorf("from parsed wrong: %+v", sel.From)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("where/group/having parsed wrong")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order parsed wrong: %+v", sel.OrderBy)
	}
	if sel.Limit == nil || *sel.Limit != 10 || sel.Offset == nil || *sel.Offset != 2 {
		t.Error("limit/offset parsed wrong")
	}
}

func TestParsePaperQ3(t *testing.T) {
	// The paper's Fig. 2 Q3 verbatim (dominant feature = income).
	q := `SELECT distinct time as t
	FROM candidates
	WHERE EXISTS
	(SELECT *
	 FROM candidates as cnd
	 INNER JOIN temporal_inputs as ti
	 ON ti.time = cnd.time
	 WHERE cnd.time = t
	 AND ((gap = 0) OR (gap = 1 AND cnd.income != ti.income)))`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	ex, ok := sel.Where.(*ExistsExpr)
	if !ok {
		t.Fatalf("WHERE is %T, want EXISTS", sel.Where)
	}
	if len(ex.Sub.From) != 2 {
		t.Errorf("subquery FROM has %d refs", len(ex.Sub.From))
	}
}

func TestParsePaperQ6(t *testing.T) {
	q := `SELECT Min(time) FROM candidates WHERE time >= ALL
	      (SELECT time as t FROM candidates WHERE gap = 0)`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Quant != "ALL" || be.Op != ">=" || be.Sub == nil {
		t.Fatalf("quantified comparison parsed wrong: %+v", sel.Where)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmt, err := Parse("SELECT 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	e := stmt.(*SelectStmt).Items[0].Expr.(*BinaryExpr)
	if e.Op != "+" {
		t.Fatalf("top op = %q, want +", e.Op)
	}
	r := e.R.(*BinaryExpr)
	if r.Op != "*" {
		t.Errorf("right op = %q, want *", r.Op)
	}
	// AND binds tighter than OR.
	stmt, err = Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	w := stmt.(*SelectStmt).Where.(*BinaryExpr)
	if w.Op != "OR" {
		t.Errorf("top logical op = %q, want OR", w.Op)
	}
}

func TestParseDDLAndDML(t *testing.T) {
	stmt, err := Parse("CREATE TABLE t (a INT, b FLOAT, c TEXT, d BOOL, e VARCHAR(10))")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if len(ct.Cols) != 5 || ct.Cols[1].Type != FloatType || ct.Cols[4].Type != TextType {
		t.Errorf("create parsed wrong: %+v", ct.Cols)
	}

	stmt, err = Parse("CREATE TABLE IF NOT EXISTS t (a INT)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*CreateTableStmt).IfNotExists {
		t.Error("IF NOT EXISTS not parsed")
	}

	stmt, err = Parse("INSERT INTO t (a, b) VALUES (1, 2.5), (3, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Cols) != 2 {
		t.Errorf("insert parsed wrong: %+v", ins)
	}

	stmt, err = Parse("DELETE FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DeleteStmt).Where == nil {
		t.Error("delete WHERE missing")
	}

	stmt, err = Parse("UPDATE t SET a = a + 1, b = 0 WHERE c = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStmt)
	if len(up.Cols) != 2 || up.Where == nil {
		t.Errorf("update parsed wrong: %+v", up)
	}

	stmt, err = Parse("DROP TABLE IF EXISTS t")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*DropTableStmt).IfExists {
		t.Error("drop IF EXISTS missing")
	}
}

func TestParseCaseExpr(t *testing.T) {
	stmt, err := Parse("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ce := stmt.(*SelectStmt).Items[0].Expr.(*CaseExpr)
	if ce.Operand != nil || len(ce.Whens) != 1 || ce.Else == nil {
		t.Errorf("case parsed wrong: %+v", ce)
	}
	stmt, err = Parse("SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ce = stmt.(*SelectStmt).Items[0].Expr.(*CaseExpr)
	if ce.Operand == nil || len(ce.Whens) != 2 || ce.Else != nil {
		t.Errorf("operand case parsed wrong: %+v", ce)
	}
}

func TestParseNotVariants(t *testing.T) {
	for _, q := range []string{
		"SELECT * FROM t WHERE a NOT IN (1, 2)",
		"SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2",
		"SELECT * FROM t WHERE a NOT LIKE 'x%'",
		"SELECT * FROM t WHERE NOT a = 1",
		"SELECT * FROM t WHERE a IS NOT NULL",
		"SELECT * FROM t WHERE a IN (SELECT b FROM u)",
		"SELECT * FROM t WHERE a = ANY (SELECT b FROM u)",
		"SELECT * FROM t WHERE a < SOME (SELECT b FROM u)",
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t ORDER time",
		"SELECT * FROM t LIMIT x",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO t VALUES",
		"INSERT t VALUES (1)",
		"SELECT * FROM t extra garbage here",
		"SELECT (SELECT 1",
		"SELECT CASE END",
		"SELECT * FROM (SELECT 1)", // subquery requires alias
		"SELECT a NOT 5 FROM t",
		"UPDATE t SET WHERE a = 1",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		} else if !strings.Contains(err.Error(), "sqldb:") {
			t.Errorf("Parse(%q) error %q lacks package prefix", q, err)
		}
	}
}

func TestParseCompositeIndexAndExplain(t *testing.T) {
	st, err := Parse("CREATE INDEX t_ab ON t (a, b, c)")
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := st.(*CreateIndexStmt)
	if !ok || len(ci.Columns) != 3 || ci.Columns[0] != "a" || ci.Columns[2] != "c" {
		t.Fatalf("composite CREATE INDEX parsed as %+v", st)
	}
	st, err = Parse("EXPLAIN SELECT * FROM t WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*ExplainStmt); !ok {
		t.Fatalf("EXPLAIN parsed as %T", st)
	}
	// EXPLAIN is contextual: a column named explain still works.
	if _, err := Parse("SELECT explain FROM t"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"EXPLAIN INSERT INTO t VALUES (1)", // SELECT only
		"CREATE INDEX i ON t ()",
		"EXPLAIN",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseTrailingSemicolonAndComments(t *testing.T) {
	for _, q := range []string{
		"SELECT 1;",
		"-- leading comment\nSELECT 1",
		"SELECT 1 -- trailing",
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}
