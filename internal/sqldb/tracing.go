package sqldb

import (
	"context"
	"strconv"
	"strings"
	"time"

	"justintime/internal/obs"
	"justintime/internal/sqldb/pager"
)

// This file is the executor's request-tracing seam. The ctx-aware Stmt entry
// points open a "sql.query" span when the context carries one, give the
// executor a pager.Tracker so paged-storage faults are attributed to the
// statement that caused them, and — for statements at or over the trace
// collector's slow threshold — attach the rendered plan text by re-deriving
// it through the EXPLAIN machinery. Untraced execution (Query/QueryCapped, or
// a context without an active span) pays nothing beyond a nil check.

// maxStmtAttr bounds the SQL text recorded on a span.
const maxStmtAttr = 200

func truncateSQL(s string) string {
	if len(s) > maxStmtAttr {
		return s[:maxStmtAttr] + "…"
	}
	return s
}

// QueryCtx is Query with trace propagation: when ctx carries an active
// obs.Span, execution runs under a "sql.query" child span annotated with the
// statement text, row count, plan shape, and any page-fault activity.
func (st *Stmt) QueryCtx(ctx context.Context, db *DB, args ...Value) (*Result, error) {
	return st.queryTraced(ctx, db, 0, args)
}

// QueryCappedCtx is QueryCapped with trace propagation (see QueryCtx).
func (st *Stmt) QueryCappedCtx(ctx context.Context, db *DB, maxRows int, args ...Value) (*Result, error) {
	return st.queryTraced(ctx, db, maxRows, args)
}

// queryTraced is the shared body of the Query entry points. maxRows <= 0
// means uncapped.
func (st *Stmt) queryTraced(ctx context.Context, db *DB, maxRows int, args []Value) (*Result, error) {
	if !st.IsSelect() {
		return nil, errQueryNotSelect
	}
	if err := st.checkArgs(args); err != nil {
		return nil, err
	}
	var span *obs.Span
	if parent := obs.FromContext(ctx); parent != nil {
		span = parent.StartChildAttrs("sql.query",
			obs.Attr{Key: "stmt", Val: truncateSQL(st.sql)})
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ex := &executor{db: db, params: args}
	if maxRows > 0 {
		ex.capRows = maxRows
	}
	if e, ok := st.stmt.(*ExplainStmt); ok {
		ex.capRows = 0 // EXPLAIN output is never capped
		res, err := ex.explain(e.Sel)
		span.End()
		return res, err
	}
	sel := st.stmt.(*SelectStmt)
	if span == nil {
		return ex.execSelect(sel, nil)
	}

	ex.span = span
	ex.ptrack = &ex.ptrackBuf
	res, err := ex.execSelect(sel, nil)
	if tk := ex.ptrack; tk.Faults > 0 || tk.Writebacks > 0 {
		span.Event("pager.faults", time.Duration(tk.FaultNs),
			obs.Attr{Key: "faults", Val: strconv.FormatInt(tk.Faults, 10)},
			obs.Attr{Key: "evictions", Val: strconv.FormatInt(tk.Evictions, 10)},
			obs.Attr{Key: "writebacks", Val: strconv.FormatInt(tk.Writebacks, 10)},
			obs.Attr{Key: "writeback_us", Val: strconv.FormatInt(tk.WritebackNs/1e3, 10)})
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return res, err
	}
	if span.EndAttrInt("rows", int64(len(res.Rows))) >= span.SlowThreshold() {
		// The statement is slow enough that its trace is guaranteed a slot in
		// the collector's slow ring — spend the extra work of rendering its
		// plan. The EXPLAIN machinery re-executes the statement, but against
		// the plan cache the re-run chooses the identical (now "(cached)")
		// paths, so the text matches what just ran. Fast statements never pay
		// this.
		ex2 := &executor{db: db, params: args, capRows: ex.capRows}
		if maxRows > 0 {
			ex2.capRows = maxRows
		}
		if pres, perr := ex2.explain(sel); perr == nil {
			lines := make([]string, len(pres.Rows))
			for i, r := range pres.Rows {
				lines[i], _ = r[0].AsText()
			}
			span.SetAttr("plan_text", strings.Join(lines, "\n"))
		}
	}
	return res, nil
}

// storeGet reads row i of t, charging a page fault (and any eviction or
// writeback it forces) to this statement's pool tracker when tracing is on.
func (ex *executor) storeGet(t *Table, i int) ([]Value, error) {
	return storeGetTracked(t, i, ex.ptrack)
}

// storeGetTracked is the free-function form of storeGet, for plan helpers
// that do not hang off the executor (coveringRows).
func storeGetTracked(t *Table, i int, tk *pager.Tracker) ([]Value, error) {
	if tk != nil {
		if pt, ok := t.store.(*PagedTable); ok {
			return pt.GetTracked(i, tk)
		}
	}
	return t.store.Get(i)
}

// storeScan is storeGet's counterpart for full scans.
func (ex *executor) storeScan(t *Table, fn func(i int, row []Value) error) error {
	if ex.ptrack != nil {
		if pt, ok := t.store.(*PagedTable); ok {
			return pt.ScanTracked(ex.ptrack, fn)
		}
	}
	return t.store.Scan(fn)
}

// storeAll materializes every row of t with fault attribution.
func (ex *executor) storeAll(t *Table) ([][]Value, error) {
	if ex.ptrack == nil {
		return t.store.All()
	}
	out := make([][]Value, 0, t.store.Len())
	err := ex.storeScan(t, func(_ int, row []Value) error {
		out = append(out, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// notePlan records one scan decision on the statement's trace span: the
// chosen shape, whether the plan-cache template served it, and the
// optimizer's row estimate (estRows < 0 when no estimate exists). A cache
// miss did real planning work with a meaningful duration, so it becomes a
// "plan" event in the tree; a cache hit is a map probe, so its facts land
// as plain attrs on the sql.query span itself — no event allocation on the
// steady-state hot path. Statements with several scans (joins, subqueries)
// record several decisions; the first is the statement's first access-path
// choice.
func (ex *executor) notePlan(shape string, cached bool, estRows int64, d time.Duration) {
	if ex.span == nil {
		return
	}
	if cached {
		ex.span.SetAttr("plan_shape", shape)
		ex.span.SetAttr("plan_cached", "true")
		if estRows >= 0 {
			ex.span.SetAttrInt("est_rows", estRows)
		}
		return
	}
	attrs := make([]obs.Attr, 2, 3)
	attrs[0] = obs.Attr{Key: "plan_shape", Val: shape}
	attrs[1] = obs.Attr{Key: "plan_cached", Val: "false"}
	if estRows >= 0 {
		attrs = append(attrs, obs.Attr{Key: "est_rows", Val: strconv.FormatInt(estRows, 10)})
	}
	ex.span.Event("plan", d, attrs...)
}
