package sqldb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// pcDeltas runs f and returns the process-wide plan-cache counter deltas it
// caused. Tests in this package run sequentially, so the deltas are f's own.
func pcDeltas(t *testing.T, f func()) (hits, misses, invalidations uint64) {
	t.Helper()
	before := PlanCacheCounters()
	f()
	after := PlanCacheCounters()
	return after["hits"] - before["hits"],
		after["misses"] - before["misses"],
		after["invalidations"] - before["invalidations"]
}

// TestPlanCacheLifecycle pins the cache's interaction with lazily derived
// statistics: execution 1 misses and plans blind (its index build publishes
// first statistics, bumping the epoch), execution 2 finds the stale stamp —
// invalidation — and replans with statistics, execution 3 onward hits.
func TestPlanCacheLifecycle(t *testing.T) {
	db := explainFixture(t)
	st := MustPrepare("SELECT * FROM candidates WHERE time = ?")

	run := func(arg int64) *Result {
		res, err := st.Query(db, Int(arg))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	if h, m, inv := pcDeltas(t, func() { run(1) }); h != 0 || m != 1 || inv != 0 {
		t.Fatalf("exec 1: hits/misses/invalidations = %d/%d/%d, want 0/1/0", h, m, inv)
	}
	if h, m, inv := pcDeltas(t, func() { run(1) }); h != 0 || m != 1 || inv != 1 {
		t.Fatalf("exec 2: hits/misses/invalidations = %d/%d/%d, want 0/1/1 (first stats bumped the epoch)", h, m, inv)
	}
	if h, m, inv := pcDeltas(t, func() { run(1) }); h != 1 || m != 0 || inv != 0 {
		t.Fatalf("exec 3: hits/misses/invalidations = %d/%d/%d, want 1/0/0", h, m, inv)
	}

	// Hits rebind parameters: a different probe value reuses the template
	// but must return its own rows.
	var res *Result
	h, m, _ := pcDeltas(t, func() { res = run(2) })
	if h != 1 || m != 0 {
		t.Fatalf("rebound exec: hits/misses = %d/%d, want 1/0", h, m)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("time = 2 on a cache hit returned %d rows, want 6", len(res.Rows))
	}
	// A NULL probe on a hit falls back to the empty result, like a miss would.
	if res = run0(t, st, db, Null()); len(res.Rows) != 0 {
		t.Fatalf("time = NULL on a cache hit returned %d rows, want 0", len(res.Rows))
	}
}

func run0(t *testing.T, st *Stmt, db *DB, args ...Value) *Result {
	t.Helper()
	res, err := st.Query(db, args...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPlanCacheAdHocQueriesMiss: db.Query parses a fresh AST per call, so
// repeated ad-hoc text never hits — the cache is a prepared-statement win.
func TestPlanCacheAdHocQueriesMiss(t *testing.T) {
	db := explainFixture(t)
	db.MustExec("ANALYZE")
	const q = "SELECT * FROM candidates WHERE time = 1"
	h, m, _ := pcDeltas(t, func() {
		for i := 0; i < 3; i++ {
			if _, err := db.Query(q); err != nil {
				t.Fatal(err)
			}
		}
	})
	if h != 0 || m != 3 {
		t.Fatalf("ad-hoc repeats: hits/misses = %d/%d, want 0/3", h, m)
	}
}

// TestDropIndexInvalidatesCachedPlan is the DDL-epoch regression test: a
// cached plan referencing an index must be retired the moment that index is
// dropped — before the next execution — and the replanned statement must
// still return correct rows.
func TestDropIndexInvalidatesCachedPlan(t *testing.T) {
	db := explainFixture(t)
	db.MustExec("ANALYZE")
	st := MustPrepare("SELECT * FROM candidates WHERE time = 2")

	want := run0(t, st, db) // miss: caches a plan over candidates_time
	run0(t, st, db)         // hit
	schemaV, statsE := db.SchemaVersion(), db.StatsEpoch()
	db.MustExec("DROP INDEX candidates_time")
	if db.SchemaVersion() != schemaV+1 || db.StatsEpoch() != statsE+1 {
		t.Fatalf("DROP INDEX bumped schema/stats to %d/%d, want %d/%d",
			db.SchemaVersion(), db.StatsEpoch(), schemaV+1, statsE+1)
	}

	var got *Result
	h, m, inv := pcDeltas(t, func() { got = run0(t, st, db) })
	if h != 0 || m != 1 || inv != 1 {
		t.Fatalf("post-DROP exec: hits/misses/invalidations = %d/%d/%d, want 0/1/1", h, m, inv)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("replanned rows differ after DROP INDEX:\n%s\nvs\n%s", got.Format(), want.Format())
	}
	// The replanned template routes through the surviving composite index.
	assertPlanContains(t, db, "SELECT * FROM candidates WHERE time = 2", "candidates_time_p (time=)")

	// CREATE INDEX retires plans the same way: the new index may be better.
	run0(t, st, db) // re-cache under the new stamp
	db.MustExec("CREATE INDEX candidates_time2 ON candidates (time)")
	if _, _, inv := pcDeltas(t, func() { run0(t, st, db) }); inv != 1 {
		t.Fatalf("CREATE INDEX did not invalidate the cached plan (invalidations = %d)", inv)
	}
}

// TestPlanCacheCapBounded: ad-hoc churn (each db.Query a fresh AST) cannot
// grow the per-DB cache past planCacheCap.
func TestPlanCacheCapBounded(t *testing.T) {
	db := explainFixture(t)
	db.MustExec("ANALYZE")
	for i := 0; i < planCacheCap+100; i++ {
		if _, err := db.Query(fmt.Sprintf("SELECT * FROM candidates WHERE time = %d", i%4)); err != nil {
			t.Fatal(err)
		}
	}
	db.plans.mu.Lock()
	n := len(db.plans.m)
	db.plans.mu.Unlock()
	if n > planCacheCap {
		t.Fatalf("plan cache holds %d entries, cap is %d", n, planCacheCap)
	}
	if n == 0 {
		t.Fatal("plan cache is empty; ad-hoc queries are not being cached at all")
	}
}

// TestPlanCacheRace hammers one DB with concurrent prepared queries, index
// DDL, ANALYZE and inserts. Run under -race in CI: it exists to catch
// unsynchronized access between cache lookups (read-locked queries) and the
// epoch bumps / template drops done by DDL and statistics derivation.
func TestPlanCacheRace(t *testing.T) {
	db := explainFixture(t)
	st := MustPrepare("SELECT COUNT(*) FROM candidates WHERE time = ? AND gap <= 1")
	st2 := MustPrepare("SELECT * FROM candidates WHERE time = 1 OR gap = 2")

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := st.Query(db, Int(int64(i%4))); err != nil {
					t.Error(err)
					return
				}
				if _, err := st2.Query(db); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // index churn: every drop must retire cached templates
		defer wg.Done()
		for i := 0; i < 40; i++ {
			db.MustExec("CREATE INDEX tmp_income ON candidates (income)")
			db.MustExec("DROP INDEX tmp_income")
		}
	}()
	wg.Add(1)
	go func() { // epoch churn from full-table re-derivation
		defer wg.Done()
		for i := 0; i < 40; i++ {
			db.MustExec("ANALYZE candidates")
		}
	}()
	wg.Add(1)
	go func() { // data churn: drift accounting and index rebuilds
		defer wg.Done()
		for i := 0; i < 40; i++ {
			rows := [][]Value{{Int(int64(i % 4)), Float(1), Float(1), Int(int64(i % 3)), Float(0.5)}}
			if err := db.InsertRows("candidates", rows); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
