package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
)

// pagedFixture builds a database with one bulky table moved onto paged
// storage under dir and one small table left on the slice store, mirroring
// the server's candidates/metadata split.
func pagedFixture(t *testing.T, dir string, pool *pager.Pool, nrows int) *sqldb.DB {
	t.Helper()
	db := sqldb.New()
	db.MustExec("CREATE TABLE big (id INT, name TEXT, score FLOAT)")
	db.MustExec("CREATE INDEX big_id ON big (id)")
	db.MustExec("CREATE TABLE small (k INT, v TEXT)")
	db.MustExec("INSERT INTO small VALUES (1, 'one'), (2, 'two')")
	rows := make([][]sqldb.Value, nrows)
	for i := range rows {
		rows[i] = []sqldb.Value{
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("name-%d", i)), sqldb.Float(float64(i) / 4),
		}
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.PageTable("big", pool, filepath.Join(dir, SpillFileName("big"))); err != nil {
		t.Fatal(err)
	}
	return db
}

// queryAll renders a full deterministic view of both tables for comparisons.
func queryAll(t *testing.T, db *sqldb.DB) [2]*sqldb.Result {
	t.Helper()
	big, err := db.Query("SELECT * FROM big ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	small, err := db.Query("SELECT * FROM small ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	return [2]*sqldb.Result{big, small}
}

// TestPagedStoreRoundTrip is the paged durability contract end to end:
// create with a paged table, mutate through the WAL, close, reopen with a
// pool (pages attach without row decode), mutate more, checkpoint, and
// reopen again — state must match a pure in-memory twin at every step.
func TestPagedStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pool := pager.NewPool(8)
	db := pagedFixture(t, dir, pool, 700)
	st, err := Create(dir, db, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	// The epoch-1 page file exists alongside the snapshot.
	if _, err := os.Stat(filepath.Join(dir, PagesFileName("big", 1))); err != nil {
		t.Fatalf("missing page file after Create: %v", err)
	}
	db.MustExec("INSERT INTO big VALUES (9001, 'post-create', 1.5)")
	db.MustExec("UPDATE big SET score = -1 WHERE id = 10")
	db.MustExec("DELETE FROM big WHERE id % 50 = 3")
	want := queryAll(t, db)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a fresh pool: pages attach, the WAL replays on top.
	pool2 := pager.NewPool(8)
	db2, st2, err := Open(dir, Options{Pool: pool2})
	if err != nil {
		t.Fatal(err)
	}
	if got := queryAll(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("paged reopen diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
	db2.MustExec("INSERT INTO big VALUES (9002, 'post-open', 2.5)")
	if err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint rolled the page file to epoch 2 and GC'd epoch 1.
	if _, err := os.Stat(filepath.Join(dir, PagesFileName("big", 2))); err != nil {
		t.Fatalf("missing epoch-2 page file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, PagesFileName("big", 1))); !os.IsNotExist(err) {
		t.Fatal("stale epoch-1 page file survived the checkpoint")
	}
	want2 := queryAll(t, db2)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, st3, err := Open(dir, Options{Pool: pager.NewPool(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := queryAll(t, db3); !reflect.DeepEqual(got, want2) {
		t.Fatalf("post-checkpoint reopen diverged")
	}
}

// TestPagedSnapshotReadableWithoutPool: the wire format stays readable on a
// host that runs no buffer pool — paged tables materialize into the slice
// store, and the store is fully usable (including new mutations).
func TestPagedSnapshotReadableWithoutPool(t *testing.T) {
	dir := t.TempDir()
	pool := pager.NewPool(8)
	db := pagedFixture(t, dir, pool, 300)
	st, err := Create(dir, db, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO big VALUES (777, 'walrow', 0.25)")
	want := queryAll(t, db)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// No Pool in the options: rows decode into plain slices.
	db2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := queryAll(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("pool-free open diverged")
	}
	db2.MustExec("DELETE FROM big WHERE id = 0")
	// ReadSnapshot (the raw wire reader) materializes the paged table too.
	d, _, err := ReadSnapshot(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, td := range d.Tables {
		if td.Name == "big" && len(td.Rows) == 300 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ReadSnapshot did not materialize the paged table: %+v", len(d.Tables))
	}
}

// TestPagedOpenAttachesWithoutRowDecode: with a pool, Open must not fault a
// single data page — attach is directory-only, and pages come in lazily as
// queries touch them.
func TestPagedOpenAttachesWithoutRowDecode(t *testing.T) {
	dir := t.TempDir()
	pool := pager.NewPool(8)
	db := pagedFixture(t, dir, pool, 700)
	st, err := Create(dir, db, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	pool2 := pager.NewPool(8)
	db2, st2, err := Open(dir, Options{Pool: pool2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := pool2.Stats(); s.Misses != 0 || s.Resident != 0 {
		t.Fatalf("Open faulted pages before any query: %+v", s)
	}
	// An indexed point query then faults the index build (a scan) — but a
	// second one touches only its own page.
	if _, err := db2.Query("SELECT * FROM big WHERE id = 650"); err != nil {
		t.Fatal(err)
	}
	if err := pool2.EvictAll(); err != nil {
		t.Fatal(err)
	}
	m0 := pool2.Stats().Misses
	res, err := db2.Query("SELECT * FROM big WHERE id = 650")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("point query rows = %d", len(res.Rows))
	}
	if faults := pool2.Stats().Misses - m0; faults != 1 {
		t.Fatalf("warm-index cold-pool point query faulted %d pages, want 1", faults)
	}
}

// TestPagedCrashBetweenPageFileAndSnapshot: a checkpoint that dies after
// writing the next epoch's page file but before the snapshot rename leaves
// the previous epoch authoritative; the orphaned page file is GC'd on open.
func TestPagedCrashBetweenPageFileAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	pool := pager.NewPool(8)
	db := pagedFixture(t, dir, pool, 200)
	st, err := Create(dir, db, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	want := queryAll(t, db)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn checkpoint: an epoch-2 page file with no matching
	// snapshot (arbitrary valid bytes are fine — it must simply vanish).
	orphan := filepath.Join(dir, PagesFileName("big", 2))
	if err := os.WriteFile(orphan, []byte("torn checkpoint leftovers"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{Pool: pager.NewPool(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := queryAll(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("open after torn checkpoint diverged")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned next-epoch page file survived Open")
	}
}

// TestPagedStaleSpillDiscarded: spill contents are volatile by contract; a
// leftover spill from a previous life must be removed on open, never read.
func TestPagedStaleSpillDiscarded(t *testing.T) {
	dir := t.TempDir()
	pool := pager.NewPool(8)
	db := pagedFixture(t, dir, pool, 200)
	st, err := Create(dir, db, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	want := queryAll(t, db)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	spill := filepath.Join(dir, SpillFileName("big"))
	if err := os.WriteFile(spill, make([]byte, 4*pager.PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{Pool: pager.NewPool(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := queryAll(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("stale spill leaked into reopened state")
	}
}

// TestSliceOnlyStoreOpensWithPool: a store whose snapshot predates paged
// storage (no recPagedTable records) opens cleanly even when a pool is
// offered — backward compatibility of the wire format.
func TestSliceOnlyStoreOpensWithPool(t *testing.T) {
	dir := t.TempDir()
	db := sqldb.New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT)")
	db.MustExec("INSERT INTO items VALUES (1, 'a'), (2, 'b')")
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{Pool: pager.NewPool(4)})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res, err := db2.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("slice-only store lost rows: %d", n)
	}
}

// TestPagedRowCodecStability pins the per-value wire encoding shared by the
// WAL codec and the page format: a byte change here breaks every existing
// snapshot and page file on disk.
func TestPagedRowCodecStability(t *testing.T) {
	row := []sqldb.Value{
		sqldb.Null(), sqldb.Int(-5), sqldb.Float(1.5), sqldb.Text("hé"), sqldb.Bool(true),
	}
	rec := sqldb.AppendRowRecord(nil, row)
	want := []byte{
		5, 0, 0, 0, // u32 row width
		0,                                         // NULL tag
		1, 251, 255, 255, 255, 255, 255, 255, 255, // INT -5, little-endian
		2, 0, 0, 0, 0, 0, 0, 248, 63, // FLOAT 1.5 bits
		3, 3, 0, 0, 0, 'h', 0xc3, 0xa9, // TEXT len + UTF-8 bytes
		4, 1, // BOOL true
	}
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("row record encoding changed:\ngot  %v\nwant %v", rec, want)
	}
	back, err := sqldb.DecodeRowRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, row) {
		t.Fatalf("decode(encode(row)) = %v", back)
	}
	// Corruption is an error, not a panic.
	for _, bad := range [][]byte{rec[:3], rec[:len(rec)-1], append(append([]byte{}, rec...), 0)} {
		if _, err := sqldb.DecodeRowRecord(bad); err == nil {
			t.Fatalf("corrupt record %v decoded", bad)
		}
	}
}
