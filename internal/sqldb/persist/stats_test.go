package persist

import (
	"path/filepath"
	"reflect"
	"testing"

	"justintime/internal/sqldb"
)

// statsIndexes are fixtureDB's indexes over the items table.
var statsIndexes = []string{"items_id", "items_id_score"}

// TestSnapshotCarriesStats: ANALYZE-derived statistics ride the snapshot
// wire format and come back intact through Write/ReadSnapshot.
func TestSnapshotCarriesStats(t *testing.T) {
	db := fixtureDB(t)
	db.MustExec("ANALYZE items")
	path := filepath.Join(t.TempDir(), "snap.db")
	if err := WriteSnapshot(path, db.Dump(), 3); err != nil {
		t.Fatal(err)
	}
	d, _, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Stats) != len(statsIndexes) {
		t.Fatalf("snapshot carries %d stats records, want %d", len(d.Stats), len(statsIndexes))
	}
	db2, err := sqldb.NewFromDump(d)
	if err != nil {
		t.Fatal(err)
	}
	sameDump(t, db, db2)
	for _, ix := range statsIndexes {
		want, got := db.IndexStats("items", ix), db2.IndexStats("items", ix)
		if got == nil || !reflect.DeepEqual(*got, *want) {
			t.Errorf("stats for %s after snapshot roundtrip = %+v, want %+v", ix, got, want)
		}
	}
}

// TestStoreOpenRestoresStats: a store created from an analyzed database
// reopens with the statistics already installed — the planner can cost
// paths immediately, without first rebuilding every index (which, on a
// pool-attached paged table, would fault the whole table back in).
func TestStoreOpenRestoresStats(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	db.MustExec("ANALYZE items")
	st, err := Create(dir, db, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, ix := range statsIndexes {
		want, got := db.IndexStats("items", ix), db2.IndexStats("items", ix)
		if got == nil || !reflect.DeepEqual(*got, *want) {
			t.Errorf("stats for %s after store reopen = %+v, want %+v", ix, got, want)
		}
	}
	if db2.StatsEpoch() == 0 {
		t.Error("restore did not bump the stats epoch")
	}
}
