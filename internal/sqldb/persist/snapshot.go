package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"justintime/internal/fault"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
)

// ErrCorrupt marks structural damage in a snapshot or page file — a failed
// checksum, bad magic, torn record or undecodable row — as opposed to a
// transient I/O error. The server quarantines a session whose store is
// corrupt; it retries one whose device merely errored.
var ErrCorrupt = errors.New("persist: corrupt store")

// IsCorrupt reports whether err is structural corruption in a session's
// durable state (snapshot, WAL header, or page file).
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, pager.ErrCorrupt)
}

// snapshotMagic identifies a snapshot file; the trailing byte is the format
// version.
var snapshotMagic = []byte("JITSNAP\x01")

// Snapshot record types.
const (
	recTable uint8 = 1 // one whole table: schema + rows
	recIndex uint8 = 2 // one secondary index declaration
	recEnd   uint8 = 3 // completeness marker; a snapshot without one is invalid
	// recPagedTable carries a paged table by reference: schema, the sibling
	// page file's name, and the page directory (rows per page). The rows
	// themselves live in the page file, so rehydrating attaches the file to
	// the buffer pool instead of decoding the whole table.
	recPagedTable uint8 = 4
	// recStats carries one index's planner statistics (cardinalities plus the
	// leading-column histogram), so a rehydrated session plans with real
	// estimates before any index has been rebuilt.
	recStats uint8 = 5
)

// PagesFileName is the sibling file holding a paged table's checkpointed
// pages for one epoch. Epoch-suffixing mirrors the snapshot protocol: a
// checkpoint writes the next epoch's page files before the snapshot rename
// commits to them, and stale epochs are garbage-collected afterwards.
func PagesFileName(table string, epoch uint64) string {
	return fmt.Sprintf("pages-%s-%d.db", table, epoch)
}

// pagedTableRef records where a recPagedTable's rows live; tableIndex is the
// table's position in the decoded Dump (whose Rows are left nil).
type pagedTableRef struct {
	tableIndex int
	file       string
	pageRows   []int
}

// WriteSnapshot serializes a structural dump to path atomically: the bytes
// land in a sibling .tmp file which is fsynced and renamed over path, so a
// crash at any point leaves either the old snapshot or the new one — never a
// half-written file. The containing directory is fsynced after the rename so
// the rename itself is durable.
//
// epoch is the checkpoint generation this snapshot represents; a WAL is only
// replayed on top of the snapshot carrying the same epoch (see Store), which
// is what makes the snapshot-then-reset checkpoint sequence crash-safe: a
// crash between the two leaves a new-epoch snapshot and an old-epoch WAL,
// and the stale WAL — whose effects the snapshot already contains — is
// discarded instead of double-applied.
func WriteSnapshot(path string, d *sqldb.Dump, epoch uint64) (err error) {
	return writeSnapshotFS(fault.OS, path, d, epoch)
}

// writeSnapshotFS is WriteSnapshot on an injectable filesystem.
func writeSnapshotFS(fsys fault.FS, path string, d *sqldb.Dump, epoch uint64) (err error) {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp) // never leave an orphaned temp file behind
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err = w.Write(snapshotMagic); err != nil {
		return err
	}
	var epochBuf [8]byte
	binary.LittleEndian.PutUint64(epochBuf[:], epoch)
	if _, err = w.Write(epochBuf[:]); err != nil {
		return err
	}
	for _, td := range d.Tables {
		e := &enc{}
		if td.Paged != nil {
			// The pages were checkpointed to the epoch's page file just
			// before this call (see Store.writeState); the snapshot records
			// only the reference and the page directory.
			e.u8(recPagedTable)
			e.str(td.Name)
			e.cols(td.Cols)
			e.str(PagesFileName(td.Name, epoch))
			pageRows := td.Paged.PageRows()
			e.u32(uint32(len(pageRows)))
			for _, n := range pageRows {
				e.u32(uint32(n))
			}
		} else {
			e.u8(recTable)
			e.str(td.Name)
			e.cols(td.Cols)
			e.rows(td.Rows)
		}
		if _, err = writeFrame(w, e.buf); err != nil {
			return err
		}
	}
	for _, ix := range d.Indexes {
		e := &enc{}
		e.u8(recIndex)
		e.str(ix.Name)
		e.str(ix.Table)
		e.str(ix.Column)
		if _, err = writeFrame(w, e.buf); err != nil {
			return err
		}
	}
	for _, sd := range d.Stats {
		e := &enc{}
		e.u8(recStats)
		e.str(sd.Table)
		e.str(sd.Index)
		e.u32(uint32(sd.Rows))
		e.u32(uint32(sd.NullRows))
		e.u32(uint32(len(sd.PrefixNDV)))
		for _, n := range sd.PrefixNDV {
			e.u32(uint32(n))
		}
		e.u32(uint32(len(sd.HistUppers)))
		for i, u := range sd.HistUppers {
			e.value(u)
			e.u32(uint32(sd.HistCum[i]))
		}
		if _, err = writeFrame(w, e.buf); err != nil {
			return err
		}
	}
	if _, err = writeFrame(w, []byte{recEnd}); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(fsys, filepath.Dir(path))
}

// ReadSnapshot loads a snapshot written by WriteSnapshot, returning the dump
// and its checkpoint epoch. Because snapshots are replaced atomically, any
// damage (bad magic, torn record, missing end marker) is a hard error, not a
// tolerated tail. Paged tables are materialized into plain rows from their
// sibling page files — the wire format stays fully readable without a buffer
// pool (Store.Open with a pool attaches the page files instead).
func ReadSnapshot(path string) (*sqldb.Dump, uint64, error) {
	d, refs, epoch, err := readSnapshotRefs(fault.OS, path)
	if err != nil {
		return nil, 0, err
	}
	dir := filepath.Dir(path)
	for _, ref := range refs {
		rows, err := readPagedRows(fault.OS, filepath.Join(dir, ref.file), ref.pageRows)
		if err != nil {
			return nil, 0, err
		}
		d.Tables[ref.tableIndex].Rows = rows
	}
	return d, epoch, nil
}

// readSnapshotRefs decodes a snapshot without touching page files: paged
// tables come back with nil Rows plus a pagedTableRef locating their pages.
func readSnapshotRefs(fsys fault.FS, path string) (*sqldb.Dump, []pagedTableRef, uint64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, nil, 0, fmt.Errorf("persist: %s: snapshot header: %w", path, err)
		}
		return nil, nil, 0, fmt.Errorf("persist: %s: not a snapshot file (bad magic): %w", path, ErrCorrupt)
	}
	var epochBuf [8]byte
	if _, err := io.ReadFull(r, epochBuf[:]); err != nil {
		return nil, nil, 0, fmt.Errorf("persist: %s: truncated snapshot header: %w", path, ErrCorrupt)
	}
	epoch := binary.LittleEndian.Uint64(epochBuf[:])
	d := &sqldb.Dump{}
	var refs []pagedTableRef
	sawEnd := false
	for !sawEnd {
		payload, err := readFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, errTorn) {
				return nil, nil, 0, fmt.Errorf("persist: %s: corrupt snapshot: %w: %w", path, ErrCorrupt, err)
			}
			return nil, nil, 0, fmt.Errorf("persist: %s: snapshot read: %w", path, err)
		}
		dd := &dec{buf: payload}
		switch typ := dd.u8(); typ {
		case recTable:
			td := sqldb.TableDump{Name: dd.str()}
			td.Cols = dd.cols()
			td.Rows = dd.rows()
			if dd.err != nil {
				return nil, nil, 0, dd.err
			}
			d.Tables = append(d.Tables, td)
		case recPagedTable:
			td := sqldb.TableDump{Name: dd.str()}
			td.Cols = dd.cols()
			ref := pagedTableRef{tableIndex: len(d.Tables), file: dd.str()}
			n := int(dd.u32())
			if dd.err != nil || n > maxRecord {
				dd.fail("page count")
				return nil, nil, 0, dd.err
			}
			ref.pageRows = make([]int, 0, n)
			for i := 0; i < n && dd.err == nil; i++ {
				ref.pageRows = append(ref.pageRows, int(dd.u32()))
			}
			if dd.err != nil {
				return nil, nil, 0, dd.err
			}
			d.Tables = append(d.Tables, td)
			refs = append(refs, ref)
		case recIndex:
			ix := sqldb.IndexDump{Name: dd.str(), Table: dd.str(), Column: dd.str()}
			if dd.err != nil {
				return nil, nil, 0, dd.err
			}
			d.Indexes = append(d.Indexes, ix)
		case recStats:
			sd := sqldb.IndexStatsDump{Table: dd.str(), Index: dd.str()}
			sd.Rows = int(dd.u32())
			sd.NullRows = int(dd.u32())
			nNDV := int(dd.u32())
			if dd.err != nil || nNDV > maxRecord {
				dd.fail("ndv count")
				return nil, nil, 0, dd.err
			}
			for i := 0; i < nNDV && dd.err == nil; i++ {
				sd.PrefixNDV = append(sd.PrefixNDV, int(dd.u32()))
			}
			nHist := int(dd.u32())
			if dd.err != nil || nHist > maxRecord {
				dd.fail("histogram size")
				return nil, nil, 0, dd.err
			}
			for i := 0; i < nHist && dd.err == nil; i++ {
				sd.HistUppers = append(sd.HistUppers, dd.value())
				sd.HistCum = append(sd.HistCum, int(dd.u32()))
			}
			if dd.err != nil {
				return nil, nil, 0, dd.err
			}
			d.Stats = append(d.Stats, sd)
		case recEnd:
			sawEnd = true
		default:
			return nil, nil, 0, fmt.Errorf("persist: %s: unknown snapshot record type %d: %w", path, typ, ErrCorrupt)
		}
	}
	return d, refs, epoch, nil
}

// readPagedRows materializes every row of a checkpointed page file, in row
// id order.
func readPagedRows(fsys fault.FS, path string, pageRows []int) ([][]sqldb.Value, error) {
	total := 0
	for _, n := range pageRows {
		total += n
	}
	rows := make([][]sqldb.Value, 0, total)
	err := pager.ReadFileFS(fsys, path, func(pageNo int, page []byte) error {
		if pageNo >= len(pageRows) {
			return fmt.Errorf("persist: %s: page %d beyond snapshot's %d-page directory: %w", path, pageNo, len(pageRows), ErrCorrupt)
		}
		for s := 0; s < pageRows[pageNo]; s++ {
			rec := pager.PageRecord(page, s)
			if rec == nil {
				return fmt.Errorf("persist: %s: corrupt page %d (slot %d): %w", path, pageNo, s, ErrCorrupt)
			}
			row, err := sqldb.DecodeRowRecord(rec)
			if err != nil {
				return fmt.Errorf("persist: %s: page %d slot %d: %w: %w", path, pageNo, s, ErrCorrupt, err)
			}
			rows = append(rows, row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// syncDir fsyncs a directory so a just-performed rename survives a power
// loss. Filesystems that reject directory fsync are tolerated.
func syncDir(fsys fault.FS, dir string) error {
	df, err := fsys.Open(dir)
	if err != nil {
		return nil
	}
	defer df.Close()
	_ = df.Sync()
	return nil
}
