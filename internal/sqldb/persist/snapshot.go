package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"justintime/internal/sqldb"
)

// snapshotMagic identifies a snapshot file; the trailing byte is the format
// version.
var snapshotMagic = []byte("JITSNAP\x01")

// Snapshot record types.
const (
	recTable uint8 = 1 // one whole table: schema + rows
	recIndex uint8 = 2 // one secondary index declaration
	recEnd   uint8 = 3 // completeness marker; a snapshot without one is invalid
)

// WriteSnapshot serializes a structural dump to path atomically: the bytes
// land in a sibling .tmp file which is fsynced and renamed over path, so a
// crash at any point leaves either the old snapshot or the new one — never a
// half-written file. The containing directory is fsynced after the rename so
// the rename itself is durable.
//
// epoch is the checkpoint generation this snapshot represents; a WAL is only
// replayed on top of the snapshot carrying the same epoch (see Store), which
// is what makes the snapshot-then-reset checkpoint sequence crash-safe: a
// crash between the two leaves a new-epoch snapshot and an old-epoch WAL,
// and the stale WAL — whose effects the snapshot already contains — is
// discarded instead of double-applied.
func WriteSnapshot(path string, d *sqldb.Dump, epoch uint64) (err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp) // never leave an orphaned temp file behind
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err = w.Write(snapshotMagic); err != nil {
		return err
	}
	var epochBuf [8]byte
	binary.LittleEndian.PutUint64(epochBuf[:], epoch)
	if _, err = w.Write(epochBuf[:]); err != nil {
		return err
	}
	for _, td := range d.Tables {
		e := &enc{}
		e.u8(recTable)
		e.str(td.Name)
		e.cols(td.Cols)
		e.rows(td.Rows)
		if _, err = writeFrame(w, e.buf); err != nil {
			return err
		}
	}
	for _, ix := range d.Indexes {
		e := &enc{}
		e.u8(recIndex)
		e.str(ix.Name)
		e.str(ix.Table)
		e.str(ix.Column)
		if _, err = writeFrame(w, e.buf); err != nil {
			return err
		}
	}
	if _, err = writeFrame(w, []byte{recEnd}); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshot loads a snapshot written by WriteSnapshot, returning the dump
// and its checkpoint epoch. Because snapshots are replaced atomically, any
// damage (bad magic, torn record, missing end marker) is a hard error, not a
// tolerated tail.
func ReadSnapshot(path string) (*sqldb.Dump, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, 0, fmt.Errorf("persist: %s: not a snapshot file (bad magic)", path)
	}
	var epochBuf [8]byte
	if _, err := io.ReadFull(r, epochBuf[:]); err != nil {
		return nil, 0, fmt.Errorf("persist: %s: truncated snapshot header", path)
	}
	epoch := binary.LittleEndian.Uint64(epochBuf[:])
	d := &sqldb.Dump{}
	sawEnd := false
	for !sawEnd {
		payload, err := readFrame(r)
		if err != nil {
			return nil, 0, fmt.Errorf("persist: %s: corrupt snapshot: %w", path, err)
		}
		dd := &dec{buf: payload}
		switch typ := dd.u8(); typ {
		case recTable:
			td := sqldb.TableDump{Name: dd.str()}
			td.Cols = dd.cols()
			td.Rows = dd.rows()
			if dd.err != nil {
				return nil, 0, dd.err
			}
			d.Tables = append(d.Tables, td)
		case recIndex:
			ix := sqldb.IndexDump{Name: dd.str(), Table: dd.str(), Column: dd.str()}
			if dd.err != nil {
				return nil, 0, dd.err
			}
			d.Indexes = append(d.Indexes, ix)
		case recEnd:
			sawEnd = true
		default:
			return nil, 0, fmt.Errorf("persist: %s: unknown snapshot record type %d", path, typ)
		}
	}
	return d, epoch, nil
}

// syncDir fsyncs a directory so a just-performed rename survives a power
// loss. Filesystems that reject directory fsync are tolerated.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer df.Close()
	_ = df.Sync()
	return nil
}
