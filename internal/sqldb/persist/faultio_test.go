package persist

import (
	"errors"
	"reflect"
	"syscall"
	"testing"

	"justintime/internal/fault"
)

// Targeted fault-injection tests for the durability path: specific disk
// failures must surface as the RIGHT kind of error — transient I/O troubles
// must never classify as corruption (which would trigger quarantine), a
// full disk must classify as ENOSPC through every wrap layer (which
// triggers degraded mode), and a failed checkpoint must leave the store
// retryable with nothing acknowledged lost.

// TestCheckpointFsyncFailureIsRetryable: the first snapshot fsync of a
// checkpoint dies; the checkpoint reports the error, a retry succeeds, and
// a reopen sees every acknowledged write.
func TestCheckpointFsyncFailureIsRetryable(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	inj := fault.NewInjector(nil)
	st, err := Create(dir, db, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO items VALUES (50, 'pre-ckpt', 0.5, TRUE)")

	inj.AddRule(fault.Rule{Op: fault.OpSync, Path: "snapshot", Nth: 1, Times: 1})
	if err := st.Checkpoint(); err == nil {
		t.Fatal("checkpoint swallowed the injected fsync failure")
	} else if IsCorrupt(err) {
		t.Fatalf("fsync failure classified as corruption: %v", err)
	}
	// The store is still live: the retry checkpoints cleanly and later
	// mutations keep flowing to the WAL.
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	db.MustExec("INSERT INTO items VALUES (51, 'post-ckpt', 1.5, FALSE)")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after failed+retried checkpoint: %v", err)
	}
	defer st2.Close()
	sameDump(t, db, db2)
}

// TestWALAppendENOSPCClassifies: a full disk during a WAL append must reach
// the caller as an error satisfying fault.IsNoSpace — that is the signal
// the server keys degraded read-only mode on.
func TestWALAppendENOSPCClassifies(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	inj := fault.NewInjector(nil)
	st, err := Create(dir, db, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	inj.AddRule(fault.Rule{Op: fault.OpMutate, Path: WALFile, Nth: 1, Err: fault.ErrNoSpace, Times: 1})
	_, err = db.Exec("INSERT INTO items VALUES (60, 'no-room', 0.5, TRUE)")
	if err == nil {
		t.Fatal("insert acknowledged on a full disk")
	}
	if !fault.IsNoSpace(err) {
		t.Fatalf("ENOSPC lost in the wrap chain: %v", err)
	}
	if IsCorrupt(err) {
		t.Fatalf("ENOSPC classified as corruption: %v", err)
	}
}

// TestOpenEIOReadIsNotCorrupt: a transient read error while opening a store
// must NOT look like corruption — quarantining a healthy session over a
// flaky cable would be data loss by another name.
func TestOpenEIOReadIsNotCorrupt(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	inj := fault.NewInjector(nil)
	inj.AddRule(fault.Rule{Op: fault.OpRead, Path: SnapshotFile, Nth: 1, Err: fault.ErrIO, Times: 1})
	if _, _, err := Open(dir, Options{FS: inj}); err == nil {
		t.Fatal("open succeeded through a failing read")
	} else if IsCorrupt(err) {
		t.Fatalf("transient EIO classified as corruption: %v", err)
	} else if !errors.Is(err, syscall.EIO) {
		t.Fatalf("EIO identity lost in the wrap chain: %v", err)
	}

	// The same store opens fine once the rule has burned off (same injector,
	// proving the failure really was transient, not stateful).
	db2, st2, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatalf("reopen after transient EIO: %v", err)
	}
	defer st2.Close()
	sameDump(t, db, db2)
}

// TestTornWALAppendDroppedOnReplay: an append torn mid-frame (the classic
// power-loss artifact) is not acknowledged, and replay discards the ragged
// tail instead of erroring — the store recovers to the acked prefix.
func TestTornWALAppendDroppedOnReplay(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	inj := fault.NewInjector(nil)
	st, err := Create(dir, db, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO items VALUES (70, 'acked', 7.5, TRUE)"); err != nil {
		t.Fatal(err)
	}
	want := db.Dump() // state after the last acknowledged write

	inj.AddRule(fault.Rule{Op: fault.OpWrite, Path: WALFile, Nth: 1, Torn: 5, Times: 1})
	if _, err := db.Exec("INSERT INTO items VALUES (71, 'torn', 0.25, FALSE)"); err == nil {
		t.Fatal("torn append was acknowledged")
	}
	st.Close() // best effort; the WAL tail is ragged

	db2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery from torn WAL tail: %v", err)
	}
	defer st2.Close()
	got := db2.Dump()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state is not the acked prefix:\ngot:  %#v\nwant: %#v", got, want)
	}
}
