package persist

import (
	"bufio"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"justintime/internal/fault"
)

// Shipper queue bounds. Overflowing either drops the connection and
// re-handshakes (the diff re-ships whatever the dropped events carried) —
// bounded memory beats an unbounded backlog to a slow standby.
const (
	shipMaxQueueEvents = 8192
	shipMaxQueueBytes  = 64 << 20
)

type shipKind uint8

const (
	shipSync shipKind = iota + 1 // ship the session's full file set (read at send time)
	shipAppend
	shipDelete
)

type shipEvent struct {
	kind  shipKind
	id    string
	epoch uint64
	off   int64
	data  []byte
}

// outstanding is one sent-but-unacknowledged frame's contribution to lag.
type outstanding struct {
	seq     uint64
	records int64
	bytes   int64
}

// ShipperStats is a point-in-time snapshot of a shipper's counters. Lag
// counts events queued plus sent-but-unacknowledged; it is meaningful while
// Connected (when disconnected the handshake diff owns catch-up and the
// queue is empty by construction).
type ShipperStats struct {
	Connected      bool  `json:"connected"`
	LagRecords     int64 `json:"lag_records"`
	LagBytes       int64 `json:"lag_bytes"`
	ShippedRecords int64 `json:"shipped_records"`
	ShippedBytes   int64 `json:"shipped_bytes"`
	Syncs          int64 `json:"syncs"`
	Deletes        int64 `json:"deletes"`
	Resyncs        int64 `json:"resyncs"`
	Reconnects     int64 `json:"reconnects"`
	Overflows      int64 `json:"overflows"`
}

// Shipper streams a primary's session tree to a warm standby. Hook events
// (NoteAppend / NoteSync / NoteDelete) enqueue; a background loop dials the
// standby, diffs the standby's reported cursors against local disk, ships
// the delta, then drains the queue. Acknowledgements retire events from the
// lag gauges. All failure handling converges on one move: drop the
// connection and re-handshake.
type Shipper struct {
	root   string // sessions tree root
	target string // standby replication listener host:port
	logger *slog.Logger

	dialTimeout time.Duration
	// retry paces reconnects: jittered capped-exponential backoff that
	// resets once a handshake completes, so a flapping link is probed
	// gently while a brief blip reconnects fast.
	retry fault.Backoff
	dial  DialFunc

	// Queue bounds (settable in tests); overflow drops the connection and
	// re-handshakes.
	maxQueueEvents int
	maxQueueBytes  int64

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []shipEvent
	queuedBytes int64
	accepting   bool // hook events enqueue only while a connection is being fed
	overflowed  bool
	closed      bool
	out         []outstanding // FIFO, retired by acks
	outRecords  int64
	outBytes    int64
	// inFlight covers the window between dequeue and the outstanding ledger,
	// so lag never transiently dips while a frame is being encoded.
	inFlightRecords int64
	inFlightBytes   int64

	seq       atomic.Uint64
	connected atomic.Bool
	shippedR  atomic.Int64
	shippedB  atomic.Int64
	syncs     atomic.Int64
	deletes   atomic.Int64
	resyncs   atomic.Int64
	redials   atomic.Int64
	overflows atomic.Int64

	wg sync.WaitGroup
}

// NewShipper creates a shipper for the session tree at root targeting a
// standby's replication listener, and starts its connection loop.
func NewShipper(root, target string, logger *slog.Logger) *Shipper {
	return NewShipperDialer(root, target, logger, nil)
}

// DialFunc is the shape of net.DialTimeout — the shipper's injectable
// connection seam (fault.DialTimeout produces one wrapping faulty conns).
type DialFunc = func(network, addr string, timeout time.Duration) (net.Conn, error)

// NewShipperDialer is NewShipper with an injectable dialer (nil = plain
// net.DialTimeout) — the hook the network fault plane wraps to exercise the
// replication link under latency, partial writes and mid-stream resets.
func NewShipperDialer(root, target string, logger *slog.Logger, dial DialFunc) *Shipper {
	if logger == nil {
		logger = slog.Default()
	}
	if dial == nil {
		dial = net.DialTimeout
	}
	s := &Shipper{
		root:           root,
		target:         target,
		logger:         logger,
		dialTimeout:    3 * time.Second,
		retry:          fault.Backoff{Base: 250 * time.Millisecond, Max: 10 * time.Second},
		dial:           dial,
		maxQueueEvents: shipMaxQueueEvents,
		maxQueueBytes:  shipMaxQueueBytes,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.run()
	}()
	return s
}

// Target returns the standby address the shipper feeds.
func (s *Shipper) Target() string { return s.target }

// Stats returns the shipper's counters and current lag.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	lagR := int64(len(s.queue)) + s.inFlightRecords + s.outRecords
	lagB := s.queuedBytes + s.inFlightBytes + s.outBytes
	s.mu.Unlock()
	return ShipperStats{
		Connected:      s.connected.Load(),
		LagRecords:     lagR,
		LagBytes:       lagB,
		ShippedRecords: s.shippedR.Load(),
		ShippedBytes:   s.shippedB.Load(),
		Syncs:          s.syncs.Load(),
		Deletes:        s.deletes.Load(),
		Resyncs:        s.resyncs.Load(),
		Reconnects:     s.redials.Load(),
		Overflows:      s.overflows.Load(),
	}
}

// OnAppend returns the per-session Options.OnAppend hook for session id.
// It runs under the WAL's lock, so it only copies the event into the queue.
func (s *Shipper) OnAppend(id string) func(epoch uint64, off int64, frame []byte) {
	return func(epoch uint64, off int64, frame []byte) {
		s.enqueue(shipEvent{kind: shipAppend, id: id, epoch: epoch, off: off, data: frame})
	}
}

// NoteSync asks the shipper to ship session id's full file set (call after
// create and after checkpoints — the moments the file set changes shape).
func (s *Shipper) NoteSync(id string) {
	s.enqueue(shipEvent{kind: shipSync, id: id})
}

// NoteDelete asks the shipper to remove session id from the standby.
func (s *Shipper) NoteDelete(id string) {
	s.enqueue(shipEvent{kind: shipDelete, id: id})
}

// Close stops the shipper after attempting to drain queued and unacked
// events for up to drain. Returns true if fully drained.
func (s *Shipper) Close(drain time.Duration) bool {
	deadline := time.Now().Add(drain)
	drained := false
	for time.Now().Before(deadline) {
		s.mu.Lock()
		empty := len(s.queue) == 0 && s.inFlightRecords == 0 && s.outRecords == 0
		connected := s.connected.Load()
		s.mu.Unlock()
		if empty && connected {
			drained = true
			break
		}
		if !connected {
			break // no standby to drain to; don't burn the timeout
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return drained
}

// enqueue adds a hook event while a connection is live; outside that window
// the handshake diff owns catch-up, so the event is dropped. Overflow trips
// the connection instead of growing without bound.
func (s *Shipper) enqueue(ev shipEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting || s.closed || s.overflowed {
		return
	}
	if len(s.queue) >= s.maxQueueEvents || s.queuedBytes+int64(len(ev.data)) > s.maxQueueBytes {
		s.overflowed = true
		s.overflows.Add(1)
		s.cond.Broadcast()
		return
	}
	s.queue = append(s.queue, ev)
	s.queuedBytes += int64(len(ev.data))
	s.cond.Broadcast()
}

// run is the connection loop: dial, handshake-diff, stream, repeat.
func (s *Shipper) run() {
	first := true
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		if !first {
			s.sleepBackoff()
		}
		first = false
		conn, err := s.dial("tcp", s.target, s.dialTimeout)
		if err != nil {
			continue
		}
		s.redials.Add(1)
		s.feed(conn)
		conn.Close()
		s.connected.Store(false)
		s.mu.Lock()
		s.accepting = false
		s.queue = nil
		s.queuedBytes = 0
		s.out = nil
		s.outRecords, s.outBytes = 0, 0
		s.inFlightRecords, s.inFlightBytes = 0, 0
		s.overflowed = false
		s.mu.Unlock()
	}
}

func (s *Shipper) sleepBackoff() {
	deadline := time.Now().Add(s.retry.Next())
	for time.Now().Before(deadline) {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// feed drives one connection end to end: read the standby's cursors, open
// the queue (so no event between now and the local scan is lost — anything
// already on disk is covered by the diff, anything later by the queue, and
// the overlap deduplicates at the standby), ship the diff, then stream.
func (s *Shipper) feed(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	payload, err := readFrame(br)
	if err != nil {
		return
	}
	standby, err := decodeState(payload)
	if err != nil {
		s.logger.Error("shipper: bad handshake", "err", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.accepting = true
	s.queue = nil
	s.queuedBytes = 0
	s.overflowed = false
	s.mu.Unlock()
	s.connected.Store(true)
	s.retry.Reset() // the link works; future redials start from the base delay
	s.logger.Info("shipper: connected", "target", s.target, "standby_sessions", len(standby))

	// Ack reader: retires outstanding frames, turns resync requests into
	// queued sync events, and wakes the sender on connection death.
	done := make(chan struct{})
	var readerErr atomic.Bool
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(done)
		for {
			payload, err := readFrame(br)
			if err != nil {
				readerErr.Store(true)
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			d := &dec{buf: payload}
			switch typ := d.u8(); typ {
			case repAckT:
				s.ackUpTo(d.u64())
			case repResyncT:
				id := d.str()
				if d.err == nil {
					s.resyncs.Add(1)
					s.enqueue(shipEvent{kind: shipSync, id: id})
				}
			}
		}
	}()

	if err := s.shipDiff(conn, standby); err != nil {
		s.logger.Info("shipper: diff ship failed", "err", err)
		conn.Close()
		<-done
		return
	}

	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed && !s.overflowed && !readerErr.Load() {
			s.cond.Wait()
		}
		if s.closed || s.overflowed || readerErr.Load() {
			s.mu.Unlock()
			break
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.queuedBytes -= int64(len(ev.data))
		s.inFlightRecords++
		s.inFlightBytes += int64(len(ev.data))
		s.mu.Unlock()
		err := s.shipEvent(conn, ev)
		s.mu.Lock()
		s.inFlightRecords--
		s.inFlightBytes -= int64(len(ev.data))
		s.mu.Unlock()
		if err != nil {
			s.logger.Info("shipper: send failed", "err", err)
			break
		}
	}
	conn.Close()
	<-done
}

// shipDiff reconciles the standby against local disk: sessions it lacks or
// holds at another epoch get a full sync, sessions behind on the same epoch
// get the missing WAL byte range, sessions it holds that no longer exist
// locally get a delete.
func (s *Shipper) shipDiff(conn net.Conn, standby []repCursor) error {
	byID := make(map[string]repCursor, len(standby))
	for _, c := range standby {
		byID[c.id] = c
	}
	entries, err := os.ReadDir(s.root)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	local := make(map[string]bool, len(entries))
	for _, e := range entries {
		if !e.IsDir() || !replSafeName(e.Name()) {
			continue
		}
		id := e.Name()
		local[id] = true
		dir := filepath.Join(s.root, id)
		epoch, size, ok := sessionCursor(dir)
		if !ok {
			continue // mid-create; its NoteSync will queue behind us
		}
		sb, have := byID[id]
		switch {
		case !have || sb.epoch != epoch || sb.walSize > size:
			if err := s.sendSync(conn, id); err != nil {
				return err
			}
		case sb.walSize < size:
			delta := make([]byte, size-sb.walSize)
			f, err := os.Open(filepath.Join(dir, WALFile))
			if err != nil {
				return err
			}
			_, rerr := f.ReadAt(delta, sb.walSize)
			f.Close()
			if rerr != nil {
				return rerr
			}
			if err := s.sendAppend(conn, id, epoch, sb.walSize, delta); err != nil {
				return err
			}
		}
	}
	for _, c := range standby {
		if !local[c.id] {
			if err := s.sendDelete(conn, c.id); err != nil {
				return err
			}
		}
	}
	return nil
}

// shipEvent sends one queued event.
func (s *Shipper) shipEvent(conn net.Conn, ev shipEvent) error {
	switch ev.kind {
	case shipSync:
		return s.sendSync(conn, ev.id)
	case shipAppend:
		return s.sendAppend(conn, ev.id, ev.epoch, ev.off, ev.data)
	case shipDelete:
		return s.sendDelete(conn, ev.id)
	}
	return fmt.Errorf("persist: unknown ship event kind %d", ev.kind)
}

func (s *Shipper) sendSync(conn net.Conn, id string) error {
	files, _, _, err := readSessionFiles(filepath.Join(s.root, id))
	if err != nil {
		// The session vanished or won't settle; a later event (delete or the
		// standby's next resync) resolves it. Not a connection error.
		s.logger.Info("shipper: sync skipped", "session", id, "err", err)
		return nil
	}
	seq := s.seq.Add(1)
	n := int64(syncBytes(files))
	s.addOutstanding(seq, 1, n)
	if _, err := writeFrame(conn, encodeSync(seq, id, files)); err != nil {
		return err
	}
	s.syncs.Add(1)
	s.shippedR.Add(1)
	s.shippedB.Add(n)
	return nil
}

func (s *Shipper) sendAppend(conn net.Conn, id string, epoch uint64, off int64, data []byte) error {
	seq := s.seq.Add(1)
	s.addOutstanding(seq, 1, int64(len(data)))
	if _, err := writeFrame(conn, encodeAppend(seq, id, epoch, off, data)); err != nil {
		return err
	}
	s.shippedR.Add(1)
	s.shippedB.Add(int64(len(data)))
	return nil
}

func (s *Shipper) sendDelete(conn net.Conn, id string) error {
	seq := s.seq.Add(1)
	s.addOutstanding(seq, 1, 0)
	if _, err := writeFrame(conn, encodeDelete(seq, id)); err != nil {
		return err
	}
	s.deletes.Add(1)
	s.shippedR.Add(1)
	return nil
}

func (s *Shipper) addOutstanding(seq uint64, records, bytes int64) {
	s.mu.Lock()
	s.out = append(s.out, outstanding{seq: seq, records: records, bytes: bytes})
	s.outRecords += records
	s.outBytes += bytes
	s.mu.Unlock()
}

// ackUpTo retires every outstanding frame with sequence <= seq.
func (s *Shipper) ackUpTo(seq uint64) {
	s.mu.Lock()
	for len(s.out) > 0 && s.out[0].seq <= seq {
		s.outRecords -= s.out[0].records
		s.outBytes -= s.out[0].bytes
		s.out = s.out[1:]
	}
	s.mu.Unlock()
}

// decodeState parses the standby's handshake frame.
func decodeState(payload []byte) ([]repCursor, error) {
	d := &dec{buf: payload}
	if typ := d.u8(); typ != repStateT {
		return nil, fmt.Errorf("persist: expected state frame, got type %d", typ)
	}
	n := int(d.u32())
	if d.err != nil || n > 1<<20 {
		return nil, fmt.Errorf("persist: malformed state frame")
	}
	out := make([]repCursor, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		id := d.str()
		epoch := d.u64()
		size := int64(d.u64())
		out = append(out, repCursor{id: id, epoch: epoch, walSize: size})
	}
	if d.err != nil {
		return nil, d.err
	}
	return out, nil
}
