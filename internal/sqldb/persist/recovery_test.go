package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"justintime/internal/sqldb"
)

// randomMutation applies one random mutation drawn from rng to db via the
// public Exec/InsertRows paths, exactly as a live workload would.
func randomMutation(t *testing.T, db *sqldb.DB, rng *rand.Rand) {
	t.Helper()
	var err error
	switch rng.Intn(6) {
	case 0, 1: // bias toward inserts so the table grows
		_, err = db.Exec("INSERT INTO items VALUES (?, ?, ?, ?)",
			sqldb.Int(rng.Int63n(1000)), sqldb.Text(randWord(rng)),
			sqldb.Float(rng.NormFloat64()), sqldb.Bool(rng.Intn(2) == 0))
	case 2:
		_, err = db.Exec("UPDATE items SET score = score * ? WHERE id < ?",
			sqldb.Float(rng.Float64()+0.5), sqldb.Int(rng.Int63n(1000)))
	case 3:
		_, err = db.Exec("DELETE FROM items WHERE id = ?", sqldb.Int(rng.Int63n(1000)))
	case 4:
		rows := make([][]sqldb.Value, rng.Intn(3)+1)
		for i := range rows {
			rows[i] = []sqldb.Value{
				sqldb.Int(rng.Int63n(1000)), sqldb.Null(),
				sqldb.Float(rng.Float64()), sqldb.Bool(false),
			}
		}
		err = db.InsertRows("items", rows)
	case 5:
		_, err = db.Exec("UPDATE items SET name = ? WHERE ok = TRUE", sqldb.Text(randWord(rng)))
	}
	if err != nil {
		t.Fatal(err)
	}
}

func randWord(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(8)+1)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// TestTornWALRecovery is the crash-recovery property test: it replays a
// random mutation sequence against a persisted database, recording the
// expected state and the WAL length after every mutation, then simulates a
// crash that tears the final record by truncating the log copy at EVERY byte
// offset of that record. Each reopened database must equal snapshot +
// replayed-prefix — all records before the torn one, nothing of the torn
// one.
func TestTornWALRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()

	db := sqldb.New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT, score FLOAT, ok BOOL)")
	db.MustExec("CREATE INDEX items_id ON items (id)")
	db.MustExec("INSERT INTO items VALUES (1, 'seed', 1.0, TRUE)")

	st, err := Create(dir, db, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}

	const nMutations = 10
	// states[i] is the expected dump after i mutations; bounds[i] the WAL
	// length at that point (SyncAlways keeps the file exact after each).
	states := make([]*sqldb.Dump, nMutations+1)
	bounds := make([]int64, nMutations+1)
	states[0] = db.Dump()
	bounds[0] = st.WALSize()
	for i := 1; i <= nMutations; i++ {
		randomMutation(t, db, rng)
		states[i] = db.Dump()
		bounds[i] = st.WALSize()
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walBytes)) != bounds[nMutations] {
		t.Fatalf("WAL file is %d bytes, expected %d", len(walBytes), bounds[nMutations])
	}
	snapBytes, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}

	// reopenAt opens a copy of the store whose WAL is truncated to cut bytes
	// and asserts the recovered state equals states[wantState].
	reopenAt := func(t *testing.T, cut int64, wantState int) {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, SnapshotFile), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, WALFile), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, rst, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		defer rst.Close()
		if got := rdb.Dump(); !reflect.DeepEqual(got, states[wantState]) {
			t.Fatalf("cut at %d: recovered state != snapshot+%d-record prefix", cut, wantState)
		}
		// The torn tail must be gone from the file so appends restart on a
		// clean boundary.
		fi, err := os.Stat(filepath.Join(cdir, WALFile))
		if err != nil {
			t.Fatal(err)
		}
		want := bounds[wantState]
		if cut < walHeaderLen {
			want = walHeaderLen // torn header is rebuilt
		}
		if fi.Size() != want {
			t.Fatalf("cut at %d: WAL not truncated to last good boundary: size %d, want %d", cut, fi.Size(), want)
		}
	}

	// Every byte offset of the LAST record (the crash-torn append).
	last := nMutations
	for cut := bounds[last-1]; cut < bounds[last]; cut++ {
		reopenAt(t, cut, last-1)
	}
	// Whole-file and every earlier record boundary for good measure.
	for i := 0; i <= nMutations; i++ {
		reopenAt(t, bounds[i], i)
	}
	// Mid-record cuts sampled across the whole log, including inside the
	// header.
	for cut := int64(1); cut < bounds[last]; cut += 37 {
		want := 0
		for i := 0; i <= nMutations; i++ {
			if bounds[i] <= cut {
				want = i
			}
		}
		reopenAt(t, cut, want)
	}
}

// TestTornWALThenContinue verifies the store stays usable after recovering
// from a torn tail: new mutations append cleanly and survive another reopen.
func TestTornWALThenContinue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	db := sqldb.New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT, score FLOAT, ok BOOL)")
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		randomMutation(t, db, rng)
	}
	preTear := st.WALSize()
	randomMutation(t, db, rng)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	walPath := filepath.Join(dir, WALFile)
	full, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, (preTear+full.Size())/2); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		randomMutation(t, db2, rng)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	sameDump(t, db2, db3)
}
