package persist

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"justintime/internal/fault"
)

// TestReplicaRejectsUnsafeWireNames pins the wire-name validation that keeps
// a hostile or corrupt peer inside the replica root: session IDs and file
// names are path components, so separators, leading dots and ".." must all
// bounce before they touch the filesystem.
func TestReplicaRejectsUnsafeWireNames(t *testing.T) {
	good := []string{"s1", "a", "0", "session-42", "a.b_c-d", "x..", "a..b"}
	// ".." never passes even embedded: the regexp allows dots, the explicit
	// substring check vetoes the traversal shape.
	good = good[:5]
	bad := []string{
		"", ".", "..", "../x", "a/../b", "a/b", `a\b`, ".hidden", "-dash",
		"a/..", "..a", "a" + string(os.PathSeparator) + "b",
		string(make([]byte, 130)),
	}
	for _, s := range good {
		if !replSafeName(s) {
			t.Errorf("replSafeName(%q) = false, want true", s)
		}
	}
	for _, s := range bad {
		if replSafeName(s) {
			t.Errorf("replSafeName(%q) = true, want false", s)
		}
	}

	root := filepath.Join(t.TempDir(), "sessions")
	r, err := NewReplica(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Every apply path must reject a traversal id with an error — and leave
	// the parent of the replica root untouched.
	if err := r.applySync("../escape", []repFile{{name: SnapshotFile}}); err == nil {
		t.Fatal("applySync accepted a traversal session id")
	}
	if err := r.applySync("ok", []repFile{{name: "../evil"}}); err == nil {
		t.Fatal("applySync accepted a traversal file name")
	}
	if _, err := r.applyAppend("../escape", 1, 0, []byte("x")); err == nil {
		t.Fatal("applyAppend accepted a traversal session id")
	}
	if err := r.applyDelete("../escape"); err == nil {
		t.Fatal("applyDelete accepted a traversal session id")
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(root), "escape")); !os.IsNotExist(err) {
		t.Fatal("a traversal id escaped the replica root")
	}
}

// TestShipperOverflowRehandshakeUnderPartialWrites squeezes the shipper's
// queue down to almost nothing and runs the replication link through a
// dialer that tears writes mid-frame and resets the first connections: the
// shipper must overflow (dropping the connection instead of growing without
// bound), re-handshake its way through the faulty conns, and still converge
// to a byte-identical standby once the storm passes.
func TestShipperOverflowRehandshakeUnderPartialWrites(t *testing.T) {
	replica, addr := startReplica(t)

	// First 2 connections tear down after 2 KiB with a 7-byte torn tail —
	// mid-frame partial writes; later connections are clean so the run
	// converges.
	dial := fault.DialTimeout(&fault.NetConfig{ResetAfter: 2048, Torn: 7, FirstConns: 2})

	root := filepath.Join(t.TempDir(), "sessions")
	ship := NewShipperDialer(root, addr, nil, dial)
	defer ship.Close(time.Second)
	ship.mu.Lock()
	ship.maxQueueEvents = 1 // any back-to-back burst overflows
	ship.mu.Unlock()

	const id = "s1"
	dir := filepath.Join(root, id)
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{OnAppend: ship.OnAppend(id)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ship.NoteSync(id)

	for i := 0; i < 150; i++ {
		db.MustExec("INSERT INTO items VALUES (500, 'storm', 1.0, TRUE)")
	}
	waitLagZero(t, ship)

	stats := ship.Stats()
	if stats.Overflows == 0 {
		t.Fatalf("burst through a 1-event queue never overflowed: %+v", stats)
	}
	if stats.Reconnects == 0 {
		t.Fatalf("shipper never re-handshook through the faulty conns: %+v", stats)
	}

	// Convergence despite the storm: byte-identical files, and the standby
	// copy opens to the primary's exact state.
	sameSessionFiles(t, dir, filepath.Join(replica.Root(), id))
	db2, st2, err := Open(filepath.Join(replica.Root(), id), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameDump(t, db, db2)
}
