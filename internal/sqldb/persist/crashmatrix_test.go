package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"justintime/internal/fault"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
)

// The crash matrix simulates power loss at EVERY I/O boundary of the durable
// lifecycle — create, WAL appends, checkpoint (snapshot + page-file
// writeback + renames), more appends, close — and asserts the recovery
// invariant at each one: reopening with a healthy disk yields exactly the
// state of some prefix of the acknowledged mutations (snapshot + WAL-prefix
// equivalence). A clean instrumented run counts the boundaries; each matrix
// cell then replays the same deterministic workload against a fresh
// directory with CrashBefore(k) armed.

const crashPhaseInserts = 4

// crashInsert is the i-th acknowledged mutation of the workload (0-based).
func crashInsert(db *sqldb.DB, i int) error {
	_, err := db.Exec(fmt.Sprintf("INSERT INTO items VALUES (%d, 'crash-%d', %d.5, TRUE)", 100+i, i, i))
	return err
}

// crashWorkload drives the full lifecycle through fsys, stopping at the
// first error (the injected crash). acked reports how many inserts were
// acknowledged (logged without error); afterCreate fires once the store is
// created, so the caller can record the boundary count of the create phase.
func crashWorkload(t *testing.T, dir string, fsys fault.FS, pool *pager.Pool, afterCreate func()) (acked int, err error) {
	db := fixtureDB(t)
	if pool != nil {
		if perr := db.PageTableFS(fsys, "items", pool, filepath.Join(dir, SpillFileName("items"))); perr != nil {
			return 0, perr
		}
		defer db.ClosePagedStores()
	}
	st, err := Create(dir, db, Options{FS: fsys, Pool: pool})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	if afterCreate != nil {
		afterCreate()
	}
	for i := 0; i < crashPhaseInserts; i++ {
		if err := crashInsert(db, i); err != nil {
			return acked, err
		}
		acked++
	}
	if err := st.Checkpoint(); err != nil {
		return acked, err
	}
	for i := crashPhaseInserts; i < 2*crashPhaseInserts; i++ {
		if err := crashInsert(db, i); err != nil {
			return acked, err
		}
		acked++
	}
	return acked, st.Close()
}

// crashState canonicalizes a database's observable state: every row of the
// fixture tables in a deterministic order. Paged and in-memory tables read
// back through the same query path, so the two variants compare uniformly.
func crashState(t *testing.T, db *sqldb.DB) [2]*sqldb.Result {
	t.Helper()
	items, err := db.Query("SELECT * FROM items ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	empty, err := db.Query("SELECT * FROM empty ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	return [2]*sqldb.Result{items, empty}
}

// crashExpected builds the in-memory twin of the workload after j inserts.
func crashExpected(t *testing.T, j int) [2]*sqldb.Result {
	t.Helper()
	db := fixtureDB(t)
	for i := 0; i < j; i++ {
		if err := crashInsert(db, i); err != nil {
			t.Fatal(err)
		}
	}
	return crashState(t, db)
}

func runCrashMatrix(t *testing.T, paged bool) {
	poolFor := func() *pager.Pool {
		if !paged {
			return nil
		}
		return pager.NewPool(16)
	}

	// Clean instrumented run: count every I/O boundary and note where the
	// create phase ends.
	rec := fault.NewInjector(nil)
	var createOps int64
	acked, err := crashWorkload(t, t.TempDir(), rec, poolFor(), func() { createOps = rec.Ops() })
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if acked != 2*crashPhaseInserts {
		t.Fatalf("clean run acked %d inserts", acked)
	}
	total := rec.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few I/O boundaries: %d", total)
	}
	t.Logf("crash matrix: %d I/O boundaries (%d in create)", total, createOps)

	expected := make([][2]*sqldb.Result, 2*crashPhaseInserts+1)
	for j := range expected {
		expected[j] = crashExpected(t, j)
	}

	for k := int64(0); k < total; k++ {
		dir := filepath.Join(t.TempDir(), "store")
		inj := fault.NewInjector(nil)
		inj.CrashBefore(k)
		acked, err := crashWorkload(t, dir, inj, poolFor(), nil)
		if err != nil && !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("k=%d: workload failed with %v, want the simulated crash", k, err)
		}
		// err == nil happens only near the very last boundaries when this
		// run took marginally fewer ops than the clean run (page writeback
		// order is map-iteration dependent); the run then completed in full
		// and must verify as fully durable (acked == all inserts) below.

		// Recovery runs on a healthy disk, like a restarted process.
		if _, serr := os.Stat(filepath.Join(dir, SnapshotFile)); serr != nil {
			// No committed snapshot: only legal while create itself was cut
			// short — the server sweeps such directories as orphans.
			if k > createOps {
				t.Fatalf("k=%d: snapshot missing after create had committed (create ends at %d)", k, createOps)
			}
			continue
		}
		db2, st2, oerr := Open(dir, Options{Pool: poolFor()})
		if oerr != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, oerr)
		}
		got := crashState(t, db2)
		st2.Close()
		db2.ClosePagedStores()

		// The WAL fsyncs every append (SyncAlways), so every acknowledged
		// insert is durable: the recovered state must hold exactly the acked
		// prefix, or one more — the unacknowledged insert that was in flight
		// when the power went, whose frame may have reached the platter
		// before its failed fsync. Anything else is a lost acknowledged
		// write or phantom state.
		match := -1
		hi := acked + 1
		if hi > 2*crashPhaseInserts {
			hi = 2 * crashPhaseInserts
		}
		for j := acked; j <= hi; j++ {
			if reflect.DeepEqual(got, expected[j]) {
				match = j
				break
			}
		}
		if match == -1 {
			t.Fatalf("k=%d: recovered state is not the acked prefix (acked=%d) nor acked+1", k, acked)
		}
	}
}

func TestCrashMatrix(t *testing.T)      { runCrashMatrix(t, false) }
func TestCrashMatrixPaged(t *testing.T) { runCrashMatrix(t, true) }
