package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
)

// benchRows sizes the candidates-like table: 4000 rows x 8 columns spans
// dozens of pages, so the paged arm's working set is much larger than any
// single query touches.
const benchRows = 4000

// benchTemplate writes one committed store directory holding a bulky
// candidates-shaped table, on slice or paged storage. Copies of it stand in
// for independent sessions.
func benchTemplate(b *testing.B, paged bool) string {
	b.Helper()
	dir := b.TempDir()
	db := sqldb.New()
	db.MustExec("CREATE TABLE candidates (id INT, time INT, diff FLOAT, gap FLOAT, p FLOAT, f0 FLOAT, f1 FLOAT, f2 FLOAT)")
	rows := make([][]sqldb.Value, benchRows)
	for i := range rows {
		rows[i] = []sqldb.Value{
			sqldb.Int(int64(i)), sqldb.Int(int64(i % 3)),
			sqldb.Float(float64(i) * 0.25), sqldb.Float(float64(i) * 0.5),
			sqldb.Float(1 / float64(i+1)), sqldb.Float(float64(i)),
			sqldb.Float(float64(i) + 0.125), sqldb.Float(float64(i) + 0.25),
		}
	}
	if err := db.InsertRows("candidates", rows); err != nil {
		b.Fatal(err)
	}
	var opts Options
	if paged {
		pool := pager.NewPool(16)
		opts.Pool = pool
		if err := db.PageTable("candidates", pool, filepath.Join(dir, SpillFileName("candidates"))); err != nil {
			b.Fatal(err)
		}
	}
	st, err := Create(dir, db, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// copyStoreDir clones a template store directory (flat: snapshot, WAL, page
// and spill files) so each "session" owns its files.
func copyStoreDir(b *testing.B, src, dst string) {
	b.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		b.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResidentFootprint measures heap bytes per resident idle session:
// each iteration opens a fleet of independent stores from disk, holds them
// all live, and reports the GC-settled heap delta divided by the fleet size.
// The slice arm decodes every row into the heap on open; the paged arm
// attaches page files to a shared 256-frame pool (allocated outside the
// measurement window, as one pool serves the whole fleet) and owns only
// fault-in frames bounded by that pool.
func BenchmarkResidentFootprint(b *testing.B) {
	for _, arm := range []struct {
		name  string
		paged bool
	}{{"slice", false}, {"paged", true}} {
		b.Run(arm.name, func(b *testing.B) {
			tmpl := benchTemplate(b, arm.paged)
			const fleet = 32
			var perSession float64
			dbs := make([]*sqldb.DB, fleet)
			stores := make([]*Store, fleet)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var pool *pager.Pool
				if arm.paged {
					pool = pager.NewPool(256)
				}
				root, err := os.MkdirTemp("", "bench-fleet-")
				if err != nil {
					b.Fatal(err)
				}
				dirs := make([]string, fleet)
				for j := range dirs {
					dirs[j] = filepath.Join(root, fmt.Sprintf("s-%04d", j))
					copyStoreDir(b, tmpl, dirs[j])
				}
				runtime.GC()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				b.StartTimer()
				for j := range dirs {
					db, st, err := Open(dirs[j], Options{Pool: pool})
					if err != nil {
						b.Fatal(err)
					}
					dbs[j], stores[j] = db, st
				}
				b.StopTimer()
				runtime.GC()
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				if d := int64(after.HeapAlloc) - int64(before.HeapAlloc); d > 0 {
					perSession = float64(d) / fleet
				}
				for j := range stores {
					if err := stores[j].Close(); err != nil {
						b.Fatal(err)
					}
					dbs[j], stores[j] = nil, nil
				}
				os.RemoveAll(root)
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(perSession, "B/session")
		})
	}
}

// BenchmarkColdFault measures time-to-first-answer for a cold session: open
// the store from disk and run one point query. The slice arm pays full row
// decode up front; the paged arm attaches without decoding and faults pages
// in on demand during the query.
func BenchmarkColdFault(b *testing.B) {
	for _, arm := range []struct {
		name  string
		paged bool
	}{{"slice", false}, {"paged", true}} {
		b.Run(arm.name, func(b *testing.B) {
			tmpl := benchTemplate(b, arm.paged)
			dir := filepath.Join(b.TempDir(), "s-cold")
			copyStoreDir(b, tmpl, dir)
			var pool *pager.Pool
			if arm.paged {
				pool = pager.NewPool(256)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, st, err := Open(dir, Options{Pool: pool})
				if err != nil {
					b.Fatal(err)
				}
				res, err := db.Query("SELECT * FROM candidates WHERE id = ?", sqldb.Int(int64(i%benchRows)))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("point query returned %d rows", len(res.Rows))
				}
				b.StopTimer()
				// Closing evicts this store's frames, so every open is cold.
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
