package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"justintime/internal/fault"
	"justintime/internal/sqldb"
)

// walMagic identifies a WAL file; the trailing byte is the format version.
var walMagic = []byte("JITWAL\x01")

// WAL record types (the payload's first byte, inside the frame).
const (
	walExec        uint8 = 1 // SQL text + bound parameters
	walInsertRows  uint8 = 2 // typed bulk load
	walCreateTable uint8 = 3 // typed table creation
	walCreateIndex uint8 = 4 // typed index creation
)

// SyncMode selects the WAL's durability/latency trade-off.
type SyncMode int

const (
	// SyncAlways fsyncs after every appended record: a mutation that
	// returned to the caller survives an OS crash or power loss. This is
	// the slow, safe default.
	SyncAlways SyncMode = iota
	// SyncBatched pushes every record to the kernel (the log is current
	// after a process crash or kill) but fsyncs only at checkpoints and on
	// close, batching the expensive flushes. An OS crash can lose the tail
	// written since the last fsync — never corrupt it, thanks to the
	// per-record checksums.
	SyncBatched
)

// ParseSyncMode maps the -wal-sync flag values onto a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "batched":
		return SyncBatched, nil
	default:
		return 0, fmt.Errorf("persist: unknown WAL sync mode %q (want always or batched)", s)
	}
}

func (m SyncMode) String() string {
	if m == SyncBatched {
		return "batched"
	}
	return "always"
}

var errWALClosed = errors.New("persist: WAL is closed")

// WAL is an append-only mutation log. It implements sqldb.MutationLogger,
// so attaching it via DB.SetLogger records every mutation applied after the
// attach; Replay applies a log back onto a database. Appends are invoked
// under the database's write lock, which makes the record order the exact
// serialization order of the writes.
type WAL struct {
	mu    sync.Mutex
	f     fault.File
	w     *bufio.Writer
	mode  SyncMode
	size  int64  // current valid length, including header
	epoch uint64 // checkpoint epoch carried in the file header
	// onAppend, when set, observes every appended record as the exact framed
	// bytes that landed in the file, with the epoch and the file offset the
	// frame starts at — the hook WAL shipping attaches to. Called in append
	// order under the WAL's lock, after the record is durable per the sync
	// mode.
	onAppend func(epoch uint64, off int64, frame []byte)
	onWrite  func(int)
	onFsync  func(time.Duration)
	closed   bool
}

// syncTimed fsyncs the log file, reporting the latency to the onFsync hook.
// Callers hold w.mu.
func (w *WAL) syncTimed() error {
	start := time.Now()
	err := w.f.Sync()
	if err == nil && w.onFsync != nil {
		w.onFsync(time.Since(start))
	}
	return err
}

// walHeaderLen is the file header: magic (8 bytes) + checkpoint epoch (u64).
const walHeaderLen = 16

// openWAL opens (or creates) the log at path, replays every intact record
// onto db, truncates a torn tail so the next append starts on a clean
// boundary, and returns the WAL positioned for appending. db must not have a
// logger attached while it replays.
//
// epoch is the checkpoint epoch of the snapshot the log extends. A log whose
// header carries a different epoch is stale — a crash interrupted a
// checkpoint after the new snapshot landed but before the log was reset —
// and its contents, already folded into the snapshot, are discarded instead
// of double-applied.
func openWAL(fsys fault.FS, path string, db *sqldb.DB, epoch uint64, mode SyncMode, onWrite func(int)) (w *WAL, replayed int, err error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()

	good, replayed, err := replayOnto(f, db, epoch)
	if err != nil {
		return nil, 0, err
	}
	if good == 0 {
		// Empty file, torn header, or a stale epoch: start fresh. Fsync the
		// directory too — the file may have just been created, and without
		// the directory entry on stable storage a power loss could drop the
		// whole log even though every record was fsynced.
		if err = writeWALHeader(f, epoch); err != nil {
			return nil, 0, err
		}
		if err = syncDir(fsys, filepath.Dir(path)); err != nil {
			return nil, 0, err
		}
		good = walHeaderLen
	} else if err = f.Truncate(good); err != nil {
		// Drop the torn tail (no-op when the file ends on a boundary).
		return nil, 0, fmt.Errorf("persist: wal: truncating torn tail: %w", err)
	}
	if _, err = f.Seek(good, io.SeekStart); err != nil {
		return nil, 0, err
	}
	return &WAL{
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<16),
		mode:    mode,
		size:    good,
		epoch:   epoch,
		onWrite: onWrite,
	}, replayed, nil
}

func writeWALHeader(f fault.File, epoch uint64) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[len(walMagic):], epoch)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// replayOnto reads the log from the start, applying every intact record to
// db. It returns the offset just past the last intact record (0 for an
// empty, headerless or stale-epoch file) and the number of records applied.
// Statement-level errors during replay are ignored by design: a logged
// statement either succeeded at origin or partially applied
// deterministically, so re-running it on the identical prior state
// reproduces the identical effect — and the identical error.
func replayOnto(f fault.File, db *sqldb.DB, epoch uint64) (good int64, replayed int, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil // empty or torn before the header: treat as empty
	}
	if !bytes.Equal(hdr[:len(walMagic)], walMagic) {
		return 0, 0, fmt.Errorf("persist: not a WAL file (bad magic)")
	}
	if binary.LittleEndian.Uint64(hdr[len(walMagic):]) != epoch {
		return 0, 0, nil // stale epoch: snapshot already contains these records
	}
	good = walHeaderLen
	for {
		payload, ferr := readFrame(r)
		if ferr != nil {
			// io.EOF is a clean end; errTorn is the crash tail we tolerate.
			// Anything else is the device failing mid-read: surface it
			// instead of silently treating the log as shorter than it is.
			if errors.Is(ferr, io.EOF) || errors.Is(ferr, errTorn) {
				return good, replayed, nil
			}
			return 0, 0, fmt.Errorf("persist: wal read: %w", ferr)
		}
		if err := applyRecord(db, payload); err != nil {
			return 0, 0, err
		}
		good += int64(8 + len(payload))
		replayed++
	}
}

// applyRecord decodes one WAL payload and applies it to db. Only malformed
// records error; see replayOnto for why execution errors are tolerated.
func applyRecord(db *sqldb.DB, payload []byte) error {
	d := &dec{buf: payload}
	switch typ := d.u8(); typ {
	case walExec:
		sql := d.str()
		n := int(d.u32())
		if d.err != nil || n > maxRecord {
			return fmt.Errorf("persist: malformed exec record")
		}
		params := make([]sqldb.Value, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			params = append(params, d.value())
		}
		if d.err != nil {
			return d.err
		}
		_, _ = db.Exec(sql, params...)
		return nil
	case walInsertRows:
		table := d.str()
		rows := d.rows()
		if d.err != nil {
			return d.err
		}
		return db.InsertRows(table, rows)
	case walCreateTable:
		name := d.str()
		cols := d.cols()
		if d.err != nil {
			return d.err
		}
		return db.CreateTable(name, cols)
	case walCreateIndex:
		name, table, column := d.str(), d.str(), d.str()
		if d.err != nil {
			return d.err
		}
		return db.CreateIndex(name, table, column)
	default:
		return fmt.Errorf("persist: unknown WAL record type %d", typ)
	}
}

// append frames and writes one payload, honoring the sync mode.
func (w *WAL) append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	off := w.size
	var frame []byte
	var n int
	var err error
	if w.onAppend != nil {
		// Materialize the frame so the shipping hook sees the exact bytes
		// that landed on disk (offset-addressed replication needs them
		// verbatim).
		frame = frameBytes(payload)
		_, err = w.w.Write(frame)
		n = len(frame)
	} else {
		n, err = writeFrame(w.w, payload)
	}
	if err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	// Always drain the bufio layer so the kernel has the record (a killed
	// process loses nothing); fsync per record only in SyncAlways.
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("persist: wal flush: %w", err)
	}
	if w.mode == SyncAlways {
		if err := w.syncTimed(); err != nil {
			return fmt.Errorf("persist: wal fsync: %w", err)
		}
	}
	w.size += int64(n)
	if w.onWrite != nil {
		w.onWrite(n)
	}
	if w.onAppend != nil {
		w.onAppend(w.epoch, off, frame)
	}
	return nil
}

// LogExec implements sqldb.MutationLogger.
func (w *WAL) LogExec(sql string, params []sqldb.Value) error {
	e := &enc{}
	e.u8(walExec)
	e.str(sql)
	e.u32(uint32(len(params)))
	for _, p := range params {
		e.value(p)
	}
	return w.append(e.buf)
}

// LogInsertRows implements sqldb.MutationLogger.
func (w *WAL) LogInsertRows(table string, rows [][]sqldb.Value) error {
	e := &enc{}
	e.u8(walInsertRows)
	e.str(table)
	e.rows(rows)
	return w.append(e.buf)
}

// LogCreateTable implements sqldb.MutationLogger.
func (w *WAL) LogCreateTable(name string, cols []sqldb.Column) error {
	e := &enc{}
	e.u8(walCreateTable)
	e.str(name)
	e.cols(cols)
	return w.append(e.buf)
}

// LogCreateIndex implements sqldb.MutationLogger.
func (w *WAL) LogCreateIndex(name, table, column string) error {
	e := &enc{}
	e.u8(walCreateIndex)
	e.str(name)
	e.str(table)
	e.str(column)
	return w.append(e.buf)
}

// Sync forces buffered records to stable storage (a batched-mode flush
// point).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.syncTimed()
}

// Reset empties the log back to a bare header carrying the new checkpoint
// epoch, after its contents have been folded into a snapshot. Callers must
// guarantee no concurrent appends (the Store resets inside
// DB.CheckpointWith, which excludes all writers).
//
// A failed reset (say, disk full after the truncate) poisons the log: the
// file's shape is no longer known, so rather than appending at a stale
// offset — or under a stale epoch the next Open would discard as already
// checkpointed — the WAL closes itself and every later append reports the
// durability loss to its caller. The disk state stays consistent either
// way: the new snapshot is complete, and whatever half-reset log sits next
// to it is ignored on Open (torn or stale-epoch header).
func (w *WAL) Reset(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	w.w.Reset(w.f) // discard any buffered bytes; they are in the snapshot now
	if err := writeWALHeader(w.f, epoch); err != nil {
		return w.poisonLocked(err)
	}
	if _, err := w.f.Seek(walHeaderLen, io.SeekStart); err != nil {
		return w.poisonLocked(err)
	}
	w.size = walHeaderLen
	w.epoch = epoch
	return nil
}

// poisonLocked permanently closes a WAL whose on-disk shape is unknown,
// wrapping cause so the caller sees both the trigger and the consequence.
func (w *WAL) poisonLocked(cause error) error {
	w.closed = true
	_ = w.f.Close()
	return fmt.Errorf("persist: wal unusable after failed reset (further mutations will not be logged): %w", cause)
}

// Size returns the current log length in bytes, header included.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close flushes, fsyncs and closes the log file. Further appends error.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.w.Flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
