package persist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"justintime/internal/fault"
	"justintime/internal/obs"
	"justintime/internal/sqldb"
	"justintime/internal/sqldb/pager"
)

const (
	// SnapshotFile is the snapshot's file name inside a store directory.
	SnapshotFile = "snapshot.db"
	// WALFile is the write-ahead log's file name inside a store directory.
	WALFile = "wal.log"
)

// Options tunes a Store.
type Options struct {
	// Sync selects the WAL fsync policy (default SyncAlways).
	Sync SyncMode
	// OnWALWrite, when set, observes every appended WAL record's framed
	// size in bytes — the hook metrics counters attach to.
	OnWALWrite func(bytes int)
	// OnFsync, when set, observes the latency of every WAL fsync (per-record
	// in SyncAlways mode, per-flush-point in SyncBatched) — the hook the
	// /metrics fsync histogram attaches to.
	OnFsync func(d time.Duration)
	// OnAppend, when set, observes every appended WAL record as the exact
	// framed bytes written to the file, with the checkpoint epoch and the
	// file offset the frame starts at. Called in append order under the
	// WAL's lock — the hook replication shipping attaches to.
	OnAppend func(epoch uint64, off int64, frame []byte)
	// Pool, when set, rehydrates paged tables by attaching their page files
	// to this buffer pool instead of decoding every row: a cold open costs
	// only the snapshot's schema records, and rows fault in page by page as
	// queries touch them. Without a pool, paged snapshots still open — the
	// rows are materialized into the default slice store.
	Pool *pager.Pool
	// FS is the filesystem every snapshot, WAL and page file operation goes
	// through. Nil means the real one (fault.OS); tests and the chaos
	// harness install a fault.Injector here.
	FS fault.FS
}

// Store is the durable home of one database: a snapshot of its state at the
// last checkpoint plus a WAL of every mutation since, together under one
// directory. While open, the store is attached to the database as its
// mutation logger; Checkpoint folds the WAL into a fresh snapshot; Close
// detaches and releases the files.
type Store struct {
	dir string
	fs  fault.FS

	mu     sync.Mutex
	db     *sqldb.DB
	wal    *WAL
	epoch  uint64 // checkpoint generation of the current snapshot + WAL pair
	closed bool
}

// Create initializes dir as the durable home of db: it snapshots db's
// current state and attaches an empty WAL, so every later mutation is
// logged. Any stale temporary files in dir are removed first. Paged tables
// checkpoint their page files alongside the snapshot (under the same
// exclusive lock), so Create is their first durability point too.
func Create(dir string, db *sqldb.DB, opts Options) (*Store, error) {
	fsys := fault.Of(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	removeTempFiles(fsys, dir)
	const firstEpoch = 1
	if err := db.CheckpointWith(func(d *sqldb.Dump) error {
		return writeState(fsys, dir, d, firstEpoch)
	}); err != nil {
		return nil, err
	}
	removeStalePageFiles(fsys, dir, firstEpoch)
	// A fresh store must not inherit records from a previous life of the
	// directory: drop any existing WAL before opening.
	if err := fsys.Remove(filepath.Join(dir, WALFile)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return attach(fsys, dir, db, firstEpoch, opts)
}

// writeState persists one consistent state under the DB's exclusive lock:
// every paged table's pages first (to epoch-named page files), then the
// snapshot referencing them. The snapshot's atomic rename is the commit
// point — a crash before it leaves the previous epoch's files authoritative.
func writeState(fsys fault.FS, dir string, d *sqldb.Dump, epoch uint64) error {
	for i := range d.Tables {
		td := &d.Tables[i]
		if td.Paged == nil {
			continue
		}
		if err := td.Paged.CheckpointTo(filepath.Join(dir, PagesFileName(td.Name, epoch))); err != nil {
			return err
		}
	}
	return writeSnapshotFS(fsys, filepath.Join(dir, SnapshotFile), d, epoch)
}

// removeStalePageFiles deletes pages-*.db files of any epoch other than
// keepEpoch — the old generation after a successful checkpoint, or leftovers
// from a checkpoint that crashed between writing page files and the
// snapshot rename.
func removeStalePageFiles(fsys fault.FS, dir string, keepEpoch uint64) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	suffix := fmt.Sprintf("-%d.db", keepEpoch)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "pages-") || !strings.HasSuffix(name, ".db") {
			continue
		}
		if !strings.HasSuffix(name, suffix) {
			_ = fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// Open loads the database persisted in dir: the snapshot, then every intact
// WAL record of the snapshot's epoch on top (a torn final record — the
// signature of a crash mid-append — is dropped and truncated away; a
// stale-epoch WAL left by a crash mid-checkpoint is discarded whole). The
// returned database has the store attached as its logger, so mutations keep
// accruing to the WAL.
func Open(dir string, opts Options) (*sqldb.DB, *Store, error) {
	fsys := fault.Of(opts.FS)
	removeTempFiles(fsys, dir)
	dump, refs, epoch, err := readSnapshotRefs(fsys, filepath.Join(dir, SnapshotFile))
	if err != nil {
		return nil, nil, err
	}
	removeStalePageFiles(fsys, dir, epoch)
	pagedAt := make(map[int]*pagedTableRef, len(refs))
	for i := range refs {
		pagedAt[refs[i].tableIndex] = &refs[i]
	}
	db := sqldb.New()
	fail := func(err error) (*sqldb.DB, *Store, error) {
		db.ClosePagedStores()
		return nil, nil, err
	}
	for i, td := range dump.Tables {
		ref := pagedAt[i]
		switch {
		case ref != nil && opts.Pool != nil:
			// Attach the checkpointed page file: no row decode here at all.
			// The spill is volatile by design (WAL replay regenerates any
			// post-checkpoint state), so a leftover from a previous life is
			// removed, not read.
			spill := filepath.Join(dir, SpillFileName(td.Name))
			_ = fsys.Remove(spill)
			pt, err := sqldb.OpenPagedTableFS(fsys, opts.Pool, filepath.Join(dir, ref.file), spill, ref.pageRows)
			if err != nil {
				return fail(err)
			}
			if err := db.CreatePagedTable(td.Name, td.Cols, pt); err != nil {
				pt.Close()
				return fail(fmt.Errorf("persist: restoring table %q: %w", td.Name, err))
			}
			continue
		case ref != nil:
			// No pool on this host: materialize the pages into the slice
			// store so the wire format stays readable everywhere.
			if td.Rows, err = readPagedRows(fsys, filepath.Join(dir, ref.file), ref.pageRows); err != nil {
				return fail(err)
			}
		}
		if err := db.CreateTable(td.Name, td.Cols); err != nil {
			return fail(fmt.Errorf("persist: restoring table %q: %w", td.Name, err))
		}
		if len(td.Rows) > 0 {
			if err := db.InsertRows(td.Name, td.Rows); err != nil {
				return fail(fmt.Errorf("persist: restoring rows of %q: %w", td.Name, err))
			}
		}
	}
	for _, ix := range dump.Indexes {
		if err := db.CreateIndex(ix.Name, ix.Table, ix.Column); err != nil {
			return fail(fmt.Errorf("persist: restoring index %q: %w", ix.Name, err))
		}
	}
	// Planner statistics ride the snapshot so a rehydrated session costs its
	// first plans with real estimates — without rebuilding any index, which
	// on a pool-attached paged table would fault in every row. Best-effort:
	// a mismatching record (schema changed under an old snapshot) is skipped.
	for _, sd := range dump.Stats {
		db.RestoreIndexStats(sd)
	}
	st, err := attach(fsys, dir, db, epoch, opts)
	if err != nil {
		return fail(err)
	}
	return db, st, nil
}

// SpillFileName is the sibling file receiving a paged table's dirty-page
// writebacks between checkpoints. It carries no epoch: its contents are
// meaningless across a restart.
func SpillFileName(table string) string { return "spill-" + table + ".db" }

// attach opens the WAL (replaying it onto db) and wires the store up as the
// database's mutation logger.
func attach(fsys fault.FS, dir string, db *sqldb.DB, epoch uint64, opts Options) (*Store, error) {
	wal, _, err := openWAL(fsys, filepath.Join(dir, WALFile), db, epoch, opts.Sync, opts.OnWALWrite)
	if err != nil {
		return nil, err
	}
	wal.onFsync = opts.OnFsync
	wal.onAppend = opts.OnAppend
	st := &Store{dir: dir, fs: fsys, db: db, wal: wal, epoch: epoch}
	db.SetLogger(wal)
	return st, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// WALSize returns the WAL's current length in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// Dirty reports whether any mutation has been logged since the last
// checkpoint (or since Create/Open). A clean store's snapshot already equals
// the live database, so callers evicting a read-only session can skip the
// snapshot write + fsync entirely.
func (s *Store) Dirty() bool { return s.wal.Size() > walHeaderLen }

// Sync forces any batched WAL records to stable storage.
func (s *Store) Sync() error { return s.wal.Sync() }

// Checkpoint folds the WAL into a fresh snapshot: under the database's
// exclusive lock (no mutation, and therefore no WAL append, can interleave)
// it writes the current state as the snapshot of the next epoch, then resets
// the WAL to a bare header carrying that epoch. Every crash window is
// covered: before the snapshot rename, the old snapshot + same-epoch WAL
// replay as before; between rename and reset, the new snapshot sees the old
// WAL's epoch as stale and discards it (its effects are inside the
// snapshot); after the reset, the pair is simply the new epoch.
func (s *Store) Checkpoint() error { return s.CheckpointCtx(context.Background()) }

// CheckpointCtx is Checkpoint with trace propagation: when ctx carries an
// active obs.Span, the snapshot write and the WAL reset land on the trace as
// timed child spans, with the pre-fold WAL size as an attribute.
func (s *Store) CheckpointCtx(ctx context.Context) error {
	_, span := obs.Start(ctx, "persist.checkpoint")
	defer span.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store is closed")
	}
	span.SetAttrInt("wal_bytes", s.wal.Size()-walHeaderLen)
	next := s.epoch + 1
	err := s.db.CheckpointWith(func(d *sqldb.Dump) error {
		snapStart := time.Now()
		if err := writeState(s.fs, s.dir, d, next); err != nil {
			return err
		}
		span.Event("snapshot.write", time.Since(snapStart))
		resetStart := time.Now()
		if err := s.wal.Reset(next); err != nil {
			return err
		}
		span.Event("wal.reset", time.Since(resetStart))
		return nil
	})
	if err == nil {
		s.epoch = next
		removeStalePageFiles(s.fs, s.dir, next)
	}
	return err
}

// Close detaches the store from its database and closes the WAL. The files
// stay on disk for a later Open; pass through Checkpoint first to fold the
// WAL down. Mutations applied after Close are not persisted (the logger is
// detached), so callers must stop writers first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.db.SetLogger(nil)
	err := s.wal.Close()
	// Release paged stores (pool frames, page/spill descriptors). A query
	// racing this close fails with a clean "file is closed" error.
	if cerr := s.db.ClosePagedStores(); err == nil {
		err = cerr
	}
	return err
}

// Remove deletes a store directory and everything in it. Use for session
// destruction; the store must be closed first if it was open.
func Remove(dir string) error {
	return os.RemoveAll(dir)
}

// removeTempFiles clears stale atomic-write leftovers (*.tmp) from dir, so
// a crash between temp-write and rename never accumulates orphans.
func removeTempFiles(fsys fault.FS, dir string) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			_ = fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
