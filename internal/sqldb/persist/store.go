package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"justintime/internal/sqldb"
)

const (
	// SnapshotFile is the snapshot's file name inside a store directory.
	SnapshotFile = "snapshot.db"
	// WALFile is the write-ahead log's file name inside a store directory.
	WALFile = "wal.log"
)

// Options tunes a Store.
type Options struct {
	// Sync selects the WAL fsync policy (default SyncAlways).
	Sync SyncMode
	// OnWALWrite, when set, observes every appended WAL record's framed
	// size in bytes — the hook metrics counters attach to.
	OnWALWrite func(bytes int)
}

// Store is the durable home of one database: a snapshot of its state at the
// last checkpoint plus a WAL of every mutation since, together under one
// directory. While open, the store is attached to the database as its
// mutation logger; Checkpoint folds the WAL into a fresh snapshot; Close
// detaches and releases the files.
type Store struct {
	dir string

	mu     sync.Mutex
	db     *sqldb.DB
	wal    *WAL
	epoch  uint64 // checkpoint generation of the current snapshot + WAL pair
	closed bool
}

// Create initializes dir as the durable home of db: it snapshots db's
// current state and attaches an empty WAL, so every later mutation is
// logged. Any stale temporary files in dir are removed first.
func Create(dir string, db *sqldb.DB, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	removeTempFiles(dir)
	const firstEpoch = 1
	if err := WriteSnapshot(filepath.Join(dir, SnapshotFile), db.Dump(), firstEpoch); err != nil {
		return nil, err
	}
	// A fresh store must not inherit records from a previous life of the
	// directory: drop any existing WAL before opening.
	if err := os.Remove(filepath.Join(dir, WALFile)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return attach(dir, db, firstEpoch, opts)
}

// Open loads the database persisted in dir: the snapshot, then every intact
// WAL record of the snapshot's epoch on top (a torn final record — the
// signature of a crash mid-append — is dropped and truncated away; a
// stale-epoch WAL left by a crash mid-checkpoint is discarded whole). The
// returned database has the store attached as its logger, so mutations keep
// accruing to the WAL.
func Open(dir string, opts Options) (*sqldb.DB, *Store, error) {
	removeTempFiles(dir)
	dump, epoch, err := ReadSnapshot(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return nil, nil, err
	}
	db, err := sqldb.NewFromDump(dump)
	if err != nil {
		return nil, nil, err
	}
	st, err := attach(dir, db, epoch, opts)
	if err != nil {
		return nil, nil, err
	}
	return db, st, nil
}

// attach opens the WAL (replaying it onto db) and wires the store up as the
// database's mutation logger.
func attach(dir string, db *sqldb.DB, epoch uint64, opts Options) (*Store, error) {
	wal, _, err := openWAL(filepath.Join(dir, WALFile), db, epoch, opts.Sync, opts.OnWALWrite)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, db: db, wal: wal, epoch: epoch}
	db.SetLogger(wal)
	return st, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// WALSize returns the WAL's current length in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// Dirty reports whether any mutation has been logged since the last
// checkpoint (or since Create/Open). A clean store's snapshot already equals
// the live database, so callers evicting a read-only session can skip the
// snapshot write + fsync entirely.
func (s *Store) Dirty() bool { return s.wal.Size() > walHeaderLen }

// Sync forces any batched WAL records to stable storage.
func (s *Store) Sync() error { return s.wal.Sync() }

// Checkpoint folds the WAL into a fresh snapshot: under the database's
// exclusive lock (no mutation, and therefore no WAL append, can interleave)
// it writes the current state as the snapshot of the next epoch, then resets
// the WAL to a bare header carrying that epoch. Every crash window is
// covered: before the snapshot rename, the old snapshot + same-epoch WAL
// replay as before; between rename and reset, the new snapshot sees the old
// WAL's epoch as stale and discards it (its effects are inside the
// snapshot); after the reset, the pair is simply the new epoch.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store is closed")
	}
	next := s.epoch + 1
	err := s.db.CheckpointWith(func(d *sqldb.Dump) error {
		if err := WriteSnapshot(filepath.Join(s.dir, SnapshotFile), d, next); err != nil {
			return err
		}
		return s.wal.Reset(next)
	})
	if err == nil {
		s.epoch = next
	}
	return err
}

// Close detaches the store from its database and closes the WAL. The files
// stay on disk for a later Open; pass through Checkpoint first to fold the
// WAL down. Mutations applied after Close are not persisted (the logger is
// detached), so callers must stop writers first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.db.SetLogger(nil)
	return s.wal.Close()
}

// Remove deletes a store directory and everything in it. Use for session
// destruction; the store must be closed first if it was open.
func Remove(dir string) error {
	return os.RemoveAll(dir)
}

// removeTempFiles clears stale atomic-write leftovers (*.tmp) from dir, so
// a crash between temp-write and rename never accumulates orphans.
func removeTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
