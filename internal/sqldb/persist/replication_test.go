package persist

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// startReplica spins up a Replica on an ephemeral localhost listener.
func startReplica(t *testing.T) (*Replica, string) {
	t.Helper()
	r, err := NewReplica(filepath.Join(t.TempDir(), "sessions"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Close() })
	return r, ln.Addr().String()
}

// waitLagZero polls until the shipper is connected with zero lag — the
// quiesced steady state — or fails the test.
func waitLagZero(t *testing.T, s *Shipper) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.Connected && st.LagRecords == 0 && st.LagBytes == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replication lag did not drain: %+v", s.Stats())
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// sameSessionFiles asserts the primary and replica copies of a session are
// byte-identical file for file (the physical-replication contract).
func sameSessionFiles(t *testing.T, primaryDir, replicaDir string) {
	t.Helper()
	entries, err := os.ReadDir(primaryDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) == ".tmp" || len(name) > 6 && name[:6] == "spill-" {
			continue
		}
		p := readFileT(t, filepath.Join(primaryDir, name))
		r := readFileT(t, filepath.Join(replicaDir, name))
		if !bytes.Equal(p, r) {
			t.Fatalf("file %s differs: primary %d bytes, replica %d bytes", name, len(p), len(r))
		}
	}
}

// TestReplicationStreamsAndLagDrains covers the happy path end to end:
// handshake sync ships the initial file set, live appends stream as exact
// framed bytes, and after traffic quiesces the lag gauges read zero with the
// replica byte-identical to the primary and openable as a real store.
func TestReplicationStreamsAndLagDrains(t *testing.T) {
	replica, addr := startReplica(t)
	root := filepath.Join(t.TempDir(), "sessions")
	ship := NewShipper(root, addr, nil)
	defer ship.Close(time.Second)

	const id = "s1"
	dir := filepath.Join(root, id)
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{OnAppend: ship.OnAppend(id)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ship.NoteSync(id)

	// Let the handshake sync land before writing: otherwise the file-set
	// ship can already contain the inserts' WAL records and the streamed
	// appends all skip as idempotent duplicates (AppliedRecords would
	// legitimately read 0).
	syncDeadline := time.Now().Add(5 * time.Second)
	for replica.Stats().Syncs == 0 {
		if time.Now().After(syncDeadline) {
			t.Fatal("initial sync never reached the replica")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 25; i++ {
		db.MustExec("INSERT INTO items VALUES (100, 'streamed', 1.0, TRUE)")
	}
	waitLagZero(t, ship)

	sameSessionFiles(t, dir, filepath.Join(replica.Root(), id))

	// The replica's copy must open as an ordinary store and replay to the
	// primary's exact state (this is what promotion does).
	db2, st2, err := Open(filepath.Join(replica.Root(), id), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameDump(t, db, db2)

	if rs := replica.Stats(); rs.AppliedRecords == 0 || rs.Syncs == 0 {
		t.Fatalf("replica applied nothing: %+v", rs)
	}
}

// TestReplicationTornTailResumes corrupts the replica's WAL mid-record (the
// shape a standby crash leaves) and reconnects: the handshake must truncate
// the torn tail, report the record-aligned cursor, and resume from exactly
// there — records already held are not applied twice.
func TestReplicationTornTailResumes(t *testing.T) {
	replica, addr := startReplica(t)
	root := filepath.Join(t.TempDir(), "sessions")

	// Swappable shipper behind a stable hook, so the store can outlive the
	// first connection the way a real primary outlives a standby restart.
	var cur atomic.Pointer[Shipper]
	const id = "s1"
	hook := func(epoch uint64, off int64, frame []byte) {
		if s := cur.Load(); s != nil {
			s.OnAppend(id)(epoch, off, frame)
		}
	}

	ship1 := NewShipper(root, addr, nil)
	cur.Store(ship1)
	dir := filepath.Join(root, id)
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{OnAppend: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ship1.NoteSync(id)
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO items VALUES (200, 'one', 2.0, FALSE)")
	}
	waitLagZero(t, ship1)
	cur.Store(nil)
	ship1.Close(time.Second)

	// Tear the replica's WAL mid-record and let the primary advance while
	// disconnected.
	repWAL := filepath.Join(replica.Root(), id, WALFile)
	fi, err := os.Stat(repWAL)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(repWAL, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO items VALUES (201, 'two', 3.0, TRUE)")
	}

	ship2 := NewShipper(root, addr, nil)
	cur.Store(ship2)
	defer ship2.Close(time.Second)
	waitLagZero(t, ship2)

	sameSessionFiles(t, dir, filepath.Join(replica.Root(), id))
	db2, st2, err := Open(filepath.Join(replica.Root(), id), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// Double-applied INSERTs would show up as extra rows; the dumps must be
	// exactly equal.
	sameDump(t, db, db2)
}

// TestReplicationCheckpointEpochBump checkpoints the primary (epoch bump +
// WAL reset) and ships the new file set: the standby must reset to the new
// epoch — bare WAL, new snapshot — and keep streaming the new epoch's
// appends.
func TestReplicationCheckpointEpochBump(t *testing.T) {
	replica, addr := startReplica(t)
	root := filepath.Join(t.TempDir(), "sessions")
	ship := NewShipper(root, addr, nil)
	defer ship.Close(time.Second)

	const id = "s1"
	dir := filepath.Join(root, id)
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{OnAppend: ship.OnAppend(id)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ship.NoteSync(id)
	for i := 0; i < 8; i++ {
		db.MustExec("INSERT INTO items VALUES (300, 'pre', 4.0, TRUE)")
	}
	waitLagZero(t, ship)

	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ship.NoteSync(id) // what the serving layer announces after every checkpoint
	waitLagZero(t, ship)

	repDir := filepath.Join(replica.Root(), id)
	epoch, err := readSnapshotEpoch(filepath.Join(repDir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("replica snapshot epoch = %d, want 2", epoch)
	}
	if fi, err := os.Stat(filepath.Join(repDir, WALFile)); err != nil || fi.Size() != walHeaderLen {
		t.Fatalf("replica WAL not reset: size %v err %v", fi, err)
	}

	// New-epoch appends keep streaming.
	db.MustExec("INSERT INTO items VALUES (301, 'post', 5.0, FALSE)")
	waitLagZero(t, ship)
	sameSessionFiles(t, dir, repDir)
}

// TestReplicaApplyCursorRules pins the offset/epoch idempotency rules of
// applyAppend without a network: duplicates are ignored byte-for-byte, gaps
// and future epochs request a resync, stale epochs are dropped silently.
func TestReplicaApplyCursorRules(t *testing.T) {
	root := filepath.Join(t.TempDir(), "sessions")
	const id = "s1"
	dir := filepath.Join(root, id)
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO items VALUES (400, 'x', 1.0, TRUE)")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReplica(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	wal := readFileT(t, filepath.Join(dir, WALFile))
	size := int64(len(wal))

	// Exact duplicate of an already-held range: ignored, file unchanged.
	resync, err := r.applyAppend(id, 1, walHeaderLen, wal[walHeaderLen:])
	if err != nil || resync {
		t.Fatalf("duplicate apply: resync=%v err=%v", resync, err)
	}
	if got := readFileT(t, filepath.Join(dir, WALFile)); !bytes.Equal(got, wal) {
		t.Fatalf("duplicate apply mutated the WAL")
	}

	// Gap past the cursor: resync requested, nothing written.
	if resync, err = r.applyAppend(id, 1, size+64, []byte("xxxx")); err != nil || !resync {
		t.Fatalf("gap apply: resync=%v err=%v", resync, err)
	}
	// Epoch ahead of the local snapshot: resync requested.
	if resync, err = r.applyAppend(id, 2, size, []byte("xxxx")); err != nil || !resync {
		t.Fatalf("future-epoch apply: resync=%v err=%v", resync, err)
	}
	// Epoch behind: a pre-checkpoint straggler, dropped without resync.
	if resync, err = r.applyAppend(id, 0, size, []byte("xxxx")); err != nil || resync {
		t.Fatalf("stale-epoch apply: resync=%v err=%v", resync, err)
	}
	if got := readFileT(t, filepath.Join(dir, WALFile)); !bytes.Equal(got, wal) {
		t.Fatalf("rejected applies mutated the WAL")
	}

	// Overlapping tail: only the unseen suffix lands.
	extra := frameBytes([]byte{9, 9, 9})
	combined := append(append([]byte{}, wal[walHeaderLen:]...), extra...)
	if resync, err = r.applyAppend(id, 1, walHeaderLen, combined); err != nil || resync {
		t.Fatalf("overlap apply: resync=%v err=%v", resync, err)
	}
	want := append(append([]byte{}, wal...), extra...)
	if got := readFileT(t, filepath.Join(dir, WALFile)); !bytes.Equal(got, want) {
		t.Fatalf("overlap apply wrote wrong bytes: %d vs want %d", len(got), len(want))
	}
}

// TestReplicaDeleteAndDiffDelete covers session removal: a streamed delete
// frame removes the standby copy, and the handshake diff deletes standby
// sessions the primary no longer has.
func TestReplicaDeleteAndDiffDelete(t *testing.T) {
	replica, addr := startReplica(t)
	root := filepath.Join(t.TempDir(), "sessions")
	ship := NewShipper(root, addr, nil)
	defer ship.Close(time.Second)

	const id = "s1"
	dir := filepath.Join(root, id)
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{OnAppend: ship.OnAppend(id)})
	if err != nil {
		t.Fatal(err)
	}
	ship.NoteSync(id)
	waitLagZero(t, ship)
	if _, err := os.Stat(filepath.Join(replica.Root(), id, SnapshotFile)); err != nil {
		t.Fatalf("replica missing session before delete: %v", err)
	}

	st.Close()
	if err := Remove(dir); err != nil {
		t.Fatal(err)
	}
	ship.NoteDelete(id)
	waitLagZero(t, ship)
	if _, err := os.Stat(filepath.Join(replica.Root(), id)); !os.IsNotExist(err) {
		t.Fatalf("replica still holds deleted session: %v", err)
	}
}
