// Package persist is the durability subsystem under sqldb: a versioned
// binary snapshot codec, an append-only write-ahead log of mutations, and a
// Store tying the two into crash-safe open/checkpoint/close lifecycle for a
// whole database. The on-disk unit is a directory holding one snapshot file
// (the state as of the last checkpoint) plus one WAL file (every mutation
// since). Opening the directory loads the snapshot and replays the WAL,
// tolerating a torn final record from a crash mid-append.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"justintime/internal/sqldb"
)

// maxRecord bounds a single framed record; a length prefix past it is
// treated as corruption rather than an allocation request.
const maxRecord = 1 << 30

// errTorn marks a record that ends early or fails its checksum — the shape a
// crash mid-append leaves behind. The WAL reader treats it as end-of-log;
// the snapshot reader (whose file is written atomically) treats it as real
// corruption.
var errTorn = errors.New("persist: torn record")

// ---- value / primitive encoding ----------------------------------------

// enc is an append-only little-endian buffer encoder.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Value encoding is shared with the pager's slotted pages and lives in
// sqldb (AppendValue/DecodeValue); tags are pinned there so the file format
// survives reorderings of the in-memory enum.
func (e *enc) value(v sqldb.Value) {
	e.buf = sqldb.AppendValue(e.buf, v)
}

func (e *enc) rows(rows [][]sqldb.Value) {
	e.u32(uint32(len(rows)))
	for _, row := range rows {
		e.u32(uint32(len(row)))
		for _, v := range row {
			e.value(v)
		}
	}
}

func (e *enc) cols(cols []sqldb.Column) {
	e.u32(uint32(len(cols)))
	for _, c := range cols {
		e.str(c.Name)
		e.u8(uint8(c.Type))
	}
}

// dec is the matching decoder; the first malformed read latches err and
// turns every later read into a no-op zero value.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: malformed record: %s at offset %d", msg, d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func (d *dec) value() sqldb.Value {
	if d.err != nil {
		return sqldb.Null()
	}
	v, n, err := sqldb.DecodeValue(d.buf[d.off:])
	if err != nil {
		d.fail(err.Error())
		return sqldb.Null()
	}
	d.off += n
	return v
}

func (d *dec) rows() [][]sqldb.Value {
	n := int(d.u32())
	if d.err != nil || n > maxRecord {
		d.fail("row count")
		return nil
	}
	rows := make([][]sqldb.Value, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		w := int(d.u32())
		if d.err != nil || w > maxRecord {
			d.fail("row width")
			return nil
		}
		row := make([]sqldb.Value, 0, w)
		for j := 0; j < w && d.err == nil; j++ {
			row = append(row, d.value())
		}
		rows = append(rows, row)
	}
	return rows
}

func (d *dec) cols() []sqldb.Column {
	n := int(d.u32())
	if d.err != nil || n > maxRecord {
		d.fail("column count")
		return nil
	}
	cols := make([]sqldb.Column, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		name := d.str()
		typ := sqldb.Type(d.u8())
		cols = append(cols, sqldb.Column{Name: name, Type: typ})
	}
	return cols
}

// ---- record framing ------------------------------------------------------

// writeFrame frames a payload as length(u32) | crc32(u32, over payload) |
// payload and writes it to w.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if n, err := w.Write(hdr[:]); err != nil {
		return n, err
	}
	n, err := w.Write(payload)
	return 8 + n, err
}

// frameBytes returns the exact on-disk framing of payload as one slice —
// what writeFrame would emit. Used where the framed bytes themselves are
// needed (WAL shipping addresses records by file offset).
func frameBytes(payload []byte) []byte {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame
}

// readFrame reads one framed payload. A clean end of file (EOF before the
// first header byte) returns io.EOF; a record cut short or failing its
// checksum returns errTorn.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.EOF
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, err // a failing device, not a torn tail
		}
		return nil, errTorn
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecord {
		return nil, errTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, err
		}
		return nil, errTorn
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, errTorn
	}
	return payload, nil
}
