package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"justintime/internal/sqldb"
)

func fixtureDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT, score FLOAT, ok BOOL)")
	db.MustExec("INSERT INTO items VALUES (1, 'alpha', 1.25, TRUE)")
	db.MustExec("INSERT INTO items VALUES (2, NULL, NULL, FALSE)")
	db.MustExec("INSERT INTO items VALUES (3, 'gamma', -7.5, NULL)")
	db.MustExec("CREATE TABLE empty (x INT, y TEXT)")
	db.MustExec("CREATE INDEX items_id ON items (id)")
	// Composite: rides the snapshot/WAL wire as the comma-joined "id,score".
	db.MustExec("CREATE INDEX items_id_score ON items (id, score)")
	return db
}

func sameDump(t *testing.T, a, b *sqldb.DB) {
	t.Helper()
	da, dbb := a.Dump(), b.Dump()
	if !reflect.DeepEqual(da, dbb) {
		t.Fatalf("databases differ:\n%#v\nvs\n%#v", da, dbb)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := fixtureDB(t)
	path := filepath.Join(t.TempDir(), "snap.db")
	if err := WriteSnapshot(path, db.Dump(), 7); err != nil {
		t.Fatal(err)
	}
	d, epoch, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("epoch = %d, want 7", epoch)
	}
	db2, err := sqldb.NewFromDump(d)
	if err != nil {
		t.Fatal(err)
	}
	sameDump(t, db, db2)
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file after snapshot write")
	}
}

func TestSnapshotAtomicReplace(t *testing.T) {
	db := fixtureDB(t)
	path := filepath.Join(t.TempDir(), "snap.db")
	if err := WriteSnapshot(path, db.Dump(), 1); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO items VALUES (4, 'delta', 0.5, TRUE)")
	if err := WriteSnapshot(path, db.Dump(), 2); err != nil {
		t.Fatal(err)
	}
	d, epoch, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}
	db2, err := sqldb.NewFromDump(d)
	if err != nil {
		t.Fatal(err)
	}
	sameDump(t, db, db2)
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	db := fixtureDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	if err := WriteSnapshot(path, db.Dump(), 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the snapshot (unlike the WAL) must hard-error.
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	// A truncated snapshot (missing end marker) must also hard-error.
	if err := os.WriteFile(path, raw[:len(raw)-12], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// mutate applies a deterministic scripted mutation i to db.
func mutate(t *testing.T, db *sqldb.DB, i int) {
	t.Helper()
	var err error
	switch i % 5 {
	case 0:
		_, err = db.Exec("INSERT INTO items VALUES (?, ?, ?, ?)",
			sqldb.Int(int64(100+i)), sqldb.Text(strings.Repeat("x", i%7+1)),
			sqldb.Float(float64(i)*0.5), sqldb.Bool(i%2 == 0))
	case 1:
		_, err = db.Exec("UPDATE items SET score = score + 1 WHERE id >= ?", sqldb.Int(int64(i%4)))
	case 2:
		_, err = db.Exec("DELETE FROM items WHERE id = ?", sqldb.Int(int64(100+i-7)))
	case 3:
		err = db.InsertRows("items", [][]sqldb.Value{
			{sqldb.Int(int64(1000 + i)), sqldb.Null(), sqldb.Float(3.14), sqldb.Bool(false)},
		})
	case 4:
		_, err = db.Exec("INSERT INTO empty VALUES (?, ?)", sqldb.Int(int64(i)), sqldb.Text("t"))
	}
	if err != nil {
		t.Fatal(err)
	}
}

func TestStoreCreateOpenReplay(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncBatched} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := fixtureDB(t)
			st, err := Create(dir, db, Options{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 12; i++ {
				mutate(t, db, i)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			db2, st2, err := Open(dir, Options{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			sameDump(t, db, db2)
		})
	}
}

func TestStoreCheckpointFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mutate(t, db, i)
	}
	if st.WALSize() <= walHeaderLen {
		t.Fatal("WAL did not grow")
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st.WALSize() != walHeaderLen {
		t.Fatalf("WAL size after checkpoint = %d, want %d", st.WALSize(), walHeaderLen)
	}
	// Mutations after the checkpoint land in the fresh WAL.
	mutate(t, db, 20)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameDump(t, db, db2)
}

// TestStaleEpochWALDiscarded simulates a crash between the checkpoint's
// snapshot rename and its WAL reset: the snapshot holds the new epoch while
// the WAL still holds the old epoch's records. Opening must not double-apply
// them.
func TestStaleEpochWALDiscarded(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mutate(t, db, i)
	}
	// Preserve the pre-checkpoint WAL (epoch 1, six records).
	staleWAL, err := os.ReadFile(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil { // snapshot now epoch 2
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// "Crash" restored the stale WAL next to the new snapshot.
	if err := os.WriteFile(filepath.Join(dir, WALFile), staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameDump(t, db, db2)
}

func TestCreateDropsInheritedWAL(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, db, 0)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Create over the same directory (a new session reusing the
	// path) must not replay the first life's WAL.
	fresh := fixtureDB(t)
	st2, err := Create(dir, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	sameDump(t, fresh, db3)
}

func TestRemoveTempFilesOnOpen(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a crash mid-snapshot-write: a stray .tmp next to the real files.
	stray := filepath.Join(dir, SnapshotFile+".tmp")
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stale .tmp survived Open")
	}
}

func TestStoreRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	db := fixtureDB(t)
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := Remove(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("store directory survived Remove")
	}
}

func TestWALBytesMetricHook(t *testing.T) {
	dir := t.TempDir()
	db := fixtureDB(t)
	var seen int64
	st, err := Create(dir, db, Options{OnWALWrite: func(n int) { seen += int64(n) }})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 5; i++ {
		mutate(t, db, i)
	}
	if seen == 0 {
		t.Fatal("OnWALWrite never fired")
	}
	if got := st.WALSize() - walHeaderLen; got != seen {
		t.Fatalf("hook saw %d bytes, WAL grew %d", seen, got)
	}
}

func TestPartialInsertReplaysIdentically(t *testing.T) {
	dir := t.TempDir()
	db := sqldb.New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("CREATE TABLE src (a INT, b INT)")
	db.MustExec("INSERT INTO src VALUES (1, 1), (2, 2)")
	st, err := Create(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// INSERT ... SELECT with an arity mismatch appends nothing here (the
	// mismatch is caught per-row before any append for two-column rows),
	// but a partial multi-row VALUES list does: the second row's text
	// cannot coerce to INT after the first row landed.
	if _, err := db.Exec("INSERT INTO t VALUES (1), ('nope')"); err == nil {
		t.Fatal("expected coercion error")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	db2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameDump(t, db, db2)
}
