// WAL shipping: physical replication of a tree of session stores to a warm
// standby. The unit of replication is the session directory (snapshot + WAL
// + sidecar files); the unit of streaming is the WAL record, shipped as the
// exact framed bytes the primary wrote, addressed by (checkpoint epoch, file
// offset). That addressing makes apply idempotent — a duplicate lands at an
// offset the standby already has and is ignored — and self-healing: any
// cursor mismatch (gap, unknown session, epoch skew) makes the standby
// request a resync, which ships the session's whole file set.
//
// Wire protocol: one TCP connection, primary dials the standby. On accept
// the standby reports its per-session (epoch, WAL size) cursors; the primary
// diffs that against local disk and ships whatever closes the gap; from then
// on the stream carries live hook events. Every frame the primary sends
// carries a sequence number the standby acknowledges after fsync, which is
// what the primary's replication-lag gauges count down.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"

	"justintime/internal/fault"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
)

// Replication frame types (first byte of the framed payload).
const (
	// primary -> standby
	repSyncT   uint8 = 1 // full file set for one session
	repAppendT uint8 = 2 // WAL bytes at (epoch, offset) for one session
	repDeleteT uint8 = 3 // session removed
	// standby -> primary
	repStateT  uint8 = 16 // handshake: per-session cursors
	repAckT    uint8 = 17 // frames up to seq are applied and durable
	repResyncT uint8 = 18 // session cursor mismatch: please ship a full sync
)

// repFile is one file of a session sync: base name + contents.
type repFile struct {
	name string
	data []byte
}

// repCursor is a standby's position in one session: the checkpoint epoch of
// its snapshot/WAL pair and the record-aligned WAL length it holds.
type repCursor struct {
	id      string
	epoch   uint64
	walSize int64
}

// replIDPattern vets session IDs and file names arriving off the wire before
// they become path components. No separators, no leading dot: a hostile or
// corrupt peer cannot escape the replica root.
var replIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,128}$`)

func replSafeName(s string) bool {
	return replIDPattern.MatchString(s) && !strings.Contains(s, "..")
}

// ---- session directory state --------------------------------------------

// readSnapshotEpoch reads just the header of a snapshot file: magic +
// checkpoint epoch.
func readSnapshotEpoch(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, len(snapshotMagic)+8)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("persist: snapshot header: %w", err)
	}
	for i := range snapshotMagic {
		if hdr[i] != snapshotMagic[i] {
			return 0, fmt.Errorf("persist: not a snapshot file (bad magic)")
		}
	}
	return binary.LittleEndian.Uint64(hdr[len(snapshotMagic):]), nil
}

// scanWAL walks the record frames of the WAL at path without applying them,
// returning the header epoch and the offset just past the last intact record.
// A missing header reports ok=false.
func scanWAL(path string) (epoch uint64, good int64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, false, nil // empty or torn before the header
	}
	for i := range walMagic {
		if hdr[i] != walMagic[i] {
			return 0, 0, false, fmt.Errorf("persist: not a WAL file (bad magic)")
		}
	}
	epoch = binary.LittleEndian.Uint64(hdr[len(walMagic):])
	good = walHeaderLen
	for {
		payload, ferr := readFrame(r)
		if ferr != nil {
			return epoch, good, true, nil // io.EOF clean end; errTorn crash tail
		}
		good += int64(8 + len(payload))
	}
}

// sessionCursor derives the replication cursor of a session directory: the
// snapshot's epoch and the length of the coherent same-epoch WAL prefix.
// ok=false means the directory is not in a shippable/reportable state (mid-
// create, mid-checkpoint, or damaged) — the peer treats it as absent.
func sessionCursor(dir string) (epoch uint64, walSize int64, ok bool) {
	snapEpoch, err := readSnapshotEpoch(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return 0, 0, false
	}
	walEpoch, good, walOK, err := scanWAL(filepath.Join(dir, WALFile))
	if err != nil || !walOK || walEpoch != snapEpoch {
		return 0, 0, false
	}
	return snapEpoch, good, true
}

// readSessionFiles reads a session's complete durable file set for a sync
// frame, retrying a few times until the snapshot and WAL agree on an epoch
// (a checkpoint can land between reads). Volatile files (*.tmp, spill-*.db)
// are excluded: the spill regenerates from the WAL and temp files are
// atomic-write leftovers.
func readSessionFiles(dir string) (files []repFile, epoch uint64, walSize int64, err error) {
	for attempt := 0; attempt < 3; attempt++ {
		files = files[:0]
		epoch, walSize, ok := sessionCursor(dir)
		if !ok {
			err = fmt.Errorf("persist: session %s not in a coherent state", dir)
			continue
		}
		entries, rerr := os.ReadDir(dir)
		if rerr != nil {
			return nil, 0, 0, rerr
		}
		coherent := true
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || strings.HasSuffix(name, ".tmp") || strings.HasPrefix(name, "spill-") {
				continue
			}
			data, rerr := os.ReadFile(filepath.Join(dir, name))
			if rerr != nil {
				coherent = false
				break
			}
			if name == WALFile && int64(len(data)) > walSize {
				data = data[:walSize] // drop bytes appended mid-read; the stream ships them
			}
			files = append(files, repFile{name: name, data: data})
		}
		if !coherent {
			err = fmt.Errorf("persist: session %s changed mid-read", dir)
			continue
		}
		// Re-check: if a checkpoint landed while we read, the epoch moved and
		// the set may mix generations.
		if e2, _, ok2 := sessionCursor(dir); ok2 && e2 == epoch {
			return files, epoch, walSize, nil
		}
		err = fmt.Errorf("persist: session %s checkpointed mid-read", dir)
	}
	return nil, 0, 0, err
}

// ---- frame encode/decode -------------------------------------------------

func encodeSync(seq uint64, id string, files []repFile) []byte {
	e := &enc{}
	e.u8(repSyncT)
	e.u64(seq)
	e.str(id)
	e.u32(uint32(len(files)))
	for _, f := range files {
		e.str(f.name)
		e.bytes(f.data)
	}
	return e.buf
}

func encodeAppend(seq uint64, id string, epoch uint64, off int64, data []byte) []byte {
	e := &enc{}
	e.u8(repAppendT)
	e.u64(seq)
	e.str(id)
	e.u64(epoch)
	e.u64(uint64(off))
	e.bytes(data)
	return e.buf
}

func encodeDelete(seq uint64, id string) []byte {
	e := &enc{}
	e.u8(repDeleteT)
	e.u64(seq)
	e.str(id)
	return e.buf
}

func encodeState(cursors []repCursor) []byte {
	e := &enc{}
	e.u8(repStateT)
	e.u32(uint32(len(cursors)))
	for _, c := range cursors {
		e.str(c.id)
		e.u64(c.epoch)
		e.u64(uint64(c.walSize))
	}
	return e.buf
}

func encodeAck(seq uint64) []byte {
	e := &enc{}
	e.u8(repAckT)
	e.u64(seq)
	return e.buf
}

func encodeResync(id string) []byte {
	e := &enc{}
	e.u8(repResyncT)
	e.str(id)
	return e.buf
}

// ---- Replica (standby side) ----------------------------------------------

// ReplicaStats is a point-in-time snapshot of a replica's apply counters.
type ReplicaStats struct {
	Connected      bool  `json:"connected"`
	AppliedRecords int64 `json:"applied_records"`
	AppliedBytes   int64 `json:"applied_bytes"`
	Syncs          int64 `json:"syncs"`
	Deletes        int64 `json:"deletes"`
	ResyncsSent    int64 `json:"resyncs_sent"`
}

// replicaSession is the replica's open handle on one session's WAL plus its
// cursor.
type replicaSession struct {
	f     *os.File
	epoch uint64
	size  int64
}

// Replica receives a primary's WAL stream and replays it into a local tree
// of session directories — a warm standby. It accepts one feed connection at
// a time (a newer connection supersedes the current one) and applies frames
// strictly in arrival order: write, fsync, then acknowledge, so an
// acknowledged frame survives a standby crash.
type Replica struct {
	root   string
	logger *slog.Logger

	mu       sync.Mutex
	sessions map[string]*replicaSession
	conn     net.Conn
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup

	connected      atomic.Bool
	appliedRecords atomic.Int64
	appliedBytes   atomic.Int64
	syncs          atomic.Int64
	deletes        atomic.Int64
	resyncsSent    atomic.Int64
}

// NewReplica creates a replica rooted at dir (created if absent). Call Serve
// with a listener to start receiving; Close to stop (the promotion path —
// after Close the directory tree is an ordinary sessions root a server can
// open).
func NewReplica(root string, logger *slog.Logger) (*Replica, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("persist: replica root: %w", err)
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Replica{root: root, logger: logger, sessions: make(map[string]*replicaSession)}, nil
}

// Root returns the replica's session tree root.
func (r *Replica) Root() string { return r.root }

// Stats returns the replica's apply counters.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		Connected:      r.connected.Load(),
		AppliedRecords: r.appliedRecords.Load(),
		AppliedBytes:   r.appliedBytes.Load(),
		Syncs:          r.syncs.Load(),
		Deletes:        r.deletes.Load(),
		ResyncsSent:    r.resyncsSent.Load(),
	}
}

// Serve accepts primary connections on ln until Close. Each new connection
// supersedes the previous one (a primary restart reconnects without waiting
// for a timeout).
func (r *Replica) Serve(ln net.Listener) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return
	}
	r.ln = ln
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		if r.conn != nil {
			r.conn.Close()
		}
		r.conn = conn
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handleConn(conn)
		}()
	}
}

// Close stops the replica: listener, feed connection and every open WAL
// handle. The on-disk tree stays — that is the point.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	if r.ln != nil {
		r.ln.Close()
	}
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, s := range r.sessions {
		if s.f != nil {
			_ = s.f.Sync()
			_ = s.f.Close()
		}
		delete(r.sessions, id)
	}
	return nil
}

// handleConn drives one feed connection: report cursors, then apply frames
// in order, acknowledging each after it is durable.
func (r *Replica) handleConn(conn net.Conn) {
	defer conn.Close()
	r.connected.Store(true)
	defer r.connected.Store(false)

	cursors := r.localCursors()
	if _, err := writeFrame(conn, encodeState(cursors)); err != nil {
		return
	}
	r.logger.Info("replica: feed connected", "remote", conn.RemoteAddr().String(), "sessions", len(cursors))

	br := bufio.NewReaderSize(conn, 1<<20)
	for {
		payload, err := readFrame(br)
		if err != nil {
			r.logger.Info("replica: feed closed", "err", err)
			return
		}
		seq, resyncID, err := r.applyFrame(payload)
		if err != nil {
			r.logger.Error("replica: apply failed", "err", err)
			return
		}
		if resyncID != "" {
			r.resyncsSent.Add(1)
			if _, err := writeFrame(conn, encodeResync(resyncID)); err != nil {
				return
			}
		}
		if _, err := writeFrame(conn, encodeAck(seq)); err != nil {
			return
		}
	}
}

// localCursors scans the replica root and reports every session in a
// coherent state, truncating torn WAL tails so the reported size is exact.
// Open handles are dropped first — the scan re-derives state from disk.
func (r *Replica) localCursors() []repCursor {
	r.mu.Lock()
	for id, s := range r.sessions {
		if s.f != nil {
			_ = s.f.Close()
		}
		delete(r.sessions, id)
	}
	r.mu.Unlock()

	entries, err := os.ReadDir(r.root)
	if err != nil {
		return nil
	}
	var out []repCursor
	for _, e := range entries {
		if !e.IsDir() || !replSafeName(e.Name()) {
			continue
		}
		dir := filepath.Join(r.root, e.Name())
		epoch, size, ok := sessionCursor(dir)
		if !ok {
			continue
		}
		// Truncate any torn tail now so offset arithmetic stays exact.
		walPath := filepath.Join(dir, WALFile)
		if fi, err := os.Stat(walPath); err == nil && fi.Size() > size {
			_ = os.Truncate(walPath, size)
		}
		out = append(out, repCursor{id: e.Name(), epoch: epoch, walSize: size})
	}
	return out
}

// applyFrame decodes and applies one primary frame. It returns the frame's
// sequence number (to acknowledge) and, when the cursor did not line up, the
// session ID to request a resync for. Only malformed frames error.
func (r *Replica) applyFrame(payload []byte) (seq uint64, resyncID string, err error) {
	d := &dec{buf: payload}
	switch typ := d.u8(); typ {
	case repSyncT:
		seq = d.u64()
		id := d.str()
		n := int(d.u32())
		if d.err != nil || n > 1<<16 {
			return 0, "", fmt.Errorf("malformed sync frame")
		}
		files := make([]repFile, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			name := d.str()
			data := d.bytes()
			files = append(files, repFile{name: name, data: data})
		}
		if d.err != nil {
			return 0, "", d.err
		}
		return seq, "", r.applySync(id, files)
	case repAppendT:
		seq = d.u64()
		id := d.str()
		epoch := d.u64()
		off := int64(d.u64())
		data := d.bytes()
		if d.err != nil {
			return 0, "", d.err
		}
		resync, err := r.applyAppend(id, epoch, off, data)
		if err != nil {
			return 0, "", err
		}
		if resync {
			return seq, id, nil
		}
		return seq, "", nil
	case repDeleteT:
		seq = d.u64()
		id := d.str()
		if d.err != nil {
			return 0, "", d.err
		}
		return seq, "", r.applyDelete(id)
	default:
		return 0, "", fmt.Errorf("unknown replication frame type %d", typ)
	}
}

// applySync replaces a session directory with the shipped file set. Files
// land via temp+rename with the snapshot renamed last — its epoch is the
// commit point the cursor derives from — and files absent from the set
// (previous-epoch page files) are removed first.
func (r *Replica) applySync(id string, files []repFile) error {
	if !replSafeName(id) {
		return fmt.Errorf("unsafe session id %q", id)
	}
	keep := make(map[string]bool, len(files))
	for _, f := range files {
		if !replSafeName(f.name) {
			return fmt.Errorf("unsafe file name %q in sync of %s", f.name, id)
		}
		keep[f.name] = true
	}
	dir := filepath.Join(r.root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	r.dropSession(id)
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && !keep[e.Name()] {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	write := func(f repFile) error {
		tmp := filepath.Join(dir, f.name+".tmp")
		if err := os.WriteFile(tmp, f.data, 0o644); err != nil {
			return err
		}
		if fh, err := os.Open(tmp); err == nil {
			_ = fh.Sync()
			_ = fh.Close()
		}
		return os.Rename(tmp, filepath.Join(dir, f.name))
	}
	var snap *repFile
	for i := range files {
		if files[i].name == SnapshotFile {
			snap = &files[i]
			continue
		}
		if err := write(files[i]); err != nil {
			return err
		}
	}
	if snap != nil {
		if err := write(*snap); err != nil {
			return err
		}
	}
	if err := syncDir(fault.OS, dir); err != nil {
		return err
	}
	r.syncs.Add(1)
	r.appliedBytes.Add(int64(syncBytes(files)))
	return nil
}

func syncBytes(files []repFile) int {
	n := 0
	for _, f := range files {
		n += len(f.data)
	}
	return n
}

// applyAppend lands WAL bytes at (epoch, off). Duplicates (bytes the replica
// already holds) are ignored; a gap or an epoch ahead of the local snapshot
// asks for a resync; an epoch behind it is a stale duplicate from before a
// checkpoint the replica already applied.
func (r *Replica) applyAppend(id string, epoch uint64, off int64, data []byte) (resync bool, err error) {
	if !replSafeName(id) {
		return false, fmt.Errorf("unsafe session id %q", id)
	}
	s, err := r.openSession(id)
	if err != nil {
		return true, nil // unknown or incoherent session: ask for a sync
	}
	switch {
	case epoch < s.epoch:
		return false, nil // pre-checkpoint straggler; its effects are in the snapshot
	case epoch > s.epoch:
		return true, nil // we missed a checkpoint: resync
	case off > s.size:
		return true, nil // gap: resync
	case off+int64(len(data)) <= s.size:
		return false, nil // duplicate
	}
	tail := data[s.size-off:]
	if _, err := s.f.WriteAt(tail, s.size); err != nil {
		r.dropSession(id)
		return false, err
	}
	if err := s.f.Sync(); err != nil {
		r.dropSession(id)
		return false, err
	}
	s.size += int64(len(tail))
	r.appliedRecords.Add(1)
	r.appliedBytes.Add(int64(len(tail)))
	return false, nil
}

// applyDelete removes a session's directory.
func (r *Replica) applyDelete(id string) error {
	if !replSafeName(id) {
		return fmt.Errorf("unsafe session id %q", id)
	}
	r.dropSession(id)
	r.deletes.Add(1)
	return os.RemoveAll(filepath.Join(r.root, id))
}

// openSession returns the cached handle+cursor for id, deriving it from disk
// on first touch.
func (r *Replica) openSession(id string) (*replicaSession, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[id]; ok {
		return s, nil
	}
	dir := filepath.Join(r.root, id)
	epoch, size, ok := sessionCursor(dir)
	if !ok {
		return nil, fmt.Errorf("session %s not in a coherent state", id)
	}
	f, err := os.OpenFile(filepath.Join(dir, WALFile), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s := &replicaSession{f: f, epoch: epoch, size: size}
	r.sessions[id] = s
	return s, nil
}

// dropSession closes and forgets the cached handle for id.
func (r *Replica) dropSession(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[id]; ok {
		if s.f != nil {
			_ = s.f.Close()
		}
		delete(r.sessions, id)
	}
}
