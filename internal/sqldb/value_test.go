package sqldb

import (
	"testing"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
	if v := Int(42); v.Type() != IntType || v.String() != "42" {
		t.Errorf("Int: %v %s", v.Type(), v)
	}
	if v := Float(2.5); v.Type() != FloatType || v.String() != "2.5" {
		t.Errorf("Float: %v %s", v.Type(), v)
	}
	if v := Text("hi"); v.Type() != TextType || v.String() != "hi" {
		t.Errorf("Text: %v %s", v.Type(), v)
	}
	if v := Bool(true); v.Type() != BoolType || v.String() != "TRUE" {
		t.Errorf("Bool: %v %s", v.Type(), v)
	}
	if Null().String() != "NULL" || Bool(false).String() != "FALSE" {
		t.Error("String rendering wrong")
	}

	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Error("Int.AsFloat")
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Error("Bool.AsFloat")
	}
	if _, ok := Text("x").AsFloat(); ok {
		t.Error("Text.AsFloat should fail")
	}
	if i, ok := Float(4.0).AsInt(); !ok || i != 4 {
		t.Error("integral Float.AsInt")
	}
	if _, ok := Float(4.5).AsInt(); ok {
		t.Error("fractional Float.AsInt should fail")
	}
	if s, ok := Text("x").AsText(); !ok || s != "x" {
		t.Error("AsText")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool")
	}
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{NullType: "NULL", IntType: "INT", FloatType: "FLOAT", TextType: "TEXT", BoolType: "BOOL"}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Text("a"), Text("b"), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Int(1), 0}, // booleans coerce numerically
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%s,%s): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Error("comparing NULL should error")
	}
	if _, err := Compare(Text("a"), Int(1)); err == nil {
		t.Error("comparing text with int should error")
	}
}

func TestValueKeyEquivalences(t *testing.T) {
	if Int(1).key() != Float(1.0).key() {
		t.Error("int 1 and float 1.0 should share a group key")
	}
	if Int(1).key() == Text("1").key() {
		t.Error("int 1 and text '1' must not collide")
	}
	if Null().key() != Null().key() {
		t.Error("nulls should group together")
	}
	if Bool(true).key() == Bool(false).key() {
		t.Error("booleans must differ")
	}
}

func TestCoerceTo(t *testing.T) {
	if v, err := coerceTo(Float(3.0), IntType); err != nil || v.Type() != IntType {
		t.Errorf("coerce 3.0->INT: %v %v", v, err)
	}
	if _, err := coerceTo(Float(3.5), IntType); err == nil {
		t.Error("coerce 3.5->INT should fail")
	}
	if v, err := coerceTo(Int(3), FloatType); err != nil || v.Type() != FloatType {
		t.Errorf("coerce 3->FLOAT: %v %v", v, err)
	}
	if v, err := coerceTo(Int(1), BoolType); err != nil || !isTrue(v) {
		t.Errorf("coerce 1->BOOL: %v %v", v, err)
	}
	if _, err := coerceTo(Int(2), BoolType); err == nil {
		t.Error("coerce 2->BOOL should fail")
	}
	if _, err := coerceTo(Text("x"), IntType); err == nil {
		t.Error("coerce text->INT should fail")
	}
	if v, err := coerceTo(Null(), IntType); err != nil || !v.IsNull() {
		t.Error("NULL should coerce to any type")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abcdef", true},
		{"%def", "abcdef", true},
		{"%cd%", "abcdef", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"", "", true},
		{"", "x", false},
		{"%%x", "x", true},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "aXXbYY", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}
