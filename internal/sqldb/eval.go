package sqldb

import (
	"fmt"
	"math"
	"strings"

	"justintime/internal/obs"
	"justintime/internal/sqldb/pager"
)

// relation is a named, typed row source visible in a scope (a FROM table,
// its alias, or a FROM subquery).
type relation struct {
	alias  string
	cols   []string
	colIdx map[string]int
}

func relationOf(t *Table) relation {
	return relation{alias: t.Name, cols: t.columnNames(), colIdx: t.colIdx}
}

func relationFromResult(alias string, res *Result) relation {
	idx := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		if _, dup := idx[c]; !dup {
			idx[c] = i
		}
	}
	return relation{alias: alias, cols: res.Columns, colIdx: idx}
}

// scope is the name-resolution environment of one query level. Column
// references resolve against the scope's relations first, then its
// select-list aliases, then the parent scope (enabling correlated
// subqueries, including references to outer select aliases as in the
// paper's Fig. 2 Q3).
type scope struct {
	parent    *scope
	rels      []relation
	rows      [][]Value
	aliasExpr map[string]Expr
	aliasBusy map[string]bool
	aggValues map[*FuncCall]Value
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent}
}

func (s *scope) push(rel relation, row []Value) {
	s.rels = append(s.rels, rel)
	s.rows = append(s.rows, row)
}

// isTrue reports whether the three-valued result v is TRUE.
func isTrue(v Value) bool {
	b, ok := v.AsBool()
	return ok && b
}

func not3(v Value) Value {
	if v.IsNull() {
		return Null()
	}
	b, ok := v.AsBool()
	if !ok {
		return Null()
	}
	return Bool(!b)
}

// executor evaluates expressions and runs SELECT plans against a DB whose
// lock is already held by the caller. params holds the positional arguments
// bound to `?` placeholders for this execution. trace, when non-nil,
// records every plan decision for EXPLAIN. capRows > 0 bounds the TOP-LEVEL
// statement's output to that many rows (see Stmt.QueryCapped); execSelect
// consumes it on entry so subqueries run uncapped.
// span and ptrack are the request-tracing seam (see tracing.go): span is the
// statement's "sql.query" trace span, ptrack accumulates the page faults this
// statement causes on paged storage. Both are nil when the statement runs
// untraced, and every use is nil-guarded, so the untraced path pays nothing.
type executor struct {
	db      *DB
	params  []Value
	trace   *planTrace
	capRows int
	span    *obs.Span
	ptrack  *pager.Tracker

	// ptrackBuf backs ptrack for traced statements so enabling fault
	// attribution costs no allocation (ptrack = &ptrackBuf).
	ptrackBuf pager.Tracker
}

// eval evaluates e in the given scope (which may be nil for constant
// expressions).
func (ex *executor) eval(e Expr, sc *scope) (Value, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, nil
	case *ParamExpr:
		if n.Index >= len(ex.params) {
			return Value{}, fmt.Errorf("sqldb: parameter ?%d is not bound (statement executed with %d argument(s))", n.Index+1, len(ex.params))
		}
		return ex.params[n.Index], nil
	case *ColumnRef:
		return ex.resolveColumn(n, sc)
	case *UnaryExpr:
		v, err := ex.eval(n.E, sc)
		if err != nil {
			return Value{}, err
		}
		if n.Op == "NOT" {
			return not3(v), nil
		}
		// Unary minus.
		if v.IsNull() {
			return Null(), nil
		}
		if v.Type() == IntType {
			i, _ := v.AsInt()
			return Int(-i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return Float(-f), nil
		}
		return Value{}, fmt.Errorf("sqldb: cannot negate %s", v.Type())
	case *BinaryExpr:
		return ex.evalBinary(n, sc)
	case *IsNullExpr:
		v, err := ex.eval(n.E, sc)
		if err != nil {
			return Value{}, err
		}
		return Bool(v.IsNull() != n.Not), nil
	case *BetweenExpr:
		v, err := ex.eval(n.E, sc)
		if err != nil {
			return Value{}, err
		}
		lo, err := ex.eval(n.Lo, sc)
		if err != nil {
			return Value{}, err
		}
		hi, err := ex.eval(n.Hi, sc)
		if err != nil {
			return Value{}, err
		}
		ge, err := compare3(v, lo, ">=")
		if err != nil {
			return Value{}, err
		}
		le, err := compare3(v, hi, "<=")
		if err != nil {
			return Value{}, err
		}
		res := and3(ge, le)
		if n.Not {
			res = not3(res)
		}
		return res, nil
	case *LikeExpr:
		v, err := ex.eval(n.E, sc)
		if err != nil {
			return Value{}, err
		}
		pat, err := ex.eval(n.Pattern, sc)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || pat.IsNull() {
			return Null(), nil
		}
		vs, ok1 := v.AsText()
		ps, ok2 := pat.AsText()
		if !ok1 || !ok2 {
			return Value{}, fmt.Errorf("sqldb: LIKE requires text operands")
		}
		m := likeMatch(ps, vs)
		return Bool(m != n.Not), nil
	case *InExpr:
		return ex.evalIn(n, sc)
	case *ExistsExpr:
		res, err := ex.execSelect(n.Sub, sc)
		if err != nil {
			return Value{}, err
		}
		return Bool(len(res.Rows) > 0), nil
	case *SubqueryExpr:
		return ex.evalScalarSubquery(n.Sub, sc)
	case *FuncCall:
		return ex.evalFunc(n, sc)
	case *CaseExpr:
		return ex.evalCase(n, sc)
	default:
		return Value{}, fmt.Errorf("sqldb: cannot evaluate %T", e)
	}
}

func (ex *executor) resolveColumn(ref *ColumnRef, sc *scope) (Value, error) {
	for s := sc; s != nil; s = s.parent {
		if ref.Table != "" {
			for i, rel := range s.rels {
				if rel.alias == ref.Table {
					if ci, ok := rel.colIdx[ref.Column]; ok {
						return s.rows[i][ci], nil
					}
					return Value{}, fmt.Errorf("sqldb: relation %q has no column %q", ref.Table, ref.Column)
				}
			}
			continue // try parent scopes for the qualified name
		}
		found := -1
		var val Value
		for i, rel := range s.rels {
			if ci, ok := rel.colIdx[ref.Column]; ok {
				if found >= 0 {
					return Value{}, fmt.Errorf("sqldb: ambiguous column %q", ref.Column)
				}
				found = i
				val = s.rows[i][ci]
			}
		}
		if found >= 0 {
			return val, nil
		}
		if e, ok := s.aliasExpr[ref.Column]; ok && !s.aliasBusy[ref.Column] {
			s.aliasBusy[ref.Column] = true
			v, err := ex.eval(e, s)
			s.aliasBusy[ref.Column] = false
			return v, err
		}
	}
	if ref.Table != "" {
		return Value{}, fmt.Errorf("sqldb: unknown column %s.%s", ref.Table, ref.Column)
	}
	return Value{}, fmt.Errorf("sqldb: unknown column %q", ref.Column)
}

func (ex *executor) evalBinary(n *BinaryExpr, sc *scope) (Value, error) {
	switch n.Op {
	case "AND":
		l, err := ex.eval(n.L, sc)
		if err != nil {
			return Value{}, err
		}
		if !l.IsNull() && !isTrue(l) {
			return Bool(false), nil
		}
		r, err := ex.eval(n.R, sc)
		if err != nil {
			return Value{}, err
		}
		return and3(l, r), nil
	case "OR":
		l, err := ex.eval(n.L, sc)
		if err != nil {
			return Value{}, err
		}
		if isTrue(l) {
			return Bool(true), nil
		}
		r, err := ex.eval(n.R, sc)
		if err != nil {
			return Value{}, err
		}
		return or3(l, r), nil
	}
	l, err := ex.eval(n.L, sc)
	if err != nil {
		return Value{}, err
	}
	if n.Quant != "" {
		return ex.evalQuantified(n, l, sc)
	}
	r, err := ex.eval(n.R, sc)
	if err != nil {
		return Value{}, err
	}
	if comparisonOps[n.Op] {
		return compare3(l, r, n.Op)
	}
	return arith(l, r, n.Op)
}

func and3(a, b Value) Value {
	af, at := !a.IsNull() && !isTrue(a), isTrue(a)
	bf, bt := !b.IsNull() && !isTrue(b), isTrue(b)
	switch {
	case af || bf:
		return Bool(false)
	case at && bt:
		return Bool(true)
	default:
		return Null()
	}
}

func or3(a, b Value) Value {
	at := isTrue(a)
	bt := isTrue(b)
	switch {
	case at || bt:
		return Bool(true)
	case a.IsNull() || b.IsNull():
		return Null()
	default:
		return Bool(false)
	}
}

// compare3 applies a comparison with SQL NULL semantics.
func compare3(l, r Value, op string) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	c, err := Compare(l, r)
	if err != nil {
		return Value{}, err
	}
	var b bool
	switch op {
	case "=":
		b = c == 0
	case "!=":
		b = c != 0
	case "<":
		b = c < 0
	case "<=":
		b = c <= 0
	case ">":
		b = c > 0
	case ">=":
		b = c >= 0
	default:
		return Value{}, fmt.Errorf("sqldb: unknown comparison %q", op)
	}
	return Bool(b), nil
}

func arith(l, r Value, op string) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return Value{}, fmt.Errorf("sqldb: arithmetic on non-numeric values %s, %s", l.Type(), r.Type())
	}
	bothInt := l.Type() == IntType && r.Type() == IntType
	switch op {
	case "+":
		if bothInt {
			return Int(l.i + r.i), nil
		}
		return Float(lf + rf), nil
	case "-":
		if bothInt {
			return Int(l.i - r.i), nil
		}
		return Float(lf - rf), nil
	case "*":
		if bothInt {
			return Int(l.i * r.i), nil
		}
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null(), nil // MySQL semantics: division by zero yields NULL
		}
		return Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return Null(), nil
		}
		if bothInt {
			return Int(l.i % r.i), nil
		}
		return Float(math.Mod(lf, rf)), nil
	default:
		return Value{}, fmt.Errorf("sqldb: unknown operator %q", op)
	}
}

func (ex *executor) evalQuantified(n *BinaryExpr, l Value, sc *scope) (Value, error) {
	res, err := ex.execSelect(n.Sub, sc)
	if err != nil {
		return Value{}, err
	}
	if len(res.Columns) != 1 {
		return Value{}, fmt.Errorf("sqldb: quantified subquery must return one column, got %d", len(res.Columns))
	}
	anyNull := false
	if n.Quant == "ALL" {
		for _, row := range res.Rows {
			v, err := compare3(l, row[0], n.Op)
			if err != nil {
				return Value{}, err
			}
			if v.IsNull() {
				anyNull = true
			} else if !isTrue(v) {
				return Bool(false), nil
			}
		}
		if anyNull {
			return Null(), nil
		}
		return Bool(true), nil
	}
	// ANY
	for _, row := range res.Rows {
		v, err := compare3(l, row[0], n.Op)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			anyNull = true
		} else if isTrue(v) {
			return Bool(true), nil
		}
	}
	if anyNull {
		return Null(), nil
	}
	return Bool(false), nil
}

func (ex *executor) evalIn(n *InExpr, sc *scope) (Value, error) {
	v, err := ex.eval(n.E, sc)
	if err != nil {
		return Value{}, err
	}
	var members []Value
	if n.Sub != nil {
		res, err := ex.execSelect(n.Sub, sc)
		if err != nil {
			return Value{}, err
		}
		if len(res.Columns) != 1 {
			return Value{}, fmt.Errorf("sqldb: IN subquery must return one column, got %d", len(res.Columns))
		}
		for _, row := range res.Rows {
			members = append(members, row[0])
		}
	} else {
		for _, e := range n.List {
			m, err := ex.eval(e, sc)
			if err != nil {
				return Value{}, err
			}
			members = append(members, m)
		}
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, m := range members {
		c, err := compare3(v, m, "=")
		if err != nil {
			return Value{}, err
		}
		if c.IsNull() {
			sawNull = true
		} else if isTrue(c) {
			return Bool(!n.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(n.Not), nil
}

func (ex *executor) evalScalarSubquery(sub *SelectStmt, sc *scope) (Value, error) {
	res, err := ex.execSelect(sub, sc)
	if err != nil {
		return Value{}, err
	}
	if len(res.Columns) != 1 {
		return Value{}, fmt.Errorf("sqldb: scalar subquery must return one column, got %d", len(res.Columns))
	}
	switch len(res.Rows) {
	case 0:
		return Null(), nil
	case 1:
		return res.Rows[0][0], nil
	default:
		return Value{}, fmt.Errorf("sqldb: scalar subquery returned %d rows", len(res.Rows))
	}
}

func (ex *executor) evalCase(n *CaseExpr, sc *scope) (Value, error) {
	var operand Value
	hasOperand := n.Operand != nil
	if hasOperand {
		v, err := ex.eval(n.Operand, sc)
		if err != nil {
			return Value{}, err
		}
		operand = v
	}
	for _, w := range n.Whens {
		cond, err := ex.eval(w.Cond, sc)
		if err != nil {
			return Value{}, err
		}
		var match bool
		if hasOperand {
			c, err := compare3(operand, cond, "=")
			if err != nil {
				return Value{}, err
			}
			match = isTrue(c)
		} else {
			match = isTrue(cond)
		}
		if match {
			return ex.eval(w.Then, sc)
		}
	}
	if n.Else != nil {
		return ex.eval(n.Else, sc)
	}
	return Null(), nil
}

// aggregateFuncs are function names treated as aggregates.
var aggregateFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (ex *executor) evalFunc(n *FuncCall, sc *scope) (Value, error) {
	if aggregateFuncs[n.Name] {
		// Aggregates are computed by the grouping machinery; here we only
		// look up the precomputed per-group value.
		for s := sc; s != nil; s = s.parent {
			if v, ok := s.aggValues[n]; ok {
				return v, nil
			}
		}
		return Value{}, fmt.Errorf("sqldb: aggregate %s used outside a grouped query", n.Name)
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ex.eval(a, sc)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return callScalar(n.Name, args)
}

func callScalar(name string, args []Value) (Value, error) {
	numArg := func(i int) (float64, error) {
		f, ok := args[i].AsFloat()
		if !ok {
			return 0, fmt.Errorf("sqldb: %s: argument %d is not numeric", name, i+1)
		}
		return f, nil
	}
	switch name {
	case "ABS":
		if err := wantArgs(name, args, 1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		if args[0].Type() == IntType {
			i, _ := args[0].AsInt()
			if i < 0 {
				i = -i
			}
			return Int(i), nil
		}
		f, err := numArg(0)
		if err != nil {
			return Value{}, err
		}
		return Float(math.Abs(f)), nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return Value{}, fmt.Errorf("sqldb: ROUND takes 1 or 2 arguments, got %d", len(args))
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, err := numArg(0)
		if err != nil {
			return Value{}, err
		}
		digits := 0.0
		if len(args) == 2 {
			if args[1].IsNull() {
				return Null(), nil
			}
			if digits, err = numArg(1); err != nil {
				return Value{}, err
			}
		}
		scale := math.Pow(10, math.Trunc(digits))
		return Float(math.Round(f*scale) / scale), nil
	case "FLOOR", "CEIL", "CEILING", "SQRT":
		if err := wantArgs(name, args, 1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, err := numArg(0)
		if err != nil {
			return Value{}, err
		}
		switch name {
		case "FLOOR":
			return Float(math.Floor(f)), nil
		case "SQRT":
			if f < 0 {
				return Null(), nil
			}
			return Float(math.Sqrt(f)), nil
		default:
			return Float(math.Ceil(f)), nil
		}
	case "POWER", "POW":
		if err := wantArgs(name, args, 2); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		a, err := numArg(0)
		if err != nil {
			return Value{}, err
		}
		b, err := numArg(1)
		if err != nil {
			return Value{}, err
		}
		return Float(math.Pow(a, b)), nil
	case "LENGTH":
		if err := wantArgs(name, args, 1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		s, ok := args[0].AsText()
		if !ok {
			return Value{}, fmt.Errorf("sqldb: LENGTH requires text")
		}
		return Int(int64(len(s))), nil
	case "UPPER", "LOWER":
		if err := wantArgs(name, args, 1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		s, ok := args[0].AsText()
		if !ok {
			return Value{}, fmt.Errorf("sqldb: %s requires text", name)
		}
		if name == "UPPER" {
			return Text(strings.ToUpper(s)), nil
		}
		return Text(strings.ToLower(s)), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "IFNULL":
		if err := wantArgs(name, args, 2); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	case "LEAST", "GREATEST":
		if len(args) == 0 {
			return Value{}, fmt.Errorf("sqldb: %s needs at least one argument", name)
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.IsNull() || best.IsNull() {
				return Null(), nil
			}
			c, err := Compare(a, best)
			if err != nil {
				return Value{}, err
			}
			if (name == "LEAST" && c < 0) || (name == "GREATEST" && c > 0) {
				best = a
			}
		}
		return best, nil
	default:
		return Value{}, fmt.Errorf("sqldb: unknown function %s", name)
	}
}

func wantArgs(name string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("sqldb: %s takes %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte),
// case-sensitive, without regexp.
func likeMatch(pattern, s string) bool {
	// Dynamic programming over pattern/state positions, iterative two-pointer
	// with backtracking on the last %.
	pi, si := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
