package pager

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"justintime/internal/fault"
)

// fileMagic identifies a page file; the trailing byte is the format version.
var fileMagic = []byte("JITPGF\x01\x00")

// fileHeaderLen is magic(8) + pageSize(u32) + npages(u32).
const fileHeaderLen = 16

// errFileClosed is returned for reads against a closed File (e.g. a query
// racing session shutdown); it surfaces as a query error, never corruption.
var errFileClosed = errors.New("pager: file is closed")

// ErrCorrupt marks structural damage in a page file (bad magic, wrong page
// size, a file shorter than its header claims) as opposed to a transient
// I/O error. Callers use errors.Is(err, ErrCorrupt) to decide whether a
// session's on-disk state should be quarantined rather than retried.
var ErrCorrupt = errors.New("pager: corrupt page file")

// File is the paged backing store for one table: an immutable base page file
// (written only by whole-file checkpoints) plus a volatile spill file
// receiving dirty-page writebacks between checkpoints. The spill is
// discarded on open — durability comes from the snapshot + WAL protocol one
// layer up, which replays logical mutations on top of the base — so
// writebacks never need to be crash-consistent.
//
// Page reads resolve spill-first, then base, then zero-fill (a page
// allocated but never written). All I/O serializes on f.mu; pin/unpin
// concurrency lives in the Pool.
type File struct {
	pool *Pool
	fs   fault.FS

	mu        sync.Mutex
	base      fault.File
	basePages int
	spillPath string
	spill     fault.File
	spillSize int64
	loc       map[int]int64 // pageNo -> spill offset, overriding base
	npages    int
	closed    bool
}

// NewFile creates an empty paged file with no base; pages exist only in the
// pool and the spill at spillPath until the first CheckpointTo.
func NewFile(pool *Pool, spillPath string) *File {
	return NewFileFS(nil, pool, spillPath)
}

// NewFileFS is NewFile on an injectable filesystem (nil = the real one).
func NewFileFS(fsys fault.FS, pool *Pool, spillPath string) *File {
	return &File{pool: pool, fs: fault.Of(fsys), spillPath: spillPath, loc: make(map[int]int64)}
}

// OpenFile opens an existing base page file written by CheckpointTo. Any
// stale spill at spillPath is truncated on first write.
func OpenFile(pool *Pool, basePath, spillPath string) (*File, error) {
	return OpenFileFS(nil, pool, basePath, spillPath)
}

// OpenFileFS is OpenFile on an injectable filesystem (nil = the real one).
func OpenFileFS(fsys fault.FS, pool *Pool, basePath, spillPath string) (*File, error) {
	fsys = fault.Of(fsys)
	b, err := fsys.Open(basePath)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	n, err := checkFileHeader(b, basePath)
	if err != nil {
		b.Close()
		return nil, err
	}
	return &File{
		pool:      pool,
		fs:        fsys,
		base:      b,
		basePages: n,
		spillPath: spillPath,
		loc:       make(map[int]int64),
		npages:    n,
	}, nil
}

// checkFileHeader validates a base page file's header and length, returning
// its page count. Structural damage comes back wrapping ErrCorrupt; a read
// failing for transient reasons (EIO) keeps its own error.
func checkFileHeader(b fault.File, path string) (int, error) {
	hdr := make([]byte, fileHeaderLen)
	if _, err := b.ReadAt(hdr, 0); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, fmt.Errorf("pager: %s: truncated header: %w", path, ErrCorrupt)
		}
		return 0, fmt.Errorf("pager: %s: header: %w", path, err)
	}
	if string(hdr[:8]) != string(fileMagic) {
		return 0, fmt.Errorf("pager: %s: not a page file (bad magic): %w", path, ErrCorrupt)
	}
	if ps := binary.LittleEndian.Uint32(hdr[8:]); ps != PageSize {
		return 0, fmt.Errorf("pager: %s: page size %d, want %d: %w", path, ps, PageSize, ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(hdr[12:]))
	st, err := b.Stat()
	if err != nil {
		return 0, fmt.Errorf("pager: %s: stat: %w", path, err)
	}
	if st.Size() < int64(fileHeaderLen)+int64(n)*PageSize {
		return 0, fmt.Errorf("pager: %s: file shorter than its %d-page header claims: %w", path, n, ErrCorrupt)
	}
	return n, nil
}

// Pages returns the current page count.
func (f *File) Pages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.npages
}

// Pin faults page pageNo into the pool and returns it pinned.
func (f *File) Pin(pageNo int) (*Frame, error) {
	return f.pool.pin(f, pageNo, nil)
}

// PinTracked is Pin with per-caller attribution: a fault (and any eviction
// or writeback it forces) is charged to tk, so a request trace can report
// its own pool activity. tk may be nil.
func (f *File) PinTracked(pageNo int, tk *Tracker) (*Frame, error) {
	return f.pool.pin(f, pageNo, tk)
}

// Allocate appends a fresh page and returns its number and a pinned, zeroed,
// dirty frame. Callers must serialize Allocate with their own writer lock
// (sqldb holds the DB write lock across mutations).
func (f *File) Allocate() (int, *Frame, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, nil, errFileClosed
	}
	pageNo := f.npages
	f.npages++
	f.mu.Unlock()
	fr, err := f.pool.pinNew(f, pageNo)
	if err != nil {
		f.mu.Lock()
		if f.npages == pageNo+1 {
			f.npages = pageNo
		}
		f.mu.Unlock()
		return 0, nil, err
	}
	return pageNo, fr, nil
}

// readPage fills buf with page pageNo: spill first, then base, then zeros.
func (f *File) readPage(pageNo int, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errFileClosed
	}
	if off, ok := f.loc[pageNo]; ok {
		_, err := f.spill.ReadAt(buf, off)
		return err
	}
	if pageNo < f.basePages {
		_, err := f.base.ReadAt(buf, int64(fileHeaderLen)+int64(pageNo)*PageSize)
		return err
	}
	clear(buf)
	return nil
}

// writePage persists a dirty page to the spill file (never the base). A
// write against a closed file is silently discarded: the session is gone and
// its durable state is the last checkpoint.
func (f *File) writePage(pageNo int, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if f.spill == nil {
		s, err := f.fs.OpenFile(f.spillPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("pager: spill: %w", err)
		}
		f.spill = s
	}
	off, reuse := f.loc[pageNo]
	if !reuse {
		off = f.spillSize
	}
	if _, err := f.spill.WriteAt(buf, off); err != nil {
		return fmt.Errorf("pager: spill: %w", err)
	}
	if !reuse {
		f.loc[pageNo] = off
		f.spillSize += PageSize
	}
	return nil
}

// CheckpointTo writes the file's complete current state (pool-resident
// frames included) to path via a fsynced temp-file rename, then retargets
// the File at the new base: resident frames are marked clean, the spill is
// truncated, and subsequent reads resolve against path. Must be called with
// the owning table quiesced (sqldb holds the DB write lock); concurrent
// evictions of this file's frames by other sessions are safe — they write
// bytes identical to what the checkpoint captured.
func (f *File) CheckpointTo(path string) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errFileClosed
	}
	n := f.npages
	f.mu.Unlock()

	tmp := path + ".tmp"
	out, err := f.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pager: checkpoint: %w", err)
	}
	w := bufio.NewWriterSize(out, 1<<16)
	hdr := make([]byte, fileHeaderLen)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], PageSize)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(n))
	_, err = w.Write(hdr)
	buf := make([]byte, PageSize)
	for pageNo := 0; pageNo < n && err == nil; pageNo++ {
		if !f.pool.copyResident(f, pageNo, buf) {
			err = f.readPage(pageNo, buf)
		}
		if err == nil {
			_, err = w.Write(buf)
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		f.fs.Remove(tmp)
		return fmt.Errorf("pager: checkpoint: %w", err)
	}
	if err := f.fs.Rename(tmp, path); err != nil {
		f.fs.Remove(tmp)
		return fmt.Errorf("pager: checkpoint: %w", err)
	}
	syncDir(f.fs, filepath.Dir(path))

	// The new base now holds every page's current content; frames stop being
	// dirty and the spill's overrides are obsolete.
	f.pool.markFileClean(f)
	nb, err := f.fs.Open(path)
	if err != nil {
		return fmt.Errorf("pager: checkpoint reopen: %w", err)
	}
	f.mu.Lock()
	if f.base != nil {
		f.base.Close()
	}
	f.base = nb
	f.basePages = n
	f.loc = make(map[int]int64)
	if f.spill != nil {
		f.spill.Truncate(0)
	}
	f.spillSize = 0
	f.mu.Unlock()
	return nil
}

// Reset discards all pages (pool frames, spill overrides, and the base's
// relevance), returning the file to empty. Used when a table is rewritten
// wholesale (DELETE/UPDATE fallback).
func (f *File) Reset() error {
	f.pool.dropFile(f)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errFileClosed
	}
	f.basePages = 0
	f.npages = 0
	f.loc = make(map[int]int64)
	if f.spill != nil {
		f.spill.Truncate(0)
	}
	f.spillSize = 0
	return nil
}

// Close drops the file's pool frames, closes its descriptors, and removes
// the spill. Reads racing Close get errFileClosed.
func (f *File) Close() error {
	f.pool.dropFile(f)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	var err error
	if f.base != nil {
		err = f.base.Close()
		f.base = nil
	}
	if f.spill != nil {
		if cerr := f.spill.Close(); err == nil {
			err = cerr
		}
		f.spill = nil
	}
	f.fs.Remove(f.spillPath)
	return err
}

// ReadFile iterates every page of a base page file sequentially without a
// pool — the slice-store fallback path for reading paged checkpoints on
// hosts that run without a buffer pool. The page buffer passed to fn is
// reused between calls.
func ReadFile(path string, fn func(pageNo int, page []byte) error) error {
	return ReadFileFS(nil, path, fn)
}

// ReadFileFS is ReadFile on an injectable filesystem (nil = the real one).
func ReadFileFS(fsys fault.FS, path string, fn func(pageNo int, page []byte) error) error {
	f, err := fault.Of(fsys).Open(path)
	if err != nil {
		return fmt.Errorf("pager: %w", err)
	}
	defer f.Close()
	n, err := checkFileHeader(f, path)
	if err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	for pageNo := 0; pageNo < n; pageNo++ {
		if _, err := f.ReadAt(buf, int64(fileHeaderLen)+int64(pageNo)*PageSize); err != nil {
			return fmt.Errorf("pager: %s: page %d: %w", path, pageNo, err)
		}
		if err := fn(pageNo, buf); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-performed rename survives power loss;
// filesystems rejecting directory fsync are tolerated.
func syncDir(fsys fault.FS, dir string) {
	df, err := fsys.Open(dir)
	if err != nil {
		return
	}
	defer df.Close()
	_ = df.Sync()
}
