package pager

import (
	"errors"
	"sync"
	"time"
)

// ErrNoFrames is returned by Pin when every frame in the pool is pinned:
// eviction is refused while a frame is pinned, so a pool smaller than a
// query's working set of simultaneous pins surfaces as this error rather
// than silently evicting data someone is reading.
var ErrNoFrames = errors.New("pager: all buffer-pool frames are pinned")

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	Hits            int64 // pins served from a resident frame
	Misses          int64 // pins that had to fault the page from disk
	Evictions       int64 // resident pages displaced to make room
	DirtyWritebacks int64 // evictions (or flushes) that had to write the page out first
	Pinned          int64 // frames currently pinned
	Resident        int64 // frames currently holding a page
}

// Pool is a shared buffer pool: a fixed set of PageSize frames serving many
// Files (typically one per paged table across many sessions). All state is
// guarded by one mutex; disk I/O for faults and writebacks happens outside
// it, coordinated through per-frame loading/flushing markers and a condition
// variable.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []*Frame
	table  map[frameKey]*Frame
	clock  int

	hits, misses, evictions, writebacks int64
}

type frameKey struct {
	file   *File
	pageNo int
}

// Frame is one pool slot. Its buffer is only valid to read or write while
// the holder has it pinned.
type Frame struct {
	pool *Pool
	buf  []byte

	key      frameKey
	mapped   bool
	pins     int
	dirty    bool
	ref      bool // clock reference bit
	loading  bool // contents being faulted in; buf not yet valid
	flushing bool // contents being written back by an evictor
}

// NewPool builds a pool of npages frames (minimum 2).
func NewPool(npages int) *Pool {
	if npages < 2 {
		npages = 2
	}
	p := &Pool{table: make(map[frameKey]*Frame, npages)}
	p.frames = make([]*Frame, npages)
	for i := range p.frames {
		p.frames[i] = &Frame{pool: p, buf: make([]byte, PageSize)}
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Len returns the pool's frame count.
func (p *Pool) Len() int { return len(p.frames) }

// Stats returns current counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Hits:            p.hits,
		Misses:          p.misses,
		Evictions:       p.evictions,
		DirtyWritebacks: p.writebacks,
	}
	for _, fr := range p.frames {
		if fr.mapped {
			s.Resident++
		}
		if fr.pins > 0 {
			s.Pinned++
		}
	}
	return s
}

// Data returns the frame's page buffer. Valid only while pinned.
func (fr *Frame) Data() []byte { return fr.buf }

// MarkDirty records that the holder modified the page; the pool will write
// it back to the owning file before the frame can be recycled.
func (fr *Frame) MarkDirty() {
	p := fr.pool
	p.mu.Lock()
	fr.dirty = true
	p.mu.Unlock()
}

// Unpin releases one pin. The frame becomes eligible for eviction when its
// pin count reaches zero.
func (fr *Frame) Unpin() {
	p := fr.pool
	p.mu.Lock()
	fr.pins--
	if fr.pins == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// pin returns a pinned frame holding page pageNo of f, faulting it from
// disk on a miss. Concurrent pins of the same missing page coalesce onto one
// disk read. A non-nil tracker receives this caller's fault/eviction
// activity (trace attribution); the process-wide fault observer sees every
// fault's read latency regardless.
func (p *Pool) pin(f *File, pageNo int, tk *Tracker) (*Frame, error) {
	k := frameKey{file: f, pageNo: pageNo}
	p.mu.Lock()
	for {
		if fr, ok := p.table[k]; ok {
			if fr.loading {
				p.cond.Wait() // loader broadcasts; on its failure the mapping vanishes and we fault
				continue
			}
			fr.pins++
			fr.ref = true
			p.hits++
			p.mu.Unlock()
			return fr, nil
		}
		fr, err := p.acquireLocked(tk)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		// acquireLocked may have released the lock mid-flush; another
		// goroutine can have mapped k meanwhile. Put the frame back and take
		// the hit path.
		if _, ok := p.table[k]; ok {
			fr.pins = 0
			continue
		}
		fr.key = k
		fr.mapped = true
		fr.loading = true
		fr.ref = true
		p.table[k] = fr
		p.misses++
		p.mu.Unlock()
		readStart := time.Now()
		rerr := f.readPage(pageNo, fr.buf)
		if rerr == nil {
			d := time.Since(readStart)
			tk.noteFault(d)
			observeFault(d)
		}
		p.mu.Lock()
		fr.loading = false
		if rerr != nil {
			delete(p.table, k)
			fr.mapped = false
			fr.pins = 0
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		if rerr != nil {
			return nil, rerr
		}
		return fr, nil
	}
}

// pinNew returns a pinned, zeroed, dirty frame for a page that has never
// been written (File.Allocate).
func (p *Pool) pinNew(f *File, pageNo int) (*Frame, error) {
	k := frameKey{file: f, pageNo: pageNo}
	p.mu.Lock()
	fr, err := p.acquireLocked(nil)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	fr.key = k
	fr.mapped = true
	fr.dirty = true
	fr.ref = true
	clear(fr.buf)
	p.table[k] = fr
	p.mu.Unlock()
	return fr, nil
}

// acquireLocked reclaims a victim frame, writing back its contents first if
// dirty. Called and returns with p.mu held (the lock is dropped around the
// writeback I/O). The returned frame is unmapped and reserved with pins=1.
// A non-nil tracker is charged for the eviction (and writeback) this
// caller's fault forced.
func (p *Pool) acquireLocked(tk *Tracker) (*Frame, error) {
	for {
		fr, allPinned := p.victimLocked()
		if fr == nil {
			if allPinned {
				return nil, ErrNoFrames
			}
			p.cond.Wait() // some frame is mid-load/mid-flush; it will settle
			continue
		}
		fr.pins = 1 // reserve: no other evictor may take it
		if fr.dirty {
			// Write back with the mapping still in place so a concurrent
			// pin of the same page hits this (valid) frame instead of
			// faulting stale bytes from disk.
			fr.dirty = false
			fr.flushing = true
			vk := fr.key
			p.writebacks++
			p.mu.Unlock()
			writeStart := time.Now()
			werr := vk.file.writePage(vk.pageNo, fr.buf)
			if werr == nil {
				tk.noteWriteback(time.Since(writeStart))
			}
			p.mu.Lock()
			fr.flushing = false
			fr.pins--
			p.cond.Broadcast()
			if werr != nil {
				fr.dirty = true
				return nil, werr
			}
			if fr.pins > 0 || fr.dirty {
				continue // re-pinned or re-dirtied through the flush; pick another
			}
			fr.pins = 1
		}
		if fr.mapped {
			delete(p.table, fr.key)
			fr.mapped = false
			p.evictions++
			tk.noteEviction()
		}
		fr.dirty = false
		fr.ref = false
		return fr, nil
	}
}

// victimLocked runs the clock hand over the frames: first encounter clears a
// frame's reference bit, second selects it. Returns (nil, true) when every
// frame is pinned, (nil, false) when the only obstacles are transient
// loads/flushes worth waiting out.
func (p *Pool) victimLocked() (fr *Frame, allPinned bool) {
	n := len(p.frames)
	allPinned = true
	for i := 0; i < 2*n; i++ {
		f := p.frames[p.clock%n]
		p.clock++
		if f.loading || f.flushing {
			allPinned = false
			continue
		}
		if f.pins > 0 {
			continue
		}
		allPinned = false
		if !f.mapped {
			return f, false
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f, false
	}
	return nil, allPinned
}

// copyResident copies page pageNo of f into dst if it is resident, so a
// checkpoint can capture in-pool (possibly dirty) state without faulting.
func (p *Pool) copyResident(f *File, pageNo int, dst []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, ok := p.table[frameKey{file: f, pageNo: pageNo}]
	if !ok || fr.loading {
		return false
	}
	copy(dst, fr.buf)
	return true
}

// markFileClean clears the dirty bit on every resident frame of f. Called
// after a checkpoint has durably captured the file's state.
func (p *Pool) markFileClean(f *File) {
	p.mu.Lock()
	for _, fr := range p.frames {
		if fr.mapped && fr.key.file == f {
			fr.dirty = false
		}
	}
	p.mu.Unlock()
}

// dropFile discards every resident frame of f, waiting out transient pins,
// loads, and flushes. Dirty contents are discarded — callers either just
// checkpointed or are deleting the table.
func (p *Pool) dropFile(f *File) {
	p.mu.Lock()
	for {
		busy := false
		for _, fr := range p.frames {
			if !fr.mapped || fr.key.file != f {
				continue
			}
			if fr.pins > 0 || fr.loading || fr.flushing {
				busy = true
				continue
			}
			delete(p.table, fr.key)
			fr.mapped = false
			fr.dirty = false
		}
		if !busy {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// EvictAll flushes and drops every unpinned resident frame — a test and
// measurement hook for forcing a cold pool. Pinned frames are left in place.
func (p *Pool) EvictAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if !fr.mapped || fr.pins > 0 || fr.loading || fr.flushing {
			continue
		}
		if fr.dirty {
			fr.pins = 1
			fr.dirty = false
			fr.flushing = true
			vk := fr.key
			p.writebacks++
			p.mu.Unlock()
			werr := vk.file.writePage(vk.pageNo, fr.buf)
			p.mu.Lock()
			fr.flushing = false
			fr.pins--
			p.cond.Broadcast()
			if werr != nil {
				fr.dirty = true
				return werr
			}
			if fr.pins > 0 || fr.dirty {
				continue
			}
		}
		delete(p.table, fr.key)
		fr.mapped = false
		p.evictions++
	}
	return nil
}
