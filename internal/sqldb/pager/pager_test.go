package pager

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// pageStamp fills a pinned frame's page with a single record identifying
// (tag, pageNo), so any cross-page or stale-content mix-up is detectable.
func pageStamp(tag string, pageNo int) []byte {
	return []byte(fmt.Sprintf("stamp:%s:page:%d", tag, pageNo))
}

func stampFrame(fr *Frame, tag string, pageNo int) {
	p := fr.Data()
	PageInit(p)
	if !PageAppend(p, pageStamp(tag, pageNo)) {
		panic("stamp does not fit in an empty page")
	}
	fr.MarkDirty()
}

func checkStamp(t *testing.T, fr *Frame, tag string, pageNo int) {
	t.Helper()
	p := fr.Data()
	if n := PageCount(p); n != 1 {
		t.Fatalf("page %d: %d records, want 1", pageNo, n)
	}
	if got, want := PageRecord(p, 0), pageStamp(tag, pageNo); !bytes.Equal(got, want) {
		t.Fatalf("page %d: record %q, want %q", pageNo, got, want)
	}
}

// newStampedFile allocates npages pages, stamps each, and unpins them all.
func newStampedFile(t *testing.T, pool *Pool, tag string, npages int) *File {
	t.Helper()
	f := NewFile(pool, filepath.Join(t.TempDir(), "spill.db"))
	for i := 0; i < npages; i++ {
		pageNo, fr, err := f.Allocate()
		if err != nil {
			t.Fatalf("allocate %d: %v", i, err)
		}
		if pageNo != i {
			t.Fatalf("allocate returned page %d, want %d", pageNo, i)
		}
		stampFrame(fr, tag, pageNo)
		fr.Unpin()
	}
	return f
}

func TestPageSlotting(t *testing.T) {
	p := make([]byte, PageSize)
	PageInit(p)
	if n := PageCount(p); n != 0 {
		t.Fatalf("fresh page has %d records", n)
	}
	var recs [][]byte
	for i := 0; ; i++ {
		rec := []byte(fmt.Sprintf("record-%d-%s", i, string(make([]byte, i%50))))
		if !PageAppend(p, rec) {
			break
		}
		recs = append(recs, rec)
	}
	if len(recs) < 2 {
		t.Fatalf("page fit only %d records", len(recs))
	}
	if n := PageCount(p); n != len(recs) {
		t.Fatalf("PageCount %d, want %d", n, len(recs))
	}
	for i, want := range recs {
		if got := PageRecord(p, i); !bytes.Equal(got, want) {
			t.Fatalf("record %d: %q, want %q", i, got, want)
		}
	}
	// In-place replace (same length), then grow within free space.
	if !PageReplace(p, 0, bytes.ToUpper(recs[0])) {
		t.Fatal("same-length replace failed")
	}
	if got := PageRecord(p, 0); !bytes.Equal(got, bytes.ToUpper(recs[0])) {
		t.Fatalf("replaced record 0 is %q", got)
	}
	if PageAppend(p, make([]byte, PageSize)) {
		t.Fatal("oversized append succeeded")
	}
	// Out-of-bounds and oversized access must degrade, not panic.
	if PageRecord(p, len(recs)) != nil || PageRecord(p, -1) != nil {
		t.Fatal("out-of-bounds PageRecord returned data")
	}
	if PageReplace(p, 1, make([]byte, MaxRecord+1)) {
		t.Fatal("oversized replace succeeded")
	}
}

func TestPinMissHitAndStats(t *testing.T) {
	pool := NewPool(8)
	f := newStampedFile(t, pool, "a", 3)
	defer f.Close()
	base := pool.Stats()
	fr, err := f.Pin(1)
	if err != nil {
		t.Fatal(err)
	}
	checkStamp(t, fr, "a", 1)
	if s := pool.Stats(); s.Hits != base.Hits+1 && s.Misses != base.Misses+1 {
		t.Fatalf("pin counted neither hit nor miss: %+v -> %+v", base, s)
	}
	if s := pool.Stats(); s.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", s.Pinned)
	}
	fr.Unpin()
	// Force everything out, then re-pin: must be a miss served from disk.
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Resident != 0 {
		t.Fatalf("Resident = %d after EvictAll", s.Resident)
	}
	m0 := pool.Stats().Misses
	fr, err = f.Pin(2)
	if err != nil {
		t.Fatal(err)
	}
	checkStamp(t, fr, "a", 2)
	if m := pool.Stats().Misses; m != m0+1 {
		t.Fatalf("cold pin counted %d misses, want 1", m-m0)
	}
	// Second pin of a resident page is a hit.
	h0 := pool.Stats().Hits
	fr2, err := f.Pin(2)
	if err != nil {
		t.Fatal(err)
	}
	if h := pool.Stats().Hits; h != h0+1 {
		t.Fatalf("warm pin counted %d hits, want 1", h-h0)
	}
	fr2.Unpin()
	fr.Unpin()
}

func TestEvictionRefusedWhilePinned(t *testing.T) {
	pool := NewPool(2)
	f := newStampedFile(t, pool, "p", 2)
	defer f.Close()
	fr0, err := f.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	fr1, err := f.Pin(1)
	if err != nil {
		t.Fatal(err)
	}
	// Every frame pinned: a third page must be refused, not steal a frame.
	if _, _, err := f.Allocate(); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("Allocate with all frames pinned: err = %v, want ErrNoFrames", err)
	}
	// The pinned frames' contents survived the refused acquisition.
	checkStamp(t, fr0, "p", 0)
	checkStamp(t, fr1, "p", 1)
	fr1.Unpin()
	// One frame free again: the same allocation now succeeds.
	pageNo, fr2, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	stampFrame(fr2, "p", pageNo)
	fr2.Unpin()
	fr0.Unpin()
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	pool := NewPool(2)
	const npages = 8
	f := newStampedFile(t, pool, "w", npages) // 8 dirty pages through 2 frames
	defer f.Close()
	s := pool.Stats()
	if s.Evictions == 0 || s.DirtyWritebacks == 0 {
		t.Fatalf("stamping %d pages through %d frames: %+v (want evictions and writebacks)", npages, pool.Len(), s)
	}
	// Every page's content must round-trip through the spill.
	for i := 0; i < npages; i++ {
		fr, err := f.Pin(i)
		if err != nil {
			t.Fatalf("pin %d: %v", i, err)
		}
		checkStamp(t, fr, "w", i)
		fr.Unpin()
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	pool := NewPool(4)
	dir := t.TempDir()
	f := newStampedFile(t, pool, "c", 10)
	base := filepath.Join(dir, "pages.db")
	if err := f.CheckpointTo(base); err != nil {
		t.Fatal(err)
	}
	// After the checkpoint nothing is dirty: evicting everything must not
	// add writebacks.
	w0 := pool.Stats().DirtyWritebacks
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	if w := pool.Stats().DirtyWritebacks; w != w0 {
		t.Fatalf("EvictAll after checkpoint wrote back %d pages", w-w0)
	}
	// The live file now reads from the new base.
	for i := 0; i < 10; i++ {
		fr, err := f.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		checkStamp(t, fr, "c", i)
		fr.Unpin()
	}
	f.Close()
	// A fresh attach (the rehydration path) sees identical pages.
	f2, err := OpenFile(pool, base, filepath.Join(dir, "spill2.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Pages() != 10 {
		t.Fatalf("reopened file has %d pages, want 10", f2.Pages())
	}
	for i := 0; i < 10; i++ {
		fr, err := f2.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		checkStamp(t, fr, "c", i)
		fr.Unpin()
	}
	// The pool-free sequential reader agrees too.
	n := 0
	err = ReadFile(base, func(pageNo int, page []byte) error {
		if got, want := PageRecord(page, 0), pageStamp("c", pageNo); !bytes.Equal(got, want) {
			return fmt.Errorf("page %d: %q", pageNo, got)
		}
		n++
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("ReadFile: n=%d err=%v", n, err)
	}
}

func TestClosedFileRejectsReads(t *testing.T) {
	pool := NewPool(4)
	f := newStampedFile(t, pool, "x", 2)
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pin(0); err == nil {
		t.Fatal("Pin on a closed file succeeded")
	}
	if _, _, err := f.Allocate(); err == nil {
		t.Fatal("Allocate on a closed file succeeded")
	}
}

// TestConcurrentPinUnpinFault is the -race lock on the pool: many readers
// hammer pages through a pool far smaller than the working set (every pin is
// a potential fault racing another frame's eviction), a writer keeps
// re-dirtying pages, and an evictor cycles the whole pool. Every read must
// observe exactly the content the page was last stamped with.
func TestConcurrentPinUnpinFault(t *testing.T) {
	pool := NewPool(4)
	const npages = 32
	// Two files sharing the pool, as sessions share it in the server.
	fa := newStampedFile(t, pool, "fa", npages)
	fb := newStampedFile(t, pool, "fb", npages)
	defer fa.Close()
	defer fb.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 400; i++ {
				f, tag := fa, "fa"
				if r.Intn(2) == 0 {
					f, tag = fb, "fb"
				}
				pageNo := r.Intn(npages)
				fr, err := f.Pin(pageNo)
				if err != nil {
					if errors.Is(err, ErrNoFrames) {
						continue // transient full pool under 8 concurrent pins
					}
					errs <- err
					return
				}
				if got, want := PageRecord(fr.Data(), 0), pageStamp(tag, pageNo); !bytes.Equal(got, want) {
					errs <- fmt.Errorf("%s page %d: read %q", tag, pageNo, got)
					fr.Unpin()
					return
				}
				fr.Unpin()
			}
		}(g)
	}
	// Writer: keeps pages dirty so evictions must write back mid-race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			pageNo := r.Intn(npages)
			fr, err := fa.Pin(pageNo)
			if err != nil {
				if errors.Is(err, ErrNoFrames) {
					continue
				}
				errs <- err
				return
			}
			stampFrame(fr, "fa", pageNo) // same bytes, but dirties the frame
			fr.Unpin()
		}
	}()
	// Evictor: forces fault-during-eviction interleavings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := pool.EvictAll(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Invariant check: nothing is left pinned.
	if s := pool.Stats(); s.Pinned != 0 {
		t.Fatalf("leaked pins: %+v", s)
	}
}

// TestConcurrentCheckpointAndReads covers the checkpoint-vs-reader race the
// persistence layer depends on: CheckpointTo retargets the base while other
// goroutines keep faulting pages of the same file.
func TestConcurrentCheckpointAndReads(t *testing.T) {
	pool := NewPool(4)
	dir := t.TempDir()
	const npages = 16
	f := newStampedFile(t, pool, "ck", npages)
	defer f.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				pageNo := r.Intn(npages)
				fr, err := f.Pin(pageNo)
				if err != nil {
					if errors.Is(err, ErrNoFrames) {
						continue
					}
					errs <- err
					return
				}
				if got, want := PageRecord(fr.Data(), 0), pageStamp("ck", pageNo); !bytes.Equal(got, want) {
					errs <- fmt.Errorf("page %d: read %q during checkpoint", pageNo, got)
					fr.Unpin()
					return
				}
				fr.Unpin()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := f.CheckpointTo(filepath.Join(dir, "ckpt.db")); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	pool := NewPool(2)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.db")
	if err := os.WriteFile(bad, []byte("definitely not a page file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(pool, bad, filepath.Join(dir, "s.db")); err == nil {
		t.Fatal("OpenFile accepted garbage")
	}
	// Header claiming more pages than the file holds.
	f := newStampedFile(t, pool, "g", 3)
	base := filepath.Join(dir, "short.db")
	if err := f.CheckpointTo(base); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Truncate(base, fileHeaderLen+PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(pool, base, filepath.Join(dir, "s2.db")); err == nil {
		t.Fatal("OpenFile accepted a truncated page file")
	}
}
