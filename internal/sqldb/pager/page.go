// Package pager provides fixed-size slotted pages behind a shared,
// process-wide buffer pool. Pages hold opaque records ([]byte); the pool owns
// a bounded set of page frames, serves pin/unpin requests with clock
// eviction of unpinned frames, and writes dirty pages back to per-table page
// files. The package deliberately knows nothing about rows, values, or SQL —
// sqldb layers its row encoding on top — so it imports only the standard
// library and sits below everything else in the storage stack.
package pager

import "encoding/binary"

const (
	// PageSize is the fixed size of every page and pool frame.
	PageSize = 8192

	// pageHeaderLen is the slotted-page header: u16 slot count + u16 free
	// offset (where the next record's bytes land).
	pageHeaderLen = 4

	// slotLen is one slot directory entry: u16 record offset + u16 record
	// length. The directory grows downward from the end of the page.
	slotLen = 4
)

// MaxRecord is the largest record an empty page can hold.
const MaxRecord = PageSize - pageHeaderLen - slotLen

// PageInit formats p (len PageSize) as an empty slotted page.
func PageInit(p []byte) {
	binary.LittleEndian.PutUint16(p[0:], 0)
	binary.LittleEndian.PutUint16(p[2:], pageHeaderLen)
	// Leftover bytes from a recycled frame are never addressed: records are
	// reachable only through slots, and both counters were just reset.
}

// PageCount returns the number of records stored in p.
func PageCount(p []byte) int {
	return int(binary.LittleEndian.Uint16(p[0:]))
}

// PageRecord returns the i'th record of p, aliasing the page buffer. The
// caller must hold a pin on the frame for as long as it reads the slice.
// Out-of-range slots or corrupt offsets return nil.
func PageRecord(p []byte, i int) []byte {
	n := PageCount(p)
	if i < 0 || i >= n {
		return nil
	}
	base := len(p) - slotLen*(i+1)
	off := int(binary.LittleEndian.Uint16(p[base:]))
	length := int(binary.LittleEndian.Uint16(p[base+2:]))
	if off < pageHeaderLen || off+length > len(p)-slotLen*n {
		return nil
	}
	return p[off : off+length]
}

// PageAppend adds rec as the next record of p, returning false when the page
// lacks room (record bytes grow up, the slot directory grows down; they must
// not meet).
func PageAppend(p []byte, rec []byte) bool {
	n := PageCount(p)
	free := int(binary.LittleEndian.Uint16(p[2:]))
	dirStart := len(p) - slotLen*(n+1)
	if free+len(rec) > dirStart || len(rec) > 0xffff {
		return false
	}
	copy(p[free:], rec)
	binary.LittleEndian.PutUint16(p[dirStart:], uint16(free))
	binary.LittleEndian.PutUint16(p[dirStart+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(p[0:], uint16(n+1))
	binary.LittleEndian.PutUint16(p[2:], uint16(free+len(rec)))
	return true
}

// PageReplace overwrites record i with rec: in place when rec fits the old
// slot, else by appending rec's bytes to the free space and repointing the
// slot (the old bytes become dead space until the table is rewritten).
// Returns false when neither fits; the caller falls back to rebuilding the
// table.
func PageReplace(p []byte, i int, rec []byte) bool {
	n := PageCount(p)
	if i < 0 || i >= n || len(rec) > 0xffff {
		return false
	}
	base := len(p) - slotLen*(i+1)
	off := int(binary.LittleEndian.Uint16(p[base:]))
	length := int(binary.LittleEndian.Uint16(p[base+2:]))
	if len(rec) <= length {
		copy(p[off:], rec)
		binary.LittleEndian.PutUint16(p[base+2:], uint16(len(rec)))
		return true
	}
	free := int(binary.LittleEndian.Uint16(p[2:]))
	dirStart := len(p) - slotLen*n
	if free+len(rec) > dirStart {
		return false
	}
	copy(p[free:], rec)
	binary.LittleEndian.PutUint16(p[base:], uint16(free))
	binary.LittleEndian.PutUint16(p[base+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(p[2:], uint16(free+len(rec)))
	return true
}
