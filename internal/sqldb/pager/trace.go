package pager

import (
	"sync/atomic"
	"time"
)

// Tracker accumulates the pool activity attributable to one caller — one
// SQL statement execution, typically. The executor hands a Tracker down the
// read path (PagedTable.GetTracked/ScanTracked → File.PinTracked →
// Pool.pin), so a request trace can report exactly how many page faults it
// caused and how long their disk reads took, rather than guessing from
// process-wide counter deltas. A nil *Tracker is accepted everywhere and
// recorded nowhere.
//
// Trackers are not synchronized: each belongs to a single executing
// statement. The pool touches it only on the caller's own goroutine (the
// fault read happens on the pinning goroutine).
type Tracker struct {
	Faults      int64 // pins served by faulting the page from disk
	FaultNs     int64 // total disk-read time of those faults
	Evictions   int64 // resident pages this caller's faults displaced
	Writebacks  int64 // displaced pages that were dirty and had to be written
	WritebackNs int64 // total write time of those writebacks
}

func (tk *Tracker) noteFault(d time.Duration) {
	if tk != nil {
		tk.Faults++
		tk.FaultNs += d.Nanoseconds()
	}
}

func (tk *Tracker) noteEviction() {
	if tk != nil {
		tk.Evictions++
	}
}

func (tk *Tracker) noteWriteback(d time.Duration) {
	if tk != nil {
		tk.Writebacks++
		tk.WritebackNs += d.Nanoseconds()
	}
}

// faultObserver is the process-wide fault-latency hook (the /metrics
// histogram). Atomic so SetFaultObserver can race pins harmlessly.
var faultObserver atomic.Pointer[func(time.Duration)]

// SetFaultObserver installs fn to observe every page fault's disk-read
// latency, pool-wide. One observer; later calls replace it.
func SetFaultObserver(fn func(time.Duration)) { faultObserver.Store(&fn) }

func observeFault(d time.Duration) {
	if fn := faultObserver.Load(); fn != nil {
		(*fn)(d)
	}
}
