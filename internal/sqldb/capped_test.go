package sqldb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"justintime/internal/sqldb/pager"
)

func cappedTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.CreateTable("t", []Column{
		{Name: "a", Type: IntType},
		{Name: "b", Type: IntType},
		{Name: "s", Type: TextType},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX t_a ON t (a)"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("u", []Column{{Name: "v", Type: IntType}}); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 500)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Int(int64(i % 10)), Text(fmt.Sprintf("s%d", i))}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	var urows [][]Value
	for i := 0; i < 10; i++ {
		urows = append(urows, []Value{Int(int64(i))})
	}
	if err := db.InsertRows("u", urows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQueryCappedMatchesPrefix locks in the capped-equals-truncated contract
// across plan shapes: for any SELECT, QueryCapped(n) must return exactly the
// first n rows of the uncapped result (or all of them when fewer exist).
func TestQueryCappedMatchesPrefix(t *testing.T) {
	db := cappedTestDB(t)
	queries := []struct {
		sql  string
		args []Value
	}{
		{"SELECT * FROM t", nil},                                             // streaming full scan
		{"SELECT a, s FROM t WHERE b = ?", []Value{Int(3)}},                  // streaming, residual WHERE
		{"SELECT * FROM t WHERE a >= ? AND a < ?", []Value{Int(5), Int(80)}}, // index prefilter
		{"SELECT * FROM t WHERE a = ?", []Value{Int(9999)}},                  // empty result
		{"SELECT b, COUNT(*) FROM t GROUP BY b", nil},                        // grouped fallback
		{"SELECT DISTINCT b FROM t", nil},                                    // DISTINCT fallback
		{"SELECT * FROM t ORDER BY a DESC", nil},                             // sorted fallback
		{"SELECT * FROM t ORDER BY a LIMIT 7", nil},                          // top-k path
		{"SELECT t.s, u.v FROM t INNER JOIN u ON t.b = u.v", nil},            // join fallback
		{"SELECT a + b AS ab FROM t WHERE ab > ?", []Value{Int(200)}},        // alias in WHERE
	}
	for _, q := range queries {
		st, err := Prepare(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		full, err := st.Query(db, q.args...)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		for _, cap := range []int{0, 1, 3, len(full.Rows), len(full.Rows) + 5} {
			got, err := st.QueryCapped(db, cap, q.args...)
			if err != nil {
				t.Fatalf("%s cap=%d: %v", q.sql, cap, err)
			}
			want := full.Rows
			if cap > 0 && cap < len(want) {
				want = want[:cap]
			}
			if !reflect.DeepEqual(got.Columns, full.Columns) {
				t.Fatalf("%s cap=%d: columns %v, want %v", q.sql, cap, got.Columns, full.Columns)
			}
			if !reflect.DeepEqual(got.Rows, want) {
				t.Fatalf("%s cap=%d: %d rows diverge from uncapped prefix (%d)", q.sql, cap, len(got.Rows), len(want))
			}
		}
	}
}

// TestQueryCappedLeavesSubqueriesUncapped: the cap applies to the top-level
// statement only. If it leaked into the IN-subquery here, matches for high b
// values would vanish.
func TestQueryCappedLeavesSubqueriesUncapped(t *testing.T) {
	db := cappedTestDB(t)
	st := MustPrepare("SELECT a, b FROM t WHERE b IN (SELECT v FROM u WHERE v >= 8)")
	full, err := st.Query(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != 100 { // b in {8, 9}: 50 rows each
		t.Fatalf("uncapped subquery match count = %d", len(full.Rows))
	}
	got, err := st.QueryCapped(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, full.Rows[:5]) {
		t.Fatalf("capped rows are not the uncapped prefix: %+v", got.Rows)
	}
	// A scalar subquery must also see the whole table under a cap of 1.
	st = MustPrepare("SELECT a FROM t WHERE b = (SELECT MAX(v) FROM u)")
	res, err := st.QueryCapped(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if a, _ := res.Rows[0][0].AsInt(); a != 9 { // first row with b == 9
		t.Fatalf("first match is a=%d, want 9", a)
	}
}

// TestQueryCappedStopsEarly proves the cap is pushed into execution rather
// than applied to a materialized result: on paged storage, a capped streaming
// scan must fault in only the pages holding the rows it emitted.
func TestQueryCappedStopsEarly(t *testing.T) {
	db := cappedTestDB(t)
	pool := pager.NewPool(32)
	if err := db.PageTable("t", pool, filepath.Join(t.TempDir(), "spill.db")); err != nil {
		t.Fatal(err)
	}
	defer db.ClosePagedStores()
	// Measure the table's page count with a warm full scan.
	if _, err := db.Query("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	npages := int(pool.Stats().Resident)
	if npages < 3 {
		t.Fatalf("table spans only %d pages", npages)
	}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	m0 := pool.Stats().Misses
	st := MustPrepare("SELECT * FROM t")
	res, err := st.QueryCapped(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("capped scan returned %d rows", len(res.Rows))
	}
	if faults := pool.Stats().Misses - m0; faults != 1 {
		t.Fatalf("capped scan of 10 rows faulted %d pages (table has %d); cap was not pushed into the scan", faults, npages)
	}
}

// TestQueryCappedErrorParity: a row whose WHERE evaluation errors must
// surface the error through the capped paths exactly as uncapped execution
// does, including when an index prefilter leaves only the sentinel row.
func TestQueryCappedErrorParity(t *testing.T) {
	db := cappedTestDB(t)
	for _, sql := range []string{
		"SELECT * FROM t WHERE -s > 0",              // negating TEXT errors on every row
		"SELECT * FROM t WHERE a = 9999 AND -s > 0", // index proves empty; sentinel must still error
	} {
		st := MustPrepare(sql)
		_, ferr := st.Query(db)
		_, cerr := st.QueryCapped(db, 5)
		if (ferr == nil) != (cerr == nil) {
			t.Fatalf("%s: uncapped err=%v, capped err=%v", sql, ferr, cerr)
		}
		if ferr != nil && cerr != nil && ferr.Error() != cerr.Error() {
			t.Fatalf("%s: error text diverged: %q vs %q", sql, ferr, cerr)
		}
	}
	// EXPLAIN passes through uncapped, and non-SELECTs are rejected.
	ex := MustPrepare("EXPLAIN SELECT * FROM t WHERE a = 1")
	res, err := ex.QueryCapped(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("EXPLAIN was capped: %+v", res.Rows)
	}
	ins := MustPrepare("INSERT INTO u (v) VALUES (1)")
	if _, err := ins.QueryCapped(db, 1); err == nil {
		t.Fatal("QueryCapped accepted a non-SELECT")
	}
}

// TestQueryCappedDifferential reuses the differential generator: for random
// schemas and queries, QueryCapped(n) must always equal the uncapped result
// truncated to n — across the planner arm and the forced-scan arm.
func TestQueryCappedDifferential(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 10
	}
	for seed := int64(0); seed < int64(cases); seed++ {
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		db, tables := buildDiffDB(t, r)
		for i := 0; i < 10; i++ {
			sql, args := buildDiffQuery(r, tables)
			st, err := Prepare(sql)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, sql, err)
			}
			for _, arm := range []bool{false, true} {
				db.DisableIndexScan = arm
				full, ferr := st.Query(db, args...)
				capN := 1 + r.Intn(8)
				got, cerr := st.QueryCapped(db, capN, args...)
				db.DisableIndexScan = false
				if (ferr == nil) != (cerr == nil) {
					t.Fatalf("seed %d (scan=%v): %s %v: err parity broke: %v vs %v", seed, arm, sql, args, ferr, cerr)
				}
				if ferr != nil {
					continue
				}
				want := full.Rows
				if capN < len(want) {
					want = want[:capN]
				}
				if !reflect.DeepEqual(got.Rows, want) || !reflect.DeepEqual(got.Columns, full.Columns) {
					t.Fatalf("seed %d (scan=%v): %s %v cap=%d:\ncapped: %+v\nprefix: %+v", seed, arm, sql, args, capN, got, want)
				}
			}
		}
	}
}

// TestQueryCappedNote sanity-checks that capped fast-path queries still
// account their access path in the plan counters (the EXPLAIN/metrics
// contract): a capped full scan bumps full_scan like an uncapped one.
func TestQueryCappedNote(t *testing.T) {
	db := cappedTestDB(t)
	before := PlanCounters()["full_scan"]
	st := MustPrepare("SELECT * FROM t WHERE b = 1")
	if _, err := st.QueryCapped(db, 3); err != nil {
		t.Fatal(err)
	}
	after := PlanCounters()["full_scan"]
	if after != before+1 {
		t.Fatalf("capped streaming scan bumped full_scan by %d, want 1", after-before)
	}
	if !strings.Contains(fmt.Sprint(PlanCounters()), "full_scan") {
		t.Fatal("plan counters lost full_scan key")
	}
}
