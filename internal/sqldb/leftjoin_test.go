package sqldb

import "testing"

func leftJoinDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE orders (id INT, cust INT, total FLOAT)")
	db.MustExec("CREATE TABLE customers (id INT, name TEXT)")
	db.MustExec("INSERT INTO customers VALUES (1, 'ann'), (2, 'bob')")
	db.MustExec("INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.5), (12, 3, 9.0), (13, NULL, 1.0)")
	return db
}

func TestLeftJoinPadsUnmatched(t *testing.T) {
	db := leftJoinDB(t)
	res, err := db.Query(`SELECT o.id, c.name FROM orders o
		LEFT JOIN customers c ON o.cust = c.id ORDER BY o.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// Orders 10, 11 match ann; 12 and 13 (NULL cust) are padded.
	if s, _ := res.Rows[0][1].AsText(); s != "ann" {
		t.Errorf("row 0 name = %s", res.Rows[0][1])
	}
	if !res.Rows[2][1].IsNull() || !res.Rows[3][1].IsNull() {
		t.Errorf("unmatched rows should pad with NULL: %v %v", res.Rows[2][1], res.Rows[3][1])
	}
}

func TestLeftOuterJoinKeywordAccepted(t *testing.T) {
	db := leftJoinDB(t)
	res, err := db.Query(`SELECT COUNT(*) FROM orders o LEFT OUTER JOIN customers c ON o.cust = c.id`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 4 {
		t.Errorf("count = %d", n)
	}
}

func TestLeftJoinNestedLoopMatchesHash(t *testing.T) {
	run := func(disable bool) [][]Value {
		db := leftJoinDB(t)
		db.DisableHashJoin = disable
		res, err := db.Query(`SELECT o.id, c.name FROM orders o
			LEFT JOIN customers c ON o.cust = c.id ORDER BY o.id`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j].String() != b[i][j].String() {
				t.Fatalf("row %d col %d: %s vs %s", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestLeftJoinAntiJoinIdiom(t *testing.T) {
	db := leftJoinDB(t)
	// Customers with no orders: bob.
	res, err := db.Query(`SELECT c.name FROM customers c
		LEFT JOIN orders o ON o.cust = c.id WHERE o.id IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("anti-join rows = %d", len(res.Rows))
	}
	if s, _ := res.Rows[0][0].AsText(); s != "bob" {
		t.Errorf("anti-join name = %s", res.Rows[0][0])
	}
}

func TestLeftJoinAggregates(t *testing.T) {
	db := leftJoinDB(t)
	// Per-customer order count; bob has zero (COUNT skips the NULL pad).
	res, err := db.Query(`SELECT c.name, COUNT(o.id) AS n FROM customers c
		LEFT JOIN orders o ON o.cust = c.id GROUP BY c.name ORDER BY c.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 2 {
		t.Errorf("ann orders = %d", n)
	}
	if n, _ := res.Rows[1][1].AsInt(); n != 0 {
		t.Errorf("bob orders = %d", n)
	}
}

func TestLeftJoinWithNonEquiCondition(t *testing.T) {
	db := leftJoinDB(t)
	// Non-equi left join falls back to the nested loop.
	res, err := db.Query(`SELECT o.id, c.name FROM orders o
		LEFT JOIN customers c ON o.cust = c.id AND o.total > 6 ORDER BY o.id`)
	if err != nil {
		t.Fatal(err)
	}
	// Only order 11 (total 7.5, cust 1) matches; others padded.
	matched := 0
	for _, row := range res.Rows {
		if !row[1].IsNull() {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("matched = %d, want 1", matched)
	}
}
