package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkSymbol // ( ) , . * = != <> < <= > >= + - / % ?
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased, identifiers preserved
	pos  int    // byte offset in the input, for error messages
}

// keywords recognized by the dialect. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "DISTINCT": true, "AS": true, "INNER": true, "JOIN": true,
	"LEFT": true, "OUTER": true,
	"ON": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"TRUE": true, "FALSE": true, "EXISTS": true, "IN": true, "ALL": true,
	"ANY": true, "SOME": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "DELETE": true, "UPDATE": true, "SET": true,
	"DROP": true, "INT": true, "INTEGER": true, "FLOAT": true, "DOUBLE": true,
	"REAL": true, "TEXT": true, "VARCHAR": true, "BOOL": true, "BOOLEAN": true,
	"IF": true,
	// INDEX is deliberately NOT reserved: user schemas may name a column
	// "index". CREATE/DROP INDEX match it as a contextual identifier.
}

// lex tokenizes the SQL input. Strings use single quotes with ” escaping;
// line comments start with --.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tkKeyword, upper, start})
			} else {
				toks = append(toks, token{tkIdent, word, start})
			}
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := input[i]
				switch {
				case d >= '0' && d <= '9':
					i++
				case d == '.' && !seenDot && !seenExp:
					seenDot = true
					i++
				case (d == 'e' || d == 'E') && !seenExp && i > start:
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				default:
					goto numDone
				}
			}
		numDone:
			toks = append(toks, token{tkNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqldb: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tkString, sb.String(), start})
		case c == '!' || c == '<' || c == '>':
			start := i
			i++
			if i < n && input[i] == '=' {
				i++
			} else if c == '<' && i < n && input[i] == '>' {
				i++
			} else if c == '!' {
				return nil, fmt.Errorf("sqldb: unexpected '!' at offset %d", start)
			}
			toks = append(toks, token{tkSymbol, input[start:i], start})
		case strings.ContainsRune("(),.*=+-/%;?", rune(c)):
			toks = append(toks, token{tkSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tkEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
