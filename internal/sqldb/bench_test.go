package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"justintime/internal/sqldb/pager"
)

// benchDB builds a candidates-like table with n rows over k time points and
// a matching temporal_inputs table.
func benchDB(n, k int) *DB {
	rng := rand.New(rand.NewSource(1))
	db := New()
	db.MustExec("CREATE TABLE candidates (time INT, income FLOAT, diff FLOAT, gap INT, p FLOAT)")
	db.MustExec("CREATE TABLE temporal_inputs (time INT, income FLOAT)")
	ti := make([][]Value, k)
	for t := 0; t < k; t++ {
		ti[t] = []Value{Int(int64(t)), Float(48000)}
	}
	if err := db.InsertRows("temporal_inputs", ti); err != nil {
		panic(err)
	}
	rows := make([][]Value, n)
	for i := range rows {
		rows[i] = []Value{
			Int(int64(rng.Intn(k))),
			Float(40000 + rng.Float64()*40000),
			Float(rng.Float64() * 20000),
			Int(int64(rng.Intn(4))),
			Float(rng.Float64()),
		}
	}
	if err := db.InsertRows("candidates", rows); err != nil {
		panic(err)
	}
	return db
}

// BenchmarkJoin is the DESIGN.md §5 join ablation: hash join vs nested loop
// on the same equi-join.
func BenchmarkJoin(b *testing.B) {
	const q = `SELECT COUNT(*) FROM candidates c INNER JOIN temporal_inputs ti ON c.time = ti.time`
	for _, size := range []int{1000, 10000} {
		for _, disable := range []bool{false, true} {
			name := fmt.Sprintf("rows=%d/hash=%v", size, !disable)
			b.Run(name, func(b *testing.B) {
				db := benchDB(size, 64)
				db.DisableHashJoin = disable
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkParse(b *testing.B) {
	const q = `SELECT distinct time as t FROM candidates WHERE EXISTS
	(SELECT * FROM candidates as cnd INNER JOIN temporal_inputs as ti
	 ON ti.time = cnd.time WHERE cnd.time = t
	 AND ((gap = 0) OR (gap = 1 AND cnd.income != ti.income)))`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterScan(b *testing.B) {
	db := benchDB(10000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT MIN(diff) FROM candidates WHERE p > 0.9"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	db := benchDB(10000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT time, COUNT(*), AVG(p) FROM candidates GROUP BY time"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrelatedExists(b *testing.B) {
	db := benchDB(1000, 16)
	const q = `SELECT distinct time as t FROM candidates WHERE EXISTS
	(SELECT * FROM candidates as cnd INNER JOIN temporal_inputs as ti
	 ON ti.time = cnd.time WHERE cnd.time = t
	 AND ((gap = 0) OR (gap = 1 AND cnd.income != ti.income)))`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCannedQuestion compares the seed ask path (parse the SQL on
// every ask, full-scan candidates) against the engine path (statement
// prepared once, candidates(time) answered through the secondary index) on
// the plan-style per-time-point lookup. The acceptance bar for the indexed
// + prepared path is >= 2x the seed path.
func BenchmarkCannedQuestion(b *testing.B) {
	const rows, times = 10000, 64
	b.Run("seed/scan+reparse", func(b *testing.B) {
		db := benchDB(rows, times)
		db.DisableIndexScan = true
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf("SELECT * FROM candidates WHERE time = %d ORDER BY p DESC LIMIT 1", i%times)
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine/indexed+prepared", func(b *testing.B) {
		db := benchDB(rows, times)
		db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
		st := MustPrepare("SELECT * FROM candidates WHERE time = ? ORDER BY p DESC LIMIT 1")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Query(db, Int(int64(i%times))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexRange isolates the sorted-key range path against the
// equivalent full scan.
func BenchmarkIndexRange(b *testing.B) {
	const q = "SELECT COUNT(*), AVG(p) FROM candidates WHERE time BETWEEN 10 AND 12"
	for _, indexed := range []bool{false, true} {
		b.Run(fmt.Sprintf("indexed=%v", indexed), func(b *testing.B) {
			db := benchDB(10000, 64)
			if indexed {
				db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
			} else {
				db.DisableIndexScan = true
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The three planner-v2 benchmarks compare each new plan shape against the
// scan path it replaces, at a seed-sized candidate count (500) and at 100x
// (50000) — the scale the ROADMAP targets for production sessions.

func plannerBenchSizes() []struct {
	label string
	rows  int
} {
	return []struct {
		label string
		rows  int
	}{{"seed", 500}, {"100x", 50000}}
}

// BenchmarkIndexIntersection: two single-column indexes merged before the
// residual filter vs the full scan.
func BenchmarkIndexIntersection(b *testing.B) {
	const q = "SELECT COUNT(*) FROM candidates WHERE time = 3 AND gap <= 1"
	for _, size := range plannerBenchSizes() {
		for _, planned := range []bool{false, true} {
			b.Run(fmt.Sprintf("rows=%s/planned=%v", size.label, planned), func(b *testing.B) {
				db := benchDB(size.rows, 64)
				db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
				db.MustExec("CREATE INDEX candidates_gap ON candidates (gap)")
				db.DisableIndexScan = !planned
				// Pin the structural (pre-statistics) plan: this benchmark
				// measures the v2 intersection shape; the cost-based flip to
				// a single path is measured by BenchmarkStatsIntersectionFlip.
				db.DisableStatsCosting = true
				if planned {
					assertBenchPlan(b, db, q, "index intersection of candidates_time (time=) and candidates_gap (gap range)")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIndexJoin: the inner (large) table probed through its index per
// outer row vs rebuilding a hash table over it on every query.
func BenchmarkIndexJoin(b *testing.B) {
	const q = "SELECT COUNT(*) FROM temporal_inputs ti INNER JOIN candidates c ON c.time = ti.time"
	for _, size := range plannerBenchSizes() {
		for _, planned := range []bool{false, true} {
			b.Run(fmt.Sprintf("rows=%s/planned=%v", size.label, planned), func(b *testing.B) {
				db := benchDB(size.rows, 64)
				db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
				db.DisableIndexScan = !planned
				db.DisableStatsCosting = true // pin the v2 index-nested-loop shape
				if planned {
					assertBenchPlan(b, db, q, "index nested loop (candidates_time)")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTopK: ORDER BY ... LIMIT streamed off the sorted index vs
// materializing and sorting every row.
func BenchmarkTopK(b *testing.B) {
	const q = "SELECT * FROM candidates ORDER BY p DESC LIMIT 1"
	for _, size := range plannerBenchSizes() {
		for _, planned := range []bool{false, true} {
			b.Run(fmt.Sprintf("rows=%s/planned=%v", size.label, planned), func(b *testing.B) {
				db := benchDB(size.rows, 64)
				db.MustExec("CREATE INDEX candidates_p ON candidates (p)")
				db.DisableIndexScan = !planned
				if planned {
					assertBenchPlan(b, db, q, "top-k scan candidates using index candidates_p (p desc) limit 1")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// The planner-v3 benchmarks measure what the statistics change, at the seed
// size (500), at 100x (50000), and — behind BENCH_LARGE=1, since building the
// fixture dominates otherwise — at 10000x (5M). Each compares the structural
// plan the v2 planner was locked to (DisableStatsCosting) against the plan
// chosen after ANALYZE, asserting both shapes so a planner change cannot
// silently benchmark the wrong thing.

func statsBenchSizes() []struct {
	label string
	rows  int
} {
	sizes := []struct {
		label string
		rows  int
	}{{"seed", 500}, {"100x", 50000}}
	if os.Getenv("BENCH_LARGE") != "" {
		sizes = append(sizes, struct {
			label string
			rows  int
		}{"10000x", 5000000})
	}
	return sizes
}

// BenchmarkStatsIntersectionFlip: with time = 3 selecting ~1/64 of the table
// and gap <= 1 selecting half of it, the histogram prices the intersection's
// second leg out and the stats plan probes candidates_time alone.
func BenchmarkStatsIntersectionFlip(b *testing.B) {
	const q = "SELECT COUNT(*) FROM candidates WHERE time = 3 AND gap <= 1"
	for _, size := range statsBenchSizes() {
		for _, analyzed := range []bool{false, true} {
			b.Run(fmt.Sprintf("rows=%s/analyzed=%v", size.label, analyzed), func(b *testing.B) {
				db := benchDB(size.rows, 64)
				db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
				db.MustExec("CREATE INDEX candidates_gap ON candidates (gap)")
				if analyzed {
					db.MustExec("ANALYZE candidates")
					assertBenchPlan(b, db, q, "using index candidates_time (time=) est_rows=")
				} else {
					db.DisableStatsCosting = true
					assertBenchPlan(b, db, q, "index intersection of candidates_time (time=) and candidates_gap (gap range)")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStatsJoinFlip: candidates (outer, n rows) joined to
// temporal_inputs (inner, 64 keys). The structural planner probes the inner
// index once per outer row; the statistics see 50000 outer rows against 64
// distinct inner keys and build the 64-entry hash table instead.
func BenchmarkStatsJoinFlip(b *testing.B) {
	const q = "SELECT COUNT(*) FROM candidates c INNER JOIN temporal_inputs ti ON ti.time = c.time"
	for _, size := range statsBenchSizes() {
		for _, analyzed := range []bool{false, true} {
			b.Run(fmt.Sprintf("rows=%s/analyzed=%v", size.label, analyzed), func(b *testing.B) {
				db := benchDB(size.rows, 64)
				db.MustExec("CREATE INDEX temporal_inputs_time ON temporal_inputs (time)")
				if analyzed {
					db.MustExec("ANALYZE")
					assertBenchPlan(b, db, q, "hash join")
				} else {
					db.DisableStatsCosting = true
					assertBenchPlan(b, db, q, "index nested loop (temporal_inputs_time)")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOrUnion: a disjunction the v2 planner could only full-scan,
// answered as a deduplicated union of two index probes.
func BenchmarkOrUnion(b *testing.B) {
	const q = "SELECT * FROM candidates WHERE time = 3 OR time = 7"
	for _, size := range statsBenchSizes() {
		for _, expanded := range []bool{false, true} {
			b.Run(fmt.Sprintf("rows=%s/expanded=%v", size.label, expanded), func(b *testing.B) {
				db := benchDB(size.rows, 64)
				db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
				if expanded {
					assertBenchPlan(b, db, q, "using index union of candidates_time (time=) and candidates_time (time=)")
				} else {
					db.DisableStatsCosting = true
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCoveringPaged: a COUNT over one indexed column on a paged table
// behind a tiny pool. The structural plan materializes every matched row —
// faulting row pages through 8 frames on every query — while the covering
// plan answers from the index key tuples and never touches a row page.
func BenchmarkCoveringPaged(b *testing.B) {
	const q = "SELECT COUNT(*) FROM candidates WHERE time = 3"
	for _, size := range statsBenchSizes() {
		for _, covering := range []bool{false, true} {
			b.Run(fmt.Sprintf("rows=%s/covering=%v", size.label, covering), func(b *testing.B) {
				db := benchDB(size.rows, 64)
				db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
				pool := pager.NewPool(8)
				if err := db.PageTable("candidates", pool, filepath.Join(b.TempDir(), "spill.db")); err != nil {
					b.Fatal(err)
				}
				defer db.ClosePagedStores()
				if covering {
					assertBenchPlan(b, db, q, "covering index candidates_time (time=)")
				} else {
					db.DisableStatsCosting = true
					assertBenchPlan(b, db, q, "using index candidates_time (time=)")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// assertBenchPlan guards the benchmarks against silently measuring the
// wrong plan shape after a planner change.
func assertBenchPlan(b *testing.B, db *DB, q, fragment string) {
	b.Helper()
	res, err := db.Query("EXPLAIN " + q)
	if err != nil {
		b.Fatal(err)
	}
	txt := ""
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		txt += s + "\n"
	}
	if !strings.Contains(txt, fragment) {
		b.Fatalf("benchmark plan lacks %q:\n%s", fragment, txt)
	}
}

func BenchmarkInsertSQL(b *testing.B) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b FLOAT)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (1, 2.5)"); err != nil {
			b.Fatal(err)
		}
	}
}
