package sqldb

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files under testdata/explain")

// explainFixture is a deterministic session-shaped database carrying every
// index shape the planner knows, so each golden case demonstrates one plan.
func explainFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE candidates (time INT, income FLOAT, diff FLOAT, gap INT, p FLOAT)")
	db.MustExec("CREATE TABLE temporal_inputs (time INT, income FLOAT)")
	var cands [][]Value
	for tm := 0; tm < 4; tm++ {
		for i := 0; i < 6; i++ {
			cands = append(cands, []Value{
				Int(int64(tm)),
				Float(40000 + float64(i*1000)),
				Float(float64((tm*7+i*3)%11) / 2),
				Int(int64(i % 3)),
				Float(float64((tm*5+i)%10) / 10),
			})
		}
	}
	if err := db.InsertRows("candidates", cands); err != nil {
		t.Fatal(err)
	}
	var ti [][]Value
	for tm := 0; tm < 4; tm++ {
		ti = append(ti, []Value{Int(int64(tm)), Float(48000)})
	}
	if err := db.InsertRows("temporal_inputs", ti); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX candidates_time ON candidates (time)")
	db.MustExec("CREATE INDEX candidates_diff ON candidates (diff)")
	db.MustExec("CREATE INDEX candidates_p ON candidates (p)")
	db.MustExec("CREATE INDEX candidates_gap_diff ON candidates (gap, diff)")
	db.MustExec("CREATE INDEX candidates_time_p ON candidates (time, p)")
	db.MustExec("CREATE INDEX temporal_inputs_time ON temporal_inputs (time)")
	return db
}

// TestExplainGolden renders EXPLAIN for one query per plan shape and diffs
// it against testdata/explain/<name>.golden; run with -update to accept
// intentional plan changes as readable diffs in review. Every case gets a
// fresh fixture so no case inherits statistics built by an earlier one:
// stats-informed plans are demonstrated explicitly via a setup ANALYZE, and
// plan-cache hits via repeated executions of one prepared statement.
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name  string
		sql   string
		setup []string // statements executed before the EXPLAIN
		runs  int      // executions of the same prepared EXPLAIN (default 1)
	}{
		{name: "full_scan", sql: "SELECT * FROM candidates"},
		{name: "index_eq", sql: "SELECT * FROM candidates WHERE time = 3"},
		{name: "index_range", sql: "SELECT COUNT(*) FROM candidates WHERE p > 0.5"},
		{name: "composite_prefix", sql: "SELECT COUNT(*) FROM candidates WHERE time = 3 AND p > 0.5"},
		{name: "index_intersection", sql: "SELECT COUNT(*) FROM candidates WHERE time = 2 AND gap <= 1"},
		{name: "null_probe", sql: "SELECT * FROM candidates WHERE time = NULL"},
		{name: "index_join", sql: "SELECT COUNT(*) FROM candidates c INNER JOIN temporal_inputs ti ON ti.time = c.time"},
		{name: "hash_join", sql: "SELECT COUNT(*) FROM candidates c LEFT JOIN temporal_inputs ti ON c.income = ti.income"},
		{name: "nested_loop_join", sql: "SELECT COUNT(*) FROM temporal_inputs a INNER JOIN temporal_inputs b ON a.time < b.time"},
		{name: "topk_desc", sql: "SELECT * FROM candidates ORDER BY p DESC LIMIT 1"},
		{name: "topk_eq_prefix", sql: "SELECT * FROM candidates WHERE time = 2 ORDER BY p DESC LIMIT 3"},
		{name: "topk_composite", sql: "SELECT * FROM candidates ORDER BY gap, diff LIMIT 1"},
		{name: "sort_fallback", sql: "SELECT * FROM candidates ORDER BY income LIMIT 2"},
		{name: "covering_group", sql: "SELECT gap, COUNT(*) FROM candidates GROUP BY gap"},
		{name: "or_union", sql: "SELECT * FROM candidates WHERE time = 1 OR gap = 2"},
		{name: "in_list", sql: "SELECT * FROM candidates WHERE time IN (1, 3)"},
		{name: "analyzed_eq", sql: "SELECT * FROM candidates WHERE time = 3",
			setup: []string{"ANALYZE candidates"}},
		{name: "analyzed_intersection", sql: "SELECT * FROM candidates WHERE time = 2 AND gap <= 1",
			setup: []string{"ANALYZE candidates"}},
		{name: "cached", sql: "SELECT * FROM candidates WHERE time = 3",
			setup: []string{"ANALYZE candidates"}, runs: 3},
		{name: "dominant_feature", sql: `SELECT distinct time as t FROM candidates WHERE EXISTS
(SELECT * FROM candidates as cnd INNER JOIN temporal_inputs as ti ON ti.time = cnd.time
 WHERE cnd.time = t AND gap <= 1
 AND ((gap = 0) OR (gap = 1 AND cnd.income != ti.income))) ORDER BY t`},
		{name: "turning_point", sql: `SELECT Min(time) FROM candidates WHERE p > 0.5 AND time > ALL
(SELECT ti.time FROM temporal_inputs ti WHERE NOT EXISTS
 (SELECT * FROM candidates c WHERE c.time = ti.time AND c.p > 0.5))`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := explainFixture(t)
			for _, s := range tc.setup {
				db.MustExec(s)
			}
			st, err := db.Prepare("EXPLAIN " + tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			runs := tc.runs
			if runs == 0 {
				runs = 1
			}
			var res *Result
			for i := 0; i < runs; i++ {
				if res, err = st.Query(db); err != nil {
					t.Fatal(err)
				}
			}
			if len(res.Columns) != 1 || res.Columns[0] != "plan" {
				t.Fatalf("EXPLAIN columns = %v", res.Columns)
			}
			var lines []string
			for _, row := range res.Rows {
				s, _ := row[0].AsText()
				lines = append(lines, s)
			}
			got := strings.Join(lines, "\n") + "\n"
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/sqldb -run TestExplainGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan changed for %q:\n--- want\n%s--- got\n%s", tc.sql, want, got)
			}
		})
	}
}

// TestExplainExecutesForReal pins the EXPLAIN contract: the query actually
// runs, so execution errors surface and parameters bind.
func TestExplainExecutesForReal(t *testing.T) {
	db := explainFixture(t)
	if _, err := db.Query("EXPLAIN SELECT bogus FROM candidates"); err == nil {
		t.Fatal("EXPLAIN of an erroring query should error")
	}
	res, err := db.Query("EXPLAIN SELECT * FROM candidates WHERE time = ? ORDER BY p DESC LIMIT 1", Int(2))
	if err != nil {
		t.Fatal(err)
	}
	joined := resultPlanText(res)
	if !strings.Contains(joined, "top-k scan candidates using index candidates_time_p") {
		t.Errorf("parameterized EXPLAIN missed the top-k plan:\n%s", joined)
	}
	// EXPLAIN is Query-only.
	if _, err := db.Exec("EXPLAIN SELECT * FROM candidates"); err == nil {
		t.Fatal("EXPLAIN via Exec should error")
	}
	st := MustPrepare("EXPLAIN SELECT * FROM candidates")
	if !st.IsSelect() {
		t.Fatal("EXPLAIN must be classified read-only (IsSelect)")
	}
}

// TestPlanCountersAdvance asserts the per-shape counters move when their
// plans run (deltas only: the counters are process-wide). Each check plans
// against a fresh fixture so statistics built by one check cannot flip the
// plan shape the next check pins (a COUNT(*) probe is a covering scan, a
// SELECT * of the same predicate is a plain index scan, and so on).
func TestPlanCountersAdvance(t *testing.T) {
	checks := []struct {
		key string
		sql string
	}{
		{"full_scan", "SELECT * FROM candidates"},
		{"index_scan", "SELECT income FROM candidates WHERE time = 1"},
		{"covering_scan", "SELECT COUNT(*) FROM candidates WHERE time = 1"},
		{"index_intersection", "SELECT COUNT(*) FROM candidates WHERE time = 1 AND gap <= 1"},
		{"index_union", "SELECT * FROM candidates WHERE time = 1 OR gap = 2"},
		{"empty_probe", "SELECT COUNT(*) FROM candidates WHERE time = NULL"},
		{"top_k", "SELECT * FROM candidates ORDER BY p DESC LIMIT 1"},
		{"index_join", "SELECT COUNT(*) FROM candidates c INNER JOIN temporal_inputs ti ON ti.time = c.time"},
		{"hash_join", "SELECT COUNT(*) FROM candidates c INNER JOIN temporal_inputs ti ON c.income = ti.income"},
		{"nested_loop_join", "SELECT COUNT(*) FROM temporal_inputs a INNER JOIN temporal_inputs b ON a.time < b.time"},
	}
	for _, c := range checks {
		db := explainFixture(t)
		before := PlanCounters()[c.key]
		if _, err := db.Query(c.sql); err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if after := PlanCounters()[c.key]; after <= before {
			t.Errorf("%s: counter %q did not advance (%d -> %d)", c.sql, c.key, before, after)
		}
	}
}

func resultPlanText(res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		fmt.Fprintln(&sb, s)
	}
	return sb.String()
}
