package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire tags for encoded Values. These are the on-disk representation shared
// by the persist snapshot/WAL codec and the pager's slotted pages; they are
// pinned independently of the Type enum so reordering Type can never silently
// corrupt stored data.
const (
	wireTagNull  byte = 0
	wireTagInt   byte = 1
	wireTagFloat byte = 2
	wireTagText  byte = 3
	wireTagBool  byte = 4
)

// AppendValue appends the binary encoding of v to buf and returns the
// extended slice: a one-byte tag followed by a little-endian payload (int64
// bits, float64 bits, u32-length-prefixed string bytes, or a single 0/1
// byte). NULL is the bare tag.
func AppendValue(buf []byte, v Value) []byte {
	switch v.typ {
	case IntType:
		buf = append(buf, wireTagInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(v.i))
	case FloatType:
		buf = append(buf, wireTagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	case TextType:
		buf = append(buf, wireTagText)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.s)))
		return append(buf, v.s...)
	case BoolType:
		buf = append(buf, wireTagBool)
		if v.b {
			return append(buf, 1)
		}
		return append(buf, 0)
	default:
		return append(buf, wireTagNull)
	}
}

// DecodeValue decodes one value from the front of b, returning the value and
// the number of bytes consumed. String payloads are copied, so the returned
// Value never aliases b.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("sqldb: truncated value")
	}
	switch tag := b[0]; tag {
	case wireTagNull:
		return Null(), 1, nil
	case wireTagInt:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("sqldb: truncated INT value")
		}
		return Int(int64(binary.LittleEndian.Uint64(b[1:]))), 9, nil
	case wireTagFloat:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("sqldb: truncated FLOAT value")
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))), 9, nil
	case wireTagText:
		if len(b) < 5 {
			return Value{}, 0, fmt.Errorf("sqldb: truncated TEXT value")
		}
		n := int(binary.LittleEndian.Uint32(b[1:]))
		if n < 0 || len(b) < 5+n {
			return Value{}, 0, fmt.Errorf("sqldb: truncated TEXT payload")
		}
		return Text(string(b[5 : 5+n])), 5 + n, nil
	case wireTagBool:
		if len(b) < 2 {
			return Value{}, 0, fmt.Errorf("sqldb: truncated BOOL value")
		}
		return Bool(b[1] != 0), 2, nil
	default:
		return Value{}, 0, fmt.Errorf("sqldb: unknown value tag %d", tag)
	}
}

// AppendRowRecord appends the encoding of one row — a u32 width followed by
// that many encoded values — to buf. This is the record format stored in
// slotted pages and, per element, inside persist's row blocks.
func AppendRowRecord(buf []byte, row []Value) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(row)))
	for _, v := range row {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeRowRecord decodes a complete row record produced by AppendRowRecord.
// Trailing bytes are an error: page slots hold exactly one record.
func DecodeRowRecord(b []byte) ([]Value, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("sqldb: truncated row record")
	}
	width := int(binary.LittleEndian.Uint32(b))
	if width < 0 || width > 1<<20 {
		return nil, fmt.Errorf("sqldb: implausible row width %d", width)
	}
	off := 4
	row := make([]Value, 0, width)
	for i := 0; i < width; i++ {
		v, n, err := DecodeValue(b[off:])
		if err != nil {
			return nil, err
		}
		off += n
		row = append(row, v)
	}
	if off != len(b) {
		return nil, fmt.Errorf("sqldb: %d trailing byte(s) after row record", len(b)-off)
	}
	return row, nil
}
