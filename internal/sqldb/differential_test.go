package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// This file is the differential/property harness that locks the planner in:
// a generator emits random schemas, rows (with NULLs), secondary indexes
// (single-column and composite) and SELECTs (multi-conjunct filters, inner
// and left joins, ORDER BY/LIMIT/OFFSET), and every query must return
// byte-identical results with the planner enabled and with DisableIndexScan
// forcing the naive scan path. Constants travel as `?` parameters, typed to
// the probed column's comparison family, so generated queries never hit
// evaluation type errors — any divergence is a planner bug, not noise.

// diffColumnPool is the fixed column menu tables draw from; small value
// domains force duplicate keys, ties at LIMIT boundaries, and NULL-heavy
// index builds.
var diffColumnPool = []Column{
	{Name: "c0", Type: IntType},
	{Name: "c1", Type: IntType},
	{Name: "c2", Type: FloatType},
	{Name: "c3", Type: FloatType},
	{Name: "c4", Type: TextType},
	{Name: "c5", Type: BoolType},
}

func randValueFor(r *rand.Rand, typ Type, nullPct float64) Value {
	if r.Float64() < nullPct {
		return Null()
	}
	switch typ {
	case IntType:
		return Int(int64(r.Intn(6)))
	case FloatType:
		return Float(float64(r.Intn(10)) / 2)
	case TextType:
		return Text([]string{"a", "b", "cc", "d", "ee"}[r.Intn(5)])
	case BoolType:
		return Bool(r.Intn(2) == 0)
	default:
		return Null()
	}
}

// diffProbe returns a constant probe value for comparisons against a column
// of the given type: same comparison family (so Compare never errors), with
// an occasional NULL to exercise the impossible-predicate plan.
func diffProbe(r *rand.Rand, typ Type) Value {
	if r.Intn(12) == 0 {
		return Null()
	}
	switch typ {
	case TextType:
		return randValueFor(r, TextType, 0)
	case BoolType:
		if r.Intn(2) == 0 {
			return randValueFor(r, BoolType, 0)
		}
		return Int(int64(r.Intn(2))) // numeric probe on BOOL compares fine
	default:
		if r.Intn(2) == 0 {
			return Int(int64(r.Intn(7)))
		}
		return Float(float64(r.Intn(12)) / 2)
	}
}

type diffTable struct {
	name   string
	cols   []Column
	ixCols [][]string // column names of each created index, creation order
}

// buildDiffDB generates a two-table schema with random indexes and rows,
// returning the populated database and the table descriptions.
func buildDiffDB(t testing.TB, r *rand.Rand) (*DB, []diffTable) {
	db := New()
	tables := []diffTable{}
	for ti, name := range []string{"t1", "t2"} {
		ncols := 3 + r.Intn(len(diffColumnPool)-2)
		cols := append([]Column(nil), diffColumnPool[:ncols]...)
		if err := db.CreateTable(name, cols); err != nil {
			t.Fatal(err)
		}
		nrows := 20 + r.Intn(80)
		if ti == 1 && r.Intn(4) == 0 {
			nrows = 0 // empty inner table
		}
		rows := make([][]Value, nrows)
		for i := range rows {
			row := make([]Value, len(cols))
			for ci, c := range cols {
				row[ci] = randValueFor(r, c.Type, 0.15)
			}
			rows[i] = row
		}
		if nrows > 0 {
			if err := db.InsertRows(name, rows); err != nil {
				t.Fatal(err)
			}
		}
		// Random indexes: singles and 2-3 column composites (exercising the
		// multi-column CREATE INDEX syntax), duplicates columns allowed
		// across indexes so the planner has overlapping paths to choose
		// between.
		nix := r.Intn(4)
		var ixCols [][]string
		for k := 0; k < nix; k++ {
			width := 1 + r.Intn(3)
			perm := r.Perm(len(cols))[:width]
			names := make([]string, width)
			for i, ci := range perm {
				names[i] = cols[ci].Name
			}
			sql := fmt.Sprintf("CREATE INDEX %s_ix%d ON %s (%s)", name, k, name, strings.Join(names, ", "))
			if _, err := db.Exec(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			ixCols = append(ixCols, names)
		}
		tables = append(tables, diffTable{name: name, cols: cols, ixCols: ixCols})
	}
	return db, tables
}

// buildDiffQuery generates one SELECT over the schema, returning the SQL and
// its bound parameters. Every query is safe to diff across all execution
// arms, including the fully-ablated nested loop: ON-clause equality matches
// by Value.key() family on every join path, so cross-family join keys (a
// BOOL column joined to a numeric one) are generated freely. All column
// references are alias-qualified so generated queries are never ambiguous.
func buildDiffQuery(r *rand.Rand, tables []diffTable) (string, []Value) {
	t1, t2 := tables[0], tables[1]
	join := r.Intn(3) // 0 = none, 1 = inner, 2 = left
	var sb strings.Builder
	var args []Value

	sb.WriteString("SELECT ")
	switch {
	case join == 0 && len(t1.ixCols) > 0 && r.Intn(3) == 0:
		// Project exactly one index's columns: when the WHERE clause stays
		// inside them too, the planner answers from the index alone
		// (covering scan) — the arm ablation proves it returns the same rows.
		cols := t1.ixCols[r.Intn(len(t1.ixCols))]
		for i, c := range cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "u.%s", c)
		}
	case r.Intn(3) > 0:
		sb.WriteString("*")
	default:
		n := 1 + r.Intn(len(t1.cols))
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "u.%s", t1.cols[r.Intn(len(t1.cols))].Name)
		}
	}
	sb.WriteString(" FROM t1 u")
	if join > 0 {
		kw := "INNER JOIN"
		if join == 2 {
			kw = "LEFT JOIN"
		}
		jc1 := t1.cols[r.Intn(len(t1.cols))]
		jc2 := t2.cols[r.Intn(len(t2.cols))]
		fmt.Fprintf(&sb, " %s t2 v ON u.%s = v.%s", kw, jc1.Name, jc2.Name)
	}

	nconj := r.Intn(5)
	for i := 0; i < nconj; i++ {
		if i == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		alias, tbl := "u", t1
		if join > 0 && r.Intn(4) == 0 {
			alias, tbl = "v", t2
		}
		col := tbl.cols[r.Intn(len(tbl.cols))]
		switch r.Intn(9) {
		case 0:
			fmt.Fprintf(&sb, "%s.%s BETWEEN ? AND ?", alias, col.Name)
			args = append(args, diffProbe(r, col.Type), diffProbe(r, col.Type))
		case 1:
			fmt.Fprintf(&sb, "? %s %s.%s", []string{"=", "<", "<=", ">", ">="}[r.Intn(5)], alias, col.Name)
			args = append(args, diffProbe(r, col.Type))
		case 2:
			// IN list (occasionally negated): sargable lists become
			// multi-probe index paths; NULL members and NOT IN take the
			// scan path and must agree with it.
			if r.Intn(4) == 0 {
				fmt.Fprintf(&sb, "%s.%s NOT IN (", alias, col.Name)
			} else {
				fmt.Fprintf(&sb, "%s.%s IN (", alias, col.Name)
			}
			n := 1 + r.Intn(4)
			for j := 0; j < n; j++ {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("?")
				args = append(args, diffProbe(r, col.Type))
			}
			sb.WriteString(")")
		case 3:
			// OR of two sargable disjuncts over one relation: the planner may
			// expand it into a deduplicated index union.
			col2 := tbl.cols[r.Intn(len(tbl.cols))]
			op1 := []string{"=", "=", "<", ">="}[r.Intn(4)]
			op2 := []string{"=", "=", "<=", ">"}[r.Intn(4)]
			fmt.Fprintf(&sb, "(%s.%s %s ? OR %s.%s %s ?)", alias, col.Name, op1, alias, col2.Name, op2)
			args = append(args, diffProbe(r, col.Type), diffProbe(r, col2.Type))
		default:
			op := []string{"=", "=", "=", "<", "<=", ">", ">="}[r.Intn(7)]
			fmt.Fprintf(&sb, "%s.%s %s ?", alias, col.Name, op)
			args = append(args, diffProbe(r, col.Type))
		}
	}

	if r.Intn(2) == 0 {
		sb.WriteString(" ORDER BY ")
		desc := r.Intn(2) == 0
		mixed := r.Intn(4) == 0
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "u.%s", t1.cols[r.Intn(len(t1.cols))].Name)
			d := desc
			if mixed {
				d = r.Intn(2) == 0
			}
			if d {
				sb.WriteString(" DESC")
			}
		}
		if r.Intn(3) > 0 {
			fmt.Fprintf(&sb, " LIMIT %d", r.Intn(6))
			if r.Intn(3) == 0 {
				fmt.Fprintf(&sb, " OFFSET %d", r.Intn(4))
			}
		}
	}
	return sb.String(), args
}

// runDiffCase builds one random schema and checks every generated query for
// divergence (results, order, columns, and error presence) between the
// planned execution, a stats-ablated structural plan, the DisableIndexScan
// scan baseline, and the fully-ablated nested-loop path. Halfway through,
// ANALYZE builds statistics so the second half diffs cost-based plans
// (covering scans, index unions, intersection-vs-single-path flips) against
// the same baselines.
func runDiffCase(t testing.TB, seed int64, queries int) {
	r := rand.New(rand.NewSource(seed))
	db, tables := buildDiffDB(t, r)
	run := func(sql string, args []Value, disableIndex, disableHash, disableStats bool) (*Result, error) {
		db.DisableIndexScan = disableIndex
		db.DisableHashJoin = disableHash
		db.DisableStatsCosting = disableStats
		defer func() {
			db.DisableIndexScan = false
			db.DisableHashJoin = false
			db.DisableStatsCosting = false
		}()
		return db.Query(sql, args...)
	}
	for q := 0; q < queries; q++ {
		if q == queries/2 {
			if _, err := db.Exec("ANALYZE"); err != nil {
				t.Fatalf("seed %d: ANALYZE: %v", seed, err)
			}
		}
		sql, args := buildDiffQuery(r, tables)
		indexed, ierr := run(sql, args, false, false, false)
		structural, terr := run(sql, args, false, false, true)
		scanned, serr := run(sql, args, true, false, false)
		nested, nerr := run(sql, args, true, true, false)
		if (ierr == nil) != (serr == nil) || (terr == nil) != (serr == nil) || (nerr == nil) != (serr == nil) {
			t.Fatalf("seed %d: %s %v: indexed err=%v structural err=%v scan err=%v nested err=%v",
				seed, sql, args, ierr, terr, serr, nerr)
		}
		if ierr != nil {
			continue
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("seed %d: %s %v:\nindexed: %+v\nscan:    %+v", seed, sql, args, indexed, scanned)
		}
		if !reflect.DeepEqual(structural, scanned) {
			t.Fatalf("seed %d: %s %v:\nstructural: %+v\nscan:       %+v", seed, sql, args, structural, scanned)
		}
		if !reflect.DeepEqual(indexed, nested) {
			t.Fatalf("seed %d: %s %v:\nindexed: %+v\nnested:  %+v", seed, sql, args, indexed, nested)
		}
	}
}

// TestDifferentialPlannerParity is the CI lock on the planner: 200 random
// schemas x 15 queries each, indexed execution must equal scan execution
// row for row.
func TestDifferentialPlannerParity(t *testing.T) {
	cases := 200
	if testing.Short() {
		cases = 40
	}
	for seed := int64(0); seed < int64(cases); seed++ {
		runDiffCase(t, seed, 15)
	}
}

// TestDifferentialConcurrentReads replays one generated workload from many
// goroutines against a shared database right after a mutation, so the lazy
// composite-index rebuilds race with concurrent readers (meaningful under
// -race); every goroutine must see identical results.
func TestDifferentialConcurrentReads(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	db, tables := buildDiffDB(t, r)
	type q struct {
		sql  string
		args []Value
		want *Result
	}
	var qs []q
	for len(qs) < 8 {
		sql, args := buildDiffQuery(r, tables)
		res, err := db.Query(sql, args...)
		if err != nil {
			continue
		}
		qs = append(qs, q{sql, args, res})
	}
	// Re-derive expectations after a mutation, then hammer concurrently:
	// the first readers race to rebuild every stale index.
	if _, err := db.Exec("DELETE FROM t1 WHERE c0 = 0"); err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		res, err := db.Query(qs[i].sql, qs[i].args...)
		if err != nil {
			t.Fatal(err)
		}
		qs[i].want = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, qq := range qs {
					res, err := db.Query(qq.sql, qq.args...)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, qq.want) {
						errs <- fmt.Errorf("%s: concurrent result diverged", qq.sql)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// FuzzPlannerParity drives the same generator from fuzzed seeds; the CI
// fuzz step runs it with a short time budget, and any reproducer the fuzzer
// finds is a single int64 that replays deterministically.
func FuzzPlannerParity(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runDiffCase(t, seed, 8)
	})
}
