package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// This file is the differential/property harness that locks the planner in:
// a generator emits random schemas, rows (with NULLs), secondary indexes
// (single-column and composite) and SELECTs (multi-conjunct filters, inner
// and left joins, ORDER BY/LIMIT/OFFSET), and every query must return
// byte-identical results with the planner enabled and with DisableIndexScan
// forcing the naive scan path. Constants travel as `?` parameters, typed to
// the probed column's comparison family, so generated queries never hit
// evaluation type errors — any divergence is a planner bug, not noise.

// diffColumnPool is the fixed column menu tables draw from; small value
// domains force duplicate keys, ties at LIMIT boundaries, and NULL-heavy
// index builds.
var diffColumnPool = []Column{
	{Name: "c0", Type: IntType},
	{Name: "c1", Type: IntType},
	{Name: "c2", Type: FloatType},
	{Name: "c3", Type: FloatType},
	{Name: "c4", Type: TextType},
	{Name: "c5", Type: BoolType},
}

func randValueFor(r *rand.Rand, typ Type, nullPct float64) Value {
	if r.Float64() < nullPct {
		return Null()
	}
	switch typ {
	case IntType:
		return Int(int64(r.Intn(6)))
	case FloatType:
		return Float(float64(r.Intn(10)) / 2)
	case TextType:
		return Text([]string{"a", "b", "cc", "d", "ee"}[r.Intn(5)])
	case BoolType:
		return Bool(r.Intn(2) == 0)
	default:
		return Null()
	}
}

// diffProbe returns a constant probe value for comparisons against a column
// of the given type: same comparison family (so Compare never errors), with
// an occasional NULL to exercise the impossible-predicate plan.
func diffProbe(r *rand.Rand, typ Type) Value {
	if r.Intn(12) == 0 {
		return Null()
	}
	switch typ {
	case TextType:
		return randValueFor(r, TextType, 0)
	case BoolType:
		if r.Intn(2) == 0 {
			return randValueFor(r, BoolType, 0)
		}
		return Int(int64(r.Intn(2))) // numeric probe on BOOL compares fine
	default:
		if r.Intn(2) == 0 {
			return Int(int64(r.Intn(7)))
		}
		return Float(float64(r.Intn(12)) / 2)
	}
}

type diffTable struct {
	name string
	cols []Column
}

// buildDiffDB generates a two-table schema with random indexes and rows,
// returning the populated database and the table descriptions.
func buildDiffDB(t testing.TB, r *rand.Rand) (*DB, []diffTable) {
	db := New()
	tables := []diffTable{}
	for ti, name := range []string{"t1", "t2"} {
		ncols := 3 + r.Intn(len(diffColumnPool)-2)
		cols := append([]Column(nil), diffColumnPool[:ncols]...)
		if err := db.CreateTable(name, cols); err != nil {
			t.Fatal(err)
		}
		nrows := 20 + r.Intn(80)
		if ti == 1 && r.Intn(4) == 0 {
			nrows = 0 // empty inner table
		}
		rows := make([][]Value, nrows)
		for i := range rows {
			row := make([]Value, len(cols))
			for ci, c := range cols {
				row[ci] = randValueFor(r, c.Type, 0.15)
			}
			rows[i] = row
		}
		if nrows > 0 {
			if err := db.InsertRows(name, rows); err != nil {
				t.Fatal(err)
			}
		}
		// Random indexes: singles and 2-3 column composites (exercising the
		// multi-column CREATE INDEX syntax), duplicates columns allowed
		// across indexes so the planner has overlapping paths to choose
		// between.
		nix := r.Intn(4)
		for k := 0; k < nix; k++ {
			width := 1 + r.Intn(3)
			perm := r.Perm(len(cols))[:width]
			names := make([]string, width)
			for i, ci := range perm {
				names[i] = cols[ci].Name
			}
			sql := fmt.Sprintf("CREATE INDEX %s_ix%d ON %s (%s)", name, k, name, strings.Join(names, ", "))
			if _, err := db.Exec(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
		tables = append(tables, diffTable{name: name, cols: cols})
	}
	return db, tables
}

// keyFamily buckets a column type by its hash-join key family (the
// equality contract ON-joins use): INT and FLOAT share the numeric family,
// TEXT and BOOL stand alone.
func keyFamily(t Type) int {
	switch t {
	case IntType, FloatType:
		return 0
	case TextType:
		return 1
	default:
		return 2
	}
}

// buildDiffQuery generates one SELECT over the schema, returning the SQL,
// its bound parameters, and whether the query is also safe to diff against
// the nested-loop join path (no join, or join keys in the same key family —
// cross-family ON-joins are a pre-existing, documented divergence between
// hash/index joins and the nested loop's Compare semantics). All column
// references are alias-qualified so generated queries are never ambiguous.
func buildDiffQuery(r *rand.Rand, tables []diffTable) (string, []Value, bool) {
	t1, t2 := tables[0], tables[1]
	join := r.Intn(3) // 0 = none, 1 = inner, 2 = left
	var sb strings.Builder
	var args []Value

	sb.WriteString("SELECT ")
	if r.Intn(3) > 0 {
		sb.WriteString("*")
	} else {
		n := 1 + r.Intn(len(t1.cols))
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "u.%s", t1.cols[r.Intn(len(t1.cols))].Name)
		}
	}
	sb.WriteString(" FROM t1 u")
	nestedSafe := true
	if join > 0 {
		kw := "INNER JOIN"
		if join == 2 {
			kw = "LEFT JOIN"
		}
		jc1 := t1.cols[r.Intn(len(t1.cols))]
		jc2 := t2.cols[r.Intn(len(t2.cols))]
		nestedSafe = keyFamily(jc1.Type) == keyFamily(jc2.Type)
		fmt.Fprintf(&sb, " %s t2 v ON u.%s = v.%s", kw, jc1.Name, jc2.Name)
	}

	nconj := r.Intn(5)
	for i := 0; i < nconj; i++ {
		if i == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		alias, tbl := "u", t1
		if join > 0 && r.Intn(4) == 0 {
			alias, tbl = "v", t2
		}
		col := tbl.cols[r.Intn(len(tbl.cols))]
		switch r.Intn(7) {
		case 0:
			fmt.Fprintf(&sb, "%s.%s BETWEEN ? AND ?", alias, col.Name)
			args = append(args, diffProbe(r, col.Type), diffProbe(r, col.Type))
		case 1:
			fmt.Fprintf(&sb, "? %s %s.%s", []string{"=", "<", "<=", ">", ">="}[r.Intn(5)], alias, col.Name)
			args = append(args, diffProbe(r, col.Type))
		default:
			op := []string{"=", "=", "=", "<", "<=", ">", ">="}[r.Intn(7)]
			fmt.Fprintf(&sb, "%s.%s %s ?", alias, col.Name, op)
			args = append(args, diffProbe(r, col.Type))
		}
	}

	if r.Intn(2) == 0 {
		sb.WriteString(" ORDER BY ")
		desc := r.Intn(2) == 0
		mixed := r.Intn(4) == 0
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "u.%s", t1.cols[r.Intn(len(t1.cols))].Name)
			d := desc
			if mixed {
				d = r.Intn(2) == 0
			}
			if d {
				sb.WriteString(" DESC")
			}
		}
		if r.Intn(3) > 0 {
			fmt.Fprintf(&sb, " LIMIT %d", r.Intn(6))
			if r.Intn(3) == 0 {
				fmt.Fprintf(&sb, " OFFSET %d", r.Intn(4))
			}
		}
	}
	return sb.String(), args, nestedSafe
}

// runDiffCase builds one random schema and checks every generated query for
// divergence (results, order, columns, and error presence) between the
// planned execution, the DisableIndexScan scan baseline, and — for queries
// whose join keys share a key family — the fully-ablated nested-loop path.
func runDiffCase(t testing.TB, seed int64, queries int) {
	r := rand.New(rand.NewSource(seed))
	db, tables := buildDiffDB(t, r)
	run := func(sql string, args []Value, disableIndex, disableHash bool) (*Result, error) {
		db.DisableIndexScan = disableIndex
		db.DisableHashJoin = disableHash
		defer func() { db.DisableIndexScan = false; db.DisableHashJoin = false }()
		return db.Query(sql, args...)
	}
	for q := 0; q < queries; q++ {
		sql, args, nestedSafe := buildDiffQuery(r, tables)
		indexed, ierr := run(sql, args, false, false)
		scanned, serr := run(sql, args, true, false)
		if (ierr == nil) != (serr == nil) {
			t.Fatalf("seed %d: %s %v: indexed err=%v scan err=%v", seed, sql, args, ierr, serr)
		}
		if ierr != nil {
			continue
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("seed %d: %s %v:\nindexed: %+v\nscan:    %+v", seed, sql, args, indexed, scanned)
		}
		if !nestedSafe {
			continue
		}
		nested, nerr := run(sql, args, true, true)
		if nerr != nil {
			t.Fatalf("seed %d: %s %v: nested-loop err=%v", seed, sql, args, nerr)
		}
		if !reflect.DeepEqual(indexed, nested) {
			t.Fatalf("seed %d: %s %v:\nindexed: %+v\nnested:  %+v", seed, sql, args, indexed, nested)
		}
	}
}

// TestDifferentialPlannerParity is the CI lock on the planner: 200 random
// schemas x 15 queries each, indexed execution must equal scan execution
// row for row.
func TestDifferentialPlannerParity(t *testing.T) {
	cases := 200
	if testing.Short() {
		cases = 40
	}
	for seed := int64(0); seed < int64(cases); seed++ {
		runDiffCase(t, seed, 15)
	}
}

// TestDifferentialConcurrentReads replays one generated workload from many
// goroutines against a shared database right after a mutation, so the lazy
// composite-index rebuilds race with concurrent readers (meaningful under
// -race); every goroutine must see identical results.
func TestDifferentialConcurrentReads(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	db, tables := buildDiffDB(t, r)
	type q struct {
		sql  string
		args []Value
		want *Result
	}
	var qs []q
	for len(qs) < 8 {
		sql, args, _ := buildDiffQuery(r, tables)
		res, err := db.Query(sql, args...)
		if err != nil {
			continue
		}
		qs = append(qs, q{sql, args, res})
	}
	// Re-derive expectations after a mutation, then hammer concurrently:
	// the first readers race to rebuild every stale index.
	if _, err := db.Exec("DELETE FROM t1 WHERE c0 = 0"); err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		res, err := db.Query(qs[i].sql, qs[i].args...)
		if err != nil {
			t.Fatal(err)
		}
		qs[i].want = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, qq := range qs {
					res, err := db.Query(qq.sql, qq.args...)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, qq.want) {
						errs <- fmt.Errorf("%s: concurrent result diverged", qq.sql)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// FuzzPlannerParity drives the same generator from fuzzed seeds; the CI
// fuzz step runs it with a short time budget, and any reproducer the fuzzer
// finds is a single int64 that replays deterministically.
func FuzzPlannerParity(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runDiffCase(t, seed, 8)
	})
}
